//! Phase-attribution profiling: where an operation spends its virtual time.
//!
//! CHIME's performance story is a story about round trips — cache-miss
//! traversal vs. lock acquisition vs. the leaf-neighborhood READ vs. the
//! speculative-read fallback. This module gives the stack a fixed [`Phase`]
//! taxonomy, a deterministic fixed-bucket [`LatencyHist`], and an
//! [`OpProfile`] accumulator that attributes every charged nanosecond, verb,
//! round trip and wire byte to exactly one phase, plus every retry to a
//! [`RetryCause`]. Everything is integer arithmetic on the virtual clock, so
//! two identical runs produce bit-identical profiles.

use crate::metrics::HistogramSummary;

/// Where inside an index operation time is being spent.
///
/// The active phase is ambient state on the endpoint: whatever the clock is
/// charged while a phase is open is attributed to that phase (exclusively —
/// a nested phase takes over until it closes). Time charged outside any
/// annotation lands in [`Phase::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Phase {
    /// Unattributed time (bench harness gaps, unannotated code paths).
    #[default]
    Other = 0,
    /// Probing the local internal-node cache (no remote verbs expected).
    CacheLookup,
    /// Walking internal levels remotely on a cache miss (B-link descent,
    /// root refresh, parent lookup).
    Traversal,
    /// Acquiring a leaf or internal lock word (CAS loop, lease takeover).
    LockAcquire,
    /// READing leaf data: hopscotch neighborhood, hop window, full leaf.
    LeafRead,
    /// The hotspot-buffer speculative leaf read (hit or miss).
    SpeculativeRead,
    /// WRITEs installing new state and releasing locks.
    WriteBack,
    /// Consistency checks that re-read remote state: fence chase,
    /// sibling-pointer chase.
    Validate,
    /// Seeded exponential backoff between retries.
    RetryBackoff,
    /// Scan-specific chain walking: bridging leaves missing from the parent.
    ScanChain,
    /// Waiting on a completion queue beyond a verb's uncontended service
    /// time: doorbell-batch chaining and in-order QP delivery delay under
    /// pipelined (multi-coroutine) clients.
    CqWait,
    /// Parsing request frames off a connection's byte stream (serve layer).
    Decode,
    /// Waiting for (or being refused) a connection-admission permit.
    Admission,
    /// Deferred behind the CQ-depth backpressure watermark before the index
    /// op was allowed to issue verbs.
    QueueWait,
    /// Encoding and writing the response frame back to the connection.
    Respond,
    /// Partition-routing work: reading the routing-table epoch and home
    /// words, refreshing the CN-cached partition map.
    Route,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 16;

impl Phase {
    /// Every phase, in stable display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Other,
        Phase::CacheLookup,
        Phase::Traversal,
        Phase::LockAcquire,
        Phase::LeafRead,
        Phase::SpeculativeRead,
        Phase::WriteBack,
        Phase::Validate,
        Phase::RetryBackoff,
        Phase::ScanChain,
        Phase::CqWait,
        Phase::Decode,
        Phase::Admission,
        Phase::QueueWait,
        Phase::Respond,
        Phase::Route,
    ];

    /// Stable `snake_case` name used in metric labels and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::CacheLookup => "cache_lookup",
            Phase::Traversal => "traversal",
            Phase::LockAcquire => "lock_acquire",
            Phase::LeafRead => "leaf_read",
            Phase::SpeculativeRead => "speculative_read",
            Phase::WriteBack => "write_back",
            Phase::Validate => "validate",
            Phase::RetryBackoff => "retry_backoff",
            Phase::ScanChain => "scan_chain",
            Phase::CqWait => "cq_wait",
            Phase::Decode => "decode",
            Phase::Admission => "admission",
            Phase::QueueWait => "queue_wait",
            Phase::Respond => "respond",
            Phase::Route => "route",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Why an operation (or sub-loop) had to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RetryCause {
    /// A torn/in-flight write was observed (leaf version words disagreed).
    VersionMismatch = 0,
    /// The lock word was held by another client.
    LockConflict,
    /// The leaf reached via cache/sibling pointers no longer covers the key
    /// (concurrent split/merge moved it).
    StaleSibling,
    /// A cached internal route was invalid (stale node, dead parent).
    StaleRoute,
    /// The fault engine injected the failure that triggered the retry.
    InjectedFault,
}

/// Number of retry causes (length of [`RetryCause::ALL`]).
pub const NUM_RETRY_CAUSES: usize = 5;

impl RetryCause {
    /// Every cause, in stable display order.
    pub const ALL: [RetryCause; NUM_RETRY_CAUSES] = [
        RetryCause::VersionMismatch,
        RetryCause::LockConflict,
        RetryCause::StaleSibling,
        RetryCause::StaleRoute,
        RetryCause::InjectedFault,
    ];

    /// Stable `snake_case` name used in metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            RetryCause::VersionMismatch => "version_mismatch",
            RetryCause::LockConflict => "lock_conflict",
            RetryCause::StaleSibling => "stale_sibling",
            RetryCause::StaleRoute => "stale_route",
            RetryCause::InjectedFault => "injected_fault",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// Fixed-bucket latency histogram
// ---------------------------------------------------------------------------

/// Mantissa bits per octave: 8 sub-buckets, ≤ 12.5% relative bucket width.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count: values `0..8` map 1:1, then 8 sub-buckets per power of two
/// up to `u64::MAX` (61 octaves).
pub const HIST_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let exp = msb - SUB_BITS as u64;
    let mantissa = (v >> exp) & (SUB - 1);
    ((exp + 1) * SUB + mantissa) as usize
}

/// Inclusive upper bound of bucket `b` — the value quantiles report.
fn bound_of(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB {
        return b;
    }
    let exp = b / SUB - 1;
    let mantissa = b % SUB;
    // u128 keeps the top bucket's bound (2^64 - 1) from overflowing.
    ((((SUB + mantissa + 1) as u128) << exp) - 1) as u64
}

/// A deterministic fixed-bucket integer histogram (HDR-style: 8 sub-buckets
/// per octave, ≤ 12.5% relative error). Quantiles report the inclusive
/// upper bound of the selected bucket, so they are a pure function of the
/// recorded multiset — identical runs summarize to identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples, ns.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bound_of(b);
            }
        }
        bound_of(HIST_BUCKETS - 1)
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The samples recorded since `prev` (bucket-wise subtraction); `prev`
    /// must be an earlier snapshot of this histogram.
    pub fn since(&self, prev: &LatencyHist) -> LatencyHist {
        let mut out = LatencyHist::new();
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i] - prev.buckets[i];
        }
        out.count = self.count - prev.count;
        out.sum = self.sum - prev.sum;
        out
    }

    /// Five-number summary (count, mean, p50/p90/p99, max). The maximum is
    /// the upper bound of the highest non-empty bucket.
    pub fn summary(&self) -> HistogramSummary {
        let max_ns = self
            .buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(b, _)| bound_of(b))
            .unwrap_or(0);
        HistogramSummary {
            count: self.count,
            mean_ns: self.sum.checked_div(self.count).unwrap_or(0),
            p50_ns: self.quantile(0.5),
            p90_ns: self.quantile(0.9),
            p99_ns: self.quantile(0.99),
            max_ns,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-phase accumulator and the operation profile
// ---------------------------------------------------------------------------

/// What one phase accumulated: exclusive virtual time, verbs, round trips,
/// wire bytes, plus an episode-duration histogram (inclusive per entry).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseAcc {
    /// Exclusive virtual nanoseconds charged while this phase was active.
    pub ns: u64,
    /// Verbs issued while this phase was active.
    pub verbs: u64,
    /// Round trips charged while this phase was active.
    pub rtts: u64,
    /// Wire bytes charged while this phase was active.
    pub wire_bytes: u64,
    /// Times the phase was entered (episodes).
    pub episodes: u64,
    /// Inclusive per-episode duration histogram, ns.
    pub hist: LatencyHist,
}

impl PhaseAcc {
    fn merge(&mut self, other: &PhaseAcc) {
        self.ns += other.ns;
        self.verbs += other.verbs;
        self.rtts += other.rtts;
        self.wire_bytes += other.wire_bytes;
        self.episodes += other.episodes;
        self.hist.merge(&other.hist);
    }

    fn since(&self, prev: &PhaseAcc) -> PhaseAcc {
        PhaseAcc {
            ns: self.ns - prev.ns,
            verbs: self.verbs - prev.verbs,
            rtts: self.rtts - prev.rtts,
            wire_bytes: self.wire_bytes - prev.wire_bytes,
            episodes: self.episodes - prev.episodes,
            hist: self.hist.since(&prev.hist),
        }
    }
}

/// The full phase/retry attribution a client accumulated.
///
/// Kept on the endpoint and always on (integer adds on the hot path), so
/// profiles exist even when event tracing is disabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpProfile {
    phases: [PhaseAcc; NUM_PHASES],
    retries: [u64; NUM_RETRY_CAUSES],
}

impl OpProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `dt` exclusive nanoseconds to `phase`.
    pub fn add_time(&mut self, phase: Phase, dt: u64) {
        self.phases[phase.idx()].ns += dt;
    }

    /// Charges a verb batch (`verbs` NIC work requests, `rtts` round trips,
    /// `wire_bytes` on the wire) to `phase`.
    pub fn add_verb(&mut self, phase: Phase, verbs: u64, rtts: u64, wire_bytes: u64) {
        let acc = &mut self.phases[phase.idx()];
        acc.verbs += verbs;
        acc.rtts += rtts;
        acc.wire_bytes += wire_bytes;
    }

    /// Records one completed episode of `phase` lasting `dur_ns` inclusive.
    pub fn episode(&mut self, phase: Phase, dur_ns: u64) {
        let acc = &mut self.phases[phase.idx()];
        acc.episodes += 1;
        acc.hist.record(dur_ns);
    }

    /// Records a retry attributed to `cause`.
    pub fn retry(&mut self, cause: RetryCause) {
        self.retries[cause.idx()] += 1;
    }

    /// The accumulator for `phase`.
    pub fn phase(&self, phase: Phase) -> &PhaseAcc {
        &self.phases[phase.idx()]
    }

    /// Retries recorded for `cause`.
    pub fn retry_count(&self, cause: RetryCause) -> u64 {
        self.retries[cause.idx()]
    }

    /// Total retries across all causes.
    pub fn retries_total(&self) -> u64 {
        self.retries.iter().sum()
    }

    /// Adds another profile into this one.
    pub fn merge(&mut self, other: &OpProfile) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        for (a, b) in self.retries.iter_mut().zip(other.retries.iter()) {
            *a += b;
        }
    }

    /// What accumulated since `prev` (an earlier snapshot of this profile).
    pub fn since(&self, prev: &OpProfile) -> OpProfile {
        let mut out = OpProfile::new();
        for (i, o) in out.phases.iter_mut().enumerate() {
            *o = self.phases[i].since(&prev.phases[i]);
        }
        for (i, o) in out.retries.iter_mut().enumerate() {
            *o = self.retries[i] - prev.retries[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at {v}: {prev} -> {b}");
            assert!(v <= bound_of(b), "{v} above bound {}", bound_of(b));
            if b > 0 {
                assert!(v > bound_of(b - 1), "{v} within previous bucket");
            }
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [100u64, 1_000, 50_000, 3_000_000, u64::MAX / 2] {
            let ub = bound_of(bucket_of(v));
            assert!(ub >= v);
            assert!((ub - v) as f64 <= 0.125 * v as f64 + 1.0, "{v} -> {ub}");
        }
    }

    #[test]
    fn quantiles_and_summary() {
        let mut h = LatencyHist::new();
        for v in 1..=100u64 {
            h.record(v * 1_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        // Bucket upper bounds at most 12.5% above the exact quantile.
        assert!(s.p50_ns >= 50_000 && s.p50_ns <= 57_000, "{}", s.p50_ns);
        assert!(s.p90_ns >= 90_000 && s.p90_ns <= 102_000, "{}", s.p90_ns);
        assert!(s.p99_ns >= 99_000 && s.p99_ns <= 112_000, "{}", s.p99_ns);
        assert!(s.max_ns >= 100_000);
        assert_eq!(s.mean_ns, 50_500);
        assert_eq!(LatencyHist::new().summary(), HistogramSummary::default());
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for v in [10u64, 200, 3_000, 44_000] {
            a.record(v);
        }
        let snap = a.clone();
        for v in [7u64, 900_000] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.since(&snap), b);
        let mut m = snap.clone();
        m.merge(&b);
        assert_eq!(m, a);
    }

    #[test]
    fn profile_attributes_and_deltas() {
        let mut p = OpProfile::new();
        p.add_time(Phase::Traversal, 5_000);
        p.add_verb(Phase::Traversal, 1, 1, 512);
        p.episode(Phase::Traversal, 5_000);
        p.retry(RetryCause::LockConflict);
        let snap = p.clone();
        p.add_time(Phase::LeafRead, 2_000);
        p.add_verb(Phase::LeafRead, 1, 1, 256);
        p.episode(Phase::LeafRead, 2_000);
        p.retry(RetryCause::LockConflict);
        p.retry(RetryCause::VersionMismatch);

        let d = p.since(&snap);
        assert_eq!(d.phase(Phase::Traversal).ns, 0);
        assert_eq!(d.phase(Phase::LeafRead).ns, 2_000);
        assert_eq!(d.phase(Phase::LeafRead).verbs, 1);
        assert_eq!(d.retry_count(RetryCause::LockConflict), 1);
        assert_eq!(d.retry_count(RetryCause::VersionMismatch), 1);
        assert_eq!(d.retries_total(), 2);

        let mut m = snap.clone();
        m.merge(&d);
        assert_eq!(m, p);
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_PHASES);
        let mut causes: Vec<&str> = RetryCause::ALL.iter().map(|c| c.as_str()).collect();
        causes.sort_unstable();
        causes.dedup();
        assert_eq!(causes.len(), NUM_RETRY_CAUSES);
    }
}
