//! Structured span/event tracing on the virtual clock.
//!
//! Each index operation opens a *span*; every verb the operation issues (and
//! every fault injected into it) is recorded as an *event* attributed to the
//! innermost open span. All timestamps are virtual-clock nanoseconds, so a
//! trace is a pure function of the workload seed: two identical runs export
//! byte-identical JSONL.
//!
//! Events live in a bounded per-client ring buffer; when it overflows the
//! oldest events are dropped (and counted), never the newest — the tail of a
//! run is what failure reports need.

use std::collections::VecDeque;

use crate::json::Json;

/// What one trace event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An operation span opened.
    SpanBegin {
        /// Operation name (`search`, `insert`, ...).
        op: &'static str,
        /// The key the operation targets.
        key: u64,
    },
    /// An operation span closed.
    SpanEnd {
        /// Whether the operation reported success.
        ok: bool,
    },
    /// A verb issued through the endpoint.
    Verb {
        /// Verb name (`read`, `write`, `cas`, `masked_cas`, `faa`, `alloc`).
        verb: &'static str,
        /// Target memory node.
        mn: u16,
        /// Packed target address.
        addr: u64,
        /// Wire bytes charged (payload + per-message overhead).
        wire_bytes: u64,
        /// NIC work requests posted (doorbell batches > 1).
        msgs: u64,
        /// Virtual nanoseconds the verb took (including injected delay).
        dur_ns: u64,
    },
    /// A fault injected by the fault engine.
    Fault {
        /// Fault action name (`delay`, `torn-write`, ...).
        action: &'static str,
        /// Label of the rule that fired.
        label: String,
    },
    /// A typed phase sub-span opened inside the current span.
    PhaseBegin {
        /// Phase name (`traversal`, `lock_acquire`, ...).
        phase: &'static str,
    },
    /// A typed phase sub-span closed.
    PhaseEnd {
        /// Phase name (`traversal`, `lock_acquire`, ...).
        phase: &'static str,
        /// Inclusive episode duration, virtual ns.
        dur_ns: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The span the event belongs to (0 = outside any span).
    pub span: u64,
    /// The causal trace id active when the event was recorded (0 = none).
    /// Minted once at the serve/bench entry point and carried through every
    /// layer an operation touches, so one op's events form one causal tree.
    pub trace: u64,
    /// Monotonic per-client event sequence number.
    pub seq: u64,
    /// Virtual-clock timestamp, nanoseconds.
    pub t_ns: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    fn to_json(&self, client: u32) -> Json {
        let mut pairs = vec![
            ("client", Json::from(client as u64)),
            ("span", Json::from(self.span)),
            ("trace", Json::from(self.trace)),
            ("seq", Json::from(self.seq)),
            ("t_ns", Json::from(self.t_ns)),
        ];
        match &self.kind {
            EventKind::SpanBegin { op, key } => {
                pairs.push(("ev", Json::from("span_begin")));
                pairs.push(("op", Json::from(*op)));
                pairs.push(("key", Json::from(*key)));
            }
            EventKind::SpanEnd { ok } => {
                pairs.push(("ev", Json::from("span_end")));
                pairs.push(("ok", Json::Bool(*ok)));
            }
            EventKind::Verb {
                verb,
                mn,
                addr,
                wire_bytes,
                msgs,
                dur_ns,
            } => {
                pairs.push(("ev", Json::from("verb")));
                pairs.push(("verb", Json::from(*verb)));
                pairs.push(("mn", Json::from(*mn as u64)));
                pairs.push(("addr", Json::from(*addr)));
                pairs.push(("wire_bytes", Json::from(*wire_bytes)));
                pairs.push(("msgs", Json::from(*msgs)));
                pairs.push(("dur_ns", Json::from(*dur_ns)));
            }
            EventKind::Fault { action, label } => {
                pairs.push(("ev", Json::from("fault")));
                pairs.push(("action", Json::from(*action)));
                pairs.push(("label", Json::from(label.as_str())));
            }
            EventKind::PhaseBegin { phase } => {
                pairs.push(("ev", Json::from("phase_begin")));
                pairs.push(("phase", Json::from(*phase)));
            }
            EventKind::PhaseEnd { phase, dur_ns } => {
                pairs.push(("ev", Json::from("phase_end")));
                pairs.push(("phase", Json::from(*phase)));
                pairs.push(("dur_ns", Json::from(*dur_ns)));
            }
        }
        Json::obj(pairs)
    }
}

/// A bounded, per-client span/event recorder.
#[derive(Debug)]
pub struct Tracer {
    client: u32,
    capacity: usize,
    events: VecDeque<Event>,
    open: Vec<u64>,
    next_span: u64,
    next_seq: u64,
    dropped: u64,
    trace: u64,
}

impl Tracer {
    /// Creates a tracer for `client` holding at most `capacity` events.
    pub fn new(client: u32, capacity: usize) -> Self {
        Tracer {
            client,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            open: Vec::new(),
            next_span: 0,
            next_seq: 0,
            dropped: 0,
            trace: 0,
        }
    }

    /// Sets the causal trace id attached to subsequent events (0 = none).
    pub fn set_trace(&mut self, id: u64) {
        self.trace = id;
    }

    /// The currently active causal trace id.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// The client id events are attributed to.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, span: u64, t_ns: u64, kind: EventKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(Event {
            span,
            trace: self.trace,
            seq,
            t_ns,
            kind,
        });
    }

    fn current_span(&self) -> u64 {
        self.open.last().copied().unwrap_or(0)
    }

    /// Opens a span; returns its id (spans may nest).
    pub fn begin_span(&mut self, op: &'static str, key: u64, now_ns: u64) -> u64 {
        self.next_span += 1;
        let id = self.next_span;
        self.open.push(id);
        self.push(id, now_ns, EventKind::SpanBegin { op, key });
        id
    }

    /// Closes span `id` (and any unclosed spans nested inside it).
    pub fn end_span(&mut self, id: u64, ok: bool, now_ns: u64) {
        while let Some(top) = self.open.pop() {
            if top == id {
                break;
            }
        }
        self.push(id, now_ns, EventKind::SpanEnd { ok });
    }

    /// Records a verb event attributed to the innermost open span.
    #[allow(clippy::too_many_arguments)]
    pub fn verb(
        &mut self,
        t_start_ns: u64,
        dur_ns: u64,
        verb: &'static str,
        mn: u16,
        addr: u64,
        wire_bytes: u64,
        msgs: u64,
    ) {
        let span = self.current_span();
        self.push(
            span,
            t_start_ns,
            EventKind::Verb {
                verb,
                mn,
                addr,
                wire_bytes,
                msgs,
                dur_ns,
            },
        );
    }

    /// Records an injected fault attributed to the innermost open span.
    pub fn fault(&mut self, t_ns: u64, action: &'static str, label: String) {
        let span = self.current_span();
        self.push(span, t_ns, EventKind::Fault { action, label });
    }

    /// Records a phase sub-span opening inside the innermost open span.
    pub fn phase_begin(&mut self, t_ns: u64, phase: &'static str) {
        let span = self.current_span();
        self.push(span, t_ns, EventKind::PhaseBegin { phase });
    }

    /// Records a phase sub-span closing (duration carried on the event, so
    /// aggregation survives a dropped `PhaseBegin`).
    pub fn phase_end(&mut self, t_ns: u64, phase: &'static str, dur_ns: u64) {
        let span = self.current_span();
        self.push(span, t_ns, EventKind::PhaseEnd { phase, dur_ns });
    }

    /// Returns the buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Exports the buffer as JSON Lines (one event per line, oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json(self.client).to_compact());
            out.push('\n');
        }
        out
    }

    /// Reconstructs per-span summaries from the buffered events.
    ///
    /// Only spans whose `SpanBegin` is still in the ring are reported; a
    /// span without a matching `SpanEnd` (crashed client, truncated run) is
    /// reported with `ok == false` and its duration up to its last event.
    pub fn spans(&self) -> Vec<SpanSummary> {
        let mut spans: Vec<SpanSummary> = Vec::new();
        let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::SpanBegin { op, key } => {
                    index.insert(ev.span, spans.len());
                    spans.push(SpanSummary {
                        id: ev.span,
                        trace: ev.trace,
                        op,
                        key: *key,
                        start_ns: ev.t_ns,
                        end_ns: ev.t_ns,
                        ok: false,
                        closed: false,
                        verbs: Vec::new(),
                        faults: 0,
                        wire_bytes: 0,
                        phase_ns: Vec::new(),
                    });
                }
                EventKind::SpanEnd { ok } => {
                    if let Some(&i) = index.get(&ev.span) {
                        spans[i].end_ns = ev.t_ns;
                        spans[i].ok = *ok;
                        spans[i].closed = true;
                    }
                }
                EventKind::Verb {
                    verb,
                    mn,
                    wire_bytes,
                    dur_ns,
                    ..
                } => {
                    if let Some(&i) = index.get(&ev.span) {
                        let s = &mut spans[i];
                        s.end_ns = s.end_ns.max(ev.t_ns + dur_ns);
                        s.wire_bytes += wire_bytes;
                        s.verbs.push(SpanVerb {
                            verb,
                            mn: *mn,
                            wire_bytes: *wire_bytes,
                            dur_ns: *dur_ns,
                        });
                    }
                }
                EventKind::Fault { .. } => {
                    if let Some(&i) = index.get(&ev.span) {
                        spans[i].faults += 1;
                    }
                }
                EventKind::PhaseBegin { .. } => {}
                EventKind::PhaseEnd { phase, dur_ns } => {
                    if let Some(&i) = index.get(&ev.span) {
                        let s = &mut spans[i];
                        s.end_ns = s.end_ns.max(ev.t_ns);
                        match s.phase_ns.iter_mut().find(|(p, _)| p == phase) {
                            Some((_, ns)) => *ns += dur_ns,
                            None => s.phase_ns.push((phase, *dur_ns)),
                        }
                    }
                }
            }
        }
        for s in &mut spans {
            s.phase_ns.sort_unstable_by_key(|(p, _)| *p);
        }
        spans
    }
}

/// One verb inside a reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanVerb {
    /// Verb name.
    pub verb: &'static str,
    /// Target memory node.
    pub mn: u16,
    /// Wire bytes charged.
    pub wire_bytes: u64,
    /// Virtual duration, ns.
    pub dur_ns: u64,
}

/// A reconstructed operation span.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span id.
    pub id: u64,
    /// Causal trace id active at span open (0 = none).
    pub trace: u64,
    /// Operation name.
    pub op: &'static str,
    /// Target key.
    pub key: u64,
    /// Open timestamp, virtual ns.
    pub start_ns: u64,
    /// Close timestamp (or last event) in virtual ns.
    pub end_ns: u64,
    /// Whether the operation reported success.
    pub ok: bool,
    /// Whether the span's end event was observed.
    pub closed: bool,
    /// Verbs issued inside the span, in order.
    pub verbs: Vec<SpanVerb>,
    /// Faults injected inside the span.
    pub faults: u64,
    /// Total wire bytes of the span's verbs.
    pub wire_bytes: u64,
    /// Inclusive nanoseconds per phase sub-span, sorted by phase name.
    pub phase_ns: Vec<(&'static str, u64)>,
}

impl SpanSummary {
    /// Span duration in virtual nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_attribute_verbs_and_faults() {
        let mut t = Tracer::new(3, 1024);
        let s1 = t.begin_span("search", 42, 1_000);
        t.verb(1_000, 2_500, "read", 0, 0x100, 300, 1);
        t.fault(3_500, "delay", "spike".into());
        t.verb(3_500, 2_500, "read", 1, 0x200, 80, 1);
        t.end_span(s1, true, 6_000);
        let s2 = t.begin_span("insert", 7, 6_000);
        t.verb(6_000, 2_500, "cas", 0, 0x300, 64, 1);
        t.end_span(s2, false, 9_000);

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, "search");
        assert_eq!(spans[0].verbs.len(), 2);
        assert_eq!(spans[0].faults, 1);
        assert_eq!(spans[0].wire_bytes, 380);
        assert_eq!(spans[0].dur_ns(), 5_000);
        assert!(spans[0].ok && spans[0].closed);
        assert!(!spans[1].ok);
        assert_eq!(spans[1].verbs[0].verb, "cas");
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut t = Tracer::new(0, 4);
        let s = t.begin_span("scan", 0, 0);
        for i in 0..10 {
            t.verb(i * 100, 100, "read", 0, i, 64, 1);
        }
        t.end_span(s, true, 2_000);
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 8);
        // The newest events survive.
        let last = t.events().last().unwrap();
        assert_eq!(last.kind, EventKind::SpanEnd { ok: true });
    }

    #[test]
    fn jsonl_is_deterministic_and_parseable() {
        let mk = || {
            let mut t = Tracer::new(1, 64);
            let s = t.begin_span("update", 9, 50);
            t.verb(50, 2_500, "masked_cas", 0, 0xABC, 80, 1);
            t.end_span(s, true, 2_550);
            t.to_jsonl()
        };
        let a = mk();
        assert_eq!(a, mk());
        for line in a.lines() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("client").unwrap().as_f64(), Some(1.0));
        }
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn nested_spans_attribute_to_innermost() {
        let mut t = Tracer::new(0, 64);
        let outer = t.begin_span("insert", 1, 0);
        t.verb(0, 100, "read", 0, 1, 64, 1);
        let inner = t.begin_span("split", 1, 100);
        t.verb(100, 100, "write", 0, 2, 64, 1);
        t.end_span(inner, true, 200);
        t.verb(200, 100, "cas", 0, 3, 64, 1);
        t.end_span(outer, true, 300);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].verbs.len(), 2, "outer gets read + cas");
        assert_eq!(spans[1].verbs.len(), 1, "inner gets write");
    }

    #[test]
    fn phase_subspans_aggregate_per_span() {
        let mut t = Tracer::new(0, 64);
        let s = t.begin_span("search", 3, 0);
        t.phase_begin(0, "traversal");
        t.verb(0, 2_000, "read", 0, 1, 64, 1);
        t.phase_end(2_000, "traversal", 2_000);
        t.phase_begin(2_000, "leaf_read");
        t.verb(2_000, 1_000, "read", 0, 2, 64, 1);
        t.phase_end(3_000, "leaf_read", 1_000);
        t.phase_begin(3_000, "traversal");
        t.phase_end(3_500, "traversal", 500);
        t.end_span(s, true, 3_500);

        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].phase_ns,
            vec![("leaf_read", 1_000), ("traversal", 2_500)]
        );
        // JSONL carries the typed events.
        let jsonl = t.to_jsonl();
        assert!(jsonl.contains("\"ev\":\"phase_begin\""));
        assert!(jsonl.contains("\"ev\":\"phase_end\""));
        assert!(jsonl.contains("\"phase\":\"leaf_read\""));
    }

    #[test]
    fn unclosed_span_reported_open() {
        let mut t = Tracer::new(0, 64);
        t.begin_span("delete", 5, 10);
        t.verb(10, 90, "read", 0, 1, 64, 1);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].closed);
        assert_eq!(spans[0].end_ns, 100);
    }

    #[test]
    fn dur_ns_on_unclosed_spans() {
        // A span with events after its begin reports the duration up to its
        // last event; a bare begin reports zero — never an underflow.
        let mut t = Tracer::new(0, 64);
        t.begin_span("update", 1, 500);
        t.verb(500, 250, "read", 0, 1, 64, 1);
        t.begin_span("split", 1, 900);
        let spans = t.spans();
        assert!(!spans[0].closed && !spans[1].closed);
        assert_eq!(spans[0].dur_ns(), 250);
        assert_eq!(spans[1].dur_ns(), 0);
    }

    #[test]
    fn trace_ids_flow_to_events_and_spans() {
        let mut t = Tracer::new(2, 64);
        t.set_trace(77);
        assert_eq!(t.trace(), 77);
        let s = t.begin_span("search", 4, 0);
        t.verb(0, 100, "read", 0, 1, 64, 1);
        t.end_span(s, true, 100);
        t.set_trace(78);
        let s2 = t.begin_span("search", 5, 100);
        t.end_span(s2, false, 200);
        let spans = t.spans();
        assert_eq!(spans[0].trace, 77);
        assert_eq!(spans[1].trace, 78);
        assert!(t.to_jsonl().contains("\"trace\":77"));
        assert!(t.events().all(|e| e.trace == 77 || e.trace == 78));
    }
}
