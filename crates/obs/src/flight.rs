//! The flight recorder: a bounded black box of each client's last moments.
//!
//! Event tracing ([`crate::trace::Tracer`]) is opt-in and verbose; the
//! flight recorder is always on and cheap — a fixed-capacity ring of the
//! last N coarse events per client (operation begin/end, whole-op retries,
//! injected faults, crash points, control-plane notes). When a test fails,
//! a client panics, or the perf gate trips, harnesses dump the rings to
//! `flightdump_*.json` so the failure report carries the moments *before*
//! the failure, not just the aggregate after it.
//!
//! Timestamps are virtual-clock nanoseconds; a dump is a pure function of
//! the seed — byte-identical across identical runs.

use std::collections::VecDeque;

use crate::json::Json;

/// Default ring capacity per client.
pub const DEFAULT_CAPACITY: usize = 64;

/// One coarse black-box event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightKind {
    /// An operation started.
    OpBegin {
        /// Operation name.
        op: &'static str,
        /// Target key.
        key: u64,
        /// Causal trace id active at the time (0 = none).
        trace: u64,
    },
    /// An operation completed.
    OpEnd {
        /// Whether it reported success.
        ok: bool,
        /// Virtual duration, ns.
        dur_ns: u64,
    },
    /// A whole-operation retry.
    Retry {
        /// Root-cause name (`lock_conflict`, ...).
        cause: &'static str,
    },
    /// An injected fault.
    Fault {
        /// Fault action name.
        action: &'static str,
        /// Label of the rule that fired.
        label: String,
    },
    /// A labeled crash point was passed (or triggered).
    CrashPoint {
        /// The crash-point label.
        label: String,
    },
    /// A free-form control-plane note (migration steps, gate events).
    Note {
        /// The note text.
        label: String,
    },
}

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual-clock timestamp, ns.
    pub t_ns: u64,
    /// The payload.
    pub kind: FlightKind,
}

impl FlightEvent {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("t_ns", Json::from(self.t_ns))];
        match &self.kind {
            FlightKind::OpBegin { op, key, trace } => {
                pairs.push(("ev", Json::from("op_begin")));
                pairs.push(("op", Json::from(*op)));
                pairs.push(("key", Json::from(*key)));
                pairs.push(("trace", Json::from(*trace)));
            }
            FlightKind::OpEnd { ok, dur_ns } => {
                pairs.push(("ev", Json::from("op_end")));
                pairs.push(("ok", Json::Bool(*ok)));
                pairs.push(("dur_ns", Json::from(*dur_ns)));
            }
            FlightKind::Retry { cause } => {
                pairs.push(("ev", Json::from("retry")));
                pairs.push(("cause", Json::from(*cause)));
            }
            FlightKind::Fault { action, label } => {
                pairs.push(("ev", Json::from("fault")));
                pairs.push(("action", Json::from(*action)));
                pairs.push(("label", Json::from(label.as_str())));
            }
            FlightKind::CrashPoint { label } => {
                pairs.push(("ev", Json::from("crash_point")));
                pairs.push(("label", Json::from(label.as_str())));
            }
            FlightKind::Note { label } => {
                pairs.push(("ev", Json::from("note")));
                pairs.push(("label", Json::from(label.as_str())));
            }
        }
        Json::obj(pairs)
    }
}

/// A bounded per-client black-box ring. Overflow drops the oldest events
/// (and counts them) — the tail of a run is what a failure report needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, t_ns: u64, kind: FlightKind) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent { t_ns, kind });
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes this ring as one client's dump entry.
    pub fn to_json(&self, client: u32) -> Json {
        Json::obj(vec![
            ("client", Json::from(client as u64)),
            ("dropped", Json::from(self.dropped)),
            (
                "events",
                Json::Arr(self.ring.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

/// Assembles a full dump document from per-client rings.
pub fn dump_document(name: &str, reason: &str, clients: &[(u32, &FlightRecorder)]) -> Json {
    Json::obj(vec![
        ("schema", Json::from(1u64)),
        ("name", Json::from(name)),
        ("reason", Json::from(reason)),
        (
            "clients",
            Json::Arr(clients.iter().map(|(id, r)| r.to_json(*id)).collect()),
        ),
    ])
}

/// Writes a dump document to `flightdump_<name>.json` under `$BENCH_OUT_DIR`
/// (the working directory when unset). Returns the path written, or the IO
/// error message.
pub fn write_dump(name: &str, doc: &Json) -> Result<String, String> {
    let file = format!("flightdump_{name}.json");
    let path = match std::env::var("BENCH_OUT_DIR") {
        Ok(dir) if !dir.is_empty() => format!("{dir}/{file}"),
        _ => file,
    };
    std::fs::write(&path, doc.to_pretty()).map_err(|e| format!("{path}: {e}"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlightRecorder {
        let mut r = FlightRecorder::new(8);
        r.push(
            100,
            FlightKind::OpBegin {
                op: "search",
                key: 42,
                trace: 7,
            },
        );
        r.push(150, FlightKind::Retry { cause: "lock_conflict" });
        r.push(
            200,
            FlightKind::Fault {
                action: "delay",
                label: "spike".into(),
            },
        );
        r.push(300, FlightKind::OpEnd { ok: true, dur_ns: 200 });
        r.push(
            400,
            FlightKind::CrashPoint {
                label: "part.migrate.locked".into(),
            },
        );
        r
    }

    #[test]
    fn ring_bound_drops_oldest_and_counts() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.push(i, FlightKind::Note { label: format!("n{i}") });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.events().next().unwrap().t_ns, 7);
    }

    #[test]
    fn dump_is_deterministic_and_parseable() {
        let a = sample();
        let b = sample();
        let doc = dump_document("unit", "test failure", &[(0, &a), (1, &b)]);
        let text = doc.to_pretty();
        assert_eq!(
            text,
            dump_document("unit", "test failure", &[(0, &sample()), (1, &sample())]).to_pretty()
        );
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("test failure"));
        let clients = v.get("clients").unwrap().as_arr().unwrap();
        assert_eq!(clients.len(), 2);
        let evs = clients[0].get("events").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].get("ev").unwrap().as_str(), Some("op_begin"));
        assert_eq!(evs[0].get("trace").unwrap().as_f64(), Some(7.0));
        assert_eq!(evs[4].get("ev").unwrap().as_str(), Some("crash_point"));
    }
}
