//! The unified metrics registry.
//!
//! A [`MetricsSnapshot`] gathers every counter the stack keeps — per-client
//! verb statistics, cache hits/misses, hotspot-buffer hit rate, allocator
//! bytes, per-MN traffic — behind one deterministic, labeled namespace with
//! Prometheus-text and JSON exporters. Keys are sorted, so two snapshots of
//! identical runs serialize to identical bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// A metric identity: name plus sorted `label=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, `_total` suffix
    /// for counters).
    pub name: String,
    /// Sorted label set.
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    /// Builds a key from a name and `(label, value)` pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{}{{{inner}}}", self.name)
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and newline must be backslash-escaped.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A six-number summary of a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Mean, ns.
    pub mean_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 90th percentile, ns.
    pub p90_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

/// A point-in-time view of every metric the run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the labeled counter (creating it at 0).
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self.counters.entry(MetricKey::new(name, labels)).or_insert(0) += v;
    }

    /// Sets the labeled gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Sets the labeled histogram summary.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: HistogramSummary) {
        self.histograms.insert(MetricKey::new(name, labels), h);
    }

    /// Reads a counter back (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge back.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Reads a histogram summary back.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSummary> {
        self.histograms.get(&MetricKey::new(name, labels)).copied()
    }

    /// Sums a counter over every label set it appears with.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Enumerates a counter's `(label_value, count)` pairs for one label
    /// key, in sorted key order. Label sets missing `label` are skipped.
    /// Lets report layers flatten e.g. `part_ops_total{part="3"}` into
    /// stable per-partition scalar keys without knowing the cardinality.
    pub fn counter_labeled_values(&self, name: &str, label: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(k, v)| k.labels.get(label).map(|lv| (lv.clone(), *v)))
            .collect()
    }

    /// Merges another snapshot: counters add, gauges and histograms take
    /// the other side's value on key collisions.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(k.clone(), *v);
        }
    }

    /// Renders the Prometheus text exposition format (sorted, deterministic).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{} {v}", k.render());
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{} {v}", k.render());
        }
        for (k, h) in &self.histograms {
            let base = &k.name;
            let labels: Vec<(&str, &str)> = k
                .labels
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            for (suffix, v) in [
                ("_count", h.count),
                ("_mean_ns", h.mean_ns),
                ("_p50_ns", h.p50_ns),
                ("_p90_ns", h.p90_ns),
                ("_p99_ns", h.p99_ns),
                ("_max_ns", h.max_ns),
            ] {
                let kk = MetricKey::new(&format!("{base}{suffix}"), &labels);
                let _ = writeln!(out, "{} {v}", kk.render());
            }
        }
        out
    }

    /// Converts to a JSON value (sorted keys, deterministic).
    pub fn to_json_value(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.render(), Json::from(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.render(), Json::Num(*v)))
            .collect();
        let hists = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.render(),
                    Json::obj(vec![
                        ("count", Json::from(h.count)),
                        ("mean_ns", Json::from(h.mean_ns)),
                        ("p50_ns", Json::from(h.p50_ns)),
                        ("p90_ns", Json::from(h.p90_ns)),
                        ("p99_ns", Json::from(h.p99_ns)),
                        ("max_ns", Json::from(h.max_ns)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(hists)),
        ])
    }

    /// Serializes to pretty JSON (byte-identical for identical snapshots).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counter("verbs_total", &[("verb", "read")], 10);
        s.counter("verbs_total", &[("verb", "write")], 4);
        s.counter("verbs_total", &[("verb", "read")], 5); // accumulates
        s.gauge("cache_bytes", &[("cn", "0")], 1234.0);
        s.histogram(
            "op_latency",
            &[],
            HistogramSummary {
                count: 100,
                mean_ns: 3_000,
                p50_ns: 2_500,
                p90_ns: 7_000,
                p99_ns: 9_000,
                max_ns: 12_000,
            },
        );
        s
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let s = sample();
        assert_eq!(s.counter_value("verbs_total", &[("verb", "read")]), 15);
        assert_eq!(s.counter_sum("verbs_total"), 19);
        assert_eq!(
            s.counter_labeled_values("verbs_total", "verb"),
            vec![("read".to_string(), 15), ("write".to_string(), 4)]
        );
        assert!(s.counter_labeled_values("verbs_total", "mn").is_empty());
        assert_eq!(s.gauge_value("cache_bytes", &[("cn", "0")]), Some(1234.0));
        assert_eq!(s.counter_value("missing", &[]), 0);
    }

    #[test]
    fn prometheus_text_is_sorted_and_labeled() {
        let text = sample().to_prometheus();
        let read_pos = text.find("verbs_total{verb=\"read\"} 15").unwrap();
        let write_pos = text.find("verbs_total{verb=\"write\"} 4").unwrap();
        assert!(read_pos < write_pos, "sorted label order");
        assert!(text.contains("cache_bytes{cn=\"0\"} 1234"));
        assert!(text.contains("op_latency_p99_ns 9000"));
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let s = sample();
        let j = s.to_json();
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("verbs_total{verb=\"read\"}")
                .unwrap()
                .as_f64(),
            Some(15.0)
        );
    }

    #[test]
    fn identical_snapshots_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
        assert_eq!(sample().to_prometheus(), sample().to_prometheus());
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        let mut s = MetricsSnapshot::new();
        s.counter("frames_total", &[("err", "bad \"quote\"")], 1);
        s.counter("frames_total", &[("err", "back\\slash")], 2);
        s.counter("frames_total", &[("err", "two\nlines")], 3);
        let text = s.to_prometheus();
        assert!(text.contains("frames_total{err=\"bad \\\"quote\\\"\"} 1"));
        assert!(text.contains("frames_total{err=\"back\\\\slash\"} 2"));
        assert!(text.contains("frames_total{err=\"two\\nlines\"} 3"));
        // Every exposition line stays a single physical line.
        assert_eq!(text.lines().count(), 3);
        // The JSON exporter keeps the raw value intact through its own
        // escaping and round-trips.
        let v = crate::json::parse(&s.to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("frames_total{err=\"two\\nlines\"}")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn merge_adds_counters_and_overwrites_gauges() {
        let mut a = sample();
        let mut b = MetricsSnapshot::new();
        b.counter("verbs_total", &[("verb", "read")], 1);
        b.gauge("cache_bytes", &[("cn", "0")], 99.0);
        a.merge(&b);
        assert_eq!(a.counter_value("verbs_total", &[("verb", "read")]), 16);
        assert_eq!(a.gauge_value("cache_bytes", &[("cn", "0")]), Some(99.0));
    }
}
