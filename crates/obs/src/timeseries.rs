//! Windowed time-series telemetry on the virtual clock.
//!
//! End-of-run aggregates hide temporal phenomena: a migration stall or a
//! shed-storm averages away over a whole run. A [`TimeSeries`] slices the
//! virtual clock into fixed-width windows (default 100 µs of simulated
//! time) and accumulates, per window, the same quantities the aggregate
//! profile keeps — per-phase nanoseconds, verbs/round-trips/wire bytes,
//! retry causes, completed operations and their latency, serve-layer
//! shed/served decisions and completion-queue depth — plus a sparse list of
//! timestamped control-plane events (migration lock/copy/publish, crash
//! points).
//!
//! Like everything in this crate the series is pure integer bookkeeping on
//! the virtual clock: identical runs produce byte-identical JSON. Windows
//! are keyed by index in a sorted map, so sparse activity (a client idle
//! for a stretch of virtual time) costs nothing and iteration order is
//! deterministic.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::phase::{Phase, RetryCause, NUM_PHASES, NUM_RETRY_CAUSES};

/// Default window width: 100 µs of virtual time.
pub const DEFAULT_WINDOW_NS: u64 = 100_000;

/// What one fixed-width window accumulated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Window {
    /// Operations completed in this window (counted at completion time).
    pub ops: u64,
    /// Of those, operations that reported success.
    pub oks: u64,
    /// Sum of completed-op latencies, ns (mean = `lat_sum_ns / ops`).
    pub lat_sum_ns: u64,
    /// Largest completed-op latency observed in this window, ns.
    pub lat_max_ns: u64,
    /// NIC work requests issued in this window.
    pub verbs: u64,
    /// Round trips charged in this window.
    pub rtts: u64,
    /// Wire bytes charged in this window.
    pub wire_bytes: u64,
    /// Exclusive virtual nanoseconds per phase spent inside this window.
    pub phase_ns: [u64; NUM_PHASES],
    /// Retries recorded in this window, by root cause.
    pub retries: [u64; NUM_RETRY_CAUSES],
    /// Serve-layer requests shed in this window.
    pub shed: u64,
    /// Serve-layer requests served in this window.
    pub served: u64,
    /// Deepest completion-queue depth observed in this window.
    pub cq_depth_max: u64,
}

impl Window {
    fn merge(&mut self, o: &Window) {
        self.ops += o.ops;
        self.oks += o.oks;
        self.lat_sum_ns += o.lat_sum_ns;
        self.lat_max_ns = self.lat_max_ns.max(o.lat_max_ns);
        self.verbs += o.verbs;
        self.rtts += o.rtts;
        self.wire_bytes += o.wire_bytes;
        for (a, b) in self.phase_ns.iter_mut().zip(o.phase_ns.iter()) {
            *a += b;
        }
        for (a, b) in self.retries.iter_mut().zip(o.retries.iter()) {
            *a += b;
        }
        self.shed += o.shed;
        self.served += o.served;
        self.cq_depth_max = self.cq_depth_max.max(o.cq_depth_max);
    }

    /// Counter-wise subtraction for the boundary window shared between two
    /// snapshots. The two maxima are not subtractable; the delta keeps the
    /// later snapshot's value (documented approximation — a boundary window
    /// straddling two measurement phases attributes its maximum to the
    /// later phase).
    fn since(&self, prev: &Window) -> Window {
        let mut w = Window {
            ops: self.ops - prev.ops,
            oks: self.oks - prev.oks,
            lat_sum_ns: self.lat_sum_ns - prev.lat_sum_ns,
            lat_max_ns: self.lat_max_ns,
            verbs: self.verbs - prev.verbs,
            rtts: self.rtts - prev.rtts,
            wire_bytes: self.wire_bytes - prev.wire_bytes,
            shed: self.shed - prev.shed,
            served: self.served - prev.served,
            cq_depth_max: self.cq_depth_max,
            ..Window::default()
        };
        for i in 0..NUM_PHASES {
            w.phase_ns[i] = self.phase_ns[i] - prev.phase_ns[i];
        }
        for i in 0..NUM_RETRY_CAUSES {
            w.retries[i] = self.retries[i] - prev.retries[i];
        }
        w
    }

    fn is_zero(&self) -> bool {
        *self == Window::default()
    }

    fn to_json(&self, idx: u64, window_ns: u64) -> Json {
        let mut pairs = vec![
            ("w", Json::from(idx)),
            ("t_ns", Json::from(idx * window_ns)),
            ("ops", Json::from(self.ops)),
            ("oks", Json::from(self.oks)),
            ("lat_sum_ns", Json::from(self.lat_sum_ns)),
            ("lat_max_ns", Json::from(self.lat_max_ns)),
            ("verbs", Json::from(self.verbs)),
            ("rtts", Json::from(self.rtts)),
            ("wire_bytes", Json::from(self.wire_bytes)),
        ];
        let phases: Vec<(String, Json)> = Phase::ALL
            .iter()
            .filter(|p| self.phase_ns[**p as usize] > 0)
            .map(|p| (p.as_str().to_string(), Json::from(self.phase_ns[*p as usize])))
            .collect();
        pairs.push(("phase_ns", Json::Obj(phases)));
        let retries: Vec<(String, Json)> = RetryCause::ALL
            .iter()
            .filter(|c| self.retries[**c as usize] > 0)
            .map(|c| (c.as_str().to_string(), Json::from(self.retries[*c as usize])))
            .collect();
        pairs.push(("retries", Json::Obj(retries)));
        pairs.push(("shed", Json::from(self.shed)));
        pairs.push(("served", Json::from(self.served)));
        pairs.push(("cq_depth_max", Json::from(self.cq_depth_max)));
        Json::obj(pairs)
    }
}

/// A timestamped control-plane event (migration steps, crash points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsEvent {
    /// Virtual-clock timestamp, ns.
    pub t_ns: u64,
    /// Free-form label, e.g. `migrate.locked part=3 dst=1`.
    pub label: String,
}

/// A fixed-width windowed time series on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window_ns: u64,
    windows: BTreeMap<u64, Window>,
    events: Vec<TsEvent>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(DEFAULT_WINDOW_NS)
    }
}

impl TimeSeries {
    /// Creates an empty series with the given window width (ns, min 1).
    pub fn new(window_ns: u64) -> Self {
        TimeSeries {
            window_ns: window_ns.max(1),
            windows: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The window width, ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.events.is_empty()
    }

    /// Number of materialized (non-empty) windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// The window at index `idx`, if it saw any activity.
    pub fn window(&self, idx: u64) -> Option<&Window> {
        self.windows.get(&idx)
    }

    /// Iterates `(index, window)` pairs in index order.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &Window)> {
        self.windows.iter().map(|(k, w)| (*k, w))
    }

    /// The recorded control-plane events, in recording order.
    pub fn events(&self) -> &[TsEvent] {
        &self.events
    }

    fn win(&mut self, t_ns: u64) -> &mut Window {
        self.windows.entry(t_ns / self.window_ns).or_default()
    }

    /// Charges `dt` nanoseconds of `phase` time starting at `t0_ns`,
    /// splitting across window boundaries.
    pub fn add_time(&mut self, t0_ns: u64, mut dt: u64, phase: Phase) {
        let mut t = t0_ns;
        while dt > 0 {
            let end = (t / self.window_ns + 1) * self.window_ns;
            let take = dt.min(end - t);
            self.win(t).phase_ns[phase as usize] += take;
            t += take;
            dt -= take;
        }
    }

    /// Charges a verb batch issued at `t_ns`.
    pub fn add_verb(&mut self, t_ns: u64, verbs: u64, rtts: u64, wire_bytes: u64) {
        let w = self.win(t_ns);
        w.verbs += verbs;
        w.rtts += rtts;
        w.wire_bytes += wire_bytes;
    }

    /// Records an operation completing at `t_end_ns` after `dur_ns`.
    pub fn record_op(&mut self, t_end_ns: u64, dur_ns: u64, ok: bool) {
        let w = self.win(t_end_ns);
        w.ops += 1;
        w.oks += ok as u64;
        w.lat_sum_ns += dur_ns;
        w.lat_max_ns = w.lat_max_ns.max(dur_ns);
    }

    /// Records a retry attributed to `cause` at `t_ns`.
    pub fn retry(&mut self, t_ns: u64, cause: RetryCause) {
        self.win(t_ns).retries[cause as usize] += 1;
    }

    /// Records a serve-layer shed decision at `t_ns`.
    pub fn shed(&mut self, t_ns: u64) {
        self.win(t_ns).shed += 1;
    }

    /// Records a serve-layer served request at `t_ns`.
    pub fn served(&mut self, t_ns: u64) {
        self.win(t_ns).served += 1;
    }

    /// Records an observed completion-queue depth at `t_ns`.
    pub fn cq_depth(&mut self, t_ns: u64, depth: u64) {
        let w = self.win(t_ns);
        w.cq_depth_max = w.cq_depth_max.max(depth);
    }

    /// Records a control-plane event at `t_ns`.
    pub fn event(&mut self, t_ns: u64, label: impl Into<String>) {
        self.events.push(TsEvent {
            t_ns,
            label: label.into(),
        });
    }

    /// Adds another series into this one. Windows align on the shared
    /// virtual time base (both series must use the same window width);
    /// events concatenate and re-sort by timestamp (stable, so the merge
    /// order of equal-timestamp events is the caller's iteration order).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.window_ns, other.window_ns, "window width mismatch");
        for (k, w) in &other.windows {
            self.windows.entry(*k).or_default().merge(w);
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.t_ns);
    }

    /// What accumulated since `prev` — an earlier snapshot of this series.
    /// Windows subtract counter-wise; `prev`'s events must be a prefix of
    /// this series' events.
    pub fn since(&self, prev: &TimeSeries) -> TimeSeries {
        assert_eq!(self.window_ns, prev.window_ns, "window width mismatch");
        let mut out = TimeSeries::new(self.window_ns);
        for (k, w) in &self.windows {
            let d = match prev.windows.get(k) {
                Some(p) => w.since(p),
                None => w.clone(),
            };
            if !d.is_zero() {
                out.windows.insert(*k, d);
            }
        }
        out.events = self.events[prev.events.len()..].to_vec();
        out
    }

    /// Total operations completed across all windows.
    pub fn total_ops(&self) -> u64 {
        self.windows.values().map(|w| w.ops).sum()
    }

    /// Serializes deterministically: window width, the non-empty windows in
    /// index order, and the event list.
    pub fn to_json(&self) -> Json {
        let windows: Vec<Json> = self
            .windows
            .iter()
            .map(|(k, w)| w.to_json(*k, self.window_ns))
            .collect();
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("t_ns", Json::from(e.t_ns)),
                    ("label", Json::from(e.label.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("window_ns", Json::from(self.window_ns)),
            ("windows", Json::Arr(windows)),
            ("events", Json::Arr(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_splits_across_window_boundaries() {
        let mut ts = TimeSeries::new(100);
        ts.add_time(250, 300, Phase::Traversal); // windows 2,3,4,5
        assert_eq!(ts.window(2).unwrap().phase_ns[Phase::Traversal as usize], 50);
        assert_eq!(ts.window(3).unwrap().phase_ns[Phase::Traversal as usize], 100);
        assert_eq!(ts.window(4).unwrap().phase_ns[Phase::Traversal as usize], 100);
        assert_eq!(ts.window(5).unwrap().phase_ns[Phase::Traversal as usize], 50);
        let total: u64 = ts.windows().map(|(_, w)| w.phase_ns[Phase::Traversal as usize]).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn ops_verbs_and_retries_land_in_their_window() {
        let mut ts = TimeSeries::default();
        ts.add_verb(50_000, 2, 1, 600);
        ts.record_op(150_000, 80_000, true);
        ts.record_op(150_001, 20_000, false);
        ts.retry(150_002, RetryCause::LockConflict);
        ts.shed(250_000);
        ts.served(250_001);
        ts.cq_depth(250_002, 7);
        ts.cq_depth(250_003, 3);

        assert_eq!(ts.window(0).unwrap().verbs, 2);
        let w1 = ts.window(1).unwrap();
        assert_eq!(w1.ops, 2);
        assert_eq!(w1.oks, 1);
        assert_eq!(w1.lat_sum_ns, 100_000);
        assert_eq!(w1.lat_max_ns, 80_000);
        assert_eq!(w1.retries[RetryCause::LockConflict as usize], 1);
        let w2 = ts.window(2).unwrap();
        assert_eq!((w2.shed, w2.served, w2.cq_depth_max), (1, 1, 7));
        assert_eq!(ts.total_ops(), 2);
    }

    #[test]
    fn merge_and_since_compose() {
        let mut a = TimeSeries::new(100);
        a.record_op(50, 10, true);
        a.event(60, "setup");
        let snap = a.clone();
        a.record_op(150, 30, true);
        a.record_op(55, 20, false); // boundary window 0 gains post-snapshot data
        a.event(170, "migrate.locked part=0 dst=1");

        let d = a.since(&snap);
        assert_eq!(d.total_ops(), 2);
        assert_eq!(d.window(0).unwrap().ops, 1);
        assert_eq!(d.window(1).unwrap().ops, 1);
        assert_eq!(d.events().len(), 1);
        assert_eq!(d.events()[0].label, "migrate.locked part=0 dst=1");

        let mut m = snap.clone();
        m.merge(&d);
        assert_eq!(m.total_ops(), a.total_ops());
        assert_eq!(m.events().len(), 2);
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let mk = || {
            let mut ts = TimeSeries::default();
            ts.add_time(10, 250_000, Phase::LeafRead);
            ts.record_op(250_010, 250_000, true);
            ts.retry(100, RetryCause::VersionMismatch);
            ts.event(99, "migrate.locked part=1 dst=0");
            ts.to_json().to_pretty()
        };
        let a = mk();
        assert_eq!(a, mk());
        let v = crate::json::parse(&a).unwrap();
        assert_eq!(v.get("window_ns").unwrap().as_f64(), Some(100_000.0));
        let windows = v.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(
            windows[0]
                .get("phase_ns")
                .unwrap()
                .get("leaf_read")
                .unwrap()
                .as_f64(),
            Some(99_990.0)
        );
        assert_eq!(
            v.get("events").unwrap().as_arr().unwrap()[0]
                .get("label")
                .unwrap()
                .as_str(),
            Some("migrate.locked part=1 dst=0")
        );
    }

    #[test]
    fn empty_series_is_empty() {
        let ts = TimeSeries::default();
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.total_ops(), 0);
    }
}
