//! A tiny, deterministic JSON value with a writer and a parser.
//!
//! The build environment is offline (no serde), and determinism is a hard
//! requirement: the same run must serialize to byte-identical output. Object
//! members keep insertion order (callers insert in a fixed order or use
//! sorted maps), floats render with Rust's shortest-round-trip formatter,
//! and no timestamps or hash-map iteration orders ever leak in.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as f64; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved and significant for output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, deterministically.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    write_str(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, d);
                });
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest round-trip formatting: deterministic for a given value.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a message with the byte offset on error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::from("fig3")),
            ("mops", Json::Num(1.25)),
            ("ops", Json::from(40_000u64)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            ("none", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        let c = v.to_compact();
        assert_eq!(parse(&c).unwrap(), v);
        let p = v.to_pretty();
        assert_eq!(parse(&p).unwrap(), v);
        assert!(c.contains("\"mops\":1.25"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(42u64).to_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn string_escapes() {
        let v = Json::from("a\"b\\c\nd\u{1}");
        let s = v.to_compact();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").unwrap_err().contains("trailing"));
    }

    #[test]
    fn serialization_is_deterministic() {
        let mk = || {
            Json::obj(vec![
                ("b", Json::Num(0.1 + 0.2)),
                ("a", Json::from(7u64)),
            ])
        };
        assert_eq!(mk().to_compact(), mk().to_compact());
        assert_eq!(mk().to_pretty(), mk().to_pretty());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"x\": 3, \"s\": \"hi\", \"a\": [1]}").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
