//! In-run anomaly detection over a windowed time series.
//!
//! End-of-run gates say *that* a run regressed; the detector says *when*.
//! It scans a [`TimeSeries`] window by window for four shapes of trouble:
//!
//! * **throughput cliff** — a window completing far fewer ops than the
//!   trailing mean (a stall, a shed-storm, a lock convoy);
//! * **latency burst** — a window whose worst op latency dwarfs the
//!   trailing mean latency (the temporal location of a p99 excursion);
//! * **CQ saturation** — completion-queue depth at or beyond the
//!   backpressure watermark;
//! * **migration over budget** — a `migrate.locked` → `migrate.published`
//!   event pair spanning more virtual time than the configured budget.
//!
//! Findings land in the bench report next to the timeline they were found
//! in, and `explain` cites them so a regression report names the time
//! window, not just the phase. Detection is integer/float arithmetic over
//! deterministic inputs: identical runs produce identical findings.

use crate::json::Json;
use crate::timeseries::TimeSeries;

/// Detection thresholds. The defaults are deliberately loose — anomalies
/// are diagnostics, not gates, and a quiet run should report none.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Cliff: window ops below `(1 - cliff_frac) ×` the trailing mean.
    pub cliff_frac: f64,
    /// Windows in the trailing mean.
    pub trailing: usize,
    /// Minimum trailing mean ops/window before cliffs are considered
    /// (suppresses noise on near-idle timelines).
    pub cliff_min_ops: f64,
    /// Burst: window max latency above `burst_factor ×` the trailing mean
    /// op latency.
    pub burst_factor: f64,
    /// Minimum burst latency, ns (suppresses micro-latency noise).
    pub burst_min_ns: u64,
    /// CQ saturation threshold (observed depth ≥ this); 0 disables.
    pub cq_saturation: u64,
    /// Migration budget, ns (lock → publish); 0 disables.
    pub migration_budget_ns: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            cliff_frac: 0.6,
            trailing: 4,
            cliff_min_ops: 16.0,
            burst_factor: 8.0,
            burst_min_ns: 100_000,
            cq_saturation: 0,
            migration_budget_ns: 2_000_000,
        }
    }
}

/// The shape of a detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Throughput collapsed relative to the trailing mean.
    ThroughputCliff,
    /// A latency excursion far beyond the trailing mean.
    LatencyBurst,
    /// Completion-queue depth reached the saturation threshold.
    CqSaturation,
    /// A migration held its partition beyond the time budget.
    MigrationOverBudget,
}

impl AnomalyKind {
    /// Stable `snake_case` name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::ThroughputCliff => "throughput_cliff",
            AnomalyKind::LatencyBurst => "latency_burst",
            AnomalyKind::CqSaturation => "cq_saturation",
            AnomalyKind::MigrationOverBudget => "migration_over_budget",
        }
    }
}

/// One detected anomaly, anchored to a time window.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// What was detected.
    pub kind: AnomalyKind,
    /// Index of the anchoring window.
    pub window: u64,
    /// Start of the cited interval, virtual ns.
    pub t_start_ns: u64,
    /// End of the cited interval (exclusive), virtual ns.
    pub t_end_ns: u64,
    /// Dimensionless severity (ratio beyond the threshold; larger = worse).
    pub severity: f64,
    /// Human-readable evidence.
    pub detail: String,
}

impl Anomaly {
    /// Serializes deterministically.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::from(self.kind.as_str())),
            ("window", Json::from(self.window)),
            ("t_start_ns", Json::from(self.t_start_ns)),
            ("t_end_ns", Json::from(self.t_end_ns)),
            ("severity", Json::Num(self.severity)),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }

    /// One-line citation, e.g. for `explain` output.
    pub fn cite(&self) -> String {
        format!(
            "{} at window {} [{}..{} ns): {} (severity {:.2})",
            self.kind.as_str(),
            self.window,
            self.t_start_ns,
            self.t_end_ns,
            self.detail,
            self.severity
        )
    }
}

/// Scans `ts` for anomalies. Findings are ordered by window, then by the
/// detection pass (cliff, burst, saturation, migration) — deterministic
/// for a given series.
pub fn detect(ts: &TimeSeries, cfg: &AnomalyConfig) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let wns = ts.window_ns();
    let indices: Vec<u64> = ts.windows().map(|(k, _)| k).collect();
    let (Some(&first), Some(&last)) = (indices.first(), indices.last()) else {
        detect_migrations(ts, cfg, &mut out);
        return out;
    };

    // Dense scan over [first, last]; absent windows count as zero activity.
    // The final window is skipped for rate-based checks — it is partial.
    for w in first..last {
        if w < first + cfg.trailing as u64 {
            continue;
        }
        let cur = ts.window(w);
        let (mut ops_sum, mut lat_sum, mut lat_ops) = (0u64, 0u64, 0u64);
        for p in (w - cfg.trailing as u64)..w {
            if let Some(pw) = ts.window(p) {
                ops_sum += pw.ops;
                lat_sum += pw.lat_sum_ns;
                lat_ops += pw.ops;
            }
        }
        let mean_ops = ops_sum as f64 / cfg.trailing as f64;
        let cur_ops = cur.map_or(0, |c| c.ops);
        if mean_ops >= cfg.cliff_min_ops && (cur_ops as f64) < (1.0 - cfg.cliff_frac) * mean_ops {
            out.push(Anomaly {
                kind: AnomalyKind::ThroughputCliff,
                window: w,
                t_start_ns: w * wns,
                t_end_ns: (w + 1) * wns,
                severity: 1.0 - cur_ops as f64 / mean_ops,
                detail: format!("{cur_ops} ops vs trailing mean {mean_ops:.1}"),
            });
        }
        if let Some(c) = cur {
            let mean_lat = if lat_ops > 0 { lat_sum as f64 / lat_ops as f64 } else { 0.0 };
            if c.ops > 0
                && c.lat_max_ns >= cfg.burst_min_ns
                && mean_lat > 0.0
                && (c.lat_max_ns as f64) > cfg.burst_factor * mean_lat
            {
                out.push(Anomaly {
                    kind: AnomalyKind::LatencyBurst,
                    window: w,
                    t_start_ns: w * wns,
                    t_end_ns: (w + 1) * wns,
                    severity: c.lat_max_ns as f64 / mean_lat,
                    detail: format!(
                        "max latency {} ns vs trailing mean {mean_lat:.0} ns",
                        c.lat_max_ns
                    ),
                });
            }
            if cfg.cq_saturation > 0 && c.cq_depth_max >= cfg.cq_saturation {
                out.push(Anomaly {
                    kind: AnomalyKind::CqSaturation,
                    window: w,
                    t_start_ns: w * wns,
                    t_end_ns: (w + 1) * wns,
                    severity: c.cq_depth_max as f64 / cfg.cq_saturation as f64,
                    detail: format!(
                        "cq depth {} at watermark {}",
                        c.cq_depth_max, cfg.cq_saturation
                    ),
                });
            }
        }
    }
    detect_migrations(ts, cfg, &mut out);
    out.sort_by_key(|a| a.window);
    out
}

/// Pairs `migrate.locked` with the next `migrate.published` event and
/// flags pairs spanning more than the budget.
fn detect_migrations(ts: &TimeSeries, cfg: &AnomalyConfig, out: &mut Vec<Anomaly>) {
    if cfg.migration_budget_ns == 0 {
        return;
    }
    let wns = ts.window_ns();
    let mut lock: Option<(u64, &str)> = None;
    for e in ts.events() {
        if e.label.starts_with("migrate.locked") {
            lock = Some((e.t_ns, e.label.as_str()));
        } else if e.label.starts_with("migrate.published") {
            if let Some((t0, l0)) = lock.take() {
                let dur = e.t_ns.saturating_sub(t0);
                if dur > cfg.migration_budget_ns {
                    out.push(Anomaly {
                        kind: AnomalyKind::MigrationOverBudget,
                        window: t0 / wns,
                        t_start_ns: t0,
                        t_end_ns: e.t_ns,
                        severity: dur as f64 / cfg.migration_budget_ns as f64,
                        detail: format!("{l0}: lock→publish {dur} ns over budget {} ns", cfg.migration_budget_ns),
                    });
                }
            }
        }
    }
}

/// Serializes a finding list (deterministic order preserved).
pub fn to_json(anomalies: &[Anomaly]) -> Json {
    Json::Arr(anomalies.iter().map(|a| a.to_json()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn steady(ops_per_window: u64, windows: u64) -> TimeSeries {
        let mut ts = TimeSeries::new(100_000);
        for w in 0..windows {
            for i in 0..ops_per_window {
                ts.record_op(w * 100_000 + i * 10 + 5, 2_000, true);
            }
            ts.add_time(w * 100_000, 90_000, Phase::LeafRead);
        }
        ts
    }

    #[test]
    fn quiet_run_reports_nothing() {
        let ts = steady(50, 12);
        assert!(detect(&ts, &AnomalyConfig::default()).is_empty());
    }

    #[test]
    fn throughput_cliff_flags_the_right_window() {
        let mut ts = TimeSeries::new(100_000);
        for w in 0..12u64 {
            let n = if w == 7 { 2 } else { 50 };
            for i in 0..n {
                ts.record_op(w * 100_000 + i * 10, 2_000, true);
            }
        }
        let found = detect(&ts, &AnomalyConfig::default());
        let cliffs: Vec<&Anomaly> = found
            .iter()
            .filter(|a| a.kind == AnomalyKind::ThroughputCliff)
            .collect();
        assert_eq!(cliffs.len(), 1);
        assert_eq!(cliffs[0].window, 7);
        assert_eq!(cliffs[0].t_start_ns, 700_000);
        assert!(cliffs[0].severity > 0.9);
        assert!(cliffs[0].cite().contains("window 7"));
    }

    #[test]
    fn latency_burst_flags_the_excursion() {
        let mut ts = steady(50, 12);
        ts.record_op(7 * 100_000 + 50, 400_000, true); // one 400 µs op amid 2 µs ops
        let found = detect(&ts, &AnomalyConfig::default());
        let bursts: Vec<&Anomaly> = found
            .iter()
            .filter(|a| a.kind == AnomalyKind::LatencyBurst)
            .collect();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].window, 7);
    }

    #[test]
    fn cq_saturation_respects_threshold() {
        let mut ts = steady(50, 12);
        ts.cq_depth(7 * 100_000 + 9, 40);
        let mut cfg = AnomalyConfig::default();
        assert!(detect(&ts, &cfg)
            .iter()
            .all(|a| a.kind != AnomalyKind::CqSaturation), "disabled by default");
        cfg.cq_saturation = 32;
        let found = detect(&ts, &cfg);
        let sat: Vec<&Anomaly> = found
            .iter()
            .filter(|a| a.kind == AnomalyKind::CqSaturation)
            .collect();
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].window, 7);
    }

    #[test]
    fn slow_migration_is_flagged_fast_one_is_not() {
        let mut ts = steady(50, 12);
        ts.event(150_000, "migrate.locked part=0 dst=1");
        ts.event(250_000, "migrate.published part=0 dst=1");
        ts.event(500_000, "migrate.locked part=3 dst=0");
        ts.event(3_700_000, "migrate.published part=3 dst=0");
        let found = detect(&ts, &AnomalyConfig::default());
        let mig: Vec<&Anomaly> = found
            .iter()
            .filter(|a| a.kind == AnomalyKind::MigrationOverBudget)
            .collect();
        assert_eq!(mig.len(), 1);
        assert_eq!(mig[0].t_start_ns, 500_000);
        assert!(mig[0].detail.contains("part=3"));
    }

    #[test]
    fn json_is_deterministic() {
        let mut ts = steady(50, 12);
        ts.record_op(7 * 100_000 + 50, 400_000, true);
        let a = to_json(&detect(&ts, &AnomalyConfig::default())).to_pretty();
        let b = to_json(&detect(&ts, &AnomalyConfig::default())).to_pretty();
        assert_eq!(a, b);
        assert!(crate::json::parse(&a).is_ok());
    }
}
