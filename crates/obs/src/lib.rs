//! `obs` — deterministic observability for the disaggregated-memory stack.
//!
//! CHIME's performance argument is verb economics: round trips, wire bytes
//! and IOPS per operation. This crate makes those economics observable
//! without sacrificing the simulator's core property — bit-for-bit
//! reproducibility from a seed:
//!
//! * [`trace`] — span/event tracing on the virtual clock: each index
//!   operation opens a span, every verb and injected fault records an event
//!   in a bounded per-client ring buffer, exportable as JSONL;
//! * [`metrics`] — the unified [`metrics::MetricsSnapshot`] registry
//!   (labeled counters / gauges / histogram summaries) with Prometheus-text
//!   and JSON exporters;
//! * [`phase`] — the phase-attribution layer: a fixed [`phase::Phase`]
//!   taxonomy, retry root-cause tagging ([`phase::RetryCause`]), the
//!   deterministic fixed-bucket [`phase::LatencyHist`] and the per-client
//!   [`phase::OpProfile`] that attributes every charged nanosecond, verb
//!   and wire byte to a phase;
//! * [`timeseries`] — continuous telemetry: fixed-width virtual-clock
//!   windows ([`timeseries::TimeSeries`]) accumulating per-window
//!   throughput, per-phase time, retries, CQ depth and shed/served counts,
//!   plus timestamped control-plane events;
//! * [`flight`] — the always-on black-box [`flight::FlightRecorder`]: a
//!   bounded ring of each client's last moments, dumped to
//!   `flightdump_*.json` on failures and gate breaches;
//! * [`anomaly`] — in-run anomaly detection over a time series (throughput
//!   cliffs, latency bursts, CQ saturation, over-budget migrations);
//! * [`perfetto`] — the Chrome trace-event exporter turning tracer rings
//!   into a document `ui.perfetto.dev` opens directly;
//! * [`gate`] — the CI perf gate comparing bench points against a
//!   checked-in baseline with direction-aware relative tolerances;
//! * [`json`] — the dependency-free, deterministic JSON writer/parser the
//!   other modules (and `bench`'s `BENCH_*.json` reports) are built on.
//!
//! Everything here is pure data handling: no wall clocks, no randomness, no
//! hash-map iteration orders in any exported byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod flight;
pub mod gate;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod phase;
pub mod timeseries;
pub mod trace;

pub use anomaly::{detect, Anomaly, AnomalyConfig, AnomalyKind};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use gate::{compare, direction_of, Baseline, BenchPoint, Direction, GateReport, Violation};
pub use json::Json;
pub use metrics::{HistogramSummary, MetricsSnapshot};
pub use perfetto::to_perfetto;
pub use phase::{LatencyHist, OpProfile, Phase, PhaseAcc, RetryCause};
pub use timeseries::{TimeSeries, TsEvent, Window};
pub use trace::{Event, EventKind, SpanSummary, Tracer};
