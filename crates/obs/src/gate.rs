//! The CI perf gate: compare a bench run against a checked-in baseline.
//!
//! A [`Baseline`] is a JSON document of named bench points, each with a flat
//! metric map. [`compare`] checks every baseline metric against the current
//! run with a relative tolerance, honouring metric *direction* (throughput
//! regresses downward, latency and traffic regress upward), and returns the
//! violations. Because the whole simulator runs on a virtual clock, the
//! baseline is exact and machine-independent — tolerances only absorb
//! intentional algorithm changes, not noise.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// One measured bench point: a name plus flat metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchPoint {
    /// Unique point name (e.g. `chime/c/64`).
    pub name: String,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchPoint {
    /// Creates a point from `(metric, value)` pairs.
    pub fn new(name: &str, metrics: &[(&str, f64)]) -> Self {
        BenchPoint {
            name: name.to_string(),
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// The baseline document schema this code writes.
pub const BASELINE_SCHEMA: u64 = 2;

/// A set of reference points plus tolerances.
///
/// Since schema 2 a baseline may carry far more metrics per point than it
/// *gates* on: `gated` names the metrics [`compare`] enforces, while the
/// rest (phase breakdowns, retry causes) ride along as attribution context
/// for the `explain` tool. An empty `gated` list gates every metric — the
/// schema-1 behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Document schema version (1 = flat metrics only, 2 = adds `gated`
    /// plus attribution metrics).
    pub schema: u64,
    /// Default relative tolerance, percent (e.g. `10.0`).
    pub tolerance_pct: f64,
    /// Per-metric tolerance overrides, percent.
    pub metric_tolerance_pct: BTreeMap<String, f64>,
    /// Metrics the gate enforces; empty means every baseline metric.
    pub gated: Vec<String>,
    /// The reference points.
    pub points: Vec<BenchPoint>,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            schema: BASELINE_SCHEMA,
            tolerance_pct: 10.0,
            metric_tolerance_pct: BTreeMap::new(),
            gated: Vec::new(),
            points: Vec::new(),
        }
    }
}

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, hit ratios): regressions go down.
    HigherBetter,
    /// Smaller is better (latency, traffic): regressions go up.
    LowerBetter,
}

/// Classifies a metric name by its regression direction.
///
/// Throughput (`mops`), hit/success ratios and load factors regress
/// downward; everything else (latencies, bytes/op, verbs/op, rtts/op,
/// cache bytes) upward.
pub fn direction_of(metric: &str) -> Direction {
    if metric.contains("mops")
        || metric.contains("hit")
        || metric.contains("throughput")
        || metric.contains("load_factor")
    {
        Direction::HigherBetter
    } else {
        Direction::LowerBetter
    }
}

/// One tolerance-exceeding regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Bench point name.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent, signed so that positive = worse.
    pub regression_pct: f64,
    /// The tolerance that was exceeded, percent.
    pub tolerance_pct: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {}: {:.4} -> {:.4} ({:+.1}% worse, tolerance {:.1}%)",
            self.point,
            self.metric,
            self.baseline,
            self.current,
            self.regression_pct,
            self.tolerance_pct
        )
    }
}

/// The outcome of a gate run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Tolerance-exceeding regressions (non-empty fails the gate).
    pub violations: Vec<Violation>,
    /// Baseline points absent from the current run (each also fails).
    pub missing_points: Vec<String>,
    /// `(point, metric, improvement_pct)` improvements beyond tolerance —
    /// informational, and a hint to refresh the baseline.
    pub improvements: Vec<(String, String, f64)>,
    /// Metric comparisons performed.
    pub compared: usize,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.missing_points.is_empty()
    }
}

/// Compares `current` points against `baseline`.
///
/// Every metric present in a baseline point must exist in the same-named
/// current point (a vanished metric counts as a violation with
/// `current = NaN`). Extra current points or metrics are ignored — adding
/// coverage never fails the gate.
pub fn compare(current: &[BenchPoint], baseline: &Baseline) -> GateReport {
    let mut report = GateReport::default();
    for bp in &baseline.points {
        let Some(cur) = current.iter().find(|c| c.name == bp.name) else {
            report.missing_points.push(bp.name.clone());
            continue;
        };
        for (metric, &base_v) in &bp.metrics {
            if !baseline.gated.is_empty() && !baseline.gated.iter().any(|g| g == metric) {
                continue;
            }
            let tol = baseline
                .metric_tolerance_pct
                .get(metric)
                .copied()
                .unwrap_or(baseline.tolerance_pct);
            report.compared += 1;
            let Some(&cur_v) = cur.metrics.get(metric) else {
                report.violations.push(Violation {
                    point: bp.name.clone(),
                    metric: metric.clone(),
                    baseline: base_v,
                    current: f64::NAN,
                    regression_pct: f64::INFINITY,
                    tolerance_pct: tol,
                });
                continue;
            };
            if base_v == 0.0 {
                // A zero baseline can't express a relative change; only a
                // nonzero current value in the regressing direction counts.
                let worse = match direction_of(metric) {
                    Direction::HigherBetter => cur_v < 0.0,
                    Direction::LowerBetter => cur_v > 0.0,
                };
                if worse {
                    report.violations.push(Violation {
                        point: bp.name.clone(),
                        metric: metric.clone(),
                        baseline: base_v,
                        current: cur_v,
                        regression_pct: f64::INFINITY,
                        tolerance_pct: tol,
                    });
                }
                continue;
            }
            let change_pct = (cur_v - base_v) / base_v.abs() * 100.0;
            // Signed so that positive = worse.
            let regression_pct = match direction_of(metric) {
                Direction::HigherBetter => -change_pct,
                Direction::LowerBetter => change_pct,
            };
            if regression_pct > tol {
                report.violations.push(Violation {
                    point: bp.name.clone(),
                    metric: metric.clone(),
                    baseline: base_v,
                    current: cur_v,
                    regression_pct,
                    tolerance_pct: tol,
                });
            } else if regression_pct < -tol {
                report
                    .improvements
                    .push((bp.name.clone(), metric.clone(), -regression_pct));
            }
        }
    }
    report
}

fn points_to_json(points: &[BenchPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(p.name.clone())),
                    (
                        "metrics".to_string(),
                        Json::Obj(
                            p.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn points_from_json(v: &Json) -> Result<Vec<BenchPoint>, String> {
    let arr = v.as_arr().ok_or("points must be an array")?;
    let mut out = Vec::new();
    for p in arr {
        let name = p
            .get("name")
            .and_then(Json::as_str)
            .ok_or("point missing name")?
            .to_string();
        let mut metrics = BTreeMap::new();
        if let Some(Json::Obj(members)) = p.get("metrics") {
            for (k, v) in members {
                metrics.insert(
                    k.clone(),
                    v.as_f64().ok_or_else(|| format!("metric {k} not numeric"))?,
                );
            }
        }
        out.push(BenchPoint { name, metrics });
    }
    Ok(out)
}

impl Baseline {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let tols = self
            .metric_tolerance_pct
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::from(self.schema)),
            ("tolerance_pct".to_string(), Json::Num(self.tolerance_pct)),
            ("metric_tolerance_pct".to_string(), Json::Obj(tols)),
            (
                "gated".to_string(),
                Json::Arr(self.gated.iter().map(|g| Json::Str(g.clone())).collect()),
            ),
            ("points".to_string(), points_to_json(&self.points)),
        ])
        .to_pretty()
    }

    /// Parses a baseline document (schema 1 documents — no `schema` /
    /// `gated` members — still parse, gating every metric).
    pub fn from_json(s: &str) -> Result<Baseline, String> {
        let v = parse(s)?;
        let schema = v.get("schema").and_then(Json::as_f64).unwrap_or(1.0) as u64;
        let tolerance_pct = v
            .get("tolerance_pct")
            .and_then(Json::as_f64)
            .ok_or("missing tolerance_pct")?;
        let mut metric_tolerance_pct = BTreeMap::new();
        if let Some(Json::Obj(members)) = v.get("metric_tolerance_pct") {
            for (k, t) in members {
                metric_tolerance_pct
                    .insert(k.clone(), t.as_f64().ok_or("tolerance not numeric")?);
            }
        }
        let mut gated = Vec::new();
        if let Some(arr) = v.get("gated").and_then(Json::as_arr) {
            for g in arr {
                gated.push(g.as_str().ok_or("gated entry not a string")?.to_string());
            }
        }
        let points = points_from_json(v.get("points").ok_or("missing points")?)?;
        Ok(Baseline {
            schema,
            tolerance_pct,
            metric_tolerance_pct,
            gated,
            points,
        })
    }
}

/// Serializes bench points (the *current* side of a gate run) to JSON.
pub fn points_json(points: &[BenchPoint]) -> String {
    points_to_json(points).to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Baseline {
        Baseline {
            tolerance_pct: 10.0,
            points: vec![BenchPoint::new(
                "chime/c",
                &[("mops", 10.0), ("p99_us", 50.0), ("bytes_per_op", 400.0)],
            )],
            ..Default::default()
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 9.5), ("p99_us", 54.0), ("bytes_per_op", 410.0)],
        )];
        let r = compare(&cur, &base());
        assert!(r.passed(), "{:?}", r.violations);
        assert_eq!(r.compared, 3);
    }

    #[test]
    fn throughput_drop_fails() {
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 8.0), ("p99_us", 50.0), ("bytes_per_op", 400.0)],
        )];
        let r = compare(&cur, &base());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].metric, "mops");
        assert!((r.violations[0].regression_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_gain_is_an_improvement_not_a_violation() {
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 14.0), ("p99_us", 50.0), ("bytes_per_op", 400.0)],
        )];
        let r = compare(&cur, &base());
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 1);
        assert_eq!(r.improvements[0].1, "mops");
    }

    #[test]
    fn latency_rise_fails_latency_drop_improves() {
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 10.0), ("p99_us", 60.0), ("bytes_per_op", 300.0)],
        )];
        let r = compare(&cur, &base());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].metric, "p99_us");
        assert_eq!(r.improvements.len(), 1);
        assert_eq!(r.improvements[0].1, "bytes_per_op");
    }

    #[test]
    fn missing_point_and_metric_fail() {
        let r = compare(&[], &base());
        assert_eq!(r.missing_points, vec!["chime/c".to_string()]);
        assert!(!r.passed());

        let cur = vec![BenchPoint::new("chime/c", &[("mops", 10.0)])];
        let r = compare(&cur, &base());
        assert_eq!(r.violations.len(), 2, "p99_us and bytes_per_op vanished");
    }

    #[test]
    fn per_metric_tolerance_overrides_default() {
        let mut b = base();
        b.metric_tolerance_pct.insert("p99_us".into(), 50.0);
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 10.0), ("p99_us", 70.0), ("bytes_per_op", 400.0)],
        )];
        let r = compare(&cur, &b);
        assert!(r.passed(), "40% rise within the 50% override");
    }

    #[test]
    fn baseline_json_roundtrip() {
        let mut b = base();
        b.metric_tolerance_pct.insert("p99_us".into(), 25.0);
        let s = b.to_json();
        let back = Baseline::from_json(&s).unwrap();
        assert_eq!(back, b);
        // Deterministic output.
        assert_eq!(s, back.to_json());
    }

    #[test]
    fn gated_list_restricts_enforcement() {
        let mut b = base();
        b.gated = vec!["mops".to_string(), "p99_us".to_string()];
        // bytes_per_op doubles, but it is not gated.
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 10.0), ("p99_us", 50.0), ("bytes_per_op", 800.0)],
        )];
        let r = compare(&cur, &b);
        assert!(r.passed(), "{:?}", r.violations);
        assert_eq!(r.compared, 2);
        // A gated metric still fails.
        let cur = vec![BenchPoint::new(
            "chime/c",
            &[("mops", 5.0), ("p99_us", 50.0), ("bytes_per_op", 400.0)],
        )];
        assert!(!compare(&cur, &b).passed());
    }

    #[test]
    fn schema1_document_parses_without_gated() {
        let doc = r#"{"tolerance_pct": 10.0, "metric_tolerance_pct": {},
                      "points": [{"name": "a", "metrics": {"mops": 1.0}}]}"#;
        let b = Baseline::from_json(doc).unwrap();
        assert_eq!(b.schema, 1);
        assert!(b.gated.is_empty());
        // Re-serialized, it becomes an explicit document that roundtrips.
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn extra_current_points_are_ignored() {
        let cur = vec![
            BenchPoint::new(
                "chime/c",
                &[("mops", 10.0), ("p99_us", 50.0), ("bytes_per_op", 400.0)],
            ),
            BenchPoint::new("new/bench", &[("mops", 1.0)]),
        ];
        assert!(compare(&cur, &base()).passed());
    }
}
