//! Chrome trace-event export: open any run in `ui.perfetto.dev`.
//!
//! Converts a set of per-client [`Tracer`] rings into the Chrome
//! trace-event JSON format (the `traceEvents` array form), which Perfetto
//! loads directly:
//!
//! * one **track per client/lane** — each tracer's client id becomes a
//!   `tid` under `pid` 0, named via a `thread_name` metadata event;
//! * one **async slice per operation** — each reconstructed span becomes a
//!   `b`/`e` pair whose id is unique across clients and whose args carry
//!   the key and the causal `trace_id`;
//! * **complete slices** (`X`) for verbs and phase episodes, **instants**
//!   (`i`) for injected faults.
//!
//! Timestamps convert from virtual nanoseconds to the format's
//! microseconds as exact `ns / 1000.0` divisions; together with the
//! deterministic JSON writer this makes the export a pure function of the
//! tracers — byte-identical across identical-seed runs.

use crate::json::Json;
use crate::trace::{EventKind, Tracer};

fn us(t_ns: u64) -> Json {
    Json::Num(t_ns as f64 / 1000.0)
}

fn base(ph: &str, name: &str, tid: u32, t_ns: u64) -> Vec<(String, Json)> {
    vec![
        ("ph".to_string(), Json::from(ph)),
        ("name".to_string(), Json::from(name)),
        ("pid".to_string(), Json::from(0u64)),
        ("tid".to_string(), Json::from(tid as u64)),
        ("ts".to_string(), us(t_ns)),
    ]
}

/// Exports `tracers` as a Chrome trace-event JSON document.
///
/// Tracks appear in the given tracer order; events within a track follow
/// the ring order (virtual-clock order per client).
pub fn to_perfetto(tracers: &[&Tracer]) -> String {
    let mut events: Vec<Json> = Vec::new();
    for t in tracers {
        let tid = t.client();
        events.push(Json::obj(vec![
            ("ph", Json::from("M")),
            ("name", Json::from("thread_name")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid as u64)),
            (
                "args",
                Json::obj(vec![("name", Json::from(format!("client {tid}").as_str()))]),
            ),
        ]));
        // Async op slices from reconstructed spans.
        for s in t.spans() {
            let id = format!("c{tid}.s{}", s.id);
            let mut b = base("b", s.op, tid, s.start_ns);
            b.push(("cat".to_string(), Json::from("op")));
            b.push(("id".to_string(), Json::from(id.as_str())));
            b.push((
                "args".to_string(),
                Json::obj(vec![
                    ("key", Json::from(s.key)),
                    ("trace", Json::from(s.trace)),
                    ("ok", Json::Bool(s.ok)),
                ]),
            ));
            events.push(Json::Obj(b));
            let mut e = base("e", s.op, tid, s.end_ns);
            e.push(("cat".to_string(), Json::from("op")));
            e.push(("id".to_string(), Json::from(id.as_str())));
            events.push(Json::Obj(e));
        }
        // Verb and phase slices, fault instants, from the raw ring.
        for ev in t.events() {
            match &ev.kind {
                EventKind::Verb {
                    verb,
                    mn,
                    wire_bytes,
                    msgs,
                    dur_ns,
                    ..
                } => {
                    let mut x = base("X", verb, tid, ev.t_ns);
                    x.push(("cat".to_string(), Json::from("verb")));
                    x.push(("dur".to_string(), us(*dur_ns)));
                    x.push((
                        "args".to_string(),
                        Json::obj(vec![
                            ("mn", Json::from(*mn as u64)),
                            ("wire_bytes", Json::from(*wire_bytes)),
                            ("msgs", Json::from(*msgs)),
                            ("trace", Json::from(ev.trace)),
                        ]),
                    ));
                    events.push(Json::Obj(x));
                }
                EventKind::PhaseEnd { phase, dur_ns } => {
                    let mut x = base("X", phase, tid, ev.t_ns.saturating_sub(*dur_ns));
                    x.push(("cat".to_string(), Json::from("phase")));
                    x.push(("dur".to_string(), us(*dur_ns)));
                    events.push(Json::Obj(x));
                }
                EventKind::Fault { action, label } => {
                    let mut i = base("i", action, tid, ev.t_ns);
                    i.push(("cat".to_string(), Json::from("fault")));
                    i.push(("s".to_string(), Json::from("t")));
                    i.push((
                        "args".to_string(),
                        Json::obj(vec![("label", Json::from(label.as_str()))]),
                    ));
                    events.push(Json::Obj(i));
                }
                _ => {}
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ns")),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Tracer {
        let mut t = Tracer::new(3, 1024);
        t.set_trace(101);
        let s = t.begin_span("search", 42, 1_000);
        t.phase_begin(1_000, "traversal");
        t.verb(1_000, 2_500, "read", 0, 0x100, 300, 1);
        t.phase_end(3_500, "traversal", 2_500);
        t.fault(3_500, "delay", "spike".into());
        t.end_span(s, true, 6_000);
        t
    }

    /// Structural validation against the Chrome trace-event format: every
    /// event carries `ph`/`pid`/`tid`, timestamps are numeric, `X` slices
    /// have durations, and async `b`/`e` events pair up by id.
    #[test]
    fn export_is_valid_chrome_trace_event_json() {
        let t = sample();
        let text = to_perfetto(&[&t]);
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut begins = 0i64;
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(ev.get("pid").unwrap().as_f64().is_some());
            assert!(ev.get("tid").unwrap().as_f64().is_some());
            match ph {
                "M" => assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name")),
                "b" | "e" => {
                    assert!(ev.get("ts").unwrap().as_f64().is_some());
                    assert!(ev.get("id").unwrap().as_str().is_some());
                    assert!(ev.get("cat").unwrap().as_str().is_some());
                    begins += if ph == "b" { 1 } else { -1 };
                }
                "X" => {
                    assert!(ev.get("ts").unwrap().as_f64().is_some());
                    assert!(ev.get("dur").unwrap().as_f64().is_some());
                }
                "i" => assert!(ev.get("ts").unwrap().as_f64().is_some()),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(begins, 0, "every async begin has a matching end");
        // The op slice carries the causal trace id.
        assert!(text.contains("\"trace\": 101"));
        // µs conversion: span begin at 1000 ns = 1 µs.
        assert!(text.contains("\"ts\": 1,"), "{text}");
    }

    #[test]
    fn export_is_byte_identical_for_identical_tracers() {
        let a = sample();
        let b = sample();
        assert_eq!(to_perfetto(&[&a]), to_perfetto(&[&b]));
        assert_ne!(to_perfetto(&[&a]), to_perfetto(&[&a, &b]));
    }
}
