//! Criterion microbenchmarks for the hot paths of the substrate and the
//! index implementations (wall-clock cost of the simulator itself, not the
//! modeled network numbers — those come from the figure binaries).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dmem::hash::home_entry;
use dmem::node::RESERVED_BYTES;
use dmem::versioned::Layout;
use dmem::{Endpoint, GlobalAddr, Pool, RangeIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ycsb::{KeySpace, Zipfian};

fn bench_substrate(c: &mut Criterion) {
    let pool = Pool::with_defaults(1, 16 << 20);
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let addr = GlobalAddr::new(0, RESERVED_BYTES);
    let data = vec![0xABu8; 256];
    let mut buf = vec![0u8; 256];
    let mut g = c.benchmark_group("substrate");
    g.bench_function("write_256B", |b| b.iter(|| ep.write(addr, &data)));
    g.bench_function("read_256B", |b| b.iter(|| ep.read(addr, &mut buf)));
    g.bench_function("masked_cas", |b| {
        b.iter(|| {
            let _ = ep.masked_cas(addr, 0, 1, 1, 1);
            ep.write(addr, &0u64.to_le_bytes());
        })
    });
    let layout = Layout::new(1300);
    layout.write(&mut ep, addr, 0, &vec![7u8; 1300], |_| 0);
    g.bench_function("versioned_fetch_neighborhood", |b| {
        b.iter(|| layout.fetch(&mut ep, addr, 170, 170 + 162))
    });
    g.finish();
}

fn bench_hopscotch(c: &mut Criterion) {
    use chime::hopscotch::{build_table, Window};
    let items: Vec<(u64, Vec<u8>)> = (1..=48u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
    let mut g = c.benchmark_group("hopscotch");
    g.bench_function("build_table_48_of_64", |b| {
        b.iter(|| build_table(64, 8, &items).unwrap())
    });
    let base = build_table(64, 8, &items).unwrap();
    g.bench_function("window_insert_with_hops", |b| {
        b.iter_batched(
            || base.clone(),
            |mut w: Window| {
                let key = 999_999u64;
                let home = home_entry(key, 64);
                if let Some(e) = w.first_empty_from(home) {
                    let _ = w.insert(key, vec![0u8; 8], e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ycsb(c: &mut Criterion) {
    let z = Zipfian::new(60_000_000, 0.99);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut g = c.benchmark_group("ycsb");
    g.bench_function("zipfian_sample", |b| b.iter(|| z.next(&mut rng)));
    g.bench_function("key_space", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            KeySpace::key(s)
        })
    });
    g.finish();
}

fn bench_index_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_ops");
    g.sample_size(20);
    // CHIME search against a 50k-key tree.
    let pool = Pool::with_defaults(1, 512 << 20);
    let t = chime::Chime::create(&pool, chime::ChimeConfig::default(), 0);
    let cn = t.new_cn();
    let mut cc = t.client(&cn);
    for seq in 0..50_000u64 {
        cc.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
    }
    let mut i = 0u64;
    g.bench_function("chime_search", |b| {
        b.iter(|| {
            i += 1;
            cc.search(KeySpace::key(i * 7 % 50_000)).unwrap()
        })
    });
    let mut j = 60_000u64;
    g.bench_function("chime_insert", |b| {
        b.iter(|| {
            j += 1;
            cc.insert(KeySpace::key(j), &[2u8; 8]).unwrap()
        })
    });
    // Sherman search for comparison (whole-node reads).
    let ts = sherman::Sherman::create(&pool, sherman::ShermanConfig::default(), 1);
    let cns = ts.new_cn();
    let mut cs = ts.client(&cns);
    for seq in 0..50_000u64 {
        cs.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
    }
    let mut k = 0u64;
    g.bench_function("sherman_search", |b| {
        b.iter(|| {
            k += 1;
            cs.search(KeySpace::key(k * 7 % 50_000)).unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_substrate, bench_hopscotch, bench_ycsb, bench_index_ops
}
criterion_main!(benches);
