//! The generic experiment driver.
//!
//! A [`BenchSetup`] describes one measured point: which index, how many
//! memory nodes / compute nodes / simulated clients, the workload, and the
//! knobs the paper sweeps (cache size, value size, span, neighborhood,
//! skew). [`run`] preloads the store, executes the operation mix while
//! counting verbs and virtual latencies, and converts the counts into
//! modeled throughput and latency percentiles with [`dmem::NetConfig`].
//!
//! Read-delegation/write-combining (RDWC, applied to every index in the
//! paper) is modeled per CN: within one scheduling round, duplicate
//! same-key reads/updates execute once and share the result.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dmem::{
    Bound, ClientStats, CountHist, Histogram, NetConfig, Pool, QpConfig, QpStats, RangeIndex,
    RunAccounting,
};
use obs::{
    Anomaly, AnomalyConfig, FlightRecorder, HistogramSummary, LatencyHist, MetricsSnapshot,
    OpProfile, Phase, RetryCause, TimeSeries, Tracer,
};
use sched::{Engine, EngineConfig, LaneBody};
use ycsb::{KeySpace, Op, OpGen, Workload, WorkloadState};

/// Op-type labels, indexed by the RDWC discriminant (read=0, update=1,
/// insert=2, scan=3).
pub const OP_NAMES: [&str; 4] = ["read", "update", "insert", "scan"];

/// Which index implementation a run measures.
#[derive(Debug, Clone)]
pub enum IndexKind {
    /// CHIME with an explicit configuration (factor-analysis toggles).
    Chime(chime::ChimeConfig),
    /// Sherman B+ tree.
    Sherman(sherman::ShermanConfig),
    /// ROLEX learned index.
    Rolex(rolex::RolexConfig),
    /// SMART radix tree.
    Smart(smart::SmartConfig),
    /// Partitioned CHIME: one pinned tree per range partition behind the
    /// CN-side router (multi-MN scale-out; serial runs only).
    Part(part::ClusterConfig),
}

impl IndexKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Chime(_) => "CHIME",
            IndexKind::Sherman(_) => "Sherman",
            IndexKind::Rolex(_) => "ROLEX",
            IndexKind::Smart(_) => "SMART",
            IndexKind::Part(_) => "CHIME-Part",
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchSetup {
    /// The index under test.
    pub kind: IndexKind,
    /// Memory nodes (capacity scales with this).
    pub num_mns: u16,
    /// Bytes per memory node.
    pub mn_capacity: usize,
    /// Compute nodes (each gets one cache + hotspot buffer).
    pub num_cns: usize,
    /// Total simulated clients, spread over the CNs.
    pub clients: usize,
    /// Keys preloaded before the measured phase.
    pub preload: u64,
    /// Operations executed in the measured phase (total).
    pub ops: u64,
    /// The workload mix.
    pub workload: Workload,
    /// Zipfian constant.
    pub theta: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Model RDWC combining (on for every index, as in the paper).
    pub rdwc: bool,
    /// Coroutine lanes per client (K). 1 runs clients strictly serially on
    /// their virtual clocks; K > 1 multiplexes K pipelined lanes per client
    /// through the deterministic coroutine engine, overlapping round trips
    /// and doorbell-batching same-quantum verbs.
    pub coroutines: usize,
    /// Attach an event [`obs::Tracer`] to this many clients (the first N in
    /// deployment order) and export their causal traces as a Perfetto
    /// document in [`BenchResult::perfetto`]. 0 (the default) traces
    /// nobody — the windowed timeline is collected regardless.
    pub trace_clients: usize,
    /// RNG seed base.
    pub seed: u64,
}

impl Default for BenchSetup {
    fn default() -> Self {
        BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig::default()),
            num_mns: 1,
            mn_capacity: 2 << 30,
            num_cns: 4,
            clients: 64,
            preload: 200_000,
            ops: 200_000,
            workload: Workload::C,
            theta: ycsb::ZIPFIAN_CONSTANT,
            value_size: 8,
            rdwc: true,
            coroutines: 1,
            trace_clients: 0,
            seed: 42,
        }
    }
}

/// The modeled outcome of one run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Modeled throughput, million ops/s.
    pub mops: f64,
    /// Median op latency, microseconds (saturation-inflated).
    pub p50_us: f64,
    /// 90th percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub avg_us: f64,
    /// The binding resource.
    pub bound: Bound,
    /// Mean wire bytes per operation.
    pub bytes_per_op: f64,
    /// Mean NIC messages per operation.
    pub msgs_per_op: f64,
    /// Mean round-trips per operation.
    pub rtts_per_op: f64,
    /// Wire bytes / application bytes (measured read amplification).
    pub read_amp: f64,
    /// Compute-side cache bytes per CN after the run.
    pub cache_bytes: u64,
    /// Hotspot-buffer hit ratio (CHIME only; 0 elsewhere).
    pub hotspot_hit_ratio: f64,
    /// Internal-node cache hit ratio during the measured phase (CHIME and
    /// Sherman; 0 for indexes without a node cache).
    pub cache_hit_ratio: f64,
    /// Remote memory allocated across the pool, bytes.
    pub remote_bytes: u64,
    /// Per-MN `(msgs, wire_bytes)` traffic of the measured phase.
    pub mn_traffic: Vec<(u64, u64)>,
    /// The unified metrics snapshot of the measured phase: client verb
    /// counters, cache and hotspot hits, per-MN traffic, allocator bytes,
    /// and the op-latency histogram. Deterministic for a fixed seed.
    pub metrics: MetricsSnapshot,
    /// Windowed time series of the measured phase, merged over every
    /// participating client (shared virtual time base; all client clocks
    /// start at zero). Empty for indexes without endpoint telemetry.
    pub timeline: TimeSeries,
    /// Anomalies the in-run detector found in [`Self::timeline`].
    pub anomalies: Vec<Anomaly>,
    /// Flight-recorder rings of the participating clients, keyed by global
    /// client id, snapshotted at the end of the measured phase.
    pub flight: Vec<(u32, FlightRecorder)>,
    /// Perfetto (Chrome trace-event) document covering the traced clients;
    /// `None` when [`BenchSetup::trace_clients`] is 0.
    pub perfetto: Option<String>,
}

/// Builds the pool, index and per-CN client handles for a setup.
pub struct Deployment {
    /// The memory pool.
    pub pool: Arc<Pool>,
    /// Per-CN lists of client handles.
    pub cns: Vec<Vec<Box<dyn RangeIndex + Send>>>,
    /// Hotspot-stat probe (CHIME only; per-partition states for Part).
    hotspot_probe: Option<Vec<Arc<chime::CnState>>>,
    /// Per-CN `(cache hits, cache misses)` probes (CHIME and Sherman).
    cache_probe: Vec<Box<dyn Fn() -> (u64, u64) + Send>>,
    /// Routing/migration counters (partitioned deployments only).
    router_probe: Option<Arc<part::RouterStats>>,
}

/// Creates the index and preloads `setup.preload` keys.
pub fn deploy(setup: &BenchSetup) -> Deployment {
    let pool = Pool::with_defaults(setup.num_mns, setup.mn_capacity);
    // Pipelined runs need one handle per lane: K per logical client.
    let per_cn = setup.clients.div_ceil(setup.num_cns) * setup.coroutines.max(1);
    let value = vec![0xABu8; setup.value_size];
    match &setup.kind {
        IndexKind::Chime(cfg) => {
            let t = chime::Chime::create(&pool, *cfg, 0);
            let cns: Vec<Arc<chime::CnState>> = (0..setup.num_cns).map(|_| t.new_cn()).collect();
            {
                let mut loader = t.client(&cns[0]);
                for seq in 0..setup.preload {
                    loader
                        .insert(KeySpace::key(seq), &value)
                        .expect("preload insert");
                }
            }
            let handles = cns
                .iter()
                .map(|cn| {
                    (0..per_cn)
                        .map(|_| Box::new(t.client(cn)) as Box<dyn RangeIndex + Send>)
                        .collect()
                })
                .collect();
            let cache_probe = cns
                .iter()
                .map(|cn| {
                    let cn = Arc::clone(cn);
                    Box::new(move || cn.cache_stats()) as Box<dyn Fn() -> (u64, u64) + Send>
                })
                .collect();
            Deployment {
                pool,
                cns: handles,
                hotspot_probe: Some(cns),
                cache_probe,
                router_probe: None,
            }
        }
        IndexKind::Sherman(cfg) => {
            let t = sherman::Sherman::create(&pool, *cfg, 0);
            let cns: Vec<_> = (0..setup.num_cns).map(|_| t.new_cn()).collect();
            {
                let mut loader = t.client(&cns[0]);
                for seq in 0..setup.preload {
                    loader
                        .insert(KeySpace::key(seq), &value)
                        .expect("preload insert");
                }
            }
            let handles = cns
                .iter()
                .map(|cn| {
                    (0..per_cn)
                        .map(|_| Box::new(t.client(cn)) as Box<dyn RangeIndex + Send>)
                        .collect()
                })
                .collect();
            let cache_probe = cns
                .iter()
                .map(|cn| {
                    let cn = Arc::clone(cn);
                    Box::new(move || cn.cache_stats()) as Box<dyn Fn() -> (u64, u64) + Send>
                })
                .collect();
            Deployment {
                pool,
                cns: handles,
                hotspot_probe: None,
                cache_probe,
                router_probe: None,
            }
        }
        IndexKind::Rolex(cfg) => {
            let mut items: Vec<(u64, Vec<u8>)> = (0..setup.preload)
                .map(|seq| (KeySpace::key(seq), value.clone()))
                .collect();
            items.sort_by_key(|&(k, _)| k);
            items.dedup_by_key(|&mut (k, _)| k);
            let mk_clients = |f: &mut dyn FnMut() -> Box<dyn RangeIndex + Send>| {
                (0..setup.num_cns)
                    .map(|_| (0..per_cn).map(|_| f()).collect())
                    .collect::<Vec<Vec<_>>>()
            };
            let handles = if cfg.hopscotch_leaves {
                let t = rolex::ChimeLearned::create(&pool, *cfg, &items);
                mk_clients(&mut || Box::new(t.client()))
            } else {
                let t = rolex::Rolex::create(&pool, *cfg, &items);
                mk_clients(&mut || Box::new(t.client()))
            };
            Deployment {
                pool,
                cns: handles,
                hotspot_probe: None,
                cache_probe: Vec::new(),
                router_probe: None,
            }
        }
        IndexKind::Smart(cfg) => {
            let t = smart::Smart::create(&pool, *cfg, 0);
            let cns: Vec<_> = (0..setup.num_cns).map(|_| t.new_cn()).collect();
            {
                let mut loader = t.client(&cns[0]);
                for seq in 0..setup.preload {
                    loader
                        .insert(KeySpace::key(seq), &value)
                        .expect("preload insert");
                }
            }
            let handles = cns
                .iter()
                .map(|cn| {
                    (0..per_cn)
                        .map(|_| Box::new(t.client(cn)) as Box<dyn RangeIndex + Send>)
                        .collect()
                })
                .collect();
            Deployment {
                pool,
                cns: handles,
                hotspot_probe: None,
                cache_probe: Vec::new(),
                router_probe: None,
            }
        }
        IndexKind::Part(cfg) => {
            assert_eq!(
                setup.coroutines, 1,
                "partitioned runs are serial: each router client multiplexes one endpoint"
            );
            let cluster = part::Cluster::create(&pool, *cfg);
            let cns: Vec<part::PartCn> = (0..setup.num_cns).map(|_| cluster.new_cn()).collect();
            let handles: Vec<Vec<Box<dyn RangeIndex + Send>>> = cns
                .iter()
                .map(|cn| {
                    (0..per_cn)
                        .map(|_| Box::new(cluster.client(cn)) as Box<dyn RangeIndex + Send>)
                        .collect()
                })
                .collect();
            // Preload through a throwaway client created *after* the
            // measured handles: the rebalancer role (first client
            // cluster-wide) stays on a measured handle, so the migration
            // policy never evaluates preload traffic. The window is
            // cleared afterwards so the measured phase starts clean.
            {
                let mut loader = cluster.client(&cns[0]);
                for seq in 0..setup.preload {
                    loader
                        .insert(KeySpace::key(seq), &value)
                        .expect("preload insert");
                }
            }
            cluster.stats().reset_window();
            let hotspot_probe = cns
                .iter()
                .flat_map(|cn| cn.states().iter().cloned())
                .collect();
            let cache_probe = cns
                .iter()
                .map(|cn| {
                    let states: Vec<Arc<chime::CnState>> = cn.states().to_vec();
                    Box::new(move || {
                        states
                            .iter()
                            .map(|s| s.cache_stats())
                            .fold((0, 0), |(h, m), (a, b)| (h + a, m + b))
                    }) as Box<dyn Fn() -> (u64, u64) + Send>
                })
                .collect();
            let router_probe = Some(Arc::clone(cluster.stats()));
            Deployment {
                pool,
                cns: handles,
                hotspot_probe: Some(hotspot_probe),
                cache_probe,
                router_probe,
            }
        }
    }
}

/// Runs the measured phase and models the outcome.
pub fn run(setup: &BenchSetup) -> BenchResult {
    let mut dep = deploy(setup);
    run_deployed(setup, &mut dep)
}

/// Runs the measured phase on an existing deployment.
pub fn run_deployed(setup: &BenchSetup, dep: &mut Deployment) -> BenchResult {
    if setup.coroutines > 1 {
        return run_pipelined(setup, dep);
    }
    let state = WorkloadState::new(setup.preload);
    let value = vec![0xCDu8; setup.value_size];
    let num_cns = dep.cns.len();
    let ops_per_cn = setup.ops / num_cns as u64;
    let mut hist = Histogram::new();
    // Per-op-type virtual-latency histograms (read/update/insert/scan).
    let mut op_hists: Vec<LatencyHist> = (0..OP_NAMES.len()).map(|_| LatencyHist::default()).collect();
    let mut profile_delta = OpProfile::default();
    let mut total_msgs = 0u64;
    let mut total_wire = 0u64;
    let mut total_app = 0u64;
    let mut total_rtts = 0u64;
    let mut sum_latency = 0u64;
    let mut executed = 0u64;
    let mut stats_delta = ClientStats::default();
    // Measured-phase deltas: deployments are reused across sweep points, so
    // every cumulative source is snapshotted before and diffed after.
    let mn_before = dep.pool.traffic();
    let cache_before: Vec<(u64, u64)> = dep.cache_probe.iter().map(|p| p()).collect();
    let hotspot_before = probe_hotspot(dep);
    let router_before = probe_router(dep);
    let mut timeline = TimeSeries::default();
    let mut flight: Vec<(u32, FlightRecorder)> = Vec::new();
    let mut tracers: Vec<Tracer> = Vec::new();
    // Per-op trace ids: a deterministic counter minted at op dispatch and
    // carried through the index, the scheduler and the queue pair.
    let mut next_trace = 1u64;
    // Each CN schedules its clients round-robin; RDWC combines duplicate
    // same-key read/update ops within one round. Client sweeps reuse one
    // deployment: only the first `setup.clients / num_cns` handles per CN
    // participate.
    let active_per_cn = setup.clients.div_ceil(num_cns);
    for (cn_id, all_clients) in dep.cns.iter_mut().enumerate() {
        let n = active_per_cn.min(all_clients.len());
        let clients = &mut all_clients[..n];
        let mut gens: Vec<OpGen> = (0..clients.len())
            .map(|i| {
                OpGen::with_theta(
                    setup.workload,
                    Arc::clone(&state),
                    setup.seed ^ ((cn_id as u64) << 32) ^ i as u64,
                    setup.theta,
                )
            })
            .collect();
        let before: Vec<dmem::ClientStats> = clients.iter().map(|c| c.stats().clone()).collect();
        let prof_before: Vec<Option<OpProfile>> =
            clients.iter().map(|c| c.profile().cloned()).collect();
        let telem_before: Vec<Option<TimeSeries>> = clients
            .iter()
            .map(|c| c.telemetry().map(|t| t.series.clone()))
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            let gid = (cn_id * active_per_cn + i) as u32;
            if (gid as usize) < setup.trace_clients {
                c.set_tracer(Tracer::new(gid, 1 << 16));
            }
        }
        let mut done = 0u64;
        let mut scan_buf = Vec::new();
        while done < ops_per_cn {
            // One round: each client issues one op.
            let mut combined: HashMap<(u8, u64), u64> = HashMap::new();
            for (i, c) in clients.iter_mut().enumerate() {
                if done >= ops_per_cn {
                    break;
                }
                let op = gens[i].next_op();
                let disc = match &op {
                    Op::Read(_) => 0u8,
                    Op::Update(_) => 1,
                    Op::Insert(_) => 2,
                    Op::Scan(..) => 3,
                };
                let key = op.key();
                if setup.rdwc && disc <= 1 {
                    if let Some(&lat) = combined.get(&(disc, key)) {
                        // Combined with an in-flight same-key op: the
                        // client pays the same latency, no new traffic.
                        hist.record(lat);
                        op_hists[disc as usize].record(lat);
                        sum_latency += lat;
                        done += 1;
                        executed += 1;
                        continue;
                    }
                }
                c.set_trace_id(next_trace);
                next_trace += 1;
                let t0 = c.clock_ns();
                match op {
                    Op::Read(k) => {
                        let _ = c.search(k);
                    }
                    Op::Update(k) => {
                        let _ = c.update(k, &value).expect("update");
                    }
                    Op::Insert(k) => {
                        c.insert(k, &value).expect("insert");
                    }
                    Op::Scan(k, n) => {
                        scan_buf.clear();
                        c.scan(k, n, &mut scan_buf);
                    }
                }
                let lat = c.clock_ns() - t0;
                hist.record(lat);
                op_hists[disc as usize].record(lat);
                sum_latency += lat;
                if setup.rdwc && disc <= 1 {
                    combined.insert((disc, key), lat);
                }
                done += 1;
                executed += 1;
            }
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let d = c.stats().since(&before[i]);
            total_msgs += d.msgs;
            total_wire += d.wire_bytes;
            total_app += d.app_bytes;
            total_rtts += d.rtts;
            stats_delta.merge(&d);
            if let (Some(p), Some(p0)) = (c.profile(), &prof_before[i]) {
                profile_delta.merge(&p.since(p0));
            }
            if let Some(t) = c.telemetry() {
                let delta = match &telem_before[i] {
                    Some(prev) => t.series.since(prev),
                    None => t.series.clone(),
                };
                timeline.merge(&delta);
                flight.push(((cn_id * active_per_cn + i) as u32, t.flight.clone()));
            }
            let gid = cn_id * active_per_cn + i;
            if gid < setup.trace_clients {
                if let Some(tr) = c.take_tracer() {
                    tracers.push(tr);
                }
            }
        }
    }
    assemble(
        setup,
        dep,
        Agg {
            hist,
            op_hists,
            profile_delta,
            total_msgs,
            total_wire,
            total_app,
            total_rtts,
            sum_latency,
            executed,
            stats_delta,
            sum_busy: 0,
            qp: None,
            lanes: Vec::new(),
            mn_before,
            cache_before,
            hotspot_before,
            router_before,
            timeline,
            flight,
            tracers,
        },
    )
}

/// Per-lane-index aggregates, merged over every client's lane of that
/// index: lets `explain` tell lock contention amplified by pipelining
/// (retries + backoff) apart from network-bound stalls (CQ wait).
#[derive(Debug, Clone, Copy, Default)]
struct LaneAgg {
    ops: u64,
    op_retries: u64,
    lock_retries: u64,
    backoff_ns: u64,
    cq_wait_ns: u64,
}

/// Everything a measured loop (serial or pipelined) hands to [`assemble`].
struct Agg {
    hist: Histogram,
    op_hists: Vec<LatencyHist>,
    profile_delta: OpProfile,
    total_msgs: u64,
    total_wire: u64,
    total_app: u64,
    total_rtts: u64,
    sum_latency: u64,
    executed: u64,
    stats_delta: ClientStats,
    /// Σ per-client busy virtual time (max over the client's lanes); 0 in
    /// serial mode (busy time equals the latency sum).
    sum_busy: u64,
    /// Merged queue-pair statistics (pipelined runs only).
    qp: Option<QpStats>,
    /// Per-lane-index aggregates (pipelined runs only).
    lanes: Vec<LaneAgg>,
    mn_before: Vec<dmem::MnTraffic>,
    cache_before: Vec<(u64, u64)>,
    hotspot_before: (u64, u64),
    router_before: RouterSnap,
    /// Measured-phase timeline merged over every participating client.
    timeline: TimeSeries,
    /// Flight rings snapshotted per global client id.
    flight: Vec<(u32, FlightRecorder)>,
    /// Tracers taken back from the traced clients (empty unless
    /// `trace_clients > 0`).
    tracers: Vec<Tracer>,
}

/// Cumulative routing/migration counters at a point in time. Zeroed (with
/// no per-partition entries) for deployments without a router, so the
/// assembled metric key set stays stable across index kinds.
#[derive(Debug, Clone, Default)]
struct RouterSnap {
    hits: u64,
    stale: u64,
    refreshes: u64,
    migrations: u64,
    leaves_moved: u64,
    items_moved: u64,
    part_ops: Vec<u64>,
}

fn probe_router(dep: &Deployment) -> RouterSnap {
    use std::sync::atomic::Ordering::Relaxed;
    dep.router_probe
        .as_ref()
        .map(|s| RouterSnap {
            hits: s.route_hits.load(Relaxed),
            stale: s.route_stale_epoch.load(Relaxed),
            refreshes: s.route_refreshes.load(Relaxed),
            migrations: s.migrations.load(Relaxed),
            leaves_moved: s.migrate_leaves_moved.load(Relaxed),
            items_moved: s.migrate_items_moved.load(Relaxed),
            part_ops: s.part_ops.iter().map(|c| c.load(Relaxed)).collect(),
        })
        .unwrap_or_default()
}

/// Runs the measured phase with K coroutine lanes per client on the
/// deterministic scheduler: each lane executes unmodified synchronous ops,
/// parking at every verb; the engine resumes the lane with the earliest
/// completion, and same-quantum verbs to one MN share a doorbell.
fn run_pipelined(setup: &BenchSetup, dep: &mut Deployment) -> BenchResult {
    let k = setup.coroutines;
    let state = WorkloadState::new(setup.preload);
    let value = vec![0xCDu8; setup.value_size];
    let num_cns = dep.cns.len();
    let ops_per_cn = setup.ops / num_cns as u64;
    let mut hist = Histogram::new();
    let mut op_hists: Vec<LatencyHist> =
        (0..OP_NAMES.len()).map(|_| LatencyHist::default()).collect();
    let mut profile_delta = OpProfile::default();
    let mut total_msgs = 0u64;
    let mut total_wire = 0u64;
    let mut total_app = 0u64;
    let mut total_rtts = 0u64;
    let mut sum_latency = 0u64;
    let mut sum_busy = 0u64;
    let mut executed = 0u64;
    let mut stats_delta = ClientStats::default();
    let mut qp_total = QpStats::default();
    let mut lanes_agg: Vec<LaneAgg> = vec![LaneAgg::default(); k];
    let mut timeline = TimeSeries::default();
    let mut flight: Vec<(u32, FlightRecorder)> = Vec::new();
    let mut tracers: Vec<Tracer> = Vec::new();
    let mn_before = dep.pool.traffic();
    let cache_before: Vec<(u64, u64)> = dep.cache_probe.iter().map(|p| p()).collect();
    let hotspot_before = probe_hotspot(dep);
    let router_before = probe_router(dep);
    let net = *dep.pool.net();
    let engine = Engine::new(EngineConfig {
        lanes: k,
        qp: QpConfig::default(),
    });
    let active_per_cn = setup.clients.div_ceil(num_cns);
    for (cn_id, all_clients) in dep.cns.iter_mut().enumerate() {
        let n_clients = active_per_cn.min(all_clients.len() / k);
        // Lane bodies run on parked coroutine threads, so the active
        // handles move out of the deployment and back in afterwards.
        let mut slots: Vec<Option<Box<dyn RangeIndex + Send>>> =
            std::mem::take(all_clients).into_iter().map(Some).collect();
        for ci in 0..n_clients {
            let client_ops = ops_per_cn / n_clients as u64
                + u64::from((ci as u64) < ops_per_cn % n_clients as u64);
            let stats_before: Vec<ClientStats> = (0..k)
                .map(|l| slots[ci * k + l].as_ref().unwrap().stats().clone())
                .collect();
            let prof_before: Vec<Option<OpProfile>> = (0..k)
                .map(|l| slots[ci * k + l].as_ref().unwrap().profile().cloned())
                .collect();
            // RDWC across the client's lanes: a same-key read/update issued
            // while a lane's identical op is still in flight shares its
            // result (and latency) instead of issuing verbs.
            type Combined = Arc<Mutex<HashMap<(u8, u64), (u64, u64)>>>;
            // What a lane hands back: its client handle, the (op, latency)
            // samples it measured, its busy time, and its timeline delta.
            type LaneReturn = (
                Box<dyn RangeIndex + Send>,
                Vec<(u8, u64)>,
                u64,
                Option<TimeSeries>,
            );
            let combined: Combined = Arc::new(Mutex::new(HashMap::new()));
            let mut bodies: Vec<LaneBody<LaneReturn>> = Vec::with_capacity(k);
            // Logical-client index across CNs; traced clients get one
            // tracer per lane so every lane is its own Perfetto track.
            let gci = cn_id * active_per_cn + ci;
            for l in 0..k {
                let mut handle = slots[ci * k + l].take().unwrap();
                if gci < setup.trace_clients {
                    handle.set_tracer(Tracer::new((gci * k + l) as u32, 1 << 16));
                }
                let lane_ops =
                    client_ops / k as u64 + u64::from((l as u64) < client_ops % k as u64);
                let mut gen = OpGen::with_theta(
                    setup.workload,
                    Arc::clone(&state),
                    setup.seed ^ ((cn_id as u64) << 32) ^ (ci * k + l) as u64,
                    setup.theta,
                );
                let value = value.clone();
                let combined = Arc::clone(&combined);
                let rdwc = setup.rdwc;
                // Trace ids carry the lane identity in the high half so
                // interleaved lanes stay distinguishable in the trace.
                let trace_base = ((gci * k + l) as u64 + 1) << 32;
                bodies.push(Box::new(move || {
                    let t_start = handle.clock_ns();
                    let telem0 = handle.telemetry().map(|t| t.series.clone());
                    let mut lats: Vec<(u8, u64)> = Vec::with_capacity(lane_ops as usize);
                    let mut scan_buf = Vec::new();
                    for opno in 0..lane_ops {
                        let op = gen.next_op();
                        let disc = match &op {
                            Op::Read(_) => 0u8,
                            Op::Update(_) => 1,
                            Op::Insert(_) => 2,
                            Op::Scan(..) => 3,
                        };
                        let key = op.key();
                        if rdwc && disc <= 1 {
                            let now = handle.clock_ns();
                            // chime-lint: allow(async-block): the engine runs exactly one lane at a time, so this cross-lane combining map is uncontended by construction.
                            let hit = combined.lock().unwrap().get(&(disc, key)).and_then(
                                |&(done_at, lat)| (done_at > now).then_some(lat),
                            );
                            if let Some(lat) = hit {
                                lats.push((disc, lat));
                                continue;
                            }
                        }
                        handle.set_trace_id(trace_base | opno);
                        let t0 = handle.clock_ns();
                        match op {
                            Op::Read(kk) => {
                                let _ = handle.search(kk);
                            }
                            Op::Update(kk) => {
                                let _ = handle.update(kk, &value).expect("update");
                            }
                            Op::Insert(kk) => {
                                handle.insert(kk, &value).expect("insert");
                            }
                            Op::Scan(kk, n) => {
                                scan_buf.clear();
                                handle.scan(kk, n, &mut scan_buf);
                            }
                        }
                        let lat = handle.clock_ns() - t0;
                        if rdwc && disc <= 1 {
                            let done = (handle.clock_ns(), lat);
                            // chime-lint: allow(async-block): single-lane-at-a-time engine; see the read-side note above.
                            combined.lock().unwrap().insert((disc, key), done);
                        }
                        lats.push((disc, lat));
                    }
                    let busy = handle.clock_ns() - t_start;
                    let telem_delta = handle.telemetry().map(|t| match &telem0 {
                        Some(prev) => t.series.since(prev),
                        None => t.series.clone(),
                    });
                    (handle, lats, busy, telem_delta)
                }));
            }
            let run = engine.run_client(net, setup.num_mns, bodies);
            qp_total.merge(&run.qp);
            let mut client_busy = 0u64;
            for (l, res) in run.lanes.into_iter().enumerate() {
                let (mut handle, lats, busy, telem_delta) = match res {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                };
                client_busy = client_busy.max(busy);
                if let Some(d) = &telem_delta {
                    timeline.merge(d);
                }
                if let Some(t) = handle.telemetry() {
                    flight.push(((gci * k + l) as u32, t.flight.clone()));
                }
                if gci < setup.trace_clients {
                    if let Some(tr) = handle.take_tracer() {
                        tracers.push(tr);
                    }
                }
                for &(disc, lat) in &lats {
                    hist.record(lat);
                    op_hists[disc as usize].record(lat);
                    sum_latency += lat;
                    executed += 1;
                }
                let d = handle.stats().since(&stats_before[l]);
                total_msgs += d.msgs;
                total_wire += d.wire_bytes;
                total_app += d.app_bytes;
                total_rtts += d.rtts;
                lanes_agg[l].ops += lats.len() as u64;
                lanes_agg[l].op_retries += d.op_retries;
                lanes_agg[l].lock_retries += d.lock_retries;
                stats_delta.merge(&d);
                if let (Some(p), Some(p0)) = (handle.profile(), &prof_before[l]) {
                    let dp = p.since(p0);
                    lanes_agg[l].backoff_ns += dp.phase(Phase::RetryBackoff).ns;
                    lanes_agg[l].cq_wait_ns += dp.phase(Phase::CqWait).ns;
                    profile_delta.merge(&dp);
                }
                slots[ci * k + l] = Some(handle);
            }
            sum_busy += client_busy;
        }
        *all_clients = slots
            .into_iter()
            .map(|s| s.expect("lane handle returned"))
            .collect();
    }
    assemble(
        setup,
        dep,
        Agg {
            hist,
            op_hists,
            profile_delta,
            total_msgs,
            total_wire,
            total_app,
            total_rtts,
            sum_latency,
            executed,
            stats_delta,
            sum_busy,
            qp: Some(qp_total),
            lanes: lanes_agg,
            mn_before,
            cache_before,
            hotspot_before,
            router_before,
            timeline,
            flight,
            tracers,
        },
    )
}

/// Integer histogram → metrics summary (values are counts, not ns; the
/// `*_ns` field names are reused for the quantile slots).
fn count_summary(h: &CountHist) -> HistogramSummary {
    HistogramSummary {
        count: h.count(),
        mean_ns: h.mean().round() as u64,
        p50_ns: h.quantile(0.5),
        p90_ns: h.quantile(0.9),
        p99_ns: h.quantile(0.99),
        max_ns: h.max(),
    }
}

/// Converts the collected counts into the modeled [`BenchResult`], shared
/// by the serial and pipelined measured loops.
fn assemble(setup: &BenchSetup, dep: &mut Deployment, agg: Agg) -> BenchResult {
    let Agg {
        hist,
        op_hists,
        profile_delta,
        total_msgs,
        total_wire,
        total_app,
        total_rtts,
        sum_latency,
        executed,
        stats_delta,
        sum_busy,
        qp,
        lanes,
        mn_before,
        cache_before,
        hotspot_before,
        router_before,
        timeline,
        flight,
        tracers,
    } = agg;
    let net = NetConfig::default();
    // Per-MN traffic deltas of the measured phase, computed up front: for
    // partitioned runs they are the accounting source of truth (they
    // include migration traffic, which client-side counters on the
    // migrator's endpoint alone would not attribute per MN) and their max
    // feeds the skew-aware NIC cap of the network model.
    let mn_traffic: Vec<(u64, u64)> = dep
        .pool
        .traffic()
        .iter()
        .zip(&mn_before)
        .map(|(now, before)| {
            let d = now.since(before);
            (d.msgs, d.wire_bytes)
        })
        .collect();
    let part_run = matches!(setup.kind, IndexKind::Part(_));
    let (pool_msgs, pool_wire) = mn_traffic
        .iter()
        .fold((0u64, 0u64), |(m, w), &(dm, dw)| (m + dm, w + dw));
    let (max_mn_msgs, max_mn_wire_bytes) = if part_run {
        (
            mn_traffic.iter().map(|&(m, _)| m).max().unwrap_or(0),
            mn_traffic.iter().map(|&(_, w)| w).max().unwrap_or(0),
        )
    } else {
        // Non-partitioned indexes stripe allocations over the MNs; zero
        // tells the model to assume uniform spread, as it always has.
        (0, 0)
    };
    let acc = RunAccounting {
        ops: executed,
        clients: setup.clients as u64,
        mns: setup.num_mns as u64,
        total_msgs: if part_run { pool_msgs } else { total_msgs },
        total_wire_bytes: if part_run { pool_wire } else { total_wire },
        max_mn_msgs,
        max_mn_wire_bytes,
        sum_latency_ns: sum_latency,
        sum_busy_ns: sum_busy,
    };
    let est = net.model(&acc);
    let cache_bytes = dep
        .cns
        .iter()
        .map(|cs| cs.first().map(|c| c.cache_bytes()).unwrap_or(0))
        .max()
        .unwrap_or(0);
    let (hs_hits, hs_lookups) = {
        let (h1, l1) = probe_hotspot(dep);
        let (h0, l0) = hotspot_before;
        (h1 - h0, l1 - l0)
    };
    let hit_ratio = ratio(hs_hits, hs_lookups);
    let (cache_hits, cache_misses) = dep
        .cache_probe
        .iter()
        .zip(&cache_before)
        .map(|(p, &(h0, m0))| {
            let (h1, m1) = p();
            (h1 - h0, m1 - m0)
        })
        .fold((0, 0), |(a, b), (h, m)| (a + h, b + m));
    let remote_bytes = dep.pool.allocated_bytes();
    let mut metrics = MetricsSnapshot::new();
    for (name, v) in stats_delta.as_pairs() {
        metrics.counter(&format!("client_{name}_total"), &[], v);
    }
    metrics.counter("cache_hits_total", &[], cache_hits);
    metrics.counter("cache_misses_total", &[], cache_misses);
    metrics.counter("hotspot_hits_total", &[], hs_hits);
    metrics.counter("hotspot_lookups_total", &[], hs_lookups);
    metrics.counter("ops_total", &[], executed);
    for (mn, &(msgs, wire)) in mn_traffic.iter().enumerate() {
        let id = mn.to_string();
        metrics.counter("mn_msgs_total", &[("mn", &id)], msgs);
        metrics.counter("mn_wire_bytes_total", &[("mn", &id)], wire);
    }
    // Routing and migration counters: the scalar series are always
    // emitted (zero without a router) so the flat key set is stable
    // across index kinds; per-partition ops only exist on routed runs.
    let router_now = probe_router(dep);
    metrics.counter("route_hits_total", &[], router_now.hits - router_before.hits);
    metrics.counter(
        "route_stale_epoch_total",
        &[],
        router_now.stale - router_before.stale,
    );
    metrics.counter(
        "route_refreshes_total",
        &[],
        router_now.refreshes - router_before.refreshes,
    );
    metrics.counter(
        "migrate_migrations_total",
        &[],
        router_now.migrations - router_before.migrations,
    );
    metrics.counter(
        "migrate_leaves_moved_total",
        &[],
        router_now.leaves_moved - router_before.leaves_moved,
    );
    metrics.counter(
        "migrate_items_moved_total",
        &[],
        router_now.items_moved - router_before.items_moved,
    );
    for (p, &ops) in router_now.part_ops.iter().enumerate() {
        let before = router_before.part_ops.get(p).copied().unwrap_or(0);
        let id = p.to_string();
        metrics.counter("part_ops_total", &[("part", &id)], ops - before);
    }
    metrics.gauge("cache_bytes", &[], cache_bytes as f64);
    metrics.gauge("remote_alloc_bytes", &[], remote_bytes as f64);
    metrics.gauge("cache_hit_ratio", &[], ratio(cache_hits, cache_hits + cache_misses));
    metrics.gauge("hotspot_hit_ratio", &[], hit_ratio);
    metrics.histogram(
        "op_latency",
        &[],
        HistogramSummary {
            count: executed,
            mean_ns: sum_latency.checked_div(executed).unwrap_or(0),
            p50_ns: hist.quantile(0.5),
            p90_ns: hist.quantile(0.9),
            p99_ns: hist.quantile(0.99),
            max_ns: hist.max(),
        },
    );
    // Per-op-type latency percentiles. All four op types are always
    // present (zero-count histograms included) so the metric key set is
    // stable across runs and workloads.
    for (disc, name) in OP_NAMES.iter().enumerate() {
        metrics.histogram("op_latency", &[("op", name)], op_hists[disc].summary());
    }
    // Phase attribution: exclusive virtual time, verb traffic and episode
    // latencies per phase, merged over every participating client. Every
    // phase of the taxonomy is emitted (zeros included) for a stable key
    // set.
    for phase in Phase::ALL {
        let acc = profile_delta.phase(phase);
        let labels = [("phase", phase.as_str())];
        metrics.counter("phase_ns_total", &labels, acc.ns);
        metrics.counter("phase_verbs_total", &labels, acc.verbs);
        metrics.counter("phase_rtts_total", &labels, acc.rtts);
        metrics.counter("phase_wire_bytes_total", &labels, acc.wire_bytes);
        metrics.counter("phase_episodes_total", &labels, acc.episodes);
        metrics.histogram("phase_latency", &labels, acc.hist.summary());
    }
    // Retry root-cause attribution (why ops restarted, not just how often).
    for cause in RetryCause::ALL {
        metrics.counter(
            "retry_cause_total",
            &[("cause", cause.as_str())],
            profile_delta.retry_count(cause),
        );
    }
    // Queue-pair model: doorbell batching and CQ depth (pipelined runs).
    if let Some(qp) = &qp {
        metrics.counter("qp_wqes_posted_total", &[], qp.posted);
        metrics.counter("qp_doorbells_total", &[], qp.doorbells);
        metrics.counter("qp_batched_wqes_total", &[], qp.batched_wqes);
        metrics.gauge("doorbell_batch_mean", &[], qp.batch_hist.mean());
        metrics.gauge(
            "doorbell_batched_frac",
            &[],
            ratio(qp.batched_wqes, qp.posted),
        );
        metrics.histogram("doorbell_batch_size", &[], count_summary(&qp.batch_hist));
        metrics.histogram("cq_depth", &[], count_summary(&qp.depth_hist));
    }
    // Per-lane-index contention attribution: lock retries + backoff say
    // "pipelining amplified contention", CQ wait says "network-bound".
    for (l, lane) in lanes.iter().enumerate() {
        let id = l.to_string();
        let labels = [("lane", id.as_str())];
        metrics.counter("lane_ops_total", &labels, lane.ops);
        metrics.counter("lane_op_retries_total", &labels, lane.op_retries);
        metrics.counter("lane_lock_retries_total", &labels, lane.lock_retries);
        metrics.counter("lane_backoff_ns_total", &labels, lane.backoff_ns);
        metrics.counter("lane_cq_wait_ns_total", &labels, lane.cq_wait_ns);
    }
    // In-run anomaly detection over the merged timeline; findings ride the
    // result into the report where `explain` can cite them.
    let anomalies = obs::detect(&timeline, &AnomalyConfig::default());
    metrics.counter("anomalies_total", &[], anomalies.len() as u64);
    let perfetto = (!tracers.is_empty())
        .then(|| obs::to_perfetto(&tracers.iter().collect::<Vec<&Tracer>>()));
    // At saturation, queueing delay dominates and is roughly exponential,
    // so the tail stretches beyond the uniform inflation of the mean.
    let queue = est.inflation - 1.0;
    let tail = 1.0 + 2.0 * queue / (1.0 + queue);
    BenchResult {
        mops: est.mops,
        p50_us: hist.quantile(0.5) as f64 * est.inflation / 1_000.0,
        p90_us: hist.quantile(0.9) as f64 * est.inflation / 1_000.0,
        p99_us: hist.quantile(0.99) as f64 * est.inflation * tail / 1_000.0,
        avg_us: est.avg_latency_ns / 1_000.0,
        bound: est.bound,
        bytes_per_op: est.bytes_per_op,
        msgs_per_op: est.msgs_per_op,
        rtts_per_op: total_rtts as f64 / executed as f64,
        read_amp: if total_app == 0 {
            0.0
        } else {
            total_wire as f64 / total_app as f64
        },
        cache_bytes,
        hotspot_hit_ratio: hit_ratio,
        cache_hit_ratio: ratio(cache_hits, cache_hits + cache_misses),
        remote_bytes,
        mn_traffic,
        metrics,
        timeline,
        anomalies,
        flight,
        perfetto,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn probe_hotspot(dep: &Deployment) -> (u64, u64) {
    dep.hotspot_probe
        .as_ref()
        .map(|cns| {
            cns.iter()
                .map(|c| c.hotspot_stats())
                .fold((0, 0), |(a, b), (h, l)| (a + h, b + l))
        })
        .unwrap_or((0, 0))
}

/// Prints a standard result row.
pub fn print_row(label: &str, clients: usize, r: &BenchResult) {
    println!(
        "{label:<28} {clients:>5}  {:>8.3} Mops  p50 {:>8.1} us  p99 {:>8.1} us  {:>7.0} B/op  {:>5.2} rtt/op  amp {:>6.1}  cache {:>8.2} MB  [{:?}]",
        r.mops,
        r.p50_us,
        r.p99_us,
        r.bytes_per_op,
        r.rtts_per_op,
        r.read_amp,
        r.cache_bytes as f64 / (1 << 20) as f64,
        r.bound,
    );
}

/// Parses `--flag value` style arguments (tiny, dependency-free).
pub struct Args {
    map: HashMap<String, String>,
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if let Some(name) = a.strip_prefix("--") {
                let val = args.next().unwrap_or_else(|| "true".into());
                map.insert(name.to_string(), val);
            }
        }
        Args { map }
    }

    /// Returns the flag value parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.map
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a boolean flag is present and truthy.
    pub fn flag(&self, name: &str) -> bool {
        self.get(name, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: IndexKind, workload: Workload) -> BenchSetup {
        BenchSetup {
            kind,
            num_cns: 2,
            clients: 8,
            preload: 5_000,
            ops: 4_000,
            mn_capacity: 512 << 20,
            workload,
            ..Default::default()
        }
    }

    #[test]
    fn chime_runs_all_workloads() {
        for w in Workload::ALL {
            let r = run(&tiny(IndexKind::Chime(chime::ChimeConfig::default()), w));
            assert!(r.mops > 0.0, "workload {w:?}");
            assert!(r.p99_us >= r.p50_us);
        }
    }

    #[test]
    fn all_indexes_run_ycsb_c() {
        let kinds = [
            IndexKind::Chime(chime::ChimeConfig::default()),
            IndexKind::Sherman(sherman::ShermanConfig::default()),
            IndexKind::Rolex(rolex::RolexConfig::default()),
            IndexKind::Smart(smart::SmartConfig::default()),
        ];
        for k in kinds {
            let name = k.name();
            let r = run(&tiny(k, Workload::C));
            assert!(r.mops > 0.0, "{name}");
            assert!(r.bytes_per_op > 0.0, "{name}");
        }
    }

    #[test]
    fn chime_beats_sherman_on_read_amplification() {
        let rc = run(&tiny(
            IndexKind::Chime(chime::ChimeConfig::default()),
            Workload::C,
        ));
        let rs = run(&tiny(
            IndexKind::Sherman(sherman::ShermanConfig::default()),
            Workload::C,
        ));
        assert!(
            rc.bytes_per_op * 2.0 < rs.bytes_per_op,
            "CHIME {:.0} B/op vs Sherman {:.0} B/op",
            rc.bytes_per_op,
            rs.bytes_per_op
        );
    }

    #[test]
    fn smart_cache_dwarfs_chime_cache() {
        let rc = run(&tiny(
            IndexKind::Chime(chime::ChimeConfig::default()),
            Workload::C,
        ));
        let rs = run(&tiny(
            IndexKind::Smart(smart::SmartConfig::default()),
            Workload::C,
        ));
        assert!(
            rs.cache_bytes > 3 * rc.cache_bytes,
            "SMART {} vs CHIME {}",
            rs.cache_bytes,
            rc.cache_bytes
        );
    }

    #[test]
    fn more_clients_more_throughput_until_saturation() {
        let mk = |clients| BenchSetup {
            clients,
            ..tiny(IndexKind::Chime(chime::ChimeConfig::default()), Workload::C)
        };
        let r8 = run(&mk(8));
        let r64 = run(&mk(64));
        assert!(r64.mops > r8.mops * 2.0, "{} vs {}", r64.mops, r8.mops);
    }

    #[test]
    fn pipelined_lanes_raise_modeled_throughput() {
        let mk = |k: usize| BenchSetup {
            coroutines: k,
            clients: 16,
            theta: 0.01, // near-uniform: pipelining gain, not contention
            ..tiny(IndexKind::Chime(chime::ChimeConfig::default()), Workload::C)
        };
        let r1 = run(&mk(1));
        let r4 = run(&mk(4));
        assert!(
            r4.mops > r1.mops * 1.5,
            "K=4 {} Mops vs K=1 {} Mops",
            r4.mops,
            r1.mops
        );
        // The QP model keys only light up in pipelined runs.
        assert!(r4.metrics.counter_value("qp_doorbells_total", &[]) > 0);
        assert!(r4.metrics.counter_value("lane_ops_total", &[("lane", "3")]) > 0);
        assert_eq!(r1.metrics.counter_value("qp_doorbells_total", &[]), 0);
        // Pipelined lanes wait on the CQ; serial clients never do.
        let cq = [("phase", "cq_wait")];
        assert!(r4.metrics.counter_value("phase_ns_total", &cq) > 0);
        assert_eq!(r1.metrics.counter_value("phase_ns_total", &cq), 0);
    }

    #[test]
    fn pipelined_runs_are_deterministic() {
        let mk = || BenchSetup {
            coroutines: 4,
            clients: 8,
            ops: 2_000,
            ..tiny(IndexKind::Chime(chime::ChimeConfig::default()), Workload::A)
        };
        let a = run(&mk());
        let b = run(&mk());
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.mops, b.mops);
    }

    #[test]
    fn partitioned_chime_routes_and_accounts_per_mn() {
        let cfg = part::ClusterConfig {
            parts: 4,
            chime: chime::ChimeConfig {
                cache_bytes: 1 << 20,
                hotspot_bytes: 1 << 16,
                ..Default::default()
            },
            check_every: 64,
            migrate: None,
        };
        let mut setup = tiny(IndexKind::Part(cfg), Workload::A);
        setup.num_mns = 2;
        let r = run(&setup);
        assert!(r.mops > 0.0);
        assert!(r.metrics.counter_value("route_hits_total", &[]) > 0);
        // Hashed keys spread over all partitions, partitions over both MNs.
        for p in 0..4 {
            let id = p.to_string();
            assert!(
                r.metrics.counter_value("part_ops_total", &[("part", &id)]) > 0,
                "partition {p} never hit"
            );
        }
        assert_eq!(r.mn_traffic.len(), 2);
        assert!(r.mn_traffic.iter().all(|&(m, _)| m > 0), "both MNs see traffic");
        // Deterministic replay, router included.
        let r2 = run(&setup);
        assert_eq!(r.metrics.to_json(), r2.metrics.to_json());
    }

    #[test]
    fn router_metric_keys_are_zero_without_a_router() {
        let r = run(&tiny(IndexKind::Chime(chime::ChimeConfig::default()), Workload::C));
        assert_eq!(r.metrics.counter_value("route_hits_total", &[]), 0);
        assert_eq!(r.metrics.counter_value("route_stale_epoch_total", &[]), 0);
        assert_eq!(r.metrics.counter_value("migrate_migrations_total", &[]), 0);
        assert_eq!(r.metrics.counter_value("migrate_leaves_moved_total", &[]), 0);
        assert!(r
            .metrics
            .counter_labeled_values("part_ops_total", "part")
            .is_empty());
    }

    #[test]
    fn rdwc_does_not_hurt() {
        let mk = |rdwc| BenchSetup {
            rdwc,
            clients: 32,
            ..tiny(IndexKind::Chime(chime::ChimeConfig::default()), Workload::C)
        };
        let with = run(&mk(true));
        let without = run(&mk(false));
        assert!(with.mops >= without.mops * 0.99);
    }
}
