//! Experiment harness library (figure runners live in `src/bin`).

#![forbid(unsafe_code)]
pub mod driver;
pub mod explain;
pub mod report;
