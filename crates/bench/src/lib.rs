//! Experiment harness library (figure runners live in `src/bin`).
pub mod driver;
pub mod explain;
pub mod report;
