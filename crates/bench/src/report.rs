//! Machine-readable bench output.
//!
//! Every figure binary accumulates its measured points into a [`Report`] and
//! writes `BENCH_<name>.json` next to its human-readable table. The file
//! carries, per point, the flat gate-comparable metric map (throughput,
//! latency percentiles, verbs/op, bytes/op, cache hit rate), the per-MN
//! traffic split, the full [`MetricsSnapshot`], and (schema 3) the windowed
//! timeline of the measured phase with the anomalies the in-run detector
//! found in it. The timelines are additionally written standalone as
//! `TIMELINE_<name>.json` so plotting and CI determinism checks need not
//! parse the full report. Output is deterministic: two runs with the same
//! seed produce byte-identical files.

use std::path::PathBuf;

use obs::{BenchPoint, Json, Phase, RetryCause};

use crate::driver::{BenchResult, OP_NAMES};

/// A machine-readable bench report (one per figure binary).
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    points: Vec<BenchPoint>,
    details: Vec<Json>,
    timelines: Vec<Json>,
}

impl Report {
    /// Creates an empty report for bench `name` (e.g. `fig3`).
    pub fn new(name: &str) -> Self {
        Report {
            name: name.to_string(),
            points: Vec::new(),
            details: Vec::new(),
            timelines: Vec::new(),
        }
    }

    /// Adds one measured point under `point` (unique within the report).
    pub fn add(&mut self, point: &str, r: &BenchResult) {
        self.points.push(BenchPoint {
            name: point.to_string(),
            metrics: Self::flat_metrics(r),
        });
        let per_mn = Json::Arr(
            r.mn_traffic
                .iter()
                .map(|&(msgs, wire)| {
                    Json::obj(vec![
                        ("msgs", Json::from(msgs)),
                        ("wire_bytes", Json::from(wire)),
                    ])
                })
                .collect(),
        );
        let timeline = r.timeline.to_json();
        let anomalies = obs::anomaly::to_json(&r.anomalies);
        self.details.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(point.to_string())),
            (
                "metrics".to_string(),
                Json::Obj(
                    self.points
                        .last()
                        .unwrap()
                        .metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("per_mn".to_string(), per_mn),
            ("snapshot".to_string(), r.metrics.to_json_value()),
            ("timeline".to_string(), timeline.clone()),
            ("anomalies".to_string(), anomalies.clone()),
        ]));
        self.timelines.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(point.to_string())),
            ("timeline".to_string(), timeline),
            ("anomalies".to_string(), anomalies),
        ]));
    }

    /// Adds a point with hand-picked metrics (layout studies, raw verb
    /// streams — anything without a full [`BenchResult`]).
    pub fn add_custom(&mut self, point: &str, metrics: &[(&str, f64)]) {
        let p = BenchPoint::new(point, metrics);
        self.details.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(point.to_string())),
            (
                "metrics".to_string(),
                Json::Obj(
                    p.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ]));
        self.points.push(p);
    }

    /// Attaches a timeline (and its detected anomalies) to the standalone
    /// timeline document for a point added with [`Report::add_custom`] —
    /// sources like the serve simulator that carry a [`obs::TimeSeries`]
    /// without a full [`BenchResult`].
    pub fn attach_timeline(
        &mut self,
        point: &str,
        timeline: &obs::TimeSeries,
        anomalies: &[obs::Anomaly],
    ) {
        self.timelines.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(point.to_string())),
            ("timeline".to_string(), timeline.to_json()),
            ("anomalies".to_string(), obs::anomaly::to_json(anomalies)),
        ]));
    }

    /// The gate-comparable view of the accumulated points.
    pub fn points(&self) -> &[BenchPoint] {
        &self.points
    }

    /// The flat metric map the perf gate compares.
    pub fn flat_metrics(r: &BenchResult) -> std::collections::BTreeMap<String, f64> {
        let executed = r.metrics.counter_value("ops_total", &[]).max(1);
        let verbs: u64 = [
            "client_reads_total",
            "client_writes_total",
            "client_atomics_total",
            "client_rpcs_total",
        ]
        .iter()
        .map(|n| r.metrics.counter_value(n, &[]))
        .sum();
        let mut m: std::collections::BTreeMap<String, f64> = [
            ("mops", r.mops),
            ("p50_us", r.p50_us),
            ("p90_us", r.p90_us),
            ("p99_us", r.p99_us),
            ("avg_us", r.avg_us),
            ("bytes_per_op", r.bytes_per_op),
            ("msgs_per_op", r.msgs_per_op),
            ("rtts_per_op", r.rtts_per_op),
            ("verbs_per_op", verbs as f64 / executed as f64),
            ("read_amp", r.read_amp),
            ("cache_mb", r.cache_bytes as f64 / (1 << 20) as f64),
            ("cache_hit_ratio", r.cache_hit_ratio),
            ("hotspot_hit_ratio", r.hotspot_hit_ratio),
            ("remote_mb", r.remote_bytes as f64 / (1 << 20) as f64),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        // Per-op-type virtual-latency percentiles (raw, no saturation
        // inflation). Zero-count op types report 0 so the key set is stable.
        for op in OP_NAMES {
            let h = r
                .metrics
                .histogram_value("op_latency", &[("op", op)])
                .unwrap_or_default();
            m.insert(format!("lat.{op}.p50_us"), h.p50_ns as f64 / 1_000.0);
            m.insert(format!("lat.{op}.p90_us"), h.p90_ns as f64 / 1_000.0);
            m.insert(format!("lat.{op}.p99_us"), h.p99_ns as f64 / 1_000.0);
        }
        // Per-phase attribution, normalized per op. All phases present.
        for phase in Phase::ALL {
            let labels = [("phase", phase.as_str())];
            let ns = r.metrics.counter_value("phase_ns_total", &labels);
            let rtts = r.metrics.counter_value("phase_rtts_total", &labels);
            m.insert(
                format!("phase_ns_per_op.{}", phase.as_str()),
                ns as f64 / executed as f64,
            );
            m.insert(
                format!("phase_rtts_per_op.{}", phase.as_str()),
                rtts as f64 / executed as f64,
            );
        }
        // Queue-pair model keys: identically zero for serial runs so the
        // key set stays stable across coroutine counts.
        m.insert(
            "doorbell.batch_mean".to_string(),
            r.metrics.gauge_value("doorbell_batch_mean", &[]).unwrap_or(0.0),
        );
        m.insert(
            "doorbell.batched_frac".to_string(),
            r.metrics
                .gauge_value("doorbell_batched_frac", &[])
                .unwrap_or(0.0),
        );
        m.insert(
            "cq.depth_p99".to_string(),
            r.metrics
                .histogram_value("cq_depth", &[])
                .map(|h| h.p99_ns as f64)
                .unwrap_or(0.0),
        );
        m.insert(
            "qp.doorbells_per_op".to_string(),
            r.metrics.counter_value("qp_doorbells_total", &[]) as f64 / executed as f64,
        );
        // Routing and migration keys: the scalar series exist on every run
        // (zero without a router) so serial CHIME points keep a stable key
        // set; per-partition op counts appear only on routed runs.
        m.insert(
            "route.hits".to_string(),
            r.metrics.counter_value("route_hits_total", &[]) as f64,
        );
        m.insert(
            "route.stale_epoch".to_string(),
            r.metrics.counter_value("route_stale_epoch_total", &[]) as f64,
        );
        m.insert(
            "migrate.migrations".to_string(),
            r.metrics.counter_value("migrate_migrations_total", &[]) as f64,
        );
        m.insert(
            "migrate.leaves_moved".to_string(),
            r.metrics.counter_value("migrate_leaves_moved_total", &[]) as f64,
        );
        for (part, ops) in r.metrics.counter_labeled_values("part_ops_total", "part") {
            m.insert(format!("part.{part}.ops"), ops as f64);
        }
        // In-run anomaly count: attribution context (never gated) — a
        // regression accompanied by anomalies points `explain` at windows.
        m.insert(
            "anomalies".to_string(),
            r.metrics.counter_value("anomalies_total", &[]) as f64,
        );
        // Retry root causes, normalized per op. All causes present.
        for cause in RetryCause::ALL {
            let n = r
                .metrics
                .counter_value("retry_cause_total", &[("cause", cause.as_str())]);
            m.insert(
                format!("retries_per_op.{}", cause.as_str()),
                n as f64 / executed as f64,
            );
        }
        m
    }

    /// Serializes the report (pretty, deterministic).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("bench".to_string(), Json::Str(self.name.clone())),
            ("schema".to_string(), Json::from(3u64)),
            ("points".to_string(), Json::Arr(self.details.clone())),
        ])
        .to_pretty()
    }

    /// Serializes the standalone timeline document (pretty, deterministic):
    /// one entry per [`Report::add`]-ed point carrying its windowed timeline
    /// and detected anomalies.
    pub fn timeline_json(&self) -> String {
        Json::Obj(vec![
            ("bench".to_string(), Json::Str(self.name.clone())),
            ("schema".to_string(), Json::from(1u64)),
            ("points".to_string(), Json::Arr(self.timelines.clone())),
        ])
        .to_pretty()
    }

    /// Path the standalone timeline document writes to:
    /// `TIMELINE_<name>.json`, honoring `$BENCH_OUT_DIR` like
    /// [`Report::path`].
    pub fn timeline_path(&self) -> PathBuf {
        let file = format!("TIMELINE_{}.json", self.name);
        match std::env::var_os("BENCH_OUT_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir).join(file),
            _ => PathBuf::from(file),
        }
    }

    /// Path this report writes to: `BENCH_<name>.json`, placed in
    /// `$BENCH_OUT_DIR` when set (created if missing), else the working
    /// directory.
    pub fn path(&self) -> PathBuf {
        let file = format!("BENCH_{}.json", self.name);
        match std::env::var_os("BENCH_OUT_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir).join(file),
            _ => PathBuf::from(file),
        }
    }

    /// Writes `BENCH_<name>.json` (and `TIMELINE_<name>.json` when any
    /// point carries a timeline) and returns the report path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, self.to_json())?;
        if !self.timelines.is_empty() {
            std::fs::write(self.timeline_path(), self.timeline_json())?;
        }
        Ok(path)
    }

    /// Writes the report and prints where it went; exits the process on I/O
    /// failure so `run_figs.sh` can't silently miss a file.
    pub fn finish(&self) {
        match self.write() {
            Ok(path) => {
                println!("wrote {}", path.display());
                if !self.timelines.is_empty() {
                    println!("wrote {}", self.timeline_path().display());
                }
            }
            Err(e) => {
                eprintln!("error: writing {}: {e}", self.path().display());
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, BenchSetup, IndexKind};
    use ycsb::Workload;

    fn tiny() -> BenchSetup {
        BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig::default()),
            num_cns: 2,
            clients: 8,
            preload: 3_000,
            ops: 2_000,
            mn_capacity: 512 << 20,
            workload: Workload::C,
            ..Default::default()
        }
    }

    #[test]
    fn report_json_parses_and_carries_gate_metrics() {
        let r = run(&tiny());
        let mut rep = Report::new("unit");
        rep.add("chime/c/8", &r);
        let doc = obs::json::parse(&rep.to_json()).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("unit"));
        let points = doc.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(doc.get("schema").unwrap().as_f64(), Some(3.0));
        let m = points[0].get("metrics").unwrap();
        assert!(m.get("mops").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("verbs_per_op").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("p90_us").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("lat.read.p50_us").unwrap().as_f64().unwrap() > 0.0);
        // YCSB C never inserts, but the key must still exist (stable set).
        assert_eq!(m.get("lat.insert.p99_us").unwrap().as_f64(), Some(0.0));
        assert!(m.get("phase_ns_per_op.traversal").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("phase_rtts_per_op.leaf_read").unwrap().as_f64().unwrap() > 0.0);
        assert!(m.get("retries_per_op.lock_conflict").unwrap().as_f64().is_some());
        // Router keys exist (zero) even on unpartitioned runs; the
        // per-partition series does not.
        assert_eq!(m.get("route.hits").unwrap().as_f64(), Some(0.0));
        assert_eq!(m.get("migrate.leaves_moved").unwrap().as_f64(), Some(0.0));
        assert!(m.get("part.0.ops").is_none());
        assert!(points[0].get("per_mn").unwrap().as_arr().unwrap().len() == 1);
        // Schema 3: every point carries its windowed timeline + findings.
        let tl = points[0].get("timeline").unwrap();
        assert!(!tl.get("windows").unwrap().as_arr().unwrap().is_empty());
        assert!(points[0].get("anomalies").unwrap().as_arr().is_some());
        let tdoc = obs::json::parse(&rep.timeline_json()).unwrap();
        assert_eq!(tdoc.get("bench").unwrap().as_str(), Some("unit"));
        assert_eq!(
            tdoc.get("points").unwrap().as_arr().unwrap().len(),
            1
        );
        assert!(points[0]
            .get("snapshot")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("ops_total")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0);
        assert_eq!(rep.points()[0].name, "chime/c/8");
    }
}
