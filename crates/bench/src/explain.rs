//! Bench-regression attribution: diff two bench documents.
//!
//! [`explain`] compares two sets of named bench points (an old and a new
//! run — `BENCH_<name>.json` files or `baseline.json` gate documents) and
//! produces a plain-text report that does not just *say* a headline metric
//! moved, but *attributes* the move to the schema-2 breakdown metrics:
//! per-phase time and round-trips per op, retry root causes, and per-op-type
//! latency percentiles. The report is a pure function of its inputs —
//! byte-identical across runs — so it can be asserted in tests and pasted
//! into CI logs.

use std::fmt::Write as _;

use obs::{direction_of, BenchPoint, Direction, Json};

/// Headline metrics, reported for every point in both documents.
const HEADLINES: &[&str] = &[
    "mops",
    "p50_us",
    "p90_us",
    "p99_us",
    "avg_us",
    "bytes_per_op",
    "rtts_per_op",
    "verbs_per_op",
];

/// Attribution categories: section title plus the metric prefix whose
/// entries it ranks.
const CATEGORIES: &[(&str, &str)] = &[
    ("phase time (ns/op)", "phase_ns_per_op."),
    ("phase round-trips (rtt/op)", "phase_rtts_per_op."),
    ("retry causes (retries/op)", "retries_per_op."),
    ("op-type latency (us)", "lat."),
];

/// Entries shown per attribution category.
const TOP_PER_CATEGORY: usize = 6;

/// A headline regression/improvement below this relative change (percent)
/// does not trigger attribution output for the point.
const ATTRIBUTION_THRESHOLD_PCT: f64 = 1.0;

/// Extracts the flat `points` (name + metric map) from a bench document:
/// either a `BENCH_<name>.json` report or a `baseline.json` gate document
/// (both carry `points: [{name, metrics}]`).
pub fn load_points(text: &str) -> Result<Vec<BenchPoint>, String> {
    let doc = obs::json::parse(text)?;
    let arr = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("document has no points array")?;
    let mut out = Vec::new();
    for p in arr {
        let name = p
            .get("name")
            .and_then(Json::as_str)
            .ok_or("point missing name")?
            .to_string();
        let mut metrics = std::collections::BTreeMap::new();
        if let Some(Json::Obj(members)) = p.get("metrics") {
            for (k, v) in members {
                if let Some(n) = v.as_f64() {
                    metrics.insert(k.clone(), n);
                }
            }
        }
        out.push(BenchPoint { name, metrics });
    }
    Ok(out)
}

/// Extracts per-point anomaly citations from a schema-3 bench document:
/// `(point name, one formatted citation line per finding)`. Points without
/// findings are omitted; pre-schema-3 documents yield an empty list. The
/// citation format matches [`obs::Anomaly::cite`] so a finding reads the
/// same whether it is printed in-run or replayed from the report.
pub fn load_citations(text: &str) -> Result<Vec<(String, Vec<String>)>, String> {
    let doc = obs::json::parse(text)?;
    let arr = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("document has no points array")?;
    let mut out = Vec::new();
    for p in arr {
        let name = p
            .get("name")
            .and_then(Json::as_str)
            .ok_or("point missing name")?
            .to_string();
        let Some(anoms) = p.get("anomalies").and_then(Json::as_arr) else {
            continue;
        };
        let cites: Vec<String> = anoms
            .iter()
            .filter_map(|a| {
                let kind = a.get("kind")?.as_str()?;
                let window = a.get("window")?.as_f64()? as u64;
                let t0 = a.get("t_start_ns")?.as_f64()? as u64;
                let t1 = a.get("t_end_ns")?.as_f64()? as u64;
                let severity = a.get("severity")?.as_f64()?;
                let detail = a.get("detail")?.as_str()?;
                Some(format!(
                    "{kind} at window {window} [{t0}..{t1} ns): {detail} (severity {severity:.2})"
                ))
            })
            .collect();
        if !cites.is_empty() {
            out.push((name, cites));
        }
    }
    Ok(out)
}

/// Renders anomaly citations as a report section. Empty input renders
/// nothing so callers can print the result unconditionally.
pub fn cite_anomalies(label: &str, citations: &[(String, Vec<String>)]) -> String {
    if citations.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n# anomalies in {label}:");
    for (point, cites) in citations {
        let _ = writeln!(out, "## {point}");
        for c in cites {
            let _ = writeln!(out, "  {c}");
        }
    }
    out
}

fn pct(old: f64, new: f64) -> Option<f64> {
    if old == 0.0 {
        None
    } else {
        Some((new - old) / old.abs() * 100.0)
    }
}

fn fmt_pct(old: f64, new: f64) -> String {
    match pct(old, new) {
        Some(p) => format!("{p:+.1}%"),
        None if new == 0.0 => "=".to_string(),
        None => "new".to_string(),
    }
}

/// One changed attribution metric, ready for ranking.
struct Delta {
    name: String,
    old: f64,
    new: f64,
    delta: f64,
}

fn category_deltas(prefix: &str, old: &BenchPoint, new: &BenchPoint) -> Vec<Delta> {
    let mut out: Vec<Delta> = new
        .metrics
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .filter_map(|(k, &nv)| {
            let ov = old.metrics.get(k).copied()?;
            ((nv - ov).abs() > 1e-12).then(|| Delta {
                name: k[prefix.len()..].to_string(),
                old: ov,
                new: nv,
                delta: nv - ov,
            })
        })
        .collect();
    // Largest movers first; ties break on the name so the output is total
    // -ordered and byte-stable.
    out.sort_by(|a, b| {
        b.delta
            .abs()
            .partial_cmp(&a.delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Renders the attribution report comparing `old` to `new`.
///
/// Points are visited in `old`'s order; points only present on one side are
/// listed but not diffed. For every shared point the headline metrics are
/// tabulated, and when any of them moved beyond
/// [`ATTRIBUTION_THRESHOLD_PCT`] the breakdown metrics are ranked by
/// absolute delta within each category (phase time, phase round-trips,
/// retry causes, op-type latencies).
pub fn explain(old_label: &str, old: &[BenchPoint], new_label: &str, new: &[BenchPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# explain: {old_label} -> {new_label}");
    // The two documents need not cover the same points (a new figure adds
    // points, a retired one drops them): shared points are diffed, the rest
    // are reported as added/removed so the comparison never errors.
    let shared = old
        .iter()
        .filter(|p| new.iter().any(|q| q.name == p.name))
        .count();
    let removed = old.len() - shared;
    let added = new
        .iter()
        .filter(|p| !old.iter().any(|q| q.name == p.name))
        .count();
    let _ = writeln!(
        out,
        "# points: {shared} shared, {added} added (only in {new_label}), {removed} removed (only in {old_label})"
    );
    for op in old {
        let Some(np) = new.iter().find(|p| p.name == op.name) else {
            let _ = writeln!(out, "\n## {} — removed (only in {old_label})", op.name);
            continue;
        };
        let _ = writeln!(out, "\n## {}", op.name);
        let mut worst: Option<(&str, f64)> = None;
        let mut moved = false;
        for &h in HEADLINES {
            let (Some(&ov), Some(&nv)) = (op.metrics.get(h), np.metrics.get(h)) else {
                continue;
            };
            let _ = writeln!(out, "  {h:<14} {ov:>12.4} -> {nv:>12.4}  ({})", fmt_pct(ov, nv));
            if let Some(p) = pct(ov, nv) {
                // Signed so that positive = worse, as in the gate.
                let worse = match direction_of(h) {
                    Direction::HigherBetter => -p,
                    Direction::LowerBetter => p,
                };
                if p.abs() > ATTRIBUTION_THRESHOLD_PCT {
                    moved = true;
                }
                if worst.map(|(_, w)| worse > w).unwrap_or(true) {
                    worst = Some((h, worse));
                }
            }
        }
        if !moved {
            let _ = writeln!(out, "  (headline metrics unchanged within {ATTRIBUTION_THRESHOLD_PCT}%)");
            continue;
        }
        if let Some((metric, worse)) = worst {
            if worse > ATTRIBUTION_THRESHOLD_PCT {
                let _ = writeln!(out, "  worst headline: {metric} ({worse:+.1}% worse)");
            }
        }
        for &(title, prefix) in CATEGORIES {
            let deltas = category_deltas(prefix, op, np);
            if deltas.is_empty() {
                continue;
            }
            let shown = deltas.len().min(TOP_PER_CATEGORY);
            let _ = writeln!(out, "  {title}:");
            for d in &deltas[..shown] {
                let _ = writeln!(
                    out,
                    "    {:<22} {:>12.4} -> {:>12.4}  ({:+.4}, {})",
                    d.name,
                    d.old,
                    d.new,
                    d.delta,
                    fmt_pct(d.old, d.new)
                );
            }
            if deltas.len() > shown {
                let _ = writeln!(out, "    ... {} more suppressed", deltas.len() - shown);
            }
        }
    }
    for np in new {
        if !old.iter().any(|p| p.name == np.name) {
            let _ = writeln!(out, "\n## {} — added (only in {new_label})", np.name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, metrics: &[(&str, f64)]) -> BenchPoint {
        BenchPoint::new(name, metrics)
    }

    fn old_new() -> (Vec<BenchPoint>, Vec<BenchPoint>) {
        let old = vec![point(
            "chime/c/16",
            &[
                ("mops", 10.0),
                ("p99_us", 50.0),
                ("phase_ns_per_op.lock_acquire", 100.0),
                ("phase_ns_per_op.leaf_read", 800.0),
                ("retries_per_op.lock_conflict", 0.01),
            ],
        )];
        let new = vec![point(
            "chime/c/16",
            &[
                ("mops", 8.0),
                ("p99_us", 65.0),
                ("phase_ns_per_op.lock_acquire", 400.0),
                ("phase_ns_per_op.leaf_read", 810.0),
                ("retries_per_op.lock_conflict", 0.09),
            ],
        )];
        (old, new)
    }

    #[test]
    fn attributes_regression_to_largest_mover() {
        let (old, new) = old_new();
        let rep = explain("old", &old, "new", &new);
        assert!(rep.contains("## chime/c/16"), "{rep}");
        assert!(rep.contains("worst headline: p99_us"), "{rep}");
        // lock_acquire (+300 ns/op) must rank above leaf_read (+10 ns/op).
        let la = rep.find("lock_acquire").unwrap();
        let lr = rep.find("leaf_read").unwrap();
        assert!(la < lr, "{rep}");
        assert!(rep.contains("retry causes"), "{rep}");
    }

    #[test]
    fn unchanged_points_skip_attribution() {
        let (old, _) = old_new();
        let rep = explain("a", &old, "b", &old);
        assert!(rep.contains("headline metrics unchanged"), "{rep}");
        assert!(!rep.contains("phase time"), "{rep}");
    }

    #[test]
    fn report_is_deterministic() {
        let (old, new) = old_new();
        assert_eq!(
            explain("old", &old, "new", &new),
            explain("old", &old, "new", &new)
        );
    }

    #[test]
    fn one_sided_points_are_listed() {
        let (old, new) = old_new();
        let mut new2 = new.clone();
        new2.push(point("fresh/point", &[("mops", 1.0)]));
        let mut old2 = old.clone();
        old2.push(point("gone/point", &[("mops", 1.0)]));
        let rep = explain("old", &old2, "new", &new2);
        assert!(rep.contains("gone/point — removed (only in old)"), "{rep}");
        assert!(rep.contains("fresh/point — added (only in new)"), "{rep}");
        assert!(rep.contains("# points: 1 shared, 1 added (only in new), 1 removed (only in old)"), "{rep}");
    }

    #[test]
    fn disjoint_point_sets_diff_without_erroring() {
        // An old baseline vs a document whose points are entirely new (the
        // scaleout figure landing against a pre-scaleout baseline): every
        // point is reported as added/removed, nothing is diffed, no error.
        let old = vec![point("chime/c/16", &[("mops", 10.0)])];
        let new = vec![
            point("uniform/mns4", &[("mops", 250.0)]),
            point("zipf/mns4/on", &[("mops", 240.0)]),
        ];
        let rep = explain("base", &old, "scaleout", &new);
        assert!(rep.contains("# points: 0 shared, 2 added (only in scaleout), 1 removed (only in base)"), "{rep}");
        assert!(rep.contains("chime/c/16 — removed (only in base)"), "{rep}");
        assert!(rep.contains("uniform/mns4 — added (only in scaleout)"), "{rep}");
        assert!(rep.contains("zipf/mns4/on — added (only in scaleout)"), "{rep}");
        assert_eq!(explain("base", &old, "scaleout", &new), rep);
    }

    #[test]
    fn citations_match_the_in_run_format() {
        let a = obs::Anomaly {
            kind: obs::AnomalyKind::ThroughputCliff,
            window: 7,
            t_start_ns: 700_000,
            t_end_ns: 800_000,
            severity: 0.9625,
            detail: "2 ops vs trailing mean 50.0".to_string(),
        };
        let doc = obs::Json::obj(vec![
            ("bench", obs::Json::from("x")),
            ("schema", obs::Json::from(3u64)),
            (
                "points",
                obs::Json::Arr(vec![obs::Json::obj(vec![
                    ("name", obs::Json::from("chime/c/16")),
                    ("anomalies", obs::anomaly::to_json(std::slice::from_ref(&a))),
                ])]),
            ),
        ])
        .to_pretty();
        let cites = load_citations(&doc).unwrap();
        assert_eq!(cites.len(), 1);
        assert_eq!(cites[0].0, "chime/c/16");
        assert_eq!(cites[0].1, vec![a.cite()]);
        let rendered = cite_anomalies("current", &cites);
        assert!(rendered.contains("# anomalies in current:"), "{rendered}");
        assert!(rendered.contains("window 7 [700000..800000 ns)"), "{rendered}");
        assert_eq!(cite_anomalies("current", &[]), "");
    }

    #[test]
    fn load_points_reads_both_document_shapes() {
        let bench_doc = r#"{"bench": "x", "schema": 2,
            "points": [{"name": "a", "metrics": {"mops": 1.5}, "snapshot": {}}]}"#;
        let p = load_points(bench_doc).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].metrics["mops"], 1.5);
        let gate_doc = r#"{"schema": 2, "tolerance_pct": 10.0, "gated": [],
            "points": [{"name": "b", "metrics": {"p99_us": 2.0}}]}"#;
        let p = load_points(gate_doc).unwrap();
        assert_eq!(p[0].name, "b");
    }
}
