//! Figure 12: throughput–latency curves for CHIME, Sherman, ROLEX, SMART
//! and SMART-Opt under YCSB A/B/C/D/E/LOAD.
//!
//! Usage: `fig12 [--preload N] [--ops N] [--workloads C,LOAD,...]`
//!
//! Each curve sweeps the client count on one shared deployment; the paper's
//! absolute numbers come from 100 Gbps hardware, so compare shapes and
//! ratios (see EXPERIMENTS.md).

use bench::driver::{deploy, print_row, run_deployed, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 200_000);
    let ops: u64 = args.get("ops", 60_000);
    let sweep = [20usize, 80, 160, 320, 640];
    let which: String = args.get("workloads", "C,LOAD,D,A,B,E".to_string());
    let workloads: Vec<Workload> = which
        .split(',')
        .map(|s| match s.trim() {
            "A" => Workload::A,
            "B" => Workload::B,
            "C" => Workload::C,
            "D" => Workload::D,
            "E" => Workload::E,
            "LOAD" => Workload::Load,
            other => panic!("unknown workload {other}"),
        })
        .collect();

    println!("# Figure 12: throughput-latency under YCSB workloads");
    println!("# preload={preload} ops/point={ops}");
    let mut rep = Report::new("fig12");
    for w in workloads {
        println!("\n## YCSB {}", w.name());
        let kinds: Vec<(String, IndexKind)> = {
            let mut v = vec![
                (
                    "CHIME".into(),
                    IndexKind::Chime(chime::ChimeConfig::default()),
                ),
                (
                    "Sherman".into(),
                    IndexKind::Sherman(sherman::ShermanConfig::default()),
                ),
                (
                    "SMART".into(),
                    IndexKind::Smart(smart::SmartConfig::default()),
                ),
                (
                    "SMART-Opt".into(),
                    IndexKind::Smart(smart::SmartConfig {
                        cache_bytes: 8 << 30,
                        ..Default::default()
                    }),
                ),
            ];
            if w != Workload::Load {
                // ROLEX is pre-trained; the paper excludes it from LOAD.
                v.insert(2, ("ROLEX".into(), IndexKind::Rolex(rolex::RolexConfig::default())));
            }
            v
        };
        for (name, kind) in kinds {
            let mut setup = BenchSetup {
                kind,
                workload: w,
                preload,
                ops,
                clients: *sweep.last().unwrap(),
                num_cns: 10,
                ..Default::default()
            };
            // Scale per-CN cache with the scaled-down dataset (paper:
            // 100 MB for 60M keys).
            setup.kind = scale_cache(setup.kind, preload);
            let ops_for = |c: usize| if w == Workload::E { ops / 4 } else { ops }.max(c as u64);
            let mut dep = deploy(&setup);
            for &clients in &sweep {
                setup.clients = clients;
                setup.ops = ops_for(clients);
                let r = run_deployed(&setup, &mut dep);
                print_row(&format!("{} {}", w.name(), name), clients, &r);
                rep.add(&format!("{}/{}/{}", w.name(), name, clients), &r);
            }
        }
    }
    rep.finish();
}

/// Scales the paper's 100 MB / 60 M-key CN cache to the loaded dataset.
fn scale_cache(kind: IndexKind, preload: u64) -> IndexKind {
    let cache = (preload as f64 / 60.0e6 * (100 << 20) as f64) as u64 + (64 << 10);
    let hotspot = (preload as f64 / 60.0e6 * (30 << 20) as f64) as u64 + (16 << 10);
    match kind {
        IndexKind::Chime(mut c) => {
            c.cache_bytes = cache;
            c.hotspot_bytes = hotspot;
            IndexKind::Chime(c)
        }
        IndexKind::Sherman(mut c) => {
            c.cache_bytes = cache;
            IndexKind::Sherman(c)
        }
        IndexKind::Rolex(c) => IndexKind::Rolex(c),
        IndexKind::Smart(mut c) => {
            if c.cache_bytes < (1 << 30) {
                c.cache_bytes = cache;
            }
            IndexKind::Smart(c)
        }
        IndexKind::Part(mut c) => {
            c.chime.cache_bytes = cache / c.parts as u64;
            c.chime.hotspot_bytes = hotspot / c.parts as u64;
            IndexKind::Part(c)
        }
    }
}
