//! Figure 3: the motivating trade-offs (§3.1).
//!
//! * 3a — cache consumption vs read-amplification factor per range index;
//! * 3b — throughput with limited bandwidth (1 MN, ample caches);
//! * 3c — throughput with limited caches (10 MNs, small caches);
//! * 3d — max load factor vs amplification for hashing schemes.
//!
//! Usage: `fig3 [--preload N] [--ops N]`

use bench::driver::{deploy, print_row, run, run_deployed, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 150_000);
    let ops: u64 = args.get("ops", 50_000);

    let mut rep = Report::new("fig3");
    fig3a(preload, ops / 2, &mut rep);
    fig3b(preload, ops, &mut rep);
    fig3c(preload, ops, &mut rep);
    fig3d(&mut rep);
    rep.finish();
}

/// 3a: the trade-off scatter — amplification factor vs CN cache bytes.
fn fig3a(preload: u64, ops: u64, rep: &mut Report) {
    println!("# Figure 3a: cache consumption vs amplification factor");
    println!(
        "{:<24} {:>12} {:>14}",
        "index (span)", "amp factor", "cache (MB)"
    );
    let mut points: Vec<(String, IndexKind)> = Vec::new();
    for span in [16usize, 64, 256] {
        points.push((
            format!("Sherman (span {span})"),
            IndexKind::Sherman(sherman::ShermanConfig {
                span,
                cache_bytes: 8 << 30,
                ..Default::default()
            }),
        ));
    }
    for span in [16usize, 64] {
        points.push((
            format!("ROLEX (span {span})"),
            IndexKind::Rolex(rolex::RolexConfig {
                span,
                delta: span as u64,
                ..Default::default()
            }),
        ));
    }
    points.push((
        "SMART".into(),
        IndexKind::Smart(smart::SmartConfig {
            cache_bytes: 8 << 30,
            ..Default::default()
        }),
    ));
    points.push((
        "CHIME".into(),
        IndexKind::Chime(chime::ChimeConfig {
            cache_bytes: 8 << 30,
            hotspot_bytes: 0,
            speculative_read: false,
            ..Default::default()
        }),
    ));
    for (name, kind) in points {
        let setup = BenchSetup {
            kind,
            preload,
            ops,
            clients: 16,
            num_cns: 1,
            workload: Workload::C,
            theta: 0.6,
            ..Default::default()
        };
        let r = run(&setup);
        println!(
            "{name:<24} {:>12.1} {:>14.3}",
            r.read_amp,
            r.cache_bytes as f64 / (1 << 20) as f64
        );
        rep.add(&format!("3a/{name}"), &r);
    }
}

fn curve(label: &str, kind: IndexKind, preload: u64, ops: u64, num_mns: u16, rep: &mut Report, part: &str) {
    let sweep = [40usize, 160, 480, 960];
    let mut setup = BenchSetup {
        kind,
        preload,
        ops,
        clients: *sweep.last().unwrap(),
        num_cns: 10,
        num_mns,
        // Regions are allocated eagerly: keep the pool within host RAM
        // even with 10 MNs.
        mn_capacity: (2 << 30) / num_mns as usize,
        workload: Workload::C,
        ..Default::default()
    };
    let mut dep = deploy(&setup);
    for &c in &sweep {
        setup.clients = c;
        let r = run_deployed(&setup, &mut dep);
        print_row(label, c, &r);
        rep.add(&format!("{part}/{label}/{c}"), &r);
    }
}

/// 3b: limited bandwidth (1 MN), ample caches.
fn fig3b(preload: u64, ops: u64, rep: &mut Report) {
    println!("\n# Figure 3b: limited bandwidth (1 MN, 1000 MB caches)");
    curve(
        "Sherman",
        IndexKind::Sherman(sherman::ShermanConfig {
            cache_bytes: 1 << 30,
            ..Default::default()
        }),
        preload,
        ops,
        1,
        rep,
        "3b",
    );
    curve(
        "ROLEX",
        IndexKind::Rolex(rolex::RolexConfig::default()),
        preload,
        ops,
        1,
        rep,
        "3b",
    );
    curve(
        "SMART",
        IndexKind::Smart(smart::SmartConfig {
            cache_bytes: 1 << 30,
            ..Default::default()
        }),
        preload,
        ops,
        1,
        rep,
        "3b",
    );
}

/// 3c: limited caches (10 MNs), scaled to the dataset.
fn fig3c(preload: u64, ops: u64, rep: &mut Report) {
    println!("\n# Figure 3c: limited caches (10 MNs, 100 MB-scaled caches)");
    let cache = (preload as f64 / 60.0e6 * (100 << 20) as f64) as u64 + (32 << 10);
    curve(
        "Sherman",
        IndexKind::Sherman(sherman::ShermanConfig {
            cache_bytes: cache,
            ..Default::default()
        }),
        preload,
        ops,
        10,
        rep,
        "3c",
    );
    curve(
        "ROLEX",
        IndexKind::Rolex(rolex::RolexConfig::default()),
        preload,
        ops,
        10,
        rep,
        "3c",
    );
    curve(
        "SMART",
        IndexKind::Smart(smart::SmartConfig {
            cache_bytes: cache,
            ..Default::default()
        }),
        preload,
        ops,
        10,
        rep,
        "3c",
    );
}

/// 3d: hashing schemes — max load factor vs amplification (128 entries).
fn fig3d(rep: &mut Report) {
    println!("\n# Figure 3d: hashing schemes (128-entry tables, 500 trials)");
    println!(
        "{:<16} {:>6} {:>12} {:>16}",
        "scheme", "param", "amp factor", "max load factor"
    );
    for (scheme, amp) in hashstudy::fig3d_points() {
        let lf = scheme.max_load_factor(128, 500, 7);
        let param = match scheme {
            hashstudy::Scheme::Assoc(b)
            | hashstudy::Scheme::Hopscotch(b)
            | hashstudy::Scheme::Race(b)
            | hashstudy::Scheme::Farm(b) => b,
        };
        println!(
            "{:<16} {param:>6} {amp:>12} {lf:>16.3}",
            scheme.name()
        );
        rep.add_custom(
            &format!("3d/{}/{param}", scheme.name()),
            &[("amp_factor", amp as f64), ("max_load_factor", lf)],
        );
    }
}
