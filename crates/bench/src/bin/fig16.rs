//! Figure 16: sibling-based validation vs fence-key replication —
//! per-node metadata bytes as the key size grows (§4.2.3).
//!
//! Pure layout computation: the leaf geometry is instantiated with and
//! without sibling validation and its metadata bytes are compared.
//!
//! Usage: `fig16`

use bench::report::Report;
use chime::layout::LeafLayout;

fn main() {
    let mut rep = Report::new("fig16");
    println!("# Figure 16: metadata bytes per leaf node vs key size");
    println!(
        "{:>8} {:>16} {:>18} {:>12}",
        "key (B)", "fence keys (B)", "sibling valid (B)", "reduction"
    );
    for key_size in [8usize, 16, 32, 64, 128, 256] {
        let fences = LeafLayout {
            span: 64,
            h: 8,
            key_size,
            value_size: 8,
            replication: true,
            fences: true,
            piggyback: true,
        };
        let sibling = LeafLayout {
            fences: false,
            ..fences
        };
        let f = fences.metadata_bytes();
        let s = sibling.metadata_bytes();
        println!(
            "{key_size:>8} {f:>16} {s:>18} {:>11.1}x",
            f as f64 / s as f64
        );
        rep.add_custom(
            &format!("16/{key_size}"),
            &[
                ("fence_metadata_bytes", f as f64),
                ("sibling_metadata_bytes", s as f64),
            ],
        );
    }
    println!("\n# Paper: the optimization grows from 1.4x (8-B keys) to 8.6x (256-B keys).");
    rep.finish();
}
