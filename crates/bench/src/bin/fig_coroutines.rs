//! Coroutine sweep: modeled throughput vs lanes per client (K).
//!
//! CHIME (§6.1) runs its clients as threads + coroutines so independent
//! operations overlap their RDMA round trips. This figure sweeps the
//! engine's lane count K over uniform YCSB-C with 64 clients and reports
//! the modeled throughput gain, the doorbell-batching profile, and the
//! completion-queue depth the pipelining produces. K=1 goes through the
//! ordinary serial path and anchors the baseline.
//!
//! Usage: `fig_coroutines [--preload N] [--ops N] [--clients N] [--coroutines K]`
//! (`--coroutines 0`, the default, sweeps K = 1, 2, 4, 8).

use bench::driver::{deploy, run_deployed, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 100_000);
    let ops: u64 = args.get("ops", 40_000);
    let clients: usize = args.get("clients", 64);
    let fixed_k: usize = args.get("coroutines", 0);
    let ks: Vec<usize> = if fixed_k == 0 {
        SWEEP.to_vec()
    } else {
        vec![fixed_k]
    };

    let mut rep = Report::new("fig_coroutines");
    println!("# Coroutine sweep: uniform YCSB-C, {clients} clients, 2 CNs");
    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "K", "Mops", "gain", "p50 (us)", "doorbell/op", "batch mean", "cq p99"
    );

    let mut base_mops = 0.0f64;
    for &k in &ks {
        let setup = BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig::default()),
            num_cns: 2,
            clients,
            coroutines: k,
            preload,
            ops,
            mn_capacity: 512 << 20,
            workload: Workload::C,
            theta: 0.01, // uniform-ish: zipfian requires theta in (0,1)
            ..Default::default()
        };
        // Fresh deployment per K: every point preloads identically, so the
        // sweep isolates the pipelining effect (no warm-cache carry-over).
        let mut dep = deploy(&setup);
        let r = run_deployed(&setup, &mut dep);
        if base_mops == 0.0 {
            base_mops = r.mops;
        }
        let m = Report::flat_metrics(&r);
        println!(
            "{k:<6} {:>10.3} {:>7.2}x {:>10.2} {:>12.3} {:>12.2} {:>12.0}",
            r.mops,
            r.mops / base_mops,
            r.p50_us,
            m["qp.doorbells_per_op"],
            m["doorbell.batch_mean"],
            m["cq.depth_p99"],
        );
        rep.add(&format!("chime/c/{clients}/k{k}"), &r);
    }
    rep.finish();
}
