//! Table 1: round-trips per operation, best case (all internal nodes
//! cached) and worst case (nothing cached).
//!
//! Measures actual RTT counts from the verb statistics of single CHIME
//! operations and compares them to the paper's formulas (h = number of
//! internal levels).
//!
//! Usage: `table1 [--preload N]`

use bench::driver::Args;
use bench::report::Report;
use dmem::{Pool, RangeIndex};
use ycsb::KeySpace;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 120_000);
    let samples = 400u64;

    println!("# Table 1: round-trips per CHIME operation (measured)");
    let mut rep = Report::new("table1");
    for (case, cache) in [("best (warm cache)", 1u64 << 30), ("worst (no cache)", 0)] {
        let pool = Pool::with_defaults(1, 2 << 30);
        let cfg = chime::ChimeConfig {
            cache_bytes: cache,
            hotspot_bytes: 0, // isolate the protocol RTTs from speculation
            speculative_read: false,
            ..Default::default()
        };
        let t = chime::Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for seq in 0..preload {
            c.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
        }
        // Warm the cache (no-op when the budget is 0).
        for seq in 0..preload.min(20_000) {
            c.search(KeySpace::key(seq * 3 % preload));
        }
        let rep = &mut rep;
        let mut rtts = |label: &str, f: &mut dyn FnMut(&mut chime::ChimeClient, u64)| {
            let before = c.stats().rtts;
            let prof0 = c.profile().expect("chime client profiles").clone();
            let mut lat = obs::LatencyHist::new();
            for s in 0..samples {
                let t0 = c.clock_ns();
                f(&mut c, s);
                lat.record(c.clock_ns() - t0);
            }
            let per_op = (c.stats().rtts - before) as f64 / samples as f64;
            println!("  {label:<22} {per_op:>6.2} RTTs/op");
            // Schema-2 attribution for the RTT table: per-op virtual-latency
            // percentiles and the per-phase round-trip breakdown this table
            // exists to explain.
            let delta = c.profile().unwrap().since(&prof0);
            let mut metrics = vec![
                ("rtts_per_op".to_string(), per_op),
                ("p50_us".to_string(), lat.quantile(0.5) as f64 / 1_000.0),
                ("p90_us".to_string(), lat.quantile(0.9) as f64 / 1_000.0),
                ("p99_us".to_string(), lat.quantile(0.99) as f64 / 1_000.0),
            ];
            for ph in obs::Phase::ALL {
                let acc = delta.phase(ph);
                metrics.push((
                    format!("phase_rtts_per_op.{}", ph.as_str()),
                    acc.rtts as f64 / samples as f64,
                ));
                metrics.push((
                    format!("phase_ns_per_op.{}", ph.as_str()),
                    acc.ns as f64 / samples as f64,
                ));
            }
            let refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            rep.add_custom(&format!("{case}/{label}"), &refs);
        };
        println!("\n## {case}");
        rtts("search (hit)", &mut |c, s| {
            c.search(KeySpace::key((s * 7) % preload)).unwrap();
        });
        rtts("search (miss)", &mut |c, s| {
            assert!(c.search(KeySpace::key(preload + 100 + s)).is_none());
        });
        rtts("update", &mut |c, s| {
            assert!(c.update(KeySpace::key((s * 11) % preload), &[2u8; 8]).unwrap());
        });
        rtts("insert (new key)", &mut |c, s| {
            c.insert(KeySpace::key(preload + 10_000 + s), &[3u8; 8]).unwrap();
        });
        rtts("delete", &mut |c, s| {
            assert!(c.delete(KeySpace::key(preload + 10_000 + s)).unwrap());
        });
        rtts("scan (100)", &mut |c, s| {
            let mut out = Vec::new();
            c.scan(KeySpace::key((s * 13) % preload), 100, &mut out);
        });
    }
    println!("\n# Paper formulas: search 1-2 (best) / h+1..h+2 (worst); insert 3 / h+3;");
    println!("# update/delete 3-4 / h+3..h+4; scan 1 / h+1 (plus per-100-item leaf reads).");
    rep.finish();
}
