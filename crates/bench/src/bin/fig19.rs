//! Figure 19: in-depth CHIME analyses.
//!
//! * 19a — span size vs maximum load factor and cache consumption;
//! * 19b — neighborhood size vs maximum load factor;
//! * 19c — hotspot buffer size vs throughput and hit ratio.
//!
//! Usage: `fig19 [--preload N] [--ops N] [--trials N]`

use bench::driver::{print_row, run, Args, BenchSetup, IndexKind};
use bench::report::Report;
use chime::hopscotch::{build_table, Window};
use dmem::hash::home_entry;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 120_000);
    let ops: u64 = args.get("ops", 50_000);
    let trials: usize = args.get("trials", 300);

    let mut rep = Report::new("fig19");
    println!("# Figure 19a: span size vs max load factor & cache consumption");
    println!(
        "{:>6} {:>16} {:>14}",
        "span", "max load factor", "cache (MB)"
    );
    for span in [16usize, 32, 64, 128, 256, 512] {
        let lf = leaf_max_load_factor(span, 8.min(span), trials);
        let r = run(&BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig {
                span,
                cache_bytes: 8 << 30,
                hotspot_bytes: 0,
                speculative_read: false,
                ..Default::default()
            }),
            preload,
            ops: preload, // warming pass
            clients: 16,
            num_cns: 1,
            workload: Workload::C,
            theta: 0.6,
            ..Default::default()
        });
        println!(
            "{span:>6} {lf:>16.3} {:>14.3}",
            r.cache_bytes as f64 / (1 << 20) as f64
        );
        rep.add_custom(
            &format!("19a/span{span}"),
            &[
                ("max_load_factor", lf),
                ("cache_mb", r.cache_bytes as f64 / (1 << 20) as f64),
            ],
        );
    }

    println!("\n# Figure 19b: neighborhood size vs max load factor (span 64)");
    println!("{:>6} {:>16}", "H", "max load factor");
    for h in [2usize, 4, 8, 16] {
        let lf = leaf_max_load_factor(64, h, trials);
        println!("{h:>6} {lf:>16.3}");
        rep.add_custom(&format!("19b/H{h}"), &[("max_load_factor", lf)]);
    }

    println!("\n# Figure 19c: hotspot buffer size (YCSB C, 640 clients)");
    for kb in [0u64, 16, 64, 256, 1024] {
        let r = run(&BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig {
                hotspot_bytes: kb << 10,
                speculative_read: kb > 0,
                ..Default::default()
            }),
            preload,
            ops,
            clients: 640,
            num_cns: 10,
            workload: Workload::C,
            ..Default::default()
        });
        print_row(&format!("buffer {kb} KB"), 640, &r);
        println!(
            "{:>34} hit ratio {:.1}%",
            "",
            r.hotspot_hit_ratio * 100.0
        );
        rep.add(&format!("19c/buffer{kb}KB"), &r);
    }
    rep.finish();
}

/// Fills single hopscotch tables with random keys until the first
/// failure; reports the mean achieved load factor.
fn leaf_max_load_factor(span: usize, h: usize, trials: usize) -> f64 {
    let mut total = 0.0;
    for t in 0..trials {
        let mut w = Window::new(span, h, 0, span);
        let mut n = 0usize;
        for i in 0.. {
            let key = dmem::hash::mix64((t * 1_000_003 + i) as u64) | 1;
            let home = home_entry(key, span);
            let empty = (0..span)
                .map(|d| (home + d) % span)
                .find(|&p| w.slot_empty(p));
            let Some(empty) = empty else { break };
            if w.insert(key, vec![0u8; 8], empty).is_err() {
                break;
            }
            n += 1;
        }
        total += n as f64 / span as f64;
    }
    // Sanity: the same routine must agree with build_table on low fills.
    debug_assert!(build_table(span, h, &[(1, vec![0u8; 8])]).is_some());
    total / trials as f64
}
