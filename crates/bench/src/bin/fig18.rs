//! Figure 18: sensitivity analysis (640 clients, YCSB C unless noted).
//!
//! * 18a — workload skewness (50% search + 50% update);
//! * 18b — cache size;
//! * 18c — inline value size;
//! * 18d — indirect value size;
//! * 18e — span size;
//! * 18f — neighborhood size.
//!
//! Usage: `fig18 [--preload N] [--ops N] [--parts a,b,c,d,e,f]`

use bench::driver::{print_row, run, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 120_000);
    let ops: u64 = args.get("ops", 50_000);
    let parts: String = args.get("parts", "a,b,c,d,e,f".to_string());
    let clients = 640usize;

    let base = |kind: IndexKind, w: Workload| BenchSetup {
        kind,
        workload: w,
        preload,
        ops,
        clients,
        num_cns: 10,
        ..Default::default()
    };
    // Per-CN caches scaled like Fig. 12 (paper: 100 MB at 60 M keys).
    let cache = (preload as f64 / 60.0e6 * (100 << 20) as f64) as u64 + (64 << 10);
    let hotspot = (preload as f64 / 60.0e6 * (30 << 20) as f64) as u64 + (16 << 10);
    let all_kinds = move || -> Vec<(&'static str, IndexKind)> {
        vec![
            (
                "CHIME",
                IndexKind::Chime(chime::ChimeConfig {
                    cache_bytes: cache,
                    hotspot_bytes: hotspot,
                    ..Default::default()
                }),
            ),
            (
                "Sherman",
                IndexKind::Sherman(sherman::ShermanConfig {
                    cache_bytes: cache,
                    ..Default::default()
                }),
            ),
            ("ROLEX", IndexKind::Rolex(rolex::RolexConfig::default())),
            (
                "SMART",
                IndexKind::Smart(smart::SmartConfig {
                    cache_bytes: cache,
                    ..Default::default()
                }),
            ),
        ]
    };

    let mut rep = Report::new("fig18");
    if parts.contains('a') {
        println!("# Figure 18a: skewness (50% search + 50% update)");
        for theta in [0.5, 0.7, 0.9, 0.99] {
            for (name, kind) in all_kinds() {
                let mut s = base(kind, Workload::A);
                s.theta = theta;
                let r = run(&s);
                print_row(&format!("theta {theta} {name}"), clients, &r);
                rep.add(&format!("18a/theta{theta}/{name}"), &r);
            }
        }
    }

    if parts.contains('b') {
        println!("\n# Figure 18b: cache size (YCSB C; bytes scaled to the dataset)");
        for cache_kb in [64u64, 256, 1024, 4096, 16384] {
            let cache = cache_kb << 10;
            let kinds: Vec<(&str, IndexKind)> = vec![
                (
                    "CHIME",
                    IndexKind::Chime(chime::ChimeConfig {
                        cache_bytes: cache,
                        ..Default::default()
                    }),
                ),
                (
                    "Sherman",
                    IndexKind::Sherman(sherman::ShermanConfig {
                        cache_bytes: cache,
                        ..Default::default()
                    }),
                ),
                ("ROLEX", IndexKind::Rolex(rolex::RolexConfig::default())),
                (
                    "SMART",
                    IndexKind::Smart(smart::SmartConfig {
                        cache_bytes: cache,
                        ..Default::default()
                    }),
                ),
            ];
            for (name, kind) in kinds {
                let r = run(&base(kind, Workload::C));
                print_row(&format!("cache {cache_kb}KB {name}"), clients, &r);
                rep.add(&format!("18b/cache{cache_kb}KB/{name}"), &r);
            }
        }
    }

    if parts.contains('c') {
        println!("\n# Figure 18c: inline value size (YCSB C)");
        for v in [8usize, 64, 256, 512] {
            let kinds: Vec<(&str, IndexKind)> = vec![
                (
                    "CHIME",
                    IndexKind::Chime(chime::ChimeConfig {
                        value_size: v,
                        cache_bytes: cache,
                        hotspot_bytes: hotspot,
                        ..Default::default()
                    }),
                ),
                (
                    "Sherman",
                    IndexKind::Sherman(sherman::ShermanConfig {
                        value_size: v,
                        cache_bytes: cache,
                        ..Default::default()
                    }),
                ),
                (
                    "ROLEX",
                    IndexKind::Rolex(rolex::RolexConfig {
                        value_size: v,
                        ..Default::default()
                    }),
                ),
                (
                    "SMART",
                    IndexKind::Smart(smart::SmartConfig {
                        value_size: v,
                        cache_bytes: cache,
                    }),
                ),
            ];
            for (name, kind) in kinds {
                let mut s = base(kind, Workload::C);
                s.value_size = v;
                let r = run(&s);
                print_row(&format!("value {v}B {name}"), clients, &r);
                rep.add(&format!("18c/value{v}B/{name}"), &r);
            }
        }
    }

    if parts.contains('d') {
        println!("\n# Figure 18d: indirect value size (YCSB C)");
        for v in [64usize, 256, 1024] {
            let kinds: Vec<(&str, IndexKind)> = vec![
                (
                    "CHIME-Indirect",
                    IndexKind::Chime(chime::ChimeConfig {
                        indirect_values: true,
                        value_size: v,
                        ..Default::default()
                    }),
                ),
                (
                    "Marlin",
                    IndexKind::Sherman(sherman::ShermanConfig {
                        indirect_values: true,
                        value_size: v,
                        ..Default::default()
                    }),
                ),
                (
                    "ROLEX-Indirect",
                    IndexKind::Rolex(rolex::RolexConfig {
                        indirect_values: true,
                        value_size: v,
                        ..Default::default()
                    }),
                ),
            ];
            for (name, kind) in kinds {
                let mut s = base(kind, Workload::C);
                s.value_size = v;
                let r = run(&s);
                print_row(&format!("indirect {v}B {name}"), clients, &r);
                rep.add(&format!("18d/indirect{v}B/{name}"), &r);
            }
        }
    }

    if parts.contains('e') {
        println!("\n# Figure 18e: span size (YCSB C)");
        for span in [16usize, 32, 64, 128, 256, 512] {
            let kinds: Vec<(&str, IndexKind)> = vec![
                (
                    "CHIME",
                    IndexKind::Chime(chime::ChimeConfig {
                        span,
                        ..Default::default()
                    }),
                ),
                (
                    "Sherman",
                    IndexKind::Sherman(sherman::ShermanConfig {
                        span,
                        ..Default::default()
                    }),
                ),
                (
                    "ROLEX",
                    IndexKind::Rolex(rolex::RolexConfig {
                        span,
                        delta: span as u64,
                        ..Default::default()
                    }),
                ),
            ];
            for (name, kind) in kinds {
                let r = run(&base(kind, Workload::C));
                print_row(&format!("span {span} {name}"), clients, &r);
                rep.add(&format!("18e/span{span}/{name}"), &r);
            }
        }
    }

    if parts.contains('f') {
        println!("\n# Figure 18f: neighborhood size (YCSB C, CHIME)");
        for h in [2usize, 4, 8, 16] {
            let r = run(&base(
                IndexKind::Chime(chime::ChimeConfig {
                    neighborhood: h,
                    span: 64,
                    ..Default::default()
                }),
                Workload::C,
            ));
            print_row(&format!("H = {h}"), clients, &r);
            rep.add(&format!("18f/H{h}"), &r);
        }
    }
    rep.finish();
}
