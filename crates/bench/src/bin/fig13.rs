//! Figure 13: variable-length KV items (indirect values) at 320 clients.
//!
//! CHIME-Indirect, Marlin (Sherman with indirect values), ROLEX-Indirect
//! and SMART-RCU (SMART stores items inside its leaves, saving the extra
//! block RTT — modeled by its plain inline mode with the paper's 64-byte
//! items).
//!
//! Usage: `fig13 [--preload N] [--ops N] [--value N]`

use bench::driver::{print_row, run, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 120_000);
    let ops: u64 = args.get("ops", 50_000);
    let value: usize = args.get("value", 64);
    let clients = 320usize;

    println!("# Figure 13: variable-length KV support ({clients} clients, {value}-B values)");
    let mut rep = Report::new("fig13");
    for w in [Workload::C, Workload::Load, Workload::D, Workload::A, Workload::B, Workload::E] {
        println!("\n## YCSB {}", w.name());
        let mut kinds: Vec<(&str, IndexKind)> = vec![
            (
                "CHIME-Indirect",
                IndexKind::Chime(chime::ChimeConfig {
                    indirect_values: true,
                    value_size: value,
                    ..Default::default()
                }),
            ),
            (
                "Marlin (indirect B+)",
                IndexKind::Sherman(sherman::ShermanConfig {
                    indirect_values: true,
                    value_size: value,
                    ..Default::default()
                }),
            ),
            (
                "SMART-RCU",
                IndexKind::Smart(smart::SmartConfig {
                    value_size: value,
                    ..Default::default()
                }),
            ),
        ];
        if w != Workload::Load {
            kinds.insert(
                2,
                (
                    "ROLEX-Indirect",
                    IndexKind::Rolex(rolex::RolexConfig {
                        indirect_values: true,
                        value_size: value,
                        ..Default::default()
                    }),
                ),
            );
        }
        for (name, kind) in kinds {
            let setup = BenchSetup {
                kind,
                workload: w,
                preload,
                ops: if w == Workload::E { ops / 4 } else { ops },
                clients,
                num_cns: 10,
                value_size: value,
                ..Default::default()
            };
            let r = run(&setup);
            print_row(name, clients, &r);
            rep.add(&format!("{}/{}", w.name(), name), &r);
        }
    }
    rep.finish();
}
