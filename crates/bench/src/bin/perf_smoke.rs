//! The CI perf gate: a fixed-seed micro-benchmark matrix compared against
//! `results/baseline.json`.
//!
//! The whole simulator runs on a virtual clock, so the numbers are exact
//! and machine-independent; tolerances exist to absorb intentional
//! algorithm changes, not noise. The matrix covers CHIME and Sherman on
//! read-heavy, write-heavy and scan workloads at two client counts.
//!
//! Usage: `perf_smoke [--baseline PATH] [--write-baseline] [--tolerance PCT]`
//!
//! Exits 1 when any metric regresses beyond its tolerance or a baseline
//! point is missing from the run.

use bench::driver::{run, Args, BenchSetup, IndexKind};
use bench::explain::{cite_anomalies, explain};
use bench::report::Report;
use obs::{compare, Baseline, BenchPoint, FlightRecorder};
use serve::sim::{run_sim, OverloadPolicy, SimConfig};
use ycsb::Workload;

/// The gate enforces this subset of each point's metrics (the baseline's
/// `gated` list). Everything else in the baseline — ratios, cache
/// footprints, phase breakdowns, retry causes — rides along as attribution
/// context for `explain`, but latency, throughput and traffic guard the
/// paper's claims.
const GATED: &[&str] = &[
    "mops",
    "p50_us",
    "p90_us",
    "p99_us",
    "bytes_per_op",
    "rtts_per_op",
    "verbs_per_op",
    "cache_hit_ratio",
];

fn matrix() -> Vec<(String, BenchSetup)> {
    let mut points = Vec::new();
    let base = BenchSetup {
        num_cns: 2,
        clients: 16,
        preload: 20_000,
        ops: 10_000,
        mn_capacity: 512 << 20,
        seed: 42,
        ..Default::default()
    };
    for (index, kind) in [
        ("chime", IndexKind::Chime(chime::ChimeConfig::default())),
        (
            "sherman",
            IndexKind::Sherman(sherman::ShermanConfig::default()),
        ),
    ] {
        for w in [Workload::C, Workload::A, Workload::E] {
            for clients in [16usize, 64] {
                let name = format!("{index}/{}/{clients}", w.name().to_lowercase());
                points.push((
                    name,
                    BenchSetup {
                        kind: kind.clone(),
                        workload: w,
                        clients,
                        ops: if w == Workload::E { 4_000 } else { 10_000 },
                        ..base.clone()
                    },
                ));
            }
        }
    }
    // Pipelined configuration: 4 coroutine lanes per client. Gates the
    // engine's modeled overlap (throughput) and the cq_wait-inflated tail
    // alongside the serial points.
    for w in [Workload::C, Workload::A] {
        let name = format!("chime/{}/64/k4", w.name().to_lowercase());
        points.push((
            name,
            BenchSetup {
                kind: IndexKind::Chime(chime::ChimeConfig::default()),
                workload: w,
                clients: 64,
                coroutines: 4,
                ..base.clone()
            },
        ));
    }
    // Scale-out: 4-MN partitioned deployments gate the router (uniform)
    // and the live hotspot migrator (Zipfian, migrations mid-run) — a
    // reduced cut of fig_scaleout's geometry.
    for (name, theta, migrate) in [
        ("scaleout/uniform/4mn", 0.01, false),
        ("scaleout/zipf-mig/4mn", ycsb::ZIPFIAN_CONSTANT, true),
    ] {
        let parts = 16;
        points.push((
            name.to_string(),
            BenchSetup {
                kind: IndexKind::Part(part::ClusterConfig {
                    parts,
                    chime: chime::ChimeConfig {
                        cache_bytes: (8 << 20) / parts as u64,
                        hotspot_bytes: (1 << 20) / parts as u64,
                        span: 16,
                        neighborhood: 4,
                        ..Default::default()
                    },
                    check_every: 64,
                    migrate: migrate.then_some(part::MigrateConfig {
                        check_every: 1,
                        min_window: 4_096,
                        imbalance: 1.15,
                    }),
                }),
                num_mns: 4,
                mn_capacity: 64 << 20,
                num_cns: 4,
                clients: 256,
                preload: 30_000,
                ops: 48_000,
                workload: Workload::C,
                theta,
                rdwc: false,
                ..base.clone()
            },
        ));
    }
    points
}

fn main() {
    let args = Args::parse();
    let path: String = args.get("baseline", "results/baseline.json".to_string());
    let write = args.flag("write-baseline");
    let tolerance: f64 = args.get("tolerance", 10.0);

    println!("# perf smoke: fixed-seed micro-benchmark matrix");
    let mut rep = Report::new("perf_smoke");
    let mut current: Vec<BenchPoint> = Vec::new();
    // Kept for the failure path: anomaly citations name the regressed time
    // windows, the flight rings become the black-box dump.
    let mut citations: Vec<(String, Vec<String>)> = Vec::new();
    let mut flights: Vec<(String, Vec<(u32, FlightRecorder)>)> = Vec::new();
    for (name, setup) in matrix() {
        let r = run(&setup);
        println!(
            "{name:<18} {:>8.3} Mops  p99 {:>8.1} us  {:>6.0} B/op  {:>5.2} rtt/op",
            r.mops, r.p99_us, r.bytes_per_op, r.rtts_per_op
        );
        if !r.anomalies.is_empty() {
            citations.push((name.clone(), r.anomalies.iter().map(|a| a.cite()).collect()));
        }
        flights.push((name.clone(), r.flight.clone()));
        rep.add(&name, &r);
        // The baseline carries the full flat metric map (schema 2): the
        // `gated` list picks out what the gate enforces, the rest feeds
        // regression attribution.
        current.push(BenchPoint {
            name,
            metrics: Report::flat_metrics(&r),
        });
    }

    // Serving front end: one mid-saturation point through chime-serve's
    // simulated-socket mode. Gates the serve layer's throughput and tail;
    // shed/defer counters ride along for attribution.
    {
        let cfg = SimConfig {
            seed: 42,
            conns: 32,
            workers: 2,
            requests_per_conn: 64,
            mean_gap_ns: 2_000,
            cq_watermark: 12,
            policy: OverloadPolicy::Shed,
            ..SimConfig::default()
        };
        let r = run_sim(&cfg);
        let offered = (r.served + r.shed).max(1);
        let metrics: &[(&str, f64)] = &[
            ("mops", r.throughput_mops()),
            ("p50_us", r.hist.quantile(0.50) as f64 / 1e3),
            ("p99_us", r.hist.quantile(0.99) as f64 / 1e3),
            ("served", r.served as f64),
            ("shed_frac", r.shed as f64 / offered as f64),
            ("deferred", r.deferred as f64),
        ];
        let name = "serve/shed/32x64".to_string();
        println!(
            "{name:<18} {:>8.3} Mops  p99 {:>8.1} us  shed {:>5.3}",
            metrics[0].1, metrics[2].1, metrics[4].1
        );
        rep.add_custom(&name, metrics);
        rep.attach_timeline(&name, &r.timeline, &r.anomalies);
        current.push(BenchPoint::new(&name, metrics));
    }
    rep.finish();

    if write {
        let baseline = Baseline {
            tolerance_pct: tolerance,
            // The p99 model folds in a saturation tail factor that amplifies
            // small traffic shifts; give latency tails more headroom.
            metric_tolerance_pct: [("p99_us".to_string(), 2.0 * tolerance)]
                .into_iter()
                .collect(),
            gated: GATED.iter().map(|g| g.to_string()).collect(),
            points: current,
            ..Default::default()
        };
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create baseline dir");
            }
        }
        std::fs::write(&path, baseline.to_json()).expect("write baseline");
        println!("wrote baseline {path}");
        return;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            eprintln!("hint: generate one with `perf_smoke --write-baseline`");
            std::process::exit(1);
        }
    };
    let baseline = match Baseline::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: malformed baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = compare(&current, &baseline);
    println!(
        "\n# gate: {} comparisons against {path} (tolerance {}%)",
        report.compared, baseline.tolerance_pct
    );
    for (point, metric, pct) in &report.improvements {
        println!("improved: {point} / {metric} by {pct:.1}% — consider refreshing the baseline");
    }
    for v in &report.violations {
        eprintln!("REGRESSION: {v}");
    }
    for p in &report.missing_points {
        eprintln!("MISSING POINT: {p}");
    }
    if report.passed() {
        println!("perf smoke PASSED");
    } else {
        // Attribute the failure: diff the baseline's full metric maps
        // against the current run so the log says *why* (which phases,
        // which retry causes) and not just *what* regressed, and cite any
        // in-run anomalies so it also says *when*.
        eprint!("\n{}", explain("baseline", &baseline.points, "current", &current));
        eprint!("{}", cite_anomalies("current", &citations));
        // Dump the violating points' flight rings — the last N events per
        // client, the black box of the regressed runs.
        let breached: Vec<&str> = report
            .violations
            .iter()
            .map(|v: &obs::Violation| v.point.as_str())
            .collect();
        let dump_rings: Vec<(u32, &FlightRecorder)> = flights
            .iter()
            .filter(|(name, _)| breached.contains(&name.as_str()))
            .flat_map(|(_, rings)| rings.iter().map(|(id, r)| (*id, r)))
            .collect();
        if !dump_rings.is_empty() {
            let doc = obs::flight::dump_document("perf_smoke", "gate_breach", &dump_rings);
            match obs::flight::write_dump("perf_smoke", &doc) {
                Ok(path) => eprintln!("wrote flight dump {path}"),
                Err(e) => eprintln!("error: flight dump: {e}"),
            }
        }
        eprintln!(
            "\nperf smoke FAILED: {} violations, {} missing points",
            report.violations.len(),
            report.missing_points.len()
        );
        std::process::exit(1);
    }
}
