//! Figure 4: the cost of extra metadata accesses and of neighborhood reads,
//! measured as raw READ streams against the substrate (§3.2).
//!
//! * 4a — insert access patterns: hop range only (ideal) vs an extra
//!   vacancy-bitmap READ vs fetching the entire leaf node;
//! * 4b — search access patterns: neighborhood only vs an extra leaf
//!   metadata READ vs the entire node;
//! * 4c — neighborhood size 1..64 entries.
//!
//! Usage: `fig4 [--ops N]`

use bench::driver::Args;
use bench::report::Report;
use dmem::{Endpoint, GlobalAddr, NetConfig, Pool, RunAccounting};

/// Entry size with 8-byte keys and values (1 ver + 2 bitmap + 8 + 8).
const ENTRY: u64 = 19;
/// Leaf node payload with span 64 (replicas included).
const NODE: u64 = 8 * (10 + 8 * ENTRY);

fn main() {
    let args = Args::parse();
    let ops: u64 = args.get("ops", 50_000);
    let clients = 640u64;
    let pool = Pool::with_defaults(1, 64 << 20);
    let base = GlobalAddr::new(0, 4096);
    let mut rep = Report::new("fig4");

    println!("# Figure 4a: vacancy bitmap accesses (inserts, {clients} clients)");
    println!("{:<28} {:>10} {:>12}", "pattern", "Mops", "bytes/op");
    // Hop range ~ H entries on average plus the covering replica.
    let hop = 8 * ENTRY + 10;
    for (name, reads) in [
        ("hop range only (ideal)", vec![hop]),
        ("+ vacancy bitmap READ", vec![8, hop]),
        ("entire leaf node", vec![NODE]),
    ] {
        let (mops, bpo) = stream(&pool, base, &reads, ops, clients);
        println!("{name:<28} {mops:>10.2} {bpo:>12.0}");
        rep.add_custom(&format!("4a/{name}"), &[("mops", mops), ("bytes_per_op", bpo)]);
    }

    println!("\n# Figure 4b: leaf metadata accesses (searches, {clients} clients)");
    println!("{:<28} {:>10} {:>12}", "pattern", "Mops", "bytes/op");
    let nbh = 8 * ENTRY + 10;
    for (name, reads) in [
        ("neighborhood + replica", vec![nbh]),
        ("+ leaf metadata READ", vec![10, nbh]),
        ("entire leaf node", vec![NODE]),
    ] {
        let (mops, bpo) = stream(&pool, base, &reads, ops, clients);
        println!("{name:<28} {mops:>10.2} {bpo:>12.0}");
        rep.add_custom(&format!("4b/{name}"), &[("mops", mops), ("bytes_per_op", bpo)]);
    }

    println!("\n# Figure 4c: neighborhood size (searches, {clients} clients)");
    println!("{:<28} {:>10} {:>12} {:>10}", "neighborhood", "Mops", "bytes/op", "bound");
    for h in [1u64, 2, 4, 8, 16, 32, 64] {
        let (mops, bpo) = stream(&pool, base, &[h * ENTRY + 10], ops, clients);
        let bound = if bpo * mops * 1e6 >= 12.4e9 { "BW" } else { "IOPS" };
        println!("{:<28} {mops:>10.2} {bpo:>12.0} {bound:>10}", format!("{h} entries"));
        rep.add_custom(&format!("4c/{h}"), &[("mops", mops), ("bytes_per_op", bpo)]);
    }
    rep.finish();
}

/// Issues `ops` iterations of the given READ sizes (one doorbell batch per
/// iteration) and models throughput for `clients` clients.
fn stream(pool: &std::sync::Arc<Pool>, base: GlobalAddr, reads: &[u64], ops: u64, clients: u64) -> (f64, f64) {
    let mut ep = Endpoint::new(std::sync::Arc::clone(pool));
    let t0 = ep.clock_ns();
    for i in 0..ops {
        let mut bufs: Vec<Vec<u8>> = reads.iter().map(|&r| vec![0u8; r as usize]).collect();
        let mut reqs: Vec<(GlobalAddr, &mut [u8])> = bufs
            .iter_mut()
            .enumerate()
            .map(|(j, b)| (base.add(((i * 131) % 1000) * 64 + j as u64 * 4096), &mut b[..]))
            .collect();
        // Each distinct access is its own round-trip (the paper's point:
        // dependent metadata reads cannot be batched with the data read).
        for req in reqs.iter_mut() {
            ep.read(req.0, req.1);
        }
    }
    let s = ep.stats();
    let acc = RunAccounting {
        ops,
        clients,
        mns: 1,
        total_msgs: s.msgs,
        total_wire_bytes: s.wire_bytes,
        sum_latency_ns: ep.clock_ns() - t0,
        sum_busy_ns: 0,
        max_mn_msgs: 0,
        max_mn_wire_bytes: 0,
    };
    let est = NetConfig::default().model(&acc);
    (est.mops, est.bytes_per_op)
}
