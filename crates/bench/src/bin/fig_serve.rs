//! Serving-layer sweep: open-loop arrival rate vs throughput, tail
//! latency, and shed rate.
//!
//! `chime-serve` fronts the coroutine engine with framed connections,
//! admission control, and CQ-depth backpressure. This figure drives the
//! deterministic simulated-socket mode with a Poisson arrival process
//! and sweeps the mean inter-arrival gap from idle to saturating. As the
//! offered load crosses the engine's service capacity the CQ watermark
//! engages: excess requests are answered `-BUSY` instead of queueing,
//! so served throughput plateaus while p99 stays bounded — the figure's
//! point.
//!
//! Usage: `fig_serve [--conns N] [--workers N] [--requests N] [--seed S]
//!                   [--gap NS]` (`--gap 0`, the default, sweeps the
//! built-in gap ladder).

use bench::report::Report;
use bench::driver::Args;
use serve::sim::{run_sim, OverloadPolicy, SimConfig};

/// Mean inter-arrival gaps (ns) from idle to well past saturation.
const SWEEP: [u64; 6] = [16_000, 8_000, 4_000, 2_000, 600, 150];

fn main() {
    let args = Args::parse();
    let conns: usize = args.get("conns", 32);
    let workers: usize = args.get("workers", 2);
    let requests: usize = args.get("requests", 64);
    let seed: u64 = args.get("seed", 1);
    let fixed_gap: u64 = args.get("gap", 0);
    let gaps: Vec<u64> = if fixed_gap == 0 {
        SWEEP.to_vec()
    } else {
        vec![fixed_gap]
    };

    let mut rep = Report::new("fig_serve");
    println!("# Serve sweep: {conns} conns x {requests} reqs, {workers} workers, shed policy");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "gap (ns)", "Mops", "p50 (us)", "p99 (us)", "shed", "shed frac"
    );

    for &gap in &gaps {
        let cfg = SimConfig {
            seed,
            conns,
            workers,
            requests_per_conn: requests,
            mean_gap_ns: gap,
            cq_watermark: 12,
            policy: OverloadPolicy::Shed,
            ..SimConfig::default()
        };
        let r = run_sim(&cfg);
        let offered = r.served + r.shed;
        let shed_frac = if offered == 0 {
            0.0
        } else {
            r.shed as f64 / offered as f64
        };
        let p50_us = r.hist.quantile(0.50) as f64 / 1e3;
        let p99_us = r.hist.quantile(0.99) as f64 / 1e3;
        println!(
            "{gap:<10} {:>10.3} {:>10.2} {:>10.2} {:>10} {:>10.3}",
            r.throughput_mops(),
            p50_us,
            p99_us,
            r.shed,
            shed_frac,
        );
        let point = format!("serve/shed/gap{gap}");
        rep.add_custom(
            &point,
            &[
                ("mops", r.throughput_mops()),
                ("p50_us", p50_us),
                ("p99_us", p99_us),
                ("served", r.served as f64),
                ("shed", r.shed as f64),
                ("shed_frac", shed_frac),
                ("deferred", r.deferred as f64),
                ("frame_errors", r.frame_errors as f64),
                ("anomalies", r.anomalies.len() as f64),
            ],
        );
        rep.attach_timeline(&point, &r.timeline, &r.anomalies);
    }
    rep.finish();
}
