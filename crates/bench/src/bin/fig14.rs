//! Figure 14: compute-side cache consumption vs number of loaded items.
//!
//! Usage: `fig14 [--sizes 100000,200000,400000]`
//!
//! Loads each index with N items, warms the cache with one search per key,
//! and reports the measured per-CN cache footprint plus a linear
//! extrapolation to the paper's 60 M items (cache consumption is linear in
//! the dataset size, §5.2).

use bench::driver::{deploy, run_deployed, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let sizes: String = args.get("sizes", "100000,200000,400000".to_string());
    let sizes: Vec<u64> = sizes.split(',').map(|s| s.trim().parse().unwrap()).collect();
    println!("# Figure 14: cache consumption vs loaded items (sufficient caches)");
    println!(
        "{:<10} {:>10} {:>14} {:>20}",
        "index", "items", "cache (MB)", "@60M items (MB)"
    );
    let mut rep = Report::new("fig14");
    for &n in &sizes {
        let kinds = [
            (
                "CHIME",
                IndexKind::Chime(chime::ChimeConfig {
                    cache_bytes: 8 << 30,
                    // The hotspot buffer is reported separately (fixed 30 MB
                    // in the paper); exclude it from the structural cache.
                    hotspot_bytes: 0,
                    speculative_read: false,
                    ..Default::default()
                }),
            ),
            (
                "Sherman",
                IndexKind::Sherman(sherman::ShermanConfig {
                    cache_bytes: 8 << 30,
                    ..Default::default()
                }),
            ),
            ("ROLEX", IndexKind::Rolex(rolex::RolexConfig::default())),
            (
                "SMART",
                IndexKind::Smart(smart::SmartConfig {
                    cache_bytes: 8 << 30,
                    ..Default::default()
                }),
            ),
        ];
        for (name, kind) in kinds {
            let setup = BenchSetup {
                kind,
                preload: n,
                ops: n, // one uniform pass to warm the cache
                clients: 16,
                num_cns: 1,
                workload: Workload::C,
                theta: 0.6, // flatter zipf touches more of the tree
                mn_capacity: 4 << 30,
                ..Default::default()
            };
            let mut dep = deploy(&setup);
            let r = run_deployed(&setup, &mut dep);
            let mb = r.cache_bytes as f64 / (1 << 20) as f64;
            let extrap = mb * 60.0e6 / n as f64;
            println!("{name:<10} {n:>10} {mb:>14.2} {extrap:>20.1}");
            rep.add(&format!("{name}/{n}"), &r);
        }
    }
    rep.finish();
    println!("\n# Paper reference @60M: CHIME 27.6 MB (+30 MB hotspot buffer),");
    println!("# Sherman 23.6 MB, ROLEX 31.2 MB, SMART 503.2 MB.");
}
