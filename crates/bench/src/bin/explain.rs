//! `explain OLD.json NEW.json` — attribute bench metric movement.
//!
//! Both arguments are bench documents with a `points` array: figure reports
//! (`BENCH_<name>.json`) or perf-gate baselines (`results/baseline.json`).
//! The report diffs every shared point's headline metrics and, where they
//! moved, ranks the schema-2 attribution metrics (per-phase time and
//! round-trips, retry root causes, per-op-type latencies) by absolute
//! delta. Output is deterministic: the same two files always produce the
//! same bytes.
//!
//! Exits 0 after printing; exits 2 on usage or parse errors. The tool never
//! judges whether a change is acceptable — that is the perf gate's job.

use bench::explain::{cite_anomalies, explain, load_citations, load_points};

fn label(path: &str) -> String {
    std::path::Path::new(path)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: explain OLD.json NEW.json");
        std::process::exit(2);
    };
    let mut sides = Vec::new();
    let mut citations = Vec::new();
    for path in [old_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match load_points(&text) {
            Ok(p) => sides.push(p),
            Err(e) => {
                eprintln!("error: cannot parse {path}: {e}");
                std::process::exit(2);
            }
        }
        citations.push(load_citations(&text).unwrap_or_default());
    }
    print!(
        "{}",
        explain(&label(old_path), &sides[0], &label(new_path), &sides[1])
    );
    // Schema-3 documents carry in-run anomaly findings: cite their time
    // windows so a regression report says *when*, not just *what*.
    print!("{}", cite_anomalies(&label(new_path), &citations[1]));
}
