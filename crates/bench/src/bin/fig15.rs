//! Figure 15: factor analysis — applying CHIME's techniques one by one.
//!
//! 15a starts from Sherman and adds: the hopscotch leaf node, vacancy-bitmap
//! piggybacking, leaf-metadata replication, and the speculative read.
//! 15b starts from ROLEX and swaps in hopscotch leaves (CHIME-Learned).
//!
//! Usage: `fig15 [--preload N] [--ops N] [--clients N]`

use bench::driver::{print_row, run, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 150_000);
    let ops: u64 = args.get("ops", 60_000);
    let clients: usize = args.get("clients", 320);

    let hotspot = (preload as f64 / 60.0e6 * (30 << 20) as f64) as u64 + (16 << 10);
    let base = chime::ChimeConfig {
        speculative_read: false,
        vacancy_piggyback: false,
        metadata_replication: false,
        sibling_validation: false,
        hotspot_bytes: 0,
        ..Default::default()
    };
    let variants: Vec<(&str, IndexKind)> = vec![
        (
            "Sherman",
            IndexKind::Sherman(sherman::ShermanConfig::default()),
        ),
        ("+hopscotch leaf", IndexKind::Chime(base)),
        (
            "+vacancy piggyback",
            IndexKind::Chime(chime::ChimeConfig {
                vacancy_piggyback: true,
                ..base
            }),
        ),
        (
            "+metadata replication",
            IndexKind::Chime(chime::ChimeConfig {
                vacancy_piggyback: true,
                metadata_replication: true,
                sibling_validation: true,
                ..base
            }),
        ),
        (
            "+speculative read",
            IndexKind::Chime(chime::ChimeConfig {
                vacancy_piggyback: true,
                metadata_replication: true,
                sibling_validation: true,
                speculative_read: true,
                hotspot_bytes: hotspot,
                ..base
            }),
        ),
    ];
    let mut rep = Report::new("fig15");
    println!("# Figure 15a: factor analysis from Sherman ({clients} clients)");
    for w in [Workload::C, Workload::Load, Workload::A] {
        println!("\n## YCSB {}", w.name());
        for (name, kind) in &variants {
            let setup = BenchSetup {
                kind: kind.clone(),
                workload: w,
                preload,
                ops,
                clients,
                num_cns: 10,
                ..Default::default()
            };
            let r = run(&setup);
            print_row(name, clients, &r);
            rep.add(&format!("15a/{}/{}", w.name(), name), &r);
        }
    }

    println!("\n# Figure 15b: factor analysis from ROLEX");
    for w in [Workload::C, Workload::A] {
        println!("\n## YCSB {}", w.name());
        for (name, kind) in [
            (
                "ROLEX",
                IndexKind::Rolex(rolex::RolexConfig::default()),
            ),
            (
                "CHIME-Learned (hop leaves)",
                IndexKind::Rolex(rolex::RolexConfig {
                    hopscotch_leaves: true,
                    ..Default::default()
                }),
            ),
            (
                "CHIME",
                IndexKind::Chime(chime::ChimeConfig {
                    hotspot_bytes: hotspot,
                    ..Default::default()
                }),
            ),
        ] {
            let setup = BenchSetup {
                kind,
                workload: w,
                preload,
                ops,
                clients,
                num_cns: 10,
                ..Default::default()
            };
            let r = run(&setup);
            print_row(name, clients, &r);
            rep.add(&format!("15b/{}/{}", w.name(), name), &r);
        }
    }
    rep.finish();
}
