//! fig_scaleout: multi-MN scale-out of the partitioned tree.
//!
//! Sweeps the memory-node count 1 → 8 with a partitioned CHIME deployment
//! (4 range partitions per MN, CN cache budget split across partitions)
//! under two YCSB-C key distributions:
//!
//! * **uniform** (theta ≈ 0) — traffic spreads evenly; throughput should
//!   scale with the MN count (each MN's NIC serves 1/N of the verbs);
//! * **zipfian** — hot keys hash into a few partitions, so the static
//!   round-robin placement overloads one MN's NIC and the skew-aware
//!   network model caps throughput at `total/max` MN shares. Run twice:
//!   with the hotspot migrator off (the loss) and on (the recovery — the
//!   rebalancer peels cold partitions off the hottest MN, live, mid-run).
//!
//! Usage: `fig_scaleout [--preload N] [--ops N] [--theta Z]`

use bench::driver::{print_row, run, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

/// Partitions per memory node. More partitions than MNs is what gives the
/// migrator room: it rebalances by re-homing whole partitions.
const PARTS_PER_MN: usize = 4;

fn setup(mns: u16, theta: f64, migrate: bool, preload: u64, ops: u64, seed: u64) -> BenchSetup {
    let parts = PARTS_PER_MN * mns as usize;
    // Fixed per-CN budgets divided over the partition trees, so adding MNs
    // does not quietly add compute-side cache.
    let cache_budget = 8u64 << 20;
    let hotspot_budget = 1u64 << 20;
    let cfg = part::ClusterConfig {
        parts,
        chime: chime::ChimeConfig {
            cache_bytes: cache_budget / parts as u64,
            hotspot_bytes: hotspot_budget / parts as u64,
            // Small leaves keep the one-time migration copy (leaf reads on
            // the source MN, per-item inserts on the target) cheap relative
            // to the steady-state traffic the rebalancing is meant to fix.
            span: 16,
            neighborhood: 4,
            ..Default::default()
        },
        check_every: 64,
        // The rebalancer re-evaluates on every one of its own ops: with
        // ~2000 clients sharing the op budget it only runs a handful, and
        // the window gate (min_window over *cluster-wide* traffic) is what
        // actually paces migrations.
        migrate: migrate.then_some(part::MigrateConfig {
            check_every: 1,
            min_window: 4_096,
            imbalance: 1.15,
        }),
    };
    BenchSetup {
        kind: IndexKind::Part(cfg),
        num_mns: mns,
        mn_capacity: 64 << 20,
        num_cns: 4,
        // Enough offered load that the MN-side NIC verb rate is the
        // binding resource across the whole sweep — the scale-out story
        // is about MN NICs, not client count.
        clients: 1_920,
        preload,
        ops,
        workload: Workload::C,
        theta,
        // RDWC combining would collapse duplicate hot-key reads at the CN
        // and mask exactly the MN-side placement skew this figure
        // measures, so it is off here (it is on for every paper figure).
        rdwc: false,
        seed,
        ..Default::default()
    }
}

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 30_000);
    let ops: u64 = args.get("ops", 576_000);
    let theta: f64 = args.get("theta", ycsb::ZIPFIAN_CONSTANT);
    let seed: u64 = args.get("seed", 42);

    let mut rep = Report::new("fig_scaleout");
    println!("# fig_scaleout: throughput vs memory nodes (partitioned CHIME)");
    println!("# uniform YCSB C, then zipf theta {theta} with the migrator off/on");
    for mns in [1u16, 2, 4, 8] {
        let r = run(&setup(mns, 0.01, false, preload, ops, seed));
        print_row(&format!("uniform {mns} MNs"), 64, &r);
        rep.add(&format!("uniform/mns{mns}"), &r);

        let r_off = run(&setup(mns, theta, false, preload, ops, seed));
        print_row(&format!("zipf {mns} MNs, migrate off"), 64, &r_off);
        rep.add(&format!("zipf/mns{mns}/off"), &r_off);

        let r_on = run(&setup(mns, theta, true, preload, ops, seed));
        let migs = r_on.metrics.counter_value("migrate_migrations_total", &[]);
        let leaves = r_on.metrics.counter_value("migrate_leaves_moved_total", &[]);
        print_row(
            &format!("zipf {mns} MNs, migrate on ({migs} mig, {leaves} leaves)"),
            64,
            &r_on,
        );
        rep.add(&format!("zipf/mns{mns}/on"), &r_on);
        println!(
            "#   skew recovery at {mns} MNs: {:.2}x",
            r_on.mops / r_off.mops
        );
    }
    rep.finish();
}
