//! Figure 17: the contribution of speculative reads at high client counts
//! (YCSB C).
//!
//! With few clients the network is not saturated and speculation barely
//! matters; past saturation, reading one entry instead of a neighborhood
//! buys back bandwidth.
//!
//! Usage: `fig17 [--preload N] [--ops N]`

use bench::driver::{deploy, print_row, run_deployed, Args, BenchSetup, IndexKind};
use bench::report::Report;
use ycsb::Workload;

fn main() {
    let args = Args::parse();
    let preload: u64 = args.get("preload", 150_000);
    let ops: u64 = args.get("ops", 60_000);
    let sweep = [160usize, 320, 640, 960, 1280];
    let hotspot = (preload as f64 / 60.0e6 * (30 << 20) as f64) as u64 + (16 << 10);

    println!("# Figure 17: speculative read (SR) contribution, YCSB C");
    let mut rep = Report::new("fig17");
    for (name, sr) in [("CHIME w/o SR", false), ("CHIME w/ SR", true)] {
        let mut setup = BenchSetup {
            kind: IndexKind::Chime(chime::ChimeConfig {
                speculative_read: sr,
                hotspot_bytes: if sr { hotspot } else { 0 },
                ..Default::default()
            }),
            workload: Workload::C,
            preload,
            ops,
            clients: *sweep.last().unwrap(),
            num_cns: 10,
            ..Default::default()
        };
        let mut dep = deploy(&setup);
        for &c in &sweep {
            setup.clients = c;
            let r = run_deployed(&setup, &mut dep);
            print_row(name, c, &r);
            if sr {
                println!("{:>34} hotspot hit ratio {:.1}%", "", r.hotspot_hit_ratio * 100.0);
            }
            rep.add(&format!("{name}/{c}"), &r);
        }
    }
    rep.finish();
}
