//! Telemetry acceptance tests for the continuous-telemetry layer:
//!
//! * a seeded migration run's timeline shows the migration's
//!   lock → copy → publish interval;
//! * `to_perfetto()` exports valid Chrome trace-event JSON that is
//!   byte-identical across identical-seed runs;
//! * a fault-injected throughput cliff is flagged by the in-run anomaly
//!   detector at the window the timeline itself says collapsed, and
//!   `explain`'s citation loader reproduces the finding verbatim.

use bench::driver::{run, BenchSetup, IndexKind};
use bench::explain::{cite_anomalies, load_citations};
use bench::report::Report;
use dmem::{FaultAction, FaultPlan, FaultRule};
use obs::AnomalyKind;
use serve::sim::{run_sim, OverloadPolicy, SimConfig};
use ycsb::Workload;

/// A reduced cut of `fig_scaleout`'s Zipfian-with-migration geometry:
/// small enough for a test, skewed enough that the rebalancer moves at
/// least one partition mid-run.
fn migrating_setup() -> BenchSetup {
    let parts = 8;
    BenchSetup {
        kind: IndexKind::Part(part::ClusterConfig {
            parts,
            chime: chime::ChimeConfig {
                cache_bytes: (4 << 20) / parts as u64,
                hotspot_bytes: (1 << 20) / parts as u64,
                span: 16,
                neighborhood: 4,
                ..Default::default()
            },
            check_every: 64,
            migrate: Some(part::MigrateConfig {
                check_every: 1,
                min_window: 1_024,
                imbalance: 1.1,
            }),
        }),
        num_mns: 2,
        mn_capacity: 64 << 20,
        num_cns: 2,
        clients: 64,
        preload: 10_000,
        ops: 16_000,
        workload: Workload::C,
        theta: ycsb::ZIPFIAN_CONSTANT,
        rdwc: false,
        seed: 42,
        ..Default::default()
    }
}

#[test]
fn migration_run_timeline_shows_the_lock_copy_publish_interval() {
    let r = run(&migrating_setup());
    assert!(
        r.metrics.counter_value("migrate_migrations_total", &[]) >= 1,
        "the skewed run must migrate at least one partition"
    );
    // The windowed series carried ops and the migration left its event
    // markers in the same (virtual) time base.
    assert!(r.timeline.total_ops() > 0, "timeline must carry the measured ops");
    let find = |prefix: &str| {
        r.timeline
            .events()
            .iter()
            .find(|e| e.label.starts_with(prefix))
            .unwrap_or_else(|| panic!("timeline must record a {prefix} event"))
    };
    let locked = find("migrate.locked");
    let copied = find("migrate.copied");
    let published = find("migrate.published");
    assert!(
        locked.t_ns <= copied.t_ns && copied.t_ns <= published.t_ns,
        "lock→copy→publish must be a forward interval: {} / {} / {}",
        locked.t_ns,
        copied.t_ns,
        published.t_ns
    );
    // The interval lies inside the measured phase, not at the epoch.
    assert!(published.t_ns > 0);

    // The report embeds the same timeline and writes the standalone
    // timeline document (schema checked by report tests; here we check
    // the migration events survive the JSON round trip).
    let mut rep = Report::new("timeline_test");
    rep.add("part/zipf-mig", &r);
    let doc = rep.timeline_json();
    assert!(doc.contains("migrate.locked"), "timeline doc must carry the events");
    assert!(doc.contains("migrate.published"));
}

#[test]
fn identical_seeded_runs_export_identical_timelines() {
    let r1 = run(&migrating_setup());
    let r2 = run(&migrating_setup());
    assert_eq!(
        r1.timeline.to_json().to_pretty(),
        r2.timeline.to_json().to_pretty(),
        "timeline JSON must be byte-identical for a fixed seed"
    );
    assert_eq!(
        obs::anomaly::to_json(&r1.anomalies).to_pretty(),
        obs::anomaly::to_json(&r2.anomalies).to_pretty()
    );
}

#[test]
fn perfetto_export_is_valid_trace_event_json_and_deterministic() {
    let setup = BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        num_mns: 1,
        clients: 8,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload: Workload::A,
        trace_clients: 2,
        seed: 7,
        ..Default::default()
    };
    let r1 = run(&setup);
    let doc = r1.perfetto.as_ref().expect("trace_clients > 0 must export Perfetto");
    let json = obs::json::parse(doc).expect("Perfetto export must parse as JSON");
    let events = json
        .get("traceEvents")
        .and_then(obs::Json::as_arr)
        .expect("Chrome trace-event format: top-level traceEvents array");
    assert!(!events.is_empty(), "traced clients must emit events");
    // Every record carries the mandatory trace-event fields, and the
    // non-metadata phases carry a numeric timestamp.
    let mut phases_seen = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(obs::Json::as_str).expect("ph field");
        assert!(ev.get("pid").and_then(obs::Json::as_f64).is_some());
        assert!(ev.get("tid").and_then(obs::Json::as_f64).is_some());
        if ph != "M" {
            assert!(ev.get("ts").and_then(obs::Json::as_f64).is_some(), "ph {ph} needs ts");
        }
        phases_seen.insert(ph.to_string());
    }
    // Track names for both traced clients, plus at least op slices.
    assert!(phases_seen.contains("M"), "thread_name metadata expected");
    assert!(
        phases_seen.contains("b") && phases_seen.contains("e"),
        "async op slices expected, saw {phases_seen:?}"
    );

    let r2 = run(&setup);
    assert_eq!(
        r1.perfetto, r2.perfetto,
        "Perfetto export must be byte-identical for a fixed seed"
    );
}

/// Serve-layer sim config with a mid-run stall: from per-connection verb
/// sequence 150 on (~0.8 ms in, around window 8 of the 100 µs grid),
/// every verb pays a 50 µs injected delay, collapsing the service rate
/// far below the open-loop offered load.
fn sim_cfg(faulted: bool) -> SimConfig {
    SimConfig {
        seed: 42,
        conns: 32,
        workers: 2,
        requests_per_conn: 512,
        mean_gap_ns: 8_000,
        cq_watermark: 64,
        policy: OverloadPolicy::Shed,
        faults: faulted.then(|| FaultPlan {
            seed: 42,
            rules: vec![FaultRule {
                label: "stall".to_string(),
                verb: None,
                client: None,
                probability: 1.0,
                after_seq: 150,
                max_fires: u64::MAX,
                action: FaultAction::Delay { ns: 50_000 },
            }],
            crashes: Vec::new(),
        }),
        ..SimConfig::default()
    }
}

#[test]
fn fault_injected_cliff_is_flagged_at_the_collapsed_window_and_cited() {
    // Control: the unfaulted run's only cliffs are the end-of-run drain
    // (connections finishing their request budgets), confined to the last
    // few windows of the timeline.
    let quiet = run_sim(&sim_cfg(false));
    let quiet_last = quiet.timeline.windows().map(|(k, _)| k).max().unwrap_or(0);
    for a in &quiet.anomalies {
        if a.kind == AnomalyKind::ThroughputCliff {
            assert!(
                a.window + 8 > quiet_last,
                "unfaulted control cliffs only in the drain tail, got window {} of {}",
                a.window,
                quiet_last
            );
        }
    }

    let r = run_sim(&sim_cfg(true));
    let cliffs: Vec<&obs::Anomaly> = r
        .anomalies
        .iter()
        .filter(|a| a.kind == AnomalyKind::ThroughputCliff)
        .collect();
    assert!(!cliffs.is_empty(), "injected stall must register as a throughput cliff");
    // The earliest cliff sits at the stall's onset — mid-run, far from
    // the drain tail the control run ends with.
    let onset = cliffs.iter().map(|c| c.window).min().unwrap();
    assert!(
        (6..=16).contains(&onset),
        "cliff must be flagged at the stall onset (~window 8), got {onset}"
    );

    // The detector must cite a window the timeline itself says collapsed:
    // ops strictly below 40% of the trailing 4-window mean (the detector's
    // default threshold), recomputed here from the raw series.
    let ts = &r.timeline;
    for c in &cliffs {
        let w = c.window;
        let cur = ts.window(w).map_or(0, |win| win.ops);
        let trailing: u64 = (w.saturating_sub(4)..w)
            .map(|p| ts.window(p).map_or(0, |win| win.ops))
            .sum();
        let mean = trailing as f64 / 4.0;
        assert!(
            mean >= 16.0 && (cur as f64) < 0.4 * mean,
            "cited window {w} must actually be a cliff: {cur} ops vs mean {mean:.1}"
        );
        assert_eq!(c.t_start_ns, w * ts.window_ns(), "citation anchors the window");
    }

    // The explain pipeline reproduces the findings verbatim from the
    // on-disk timeline document.
    let mut rep = Report::new("timeline_cliff");
    rep.add_custom("serve/stall", &[("served", r.served as f64)]);
    rep.attach_timeline("serve/stall", &r.timeline, &r.anomalies);
    let loaded = load_citations(&rep.timeline_json()).expect("timeline doc parses");
    let expected: Vec<String> = r.anomalies.iter().map(|a| a.cite()).collect();
    assert_eq!(loaded, vec![("serve/stall".to_string(), expected)]);
    let rendered = cite_anomalies("current", &loaded);
    let first_cliff = cliffs[0];
    assert!(
        rendered.contains(&format!("at window {}", first_cliff.window)),
        "explain output must cite the collapsed window:\n{rendered}"
    );
}
