//! Coroutine-engine acceptance: a pipelined run is as reproducible as a
//! serial one. For identical seeds, every lane count K must export
//! byte-identical bench report JSON and byte-identical per-lane trace
//! JSONL — the discrete-event scheduler admits exactly one interleaving
//! per (seed, K).

use bench::driver::{run, BenchSetup, IndexKind};
use bench::report::Report;
use dmem::{QpConfig, RangeIndex};
use sched::{Engine, EngineConfig, LaneBody};
use ycsb::Workload;

const KS: [usize; 4] = [1, 2, 4, 8];

fn setup(k: usize, workload: Workload) -> BenchSetup {
    BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        num_mns: 2,
        clients: 8,
        coroutines: k,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn bench_reports_are_byte_identical_per_seed_at_every_k() {
    for k in KS {
        let r1 = run(&setup(k, Workload::C));
        let r2 = run(&setup(k, Workload::C));
        assert_eq!(
            r1.metrics.to_json(),
            r2.metrics.to_json(),
            "metrics snapshot diverged at K={k}"
        );
        let mut rep1 = Report::new("coroutines");
        let mut rep2 = Report::new("coroutines");
        rep1.add(&format!("chime/c/8/k{k}"), &r1);
        rep2.add(&format!("chime/c/8/k{k}"), &r2);
        assert_eq!(
            rep1.to_json(),
            rep2.to_json(),
            "bench report JSON diverged at K={k}"
        );
    }
}

#[test]
fn write_workload_reports_are_byte_identical_when_pipelined() {
    // Workload A adds lock acquisition, local-lock queueing, and retry
    // backoff to the interleaving; determinism must survive all of it.
    let r1 = run(&setup(4, Workload::A));
    let r2 = run(&setup(4, Workload::A));
    assert_eq!(r1.metrics.to_json(), r2.metrics.to_json());
    assert_eq!(r1.mn_traffic, r2.mn_traffic);
}

/// Runs K traced CHIME clients as lanes of one engine client and returns
/// each lane's trace JSONL.
fn lane_traces(k: usize) -> Vec<String> {
    let pool = dmem::Pool::with_defaults(1, 128 << 20);
    let cfg = chime::ChimeConfig {
        trace_events: 1 << 14,
        ..Default::default()
    };
    let tree = chime::Chime::create(&pool, cfg, 0);
    let cn = tree.new_cn();
    let mut loader = tree.client(&cn);
    for seq in 0..300u64 {
        loader.insert(ycsb::KeySpace::key(seq), &seq.to_le_bytes()).unwrap();
    }
    let engine = Engine::new(EngineConfig {
        lanes: k,
        qp: QpConfig::default(),
    });
    let bodies: Vec<LaneBody<String>> = (0..k)
        .map(|l| {
            let mut c = tree.client(&cn);
            Box::new(move || {
                for i in 0..200u64 {
                    let key = ycsb::KeySpace::key((l as u64 * 997 + i * 13) % 300);
                    assert!(c.search(key).is_some());
                }
                c.take_tracer().unwrap().to_jsonl()
            }) as LaneBody<String>
        })
        .collect();
    let net = *pool.net();
    engine.run_client(net, 1, bodies).into_results()
}

#[test]
fn lane_trace_jsonl_is_byte_identical_per_seed_at_every_k() {
    for k in KS {
        let a = lane_traces(k);
        let b = lane_traces(k);
        assert!(a.iter().all(|t| !t.is_empty()));
        assert_eq!(a, b, "lane trace JSONL diverged at K={k}");
    }
}
