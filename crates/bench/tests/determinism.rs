//! Determinism acceptance tests: two identical seeded runs must produce
//! byte-identical exported artifacts — the metrics snapshot JSON, the
//! Prometheus text, the bench report JSON, and the span/event trace JSONL.

use bench::driver::{run, BenchSetup, IndexKind};
use bench::report::Report;
use dmem::RangeIndex;
use ycsb::Workload;

fn tiny(workload: Workload) -> BenchSetup {
    BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        num_mns: 2,
        clients: 8,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn identical_seeded_runs_export_identical_metrics_json() {
    for w in [Workload::C, Workload::A] {
        let r1 = run(&tiny(w));
        let r2 = run(&tiny(w));
        assert_eq!(
            r1.metrics.to_json(),
            r2.metrics.to_json(),
            "snapshot JSON diverged on {w:?}"
        );
        assert_eq!(r1.metrics.to_prometheus(), r2.metrics.to_prometheus());
        assert_eq!(r1.mn_traffic, r2.mn_traffic);
        // The snapshot is non-trivial: verbs flowed and per-MN accounting
        // covers the whole pool.
        assert!(r1.metrics.counter_sum("client_reads_total") > 0);
        assert_eq!(r1.mn_traffic.len(), 2);
        assert!(r1.mn_traffic.iter().map(|&(msgs, _)| msgs).sum::<u64>() > 0);
    }
}

#[test]
fn identical_seeded_runs_export_identical_bench_reports() {
    let r1 = run(&tiny(Workload::B));
    let r2 = run(&tiny(Workload::B));
    let mut rep1 = Report::new("determinism");
    let mut rep2 = Report::new("determinism");
    rep1.add("chime/b/8", &r1);
    rep2.add("chime/b/8", &r2);
    assert_eq!(rep1.to_json(), rep2.to_json());
}

#[test]
fn identical_seeded_workloads_export_identical_trace_jsonl() {
    let trace = || {
        let pool = dmem::Pool::with_defaults(2, 128 << 20);
        let cfg = chime::ChimeConfig {
            trace_events: 1 << 16,
            ..Default::default()
        };
        let t = chime::Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for seq in 0..500u64 {
            c.insert(ycsb::KeySpace::key(seq), &seq.to_le_bytes()).unwrap();
        }
        for seq in 0..500u64 {
            assert!(c.search(ycsb::KeySpace::key(seq * 7 % 500)).is_some());
        }
        c.take_tracer().unwrap().to_jsonl()
    };
    let a = trace();
    let b = trace();
    assert!(!a.is_empty());
    assert_eq!(a, b, "trace JSONL diverged between identical seeded runs");
}
