//! Determinism acceptance tests: two identical seeded runs must produce
//! byte-identical exported artifacts — the metrics snapshot JSON, the
//! Prometheus text, the bench report JSON, and the span/event trace JSONL.

use bench::driver::{run, BenchSetup, IndexKind};
use bench::report::Report;
use dmem::RangeIndex;
use ycsb::Workload;

fn tiny(workload: Workload) -> BenchSetup {
    BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        num_mns: 2,
        clients: 8,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn identical_seeded_runs_export_identical_metrics_json() {
    for w in [Workload::C, Workload::A] {
        let r1 = run(&tiny(w));
        let r2 = run(&tiny(w));
        assert_eq!(
            r1.metrics.to_json(),
            r2.metrics.to_json(),
            "snapshot JSON diverged on {w:?}"
        );
        assert_eq!(r1.metrics.to_prometheus(), r2.metrics.to_prometheus());
        assert_eq!(r1.mn_traffic, r2.mn_traffic);
        // The snapshot is non-trivial: verbs flowed and per-MN accounting
        // covers the whole pool.
        assert!(r1.metrics.counter_sum("client_reads_total") > 0);
        assert_eq!(r1.mn_traffic.len(), 2);
        assert!(r1.mn_traffic.iter().map(|&(msgs, _)| msgs).sum::<u64>() > 0);
        // Schema-2 attribution: the phase breakdown, per-op-type latency
        // percentiles and retry root causes ride in the same snapshot.
        assert!(r1.metrics.counter_value("phase_ns_total", &[("phase", "traversal")]) > 0);
        assert!(r1.metrics.counter_value("phase_rtts_total", &[("phase", "leaf_read")]) > 0);
        let read_lat = r1
            .metrics
            .histogram_value("op_latency", &[("op", "read")])
            .expect("per-op-type histogram");
        assert!(read_lat.count > 0 && read_lat.p50_ns <= read_lat.p90_ns);
        assert!(read_lat.p90_ns <= read_lat.p99_ns && read_lat.p99_ns <= read_lat.max_ns);
        // Retry-cause counters exist for the full taxonomy (zeros included).
        for cause in obs::RetryCause::ALL {
            let _ = r1
                .metrics
                .counter_value("retry_cause_total", &[("cause", cause.as_str())]);
        }
        // ClientStats fault/retry/reclaim counters surface in the snapshot.
        for c in [
            "client_torn_reads_detected_total",
            "client_lock_retries_total",
            "client_op_retries_total",
            "client_stale_locks_reclaimed_total",
            "client_faults_injected_total",
        ] {
            assert!(
                r1.metrics.to_json().contains(c),
                "snapshot must carry {c}"
            );
        }
    }
}

#[test]
fn identical_seeded_runs_export_identical_bench_reports() {
    let r1 = run(&tiny(Workload::B));
    let r2 = run(&tiny(Workload::B));
    let mut rep1 = Report::new("determinism");
    let mut rep2 = Report::new("determinism");
    rep1.add("chime/b/8", &r1);
    rep2.add("chime/b/8", &r2);
    assert_eq!(rep1.to_json(), rep2.to_json());
}

/// Hotspot-buffer coverage: a Zipfian read workload drives speculative
/// reads, whose hit/miss counters and `speculative_read` phase spans are
/// deterministic — two identical seeded runs export byte-identical trace
/// JSONL including the phase events.
#[test]
fn zipfian_speculative_reads_profile_deterministically() {
    let run_once = || {
        let pool = dmem::Pool::with_defaults(1, 256 << 20);
        let cfg = chime::ChimeConfig {
            trace_events: 1 << 16,
            ..Default::default()
        };
        assert!(cfg.speculative_read && cfg.hotspot_bytes > 0);
        let t = chime::Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for seq in 0..2_000u64 {
            c.insert(ycsb::KeySpace::key(seq), &seq.to_le_bytes()).unwrap();
        }
        let state = ycsb::WorkloadState::new(2_000);
        let mut gen = ycsb::OpGen::new(Workload::C, state, 99);
        for _ in 0..4_000 {
            let ycsb::Op::Read(k) = gen.next_op() else {
                panic!("workload C is read-only")
            };
            let _ = c.search(k);
        }
        let (attempts, hits) = (c.counters.spec_attempts, c.counters.spec_hits);
        let episodes = c.profile().unwrap().phase(obs::Phase::SpeculativeRead).episodes;
        let jsonl = c.take_tracer().unwrap().to_jsonl();
        (attempts, hits, episodes, jsonl)
    };
    let (attempts, hits, episodes, jsonl) = run_once();
    assert!(attempts > 0, "Zipfian reads must attempt speculative reads");
    assert!(hits > 0, "hot keys must hit the hotspot buffer");
    assert!(hits <= attempts);
    // Every speculative attempt opens exactly one speculative_read episode.
    assert_eq!(episodes, attempts);
    assert!(
        jsonl.contains("\"ev\":\"phase_begin\",\"phase\":\"speculative_read\""),
        "trace must carry speculative_read phase spans"
    );
    let again = run_once();
    assert_eq!((attempts, hits, episodes, &jsonl), (again.0, again.1, again.2, &again.3));
}

#[test]
fn identical_seeded_workloads_export_identical_trace_jsonl() {
    let trace = || {
        let pool = dmem::Pool::with_defaults(2, 128 << 20);
        let cfg = chime::ChimeConfig {
            trace_events: 1 << 16,
            ..Default::default()
        };
        let t = chime::Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for seq in 0..500u64 {
            c.insert(ycsb::KeySpace::key(seq), &seq.to_le_bytes()).unwrap();
        }
        for seq in 0..500u64 {
            assert!(c.search(ycsb::KeySpace::key(seq * 7 % 500)).is_some());
        }
        c.take_tracer().unwrap().to_jsonl()
    };
    let a = trace();
    let b = trace();
    assert!(!a.is_empty());
    assert_eq!(a, b, "trace JSONL diverged between identical seeded runs");
}
