//! End-to-end perf-gate test: a real bench run passes against a baseline
//! built from its own numbers and demonstrably fails once that baseline is
//! perturbed — the property `make perf-smoke` relies on in CI.

use bench::driver::{run, BenchSetup, IndexKind};
use bench::report::Report;
use obs::{compare, Baseline, BenchPoint};
use ycsb::Workload;

fn measure_k(coroutines: usize) -> Vec<BenchPoint> {
    let setup = BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        clients: 8,
        coroutines,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload: Workload::C,
        ..Default::default()
    };
    let r = run(&setup);
    let name = if coroutines == 1 {
        "chime/c/8".to_string()
    } else {
        format!("chime/c/8/k{coroutines}")
    };
    vec![BenchPoint {
        name,
        metrics: Report::flat_metrics(&r),
    }]
}

fn measure() -> Vec<BenchPoint> {
    measure_k(1)
}

#[test]
fn gate_passes_against_own_baseline_and_fails_against_perturbed_one() {
    let current = measure();
    let baseline = Baseline {
        tolerance_pct: 10.0,
        points: current.clone(),
        ..Default::default()
    };
    let report = compare(&current, &baseline);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.compared > 0);

    // Pretend the baseline was 2x faster: the current run must now register
    // as a ~50% throughput regression and fail the gate.
    let mut perturbed = baseline.clone();
    let mops = perturbed.points[0].metrics.get_mut("mops").unwrap();
    assert!(*mops > 0.0);
    *mops *= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed(), "perturbed baseline must fail the gate");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].metric, "mops");
    assert!(report.violations[0].regression_pct > 40.0);

    // Perturbing a lower-is-better metric downward fails too.
    let mut perturbed = baseline.clone();
    let bpo = perturbed.points[0].metrics.get_mut("bytes_per_op").unwrap();
    *bpo /= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed());
    assert_eq!(report.violations[0].metric, "bytes_per_op");

    // The latency tail is gated: a halved baseline p99 makes the current
    // tail register as a 2x regression.
    let mut perturbed = baseline.clone();
    let p99 = perturbed.points[0].metrics.get_mut("p99_us").unwrap();
    assert!(*p99 > 0.0);
    *p99 /= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed(), "p99 rise must fail the gate");
    assert_eq!(report.violations[0].metric, "p99_us");
    assert!(report.violations[0].regression_pct > 40.0);

    // A schema-2 gated list narrows enforcement: the same perturbed p99 is
    // ignored when only mops is gated.
    let mut narrow = perturbed.clone();
    narrow.gated = vec!["mops".to_string()];
    let report = compare(&current, &narrow);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.compared, 1);

    // A missing point fails the gate outright.
    let current_renamed = vec![BenchPoint {
        name: "someone/else".into(),
        metrics: current[0].metrics.clone(),
    }];
    let report = compare(&current_renamed, &baseline);
    assert!(!report.passed());
    assert_eq!(report.missing_points, vec!["chime/c/8".to_string()]);
}

/// The gate catches regressions in the pipelined (K=4) configuration too:
/// a baseline claiming higher overlapped throughput or fewer doorbells per
/// op than the current run fails the comparison.
#[test]
fn gate_catches_regressions_at_k4() {
    let current = measure_k(4);
    let qp_doorbells = current[0].metrics["qp.doorbells_per_op"];
    assert!(
        qp_doorbells > 0.0,
        "a K=4 point must carry QP model metrics"
    );
    let baseline = Baseline {
        tolerance_pct: 10.0,
        points: current.clone(),
        ..Default::default()
    };
    assert!(compare(&current, &baseline).passed());

    // A baseline twice as fast: the pipelined run registers as a ~50%
    // throughput regression.
    let mut perturbed = baseline.clone();
    *perturbed.points[0].metrics.get_mut("mops").unwrap() *= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed(), "perturbed K=4 baseline must fail the gate");
    assert_eq!(report.violations[0].metric, "mops");
    assert!(report.violations[0].regression_pct > 40.0);
}

#[test]
fn checked_in_baseline_parses_and_covers_the_matrix() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/baseline.json"
    ))
    .expect("results/baseline.json must be checked in");
    let baseline = Baseline::from_json(&text).expect("baseline must parse");
    assert!(baseline.tolerance_pct > 0.0);
    assert_eq!(baseline.schema, 2, "checked-in baseline must be schema 2");
    for gated in ["mops", "p50_us", "p90_us", "p99_us"] {
        assert!(
            baseline.gated.iter().any(|g| g == gated),
            "schema-2 baseline must gate {gated}"
        );
    }
    assert!(
        baseline.points.len() >= 14,
        "expected the full CHIME+Sherman matrix plus K=4 points, got {}",
        baseline.points.len()
    );
    assert!(
        baseline.points.iter().any(|p| p.name.ends_with("/k4")),
        "baseline must cover the pipelined (K=4) configuration"
    );
    assert!(
        baseline.points.iter().any(|p| p.name.starts_with("serve/")),
        "baseline must cover the serving-layer point"
    );
    for p in &baseline.points {
        assert!(
            p.metrics.contains_key("mops") && p.metrics.contains_key("p99_us"),
            "point {} lacks core metrics",
            p.name
        );
        if p.name.starts_with("serve/") {
            // The serve point carries its native admission/backpressure
            // metrics instead of the index-level attribution set.
            assert!(
                p.metrics.contains_key("shed_frac") && p.metrics.contains_key("served"),
                "point {} lacks serve metrics",
                p.name
            );
            continue;
        }
        // Schema-2 attribution context rides along in every index point.
        assert!(
            p.metrics.contains_key("phase_ns_per_op.traversal")
                && p.metrics.contains_key("retries_per_op.lock_conflict")
                && p.metrics.contains_key("lat.read.p90_us"),
            "point {} lacks attribution metrics",
            p.name
        );
    }
}
