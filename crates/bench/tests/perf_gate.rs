//! End-to-end perf-gate test: a real bench run passes against a baseline
//! built from its own numbers and demonstrably fails once that baseline is
//! perturbed — the property `make perf-smoke` relies on in CI.

use bench::driver::{run, BenchSetup, IndexKind};
use bench::report::Report;
use obs::{compare, Baseline, BenchPoint};
use ycsb::Workload;

fn measure() -> Vec<BenchPoint> {
    let setup = BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        clients: 8,
        preload: 3_000,
        ops: 2_000,
        mn_capacity: 256 << 20,
        workload: Workload::C,
        ..Default::default()
    };
    let r = run(&setup);
    vec![BenchPoint {
        name: "chime/c/8".into(),
        metrics: Report::flat_metrics(&r),
    }]
}

#[test]
fn gate_passes_against_own_baseline_and_fails_against_perturbed_one() {
    let current = measure();
    let baseline = Baseline {
        tolerance_pct: 10.0,
        metric_tolerance_pct: Default::default(),
        points: current.clone(),
    };
    let report = compare(&current, &baseline);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.compared > 0);

    // Pretend the baseline was 2x faster: the current run must now register
    // as a ~50% throughput regression and fail the gate.
    let mut perturbed = baseline.clone();
    let mops = perturbed.points[0].metrics.get_mut("mops").unwrap();
    assert!(*mops > 0.0);
    *mops *= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed(), "perturbed baseline must fail the gate");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].metric, "mops");
    assert!(report.violations[0].regression_pct > 40.0);

    // Perturbing a lower-is-better metric downward fails too.
    let mut perturbed = baseline.clone();
    let bpo = perturbed.points[0].metrics.get_mut("bytes_per_op").unwrap();
    *bpo /= 2.0;
    let report = compare(&current, &perturbed);
    assert!(!report.passed());
    assert_eq!(report.violations[0].metric, "bytes_per_op");

    // A missing point fails the gate outright.
    let current_renamed = vec![BenchPoint {
        name: "someone/else".into(),
        metrics: current[0].metrics.clone(),
    }];
    let report = compare(&current_renamed, &baseline);
    assert!(!report.passed());
    assert_eq!(report.missing_points, vec!["chime/c/8".to_string()]);
}

#[test]
fn checked_in_baseline_parses_and_covers_the_matrix() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/baseline.json"
    ))
    .expect("results/baseline.json must be checked in");
    let baseline = Baseline::from_json(&text).expect("baseline must parse");
    assert!(baseline.tolerance_pct > 0.0);
    assert!(
        baseline.points.len() >= 12,
        "expected the full CHIME+Sherman matrix, got {}",
        baseline.points.len()
    );
    for p in &baseline.points {
        assert!(
            p.metrics.contains_key("mops") && p.metrics.contains_key("p99_us"),
            "point {} lacks core metrics",
            p.name
        );
    }
}
