//! Property tests for the substrate: region access, versioned-layout
//! mapping, masked-CAS algebra and the network model.

use dmem::node::RESERVED_BYTES;
use dmem::versioned::{Layout, LINE, LINE_PAYLOAD};
use dmem::{Endpoint, GlobalAddr, NetConfig, Pool, RunAccounting};
use proptest::prelude::*;

proptest! {
    /// Any write followed by a read returns the written bytes.
    #[test]
    fn region_read_after_write(
        off in 0usize..4000,
        data in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let pool = Pool::with_defaults(1, 1 << 20);
        let mut ep = Endpoint::new(pool);
        let addr = GlobalAddr::new(0, RESERVED_BYTES + off as u64);
        ep.write(addr, &data);
        let mut out = vec![0u8; data.len()];
        ep.read(addr, &mut out);
        prop_assert_eq!(out, data);
    }

    /// The logical->physical map is injective, skips every line-version
    /// byte, and is monotone.
    #[test]
    fn layout_mapping_bijective(payload in 1usize..2000) {
        let l = Layout::new(payload);
        let mut prev = 0usize;
        for i in 0..payload {
            let p = l.phys_of(i);
            prop_assert_ne!(p % LINE, 0, "logical byte on a version slot");
            if i > 0 {
                prop_assert!(p > prev);
            }
            prev = p;
            prop_assert_eq!((p / LINE) * LINE_PAYLOAD + (p % LINE) - 1, i);
        }
        prop_assert!(l.versioned_size() >= payload);
        prop_assert_eq!(l.lock_offset() % 8, 0);
    }

    /// Versioned write/fetch round-trips arbitrary ranges.
    #[test]
    fn versioned_roundtrip(
        start in 0usize..500,
        data in proptest::collection::vec(any::<u8>(), 1..400),
    ) {
        let payload = start + data.len() + 1;
        let l = Layout::new(payload.max(8));
        let pool = Pool::with_defaults(1, 1 << 20);
        let mut ep = Endpoint::new(pool);
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        l.write(&mut ep, node, start, &data, |_| 0x42);
        let f = l.fetch(&mut ep, node, start, start + data.len());
        prop_assert_eq!(f.copy(start, data.len()), data);
    }

    /// Masked-CAS only compares/swaps the masked bits.
    #[test]
    fn masked_cas_respects_masks(
        initial in any::<u64>(),
        compare in any::<u64>(),
        cmask in any::<u64>(),
        swap in any::<u64>(),
        smask in any::<u64>(),
    ) {
        let pool = Pool::with_defaults(1, 1 << 20);
        let mut ep = Endpoint::new(pool);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        ep.write(addr, &initial.to_le_bytes());
        let old = ep.masked_cas(addr, compare, cmask, swap, smask);
        prop_assert_eq!(old, initial);
        let mut b = [0u8; 8];
        ep.read(addr, &mut b);
        let now = u64::from_le_bytes(b);
        if initial & cmask == compare & cmask {
            prop_assert_eq!(now, (initial & !smask) | (swap & smask));
        } else {
            prop_assert_eq!(now, initial);
        }
    }

    /// The model never exceeds any cap and inflation is consistent.
    #[test]
    fn net_model_respects_caps(
        clients in 1u64..5000,
        msgs_per_op in 1u64..10,
        bytes_per_op in 60u64..10_000,
        lat in 2_000u64..50_000,
        mns in 1u64..10,
    ) {
        let n = NetConfig::default();
        let acc = RunAccounting {
            ops: 1000,
            clients,
            mns,
            total_msgs: 1000 * msgs_per_op,
            total_wire_bytes: 1000 * bytes_per_op,
            sum_latency_ns: 1000 * lat,
            sum_busy_ns: 0,
            max_mn_msgs: 0,
            max_mn_wire_bytes: 0,
        };
        let e = n.model(&acc);
        let cap = mns as f64;
        prop_assert!(e.mops * 1e6 <= n.iops * cap / msgs_per_op as f64 + 1.0);
        prop_assert!(e.mops * 1e6 * bytes_per_op as f64 <= n.bandwidth_bps * cap * 1.0001);
        prop_assert!(e.inflation >= 1.0);
        prop_assert!(e.avg_latency_ns >= lat as f64 * 0.999);
    }
}
