//! Per-client accounting and latency histograms.
//!
//! All experiment numbers (throughput, amplification factors, round-trip
//! counts, latency percentiles) are derived from these counters, never from
//! wall-clock time: the substrate executes instantly and charges a *virtual*
//! cost per verb according to [`crate::net::NetConfig`].

/// Counters kept by every client endpoint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClientStats {
    /// Number of READ verbs issued.
    pub reads: u64,
    /// Number of WRITE verbs issued.
    pub writes: u64,
    /// Number of atomic verbs (CAS / masked-CAS / FAA) issued.
    pub atomics: u64,
    /// Number of allocation RPCs issued.
    pub rpcs: u64,
    /// Number of network round-trips paid (doorbell batches count once).
    pub rtts: u64,
    /// Number of NIC work requests (doorbell batches count each request).
    pub msgs: u64,
    /// Bytes that crossed the wire, including per-message overhead.
    pub wire_bytes: u64,
    /// Payload bytes the application asked for (to compute amplification).
    pub app_bytes: u64,
    /// Faults injected into this endpoint by the fault engine.
    pub faults_injected: u64,
    /// Torn reads detected (and retried) by version validation.
    pub torn_reads_detected: u64,
    /// Stale lock words reclaimed from dead holders via the lease path.
    pub stale_locks_reclaimed: u64,
    /// Lock-acquisition attempts that found the word already locked.
    pub lock_retries: u64,
    /// Whole-operation optimistic retries (validation failed, op restarted).
    pub op_retries: u64,
}

impl ClientStats {
    /// Returns the difference `self - earlier`, counter by counter.
    pub fn since(&self, earlier: &ClientStats) -> ClientStats {
        ClientStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            atomics: self.atomics - earlier.atomics,
            rpcs: self.rpcs - earlier.rpcs,
            rtts: self.rtts - earlier.rtts,
            msgs: self.msgs - earlier.msgs,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
            app_bytes: self.app_bytes - earlier.app_bytes,
            faults_injected: self.faults_injected - earlier.faults_injected,
            torn_reads_detected: self.torn_reads_detected - earlier.torn_reads_detected,
            stale_locks_reclaimed: self.stale_locks_reclaimed - earlier.stale_locks_reclaimed,
            lock_retries: self.lock_retries - earlier.lock_retries,
            op_retries: self.op_retries - earlier.op_retries,
        }
    }

    /// Returns every counter as a `(name, value)` pair, in declaration
    /// order. The single source of truth for exporters (metrics registry,
    /// JSON reports) so a new counter cannot be silently dropped from one.
    pub fn as_pairs(&self) -> [(&'static str, u64); 13] {
        [
            ("reads", self.reads),
            ("writes", self.writes),
            ("atomics", self.atomics),
            ("rpcs", self.rpcs),
            ("rtts", self.rtts),
            ("msgs", self.msgs),
            ("wire_bytes", self.wire_bytes),
            ("app_bytes", self.app_bytes),
            ("faults_injected", self.faults_injected),
            ("torn_reads_detected", self.torn_reads_detected),
            ("stale_locks_reclaimed", self.stale_locks_reclaimed),
            ("lock_retries", self.lock_retries),
            ("op_retries", self.op_retries),
        ]
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &ClientStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.atomics += other.atomics;
        self.rpcs += other.rpcs;
        self.rtts += other.rtts;
        self.msgs += other.msgs;
        self.wire_bytes += other.wire_bytes;
        self.app_bytes += other.app_bytes;
        self.faults_injected += other.faults_injected;
        self.torn_reads_detected += other.torn_reads_detected;
        self.stale_locks_reclaimed += other.stale_locks_reclaimed;
        self.lock_retries += other.lock_retries;
        self.op_retries += other.op_retries;
    }
}

/// A log-bucketed latency histogram (nanosecond samples).
///
/// Buckets grow by ~5% per step, giving <5% quantile error over a
/// 100 ns .. 100 ms range with a few hundred buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const HIST_BUCKETS: usize = 512;
const HIST_MIN_NS: f64 = 50.0;
const HIST_GROWTH: f64 = 1.045;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if (ns as f64) <= HIST_MIN_NS {
            return 0;
        }
        let idx = ((ns as f64) / HIST_MIN_NS).ln() / HIST_GROWTH.ln();
        (idx as usize).min(HIST_BUCKETS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        (HIST_MIN_NS * HIST_GROWTH.powi(idx as i32)) as u64
    }

    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean sample in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Returns the largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Returns the approximate `q`-quantile (0.0 ..= 1.0) in nanoseconds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if other.count > 0 {
            self.min = self.min.min(other.min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_and_merge() {
        let a = ClientStats {
            reads: 10,
            rtts: 12,
            wire_bytes: 100,
            ..Default::default()
        };
        let b = ClientStats {
            reads: 4,
            rtts: 5,
            wire_bytes: 40,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.rtts, 7);
        assert_eq!(d.wire_bytes, 60);
        let mut m = b.clone();
        m.merge(&d);
        assert_eq!(m, a);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99);
        // Within the histogram's ~5% resolution.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.1, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.1, "{p99}");
    }

    #[test]
    fn histogram_mean_and_bounds() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean(), 200);
        assert_eq!(h.quantile(0.0).clamp(100, 300), h.quantile(0.0));
        assert!(h.quantile(1.0) <= 300);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(1_000 + i);
            b.record(2_000 + i);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.quantile(0.99) >= 2_000);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn stats_roundtrip_includes_fault_counters() {
        let a = ClientStats {
            faults_injected: 9,
            torn_reads_detected: 4,
            stale_locks_reclaimed: 2,
            lock_retries: 17,
            op_retries: 6,
            ..Default::default()
        };
        let b = ClientStats {
            faults_injected: 3,
            torn_reads_detected: 1,
            stale_locks_reclaimed: 1,
            lock_retries: 10,
            op_retries: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.faults_injected, 6);
        assert_eq!(d.torn_reads_detected, 3);
        assert_eq!(d.stale_locks_reclaimed, 1);
        assert_eq!(d.lock_retries, 7);
        assert_eq!(d.op_retries, 4);
        let mut m = b;
        m.merge(&d);
        assert_eq!(m, a);
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 777);
        // Every quantile of a single sample is that sample (clamped to the
        // recorded min/max, so exact despite bucket resolution).
        assert_eq!(h.quantile(0.0), 777);
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.quantile(1.0), 777);
    }

    #[test]
    fn saturating_bucket_clamps_to_max() {
        let mut h = Histogram::new();
        // Far beyond the last bucket boundary: both land in the final
        // (saturating) bucket but min/max clamping keeps quantiles sane.
        h.record(u64::MAX / 2);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
        assert!(h.quantile(0.0) >= u64::MAX / 2);
        assert!(h.quantile(0.5) >= u64::MAX / 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        for i in 0..50 {
            a.record(1_000 + i);
        }
        let before = (a.count(), a.mean(), a.quantile(0.5), a.quantile(1.0));
        a.merge(&Histogram::new());
        assert_eq!(
            before,
            (a.count(), a.mean(), a.quantile(0.5), a.quantile(1.0))
        );

        // Merging into an empty histogram adopts the other side's min/max.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.count(), 50);
        assert_eq!(e.quantile(0.0), a.quantile(0.0));
        assert_eq!(e.quantile(1.0), a.quantile(1.0));
    }

    #[test]
    fn since_then_merge_is_identity_for_every_counter() {
        // Exercise all 13 counters at once via as_pairs, so a newly added
        // field cannot silently escape the round-trip contract.
        let mut later = ClientStats::default();
        let mut earlier = ClientStats::default();
        for (i, (field, _)) in ClientStats::default().as_pairs().iter().enumerate() {
            let hi = 1_000 + 37 * i as u64;
            let lo = 13 * i as u64 + 7;
            for (stats, v) in [(&mut later, hi), (&mut earlier, lo)] {
                match *field {
                    "reads" => stats.reads = v,
                    "writes" => stats.writes = v,
                    "atomics" => stats.atomics = v,
                    "rpcs" => stats.rpcs = v,
                    "rtts" => stats.rtts = v,
                    "msgs" => stats.msgs = v,
                    "wire_bytes" => stats.wire_bytes = v,
                    "app_bytes" => stats.app_bytes = v,
                    "faults_injected" => stats.faults_injected = v,
                    "torn_reads_detected" => stats.torn_reads_detected = v,
                    "stale_locks_reclaimed" => stats.stale_locks_reclaimed = v,
                    "lock_retries" => stats.lock_retries = v,
                    "op_retries" => stats.op_retries = v,
                    other => panic!("unknown counter {other}"),
                }
            }
        }
        let delta = later.since(&earlier);
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, later);
        // And every pair actually changed, i.e. the exercise covered all
        // fields.
        for ((name, d), (_, l)) in delta.as_pairs().iter().zip(later.as_pairs()) {
            assert!(*d > 0 && *d < l, "{name}");
        }
    }

    #[test]
    fn quantiles_of_empty_and_single_sample_histograms() {
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }
        assert_eq!(empty.max(), 0);

        let mut one = Histogram::new();
        one.record(4_242);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 4_242);
        }
        assert_eq!(one.max(), 4_242);
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0);
        assert_eq!(a.quantile(0.99), 0);
    }
}
