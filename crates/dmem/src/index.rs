//! The common range-index interface all four indexes implement.
//!
//! Each *client* — one logical thread of execution on a compute node — holds
//! its own handle implementing [`RangeIndex`]. The handle owns a verb
//! [`crate::verbs::Endpoint`] and shares CN-wide state (index cache, hotspot
//! buffer) with the other clients of its compute node.

use crate::alloc::OutOfMemory;
use crate::stats::ClientStats;

/// Errors surfaced by index operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The memory pool is exhausted.
    OutOfMemory,
    /// The key already exists (returned by strict inserts).
    DuplicateKey,
}

impl From<OutOfMemory> for IndexError {
    fn from(_: OutOfMemory) -> Self {
        IndexError::OutOfMemory
    }
}

impl core::fmt::Display for IndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IndexError::OutOfMemory => write!(f, "memory pool exhausted"),
            IndexError::DuplicateKey => write!(f, "key already present"),
        }
    }
}

impl std::error::Error for IndexError {}

/// A shared ordered index on disaggregated memory.
///
/// Keys are 8-byte integers (the paper's default); values are fixed-size
/// byte strings whose length is set per index instance.
pub trait RangeIndex {
    /// Inserts `key` with `value`, overwriting any existing value.
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError>;

    /// Returns the value of `key`, or `None` if absent.
    fn search(&mut self, key: u64) -> Option<Vec<u8>>;

    /// Updates an existing key in place; returns `false` if absent.
    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError>;

    /// Removes `key`; returns `false` if it was absent.
    fn delete(&mut self, key: u64) -> Result<bool, IndexError>;

    /// Appends up to `count` items with keys `>= start`, in key order.
    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>);

    /// Returns this client's verb counters.
    fn stats(&self) -> &ClientStats;

    /// Returns this client's virtual clock, in nanoseconds.
    fn clock_ns(&self) -> u64;

    /// Bytes of compute-side cache this client's CN currently uses for the
    /// index (shared structures are counted once per CN).
    fn cache_bytes(&self) -> u64;

    /// This client's phase/retry attribution profile, when the index keeps
    /// one (every index routing verbs through an [`crate::verbs::Endpoint`]
    /// does — the default exists only for exotic implementations).
    fn profile(&self) -> Option<&obs::OpProfile> {
        None
    }

    /// This client's continuous telemetry (windowed time series + flight
    /// recorder), when the index keeps one. Like [`RangeIndex::profile`],
    /// indexes routing verbs through an [`crate::verbs::Endpoint`] override
    /// this to expose the endpoint's state.
    fn telemetry(&self) -> Option<&crate::verbs::Telemetry> {
        None
    }

    /// Mutable telemetry access, for harnesses recording serve-layer
    /// observations (shed/served decisions, CQ depth) against this client's
    /// virtual clock.
    fn telemetry_mut(&mut self) -> Option<&mut crate::verbs::Telemetry> {
        None
    }

    /// Sets the causal trace id stamped on subsequent operations (minted at
    /// the serve/bench entry point; 0 = untraced). The default ignores it.
    fn set_trace_id(&mut self, _id: u64) {}

    /// Attaches a span/event tracer to this client's endpoint, when it has
    /// one. The default drops the tracer.
    fn set_tracer(&mut self, _tracer: obs::Tracer) {}

    /// Detaches and returns this client's tracer, if one is attached.
    fn take_tracer(&mut self) -> Option<obs::Tracer> {
        None
    }
}
