//! Deterministic hash functions shared by all indexes.
//!
//! A SplitMix64 finalizer provides the hopscotch home-entry hash, the
//! hotspot-buffer fingerprints and key scrambling for workload generators.

/// Seed of the hopscotch home-entry hash.
const SEED_HOME: u64 = 0x5EED_0FC4_17E0_0001;
/// Seed of the hotspot-buffer fingerprint hash.
const SEED_FP: u64 = 0xF16E_4412_AB00_0002;

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded 64-bit hash of a key.
#[inline]
pub fn hash64(key: u64, seed: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// The hopscotch home entry of `key` in a table with `span` entries.
#[inline]
pub fn home_entry(key: u64, span: usize) -> usize {
    (hash64(key, SEED_HOME) % span as u64) as usize
}

/// Whether `key` falls in `[lo, hi)`, where `hi == u64::MAX` means
/// "unbounded above" (the rightmost node's fence).
#[inline]
pub fn in_range(key: u64, lo: u64, hi: u64) -> bool {
    key >= lo && (key < hi || hi == u64::MAX)
}

/// 16-bit fingerprint used by the hotspot buffer (§4.3).
#[inline]
pub fn fingerprint16(key: u64) -> u16 {
    (hash64(key, SEED_FP) >> 48) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_changes_bits() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn home_entry_in_range() {
        for k in 0..1000u64 {
            assert!(home_entry(k, 64) < 64);
        }
    }

    #[test]
    fn home_entry_spreads() {
        let mut counts = [0usize; 16];
        for k in 0..16_000u64 {
            counts[home_entry(k, 16)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn fingerprint_deterministic() {
        assert_eq!(fingerprint16(42), fingerprint16(42));
        assert_ne!(fingerprint16(42), fingerprint16(43));
    }
}
