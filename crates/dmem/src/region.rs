//! A registered memory region on a memory node.
//!
//! The region emulates the atomicity domain that CHIME's synchronization
//! depends on with commodity RNICs (ConnectX and later):
//!
//! * one-sided READs and WRITEs may observe/produce tearing **between** 64-byte
//!   cache lines, but never within one line;
//! * 8-byte RDMA atomics (CAS, masked-CAS, FAA) are atomic with respect to
//!   each other *and* coherent with DMA writes to the same address.
//!
//! Internally every 64-byte line is guarded by a sequence lock. Writers and
//! atomics serialize per line; readers copy a line optimistically and retry it
//! if the sequence number changed. Data is copied with volatile accesses, the
//! standard systems-code discipline for seqlock-protected memory.

use core::cell::UnsafeCell;
use core::sync::atomic::{fence, AtomicU32, Ordering};

/// Size of the hardware atomicity unit (one cache line).
pub const LINE: usize = 64;

/// A seqlock-protected byte region, shared by all clients of a memory node.
pub struct Region {
    /// Backing storage, kept as `u64` words to guarantee 8-byte alignment.
    buf: Box<[UnsafeCell<u64>]>,
    /// One sequence lock per 64-byte line. Odd = a writer is in the line.
    seq: Box<[AtomicU32]>,
    len: usize,
}

// SAFETY: all mutable access to `buf` happens through the per-line seqlocks
// (writers hold the odd state exclusively; readers detect and retry torn
// reads), so `Region` can be shared across threads.
unsafe impl Sync for Region {}
// SAFETY: the region owns its storage; moving it between threads is fine.
unsafe impl Send for Region {}

impl Region {
    /// Allocates a zeroed region of `len` bytes (rounded up to a whole line).
    pub fn new(len: usize) -> Self {
        let len = len.div_ceil(LINE) * LINE;
        let words = len / 8;
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || UnsafeCell::new(0u64));
        let lines = len / LINE;
        let mut seq = Vec::with_capacity(lines);
        seq.resize_with(lines, || AtomicU32::new(0));
        Region {
            buf: v.into_boxed_slice(),
            seq: seq.into_boxed_slice(),
            len,
        }
    }

    /// Returns the region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the region has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.buf.as_ptr() as *mut u8
    }

    /// Reads `dst.len()` bytes starting at byte offset `off`.
    ///
    /// Each 64-byte line is internally consistent; tearing may occur between
    /// lines, exactly like a one-sided RDMA READ racing with remote WRITEs.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, off: usize, dst: &mut [u8]) {
        assert!(off + dst.len() <= self.len, "read out of bounds");
        let mut cur = off;
        let end = off + dst.len();
        while cur < end {
            let line = cur / LINE;
            let line_end = (line + 1) * LINE;
            let chunk_end = end.min(line_end);
            let dst_off = cur - off;
            self.read_line(line, cur, &mut dst[dst_off..dst_off + (chunk_end - cur)]);
            cur = chunk_end;
        }
    }

    /// Reads a sub-range of one line under its seqlock.
    fn read_line(&self, line: usize, off: usize, dst: &mut [u8]) {
        let seq = &self.seq[line];
        let mut spins = 0u32;
        loop {
            let s1 = seq.load(Ordering::Acquire);
            if s1 & 1 != 0 {
                spins += 1;
                if spins.is_multiple_of(64) {
                    // The writer may be descheduled mid-line on an
                    // oversubscribed host.
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
                continue;
            }
            // SAFETY: the range was bounds-checked by the caller; racing
            // writers are detected by the sequence check below and the copy
            // uses volatile accesses (seqlock discipline).
            unsafe { volatile_copy_out(self.base().add(off), dst) };
            fence(Ordering::Acquire);
            if seq.load(Ordering::Relaxed) == s1 {
                return;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Writes `src` starting at byte offset `off`.
    ///
    /// Lines are written one at a time; concurrent readers of a single line
    /// never observe a torn line.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&self, off: usize, src: &[u8]) {
        assert!(off + src.len() <= self.len, "write out of bounds");
        let mut cur = off;
        let end = off + src.len();
        while cur < end {
            let line = cur / LINE;
            let line_end = (line + 1) * LINE;
            let chunk_end = end.min(line_end);
            let src_off = cur - off;
            self.write_line(line, cur, &src[src_off..src_off + (chunk_end - cur)]);
            cur = chunk_end;
        }
    }

    /// Writes a sub-range of one line under its seqlock.
    fn write_line(&self, line: usize, off: usize, src: &[u8]) {
        let s = self.lock_line(line);
        // SAFETY: bounds checked by caller; we hold the line's seqlock in the
        // odd state, so no other writer touches the line and readers retry.
        unsafe { volatile_copy_in(self.base().add(off), src) };
        self.unlock_line(line, s);
    }

    /// Acquires the seqlock of `line` (leaves it odd) and returns the even
    /// sequence value observed before acquisition.
    fn lock_line(&self, line: usize) -> u32 {
        let seq = &self.seq[line];
        let mut spins = 0u32;
        loop {
            let s = seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return s;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn unlock_line(&self, line: usize, prev: u32) {
        self.seq[line].store(prev.wrapping_add(2), Ordering::Release);
    }

    /// Runs `f` on the aligned `u64` word at byte offset `off`, atomically
    /// with respect to all other accesses (the word's line is locked).
    ///
    /// Returns `(old, f(old))`; if `f` yields `Some(new)`, `new` is stored.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not 8-byte aligned or out of bounds.
    pub fn atomic_rmw_u64<F>(&self, off: usize, f: F) -> u64
    where
        F: FnOnce(u64) -> Option<u64>,
    {
        assert!(off.is_multiple_of(8), "atomic target must be 8-byte aligned");
        assert!(off + 8 <= self.len, "atomic out of bounds");
        let line = off / LINE;
        let s = self.lock_line(line);
        // SAFETY: `off` is 8-aligned and in bounds; the base pointer comes
        // from a `u64` allocation so the access is aligned. We hold the line
        // seqlock, excluding all concurrent writers.
        let p = unsafe { self.base().add(off) } as *mut u64;
        // SAFETY: see above; volatile keeps the compiler from caching across
        // the seqlock.
        let old = unsafe { core::ptr::read_volatile(p) };
        if let Some(new) = f(old) {
            // SAFETY: see above.
            unsafe { core::ptr::write_volatile(p, new) };
        }
        self.unlock_line(line, s);
        old
    }
}

/// Copies out of shared memory with volatile loads (seqlock read side).
///
/// # Safety
///
/// `src..src+dst.len()` must be valid for reads.
unsafe fn volatile_copy_out(src: *const u8, dst: &mut [u8]) {
    // SAFETY: delegated to the caller; per-byte volatile loads avoid any
    // alignment requirement and keep the racing access untorn per byte.
    unsafe {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = core::ptr::read_volatile(src.add(i));
        }
    }
}

/// Copies into shared memory with volatile stores (seqlock write side).
///
/// # Safety
///
/// `dst..dst+src.len()` must be valid for writes and the enclosing line's
/// seqlock must be held.
unsafe fn volatile_copy_in(dst: *mut u8, src: &[u8]) {
    // SAFETY: delegated to the caller.
    unsafe {
        for (i, s) in src.iter().enumerate() {
            core::ptr::write_volatile(dst.add(i), *s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let r = Region::new(256);
        let data: Vec<u8> = (0..100u8).collect();
        r.write(30, &data);
        let mut out = vec![0u8; 100];
        r.read(30, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn len_rounds_to_line() {
        let r = Region::new(100);
        assert_eq!(r.len(), 128);
        assert!(!r.is_empty());
    }

    #[test]
    fn atomic_rmw_cas_semantics() {
        let r = Region::new(64);
        let old = r.atomic_rmw_u64(8, |v| {
            assert_eq!(v, 0);
            Some(42)
        });
        assert_eq!(old, 0);
        let old = r.atomic_rmw_u64(8, |_| None);
        assert_eq!(old, 42);
        let mut out = [0u8; 8];
        r.read(8, &mut out);
        assert_eq!(u64::from_le_bytes(out), 42);
    }

    #[test]
    #[should_panic]
    fn unaligned_atomic_panics() {
        let r = Region::new(64);
        r.atomic_rmw_u64(4, |_| None);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let r = Region::new(64);
        let mut b = [0u8; 8];
        r.read(60, &mut b);
    }

    /// Readers must never observe a torn 64-byte line.
    #[test]
    fn no_intra_line_tearing() {
        let r = Arc::new(Region::new(LINE));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u8;
                while !stop.load(Ordering::Relaxed) {
                    let buf = [v; LINE];
                    r.write(0, &buf);
                    v = v.wrapping_add(1);
                }
            })
        };
        let mut buf = [0u8; LINE];
        for _ in 0..20_000 {
            r.read(0, &mut buf);
            let first = buf[0];
            assert!(
                buf.iter().all(|&b| b == first),
                "torn intra-line read observed"
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    /// Atomics must serialize against plain writes to the same word.
    #[test]
    fn atomics_are_coherent_with_writes() {
        let r = Arc::new(Region::new(LINE));
        let iters = 20_000u64;
        let adder = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    r.atomic_rmw_u64(0, |v| Some(v + 1));
                }
            })
        };
        for _ in 0..iters {
            r.atomic_rmw_u64(0, |v| Some(v + 1));
        }
        adder.join().unwrap();
        let v = r.atomic_rmw_u64(0, |_| None);
        assert_eq!(v, 2 * iters);
    }
}
