//! `dmem` — a deterministic disaggregated-memory substrate.
//!
//! This crate simulates the hardware platform of the CHIME paper (SOSP'24):
//! a pool of memory nodes reached exclusively through one-sided RDMA verbs
//! (READ, WRITE, CAS, masked-CAS, FAA) from compute-node clients. It provides
//!
//! * [`region::Region`] — registered memory with the 64-byte line atomicity
//!   real RNICs exhibit (reads may tear between lines, never within one);
//! * [`verbs::Endpoint`] — per-client verb issue with doorbell batching,
//!   traffic counters and a virtual clock;
//! * [`net::NetConfig`] — the analytic network model converting counted
//!   traffic into modeled throughput/latency (bandwidth- and IOPS-bound);
//! * [`versioned`] — the two-level cache-line version layout shared by
//!   Sherman-style and CHIME-style nodes;
//! * [`alloc::ChunkAlloc`] — RPC chunk allocation with client-side bumping;
//! * [`index::RangeIndex`] — the interface every evaluated index implements;
//! * [`fault`] — a seeded, scriptable fault engine intercepting every verb
//!   (latency spikes, torn writes, failed/duplicated atomics, labeled crash
//!   points) with a deterministic, replayable fault trace.
//!
//! No RDMA hardware is involved: all semantics relevant to index correctness
//! and performance shape are preserved and documented in `DESIGN.md`.

#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod fault;
pub mod hash;
pub mod index;
pub mod locktable;
pub mod net;
pub mod node;
pub mod qp;
pub mod region;
pub mod stats;
pub mod verbs;
pub mod versioned;

pub use addr::GlobalAddr;
pub use alloc::{ChunkAlloc, OutOfMemory};
pub use fault::{
    CrashRule, CrashSignal, FaultAction, FaultEvent, FaultPlan, FaultRule, FaultSession, VerbKind,
};
pub use index::{IndexError, RangeIndex};
pub use locktable::{LocalLockGuard, LocalLockTable};
pub use net::{Bound, NetConfig, RunAccounting, ThroughputEstimate};
pub use node::{root_slot, MemoryNode, MnTraffic, Pool};
pub use qp::{
    install_lane_hook, lane_active, uninstall_lane_hook, CountHist, LaneHook, Qp, QpConfig,
    QpStats, WqeOutcome, WqeTicket,
};
pub use obs::{
    FlightKind, FlightRecorder, LatencyHist, OpProfile, Phase, RetryCause, TimeSeries, Tracer,
};
pub use stats::{ClientStats, Histogram};
pub use verbs::{Endpoint, PhaseFrame, Telemetry};
