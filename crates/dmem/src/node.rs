//! Memory nodes and the memory pool.
//!
//! A memory node (MN) owns one registered [`Region`] plus the minimal
//! CPU-side services the paper allows it: connection setup and a chunk
//! allocator reached via RPC. Compute-side clients never execute code "on"
//! the MN other than these RPCs — all data access goes through the one-sided
//! verbs in [`crate::verbs`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::GlobalAddr;
use crate::net::NetConfig;
use crate::region::Region;

/// Bytes at the start of every region reserved for well-known slots
/// (root pointers and other per-index anchors).
pub const RESERVED_BYTES: u64 = 4096;

/// Byte offset of the first well-known root-pointer slot on MN 0.
pub const ROOT_SLOT_BASE: u64 = 64;

/// Returns the well-known address of root-pointer slot `i` (on MN 0).
///
/// Indexes store their 8-byte root pointer here and update it with CAS
/// during root splits.
pub fn root_slot(i: u64) -> GlobalAddr {
    assert!(ROOT_SLOT_BASE + 8 * (i + 1) <= RESERVED_BYTES);
    GlobalAddr::new(0, ROOT_SLOT_BASE + 8 * i)
}

/// Traffic served by one memory node's NIC, as counted at verb issue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MnTraffic {
    /// NIC work requests handled.
    pub msgs: u64,
    /// Wire bytes that crossed this node's link (payload + overhead).
    pub wire_bytes: u64,
}

impl MnTraffic {
    /// Returns the difference `self - earlier`, counter by counter.
    pub fn since(&self, earlier: &MnTraffic) -> MnTraffic {
        MnTraffic {
            msgs: self.msgs - earlier.msgs,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
        }
    }
}

/// One memory node: a registered region plus a bump allocator.
pub struct MemoryNode {
    id: u16,
    region: Region,
    next_free: AtomicU64,
    msgs: AtomicU64,
    wire_bytes: AtomicU64,
}

impl MemoryNode {
    /// Creates a memory node with `capacity` bytes of registered memory.
    pub fn new(id: u16, capacity: usize) -> Self {
        assert!(capacity as u64 > RESERVED_BYTES, "capacity too small");
        MemoryNode {
            id,
            region: Region::new(capacity),
            next_free: AtomicU64::new(RESERVED_BYTES),
            msgs: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
        }
    }

    /// Charges `msgs` work requests and `wire_bytes` to this node's NIC
    /// (called by endpoints on every verb targeting this node).
    pub fn note_traffic(&self, msgs: u64, wire_bytes: u64) {
        self.msgs.fetch_add(msgs, Ordering::Relaxed);
        self.wire_bytes.fetch_add(wire_bytes, Ordering::Relaxed);
    }

    /// Traffic served by this node since creation.
    pub fn traffic(&self) -> MnTraffic {
        MnTraffic {
            msgs: self.msgs.load(Ordering::Relaxed),
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
        }
    }

    /// Returns this node's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Returns the registered region.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Server-side chunk allocation (executed by the MN's weak CPU when a
    /// client issues the allocation RPC). Returns `None` when out of memory.
    ///
    /// Chunks are 64-byte aligned; memory is never reclaimed (bump
    /// allocation), matching the public artifacts of Sherman/SMART/CHIME.
    pub fn alloc(&self, size: u64) -> Option<GlobalAddr> {
        let size = size.div_ceil(64) * 64;
        let mut cur = self.next_free.load(Ordering::Relaxed);
        loop {
            if cur + size > self.region.len() as u64 {
                return None;
            }
            match self.next_free.compare_exchange_weak(
                cur,
                cur + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(GlobalAddr::new(self.id, cur)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently allocated (excluding the reserved prefix).
    pub fn allocated_bytes(&self) -> u64 {
        self.next_free.load(Ordering::Relaxed) - RESERVED_BYTES
    }
}

/// The memory pool: every MN plus the shared network configuration.
///
/// # Examples
///
/// ```
/// use dmem::{Endpoint, GlobalAddr, Pool};
///
/// let pool = Pool::with_defaults(2, 1 << 20);
/// let mut ep = Endpoint::new(std::sync::Arc::clone(&pool));
/// let addr = GlobalAddr::new(1, dmem::node::RESERVED_BYTES);
/// ep.write(addr, b"remote bytes");
/// let mut buf = [0u8; 12];
/// ep.read(addr, &mut buf);
/// assert_eq!(&buf, b"remote bytes");
/// assert_eq!(ep.stats().rtts, 2);
/// ```
pub struct Pool {
    mns: Vec<Arc<MemoryNode>>,
    net: NetConfig,
}

impl Pool {
    /// Creates a pool of `num_mns` memory nodes, each with
    /// `capacity_per_mn` bytes.
    pub fn new(num_mns: u16, capacity_per_mn: usize, net: NetConfig) -> Arc<Self> {
        assert!(num_mns > 0);
        let mns = (0..num_mns)
            .map(|i| Arc::new(MemoryNode::new(i, capacity_per_mn)))
            .collect();
        Arc::new(Pool { mns, net })
    }

    /// Convenience constructor with the default network model.
    pub fn with_defaults(num_mns: u16, capacity_per_mn: usize) -> Arc<Self> {
        Self::new(num_mns, capacity_per_mn, NetConfig::default())
    }

    /// Returns memory node `id`.
    pub fn mn(&self, id: u16) -> &MemoryNode {
        &self.mns[id as usize]
    }

    /// Returns the number of memory nodes.
    pub fn num_mns(&self) -> u16 {
        self.mns.len() as u16
    }

    /// Returns the network configuration.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// Total bytes allocated across all memory nodes.
    pub fn allocated_bytes(&self) -> u64 {
        self.mns.iter().map(|m| m.allocated_bytes()).sum()
    }

    /// Per-MN traffic counters, indexed by node id.
    pub fn traffic(&self) -> Vec<MnTraffic> {
        self.mns.iter().map(|m| m.traffic()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_aligns() {
        let mn = MemoryNode::new(0, 1 << 20);
        let a = mn.alloc(100).unwrap();
        let b = mn.alloc(1).unwrap();
        assert_eq!(a.offset(), RESERVED_BYTES);
        assert_eq!(b.offset(), RESERVED_BYTES + 128);
        assert_eq!(mn.allocated_bytes(), 192);
    }

    #[test]
    fn alloc_exhaustion() {
        let mn = MemoryNode::new(0, 8192);
        assert!(mn.alloc(8192).is_none());
        assert!(mn.alloc(1024).is_some());
    }

    #[test]
    fn root_slots_distinct() {
        assert_ne!(root_slot(0), root_slot(1));
        assert_eq!(root_slot(0).mn(), 0);
        assert!(root_slot(2).offset() < RESERVED_BYTES);
    }

    #[test]
    fn pool_construction() {
        let p = Pool::with_defaults(3, 1 << 20);
        assert_eq!(p.num_mns(), 3);
        assert_eq!(p.mn(2).id(), 2);
        assert_eq!(p.allocated_bytes(), 0);
    }
}
