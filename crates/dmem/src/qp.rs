//! Posted work queues, doorbell batching, and the completion-queue model.
//!
//! Real RNICs decouple *posting* a work-queue entry (WQE) from *reaping* its
//! completion (CQE): a client thread (or coroutine) posts one or more WQEs,
//! rings the doorbell once, and later polls the completion queue. The paper
//! runs 64 clients per CN as threads + coroutines precisely to exploit that
//! split — while one coroutine waits for its completion, the others post
//! their own verbs, and WQEs posted within one scheduling quantum to the
//! same memory node share a single doorbell (one round trip).
//!
//! This module gives the simulator that model without giving up
//! determinism:
//!
//! * [`Qp`] — per-client queue-pair state: one logical channel per memory
//!   node, a sliding doorbell-batch window ([`QpConfig::quantum_ns`]), the
//!   in-order completion rule of an RC QP, and exact batch-size /
//!   CQ-depth statistics;
//! * [`Qp::post_wqe`] / [`Qp::poll_wqe`] — the two-phase discipline: every
//!   posted WQE handle must be polled before the issuing scope returns
//!   (enforced repo-wide by the `cq-discipline` chime-lint rule);
//! * [`LaneHook`] — the thread-local seam the coroutine scheduler
//!   (`crates/sched`) installs so that unmodified synchronous index code
//!   parks at every verb boundary. Without a hook installed, every verb
//!   completes inline with the exact pre-pipelining latency formula, so
//!   serial runs are bit-for-bit unchanged.
//!
//! All timestamps are virtual nanoseconds; nothing here reads a wall clock.

use std::cell::RefCell;

use crate::net::NetConfig;

/// Per-WQE chaining gap inside one doorbell batch, ns. Matches the
/// `(msgs - 1) * 80` term of [`NetConfig::verb_latency_ns`] so a doorbell
/// batch assembled across coroutines costs exactly what the same WQEs
/// posted as one explicit batch would.
pub const WQE_GAP_NS: u64 = 80;

/// Doorbell/completion model knobs.
#[derive(Debug, Clone, Copy)]
pub struct QpConfig {
    /// Sliding batching window: a WQE posted within `quantum_ns` of the
    /// previous post to the same memory node joins its open doorbell batch
    /// instead of paying a fresh round trip. The window is far below one
    /// RTT, so batches form only among WQEs posted "simultaneously" (one
    /// scheduler pass over the runnable coroutines), never across waves.
    pub quantum_ns: u64,
    /// Maximum WQEs per doorbell batch (NIC doorbell list limit).
    pub max_batch: u64,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            quantum_ns: 200,
            max_batch: 16,
        }
    }
}

/// A posted-but-unpolled WQE. Returned by [`Qp::post_wqe`]; must reach
/// [`Qp::poll_wqe`] on every path before the issuing scope returns.
#[derive(Debug, Clone, Copy)]
#[must_use = "reap the completion with Qp::poll_wqe"]
pub struct WqeTicket {
    /// Virtual timestamp at which the CQE for this WQE is delivered.
    pub completion_ns: u64,
    /// Causal trace id of the operation that posted this WQE (0 = untraced).
    pub trace: u64,
    outcome: WqeOutcome,
}

impl WqeTicket {
    /// The completion timestamp the scheduler orders lanes by.
    pub fn completion(&self) -> u64 {
        self.completion_ns
    }
}

/// The accounting outcome of one completed WQE (or doorbell batch member).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WqeOutcome {
    /// Virtual timestamp of the completion.
    pub completion_ns: u64,
    /// Uncontended service time: what this WQE costs with nothing else in
    /// flight (attributed to the caller's active phase).
    pub service_ns: u64,
    /// Completion-queue wait beyond the service time: doorbell chaining and
    /// in-order delivery delay (attributed to the `cq_wait` phase).
    pub cq_wait_ns: u64,
    /// Round trips charged: 1 when this WQE opened a doorbell batch, 0 when
    /// it rode an already-rung doorbell.
    pub rtts: u64,
    /// Whether this WQE joined an open batch instead of opening one.
    pub batched: bool,
}

/// A small exact integer histogram for batch sizes and CQ depths.
///
/// Values above the fixed range collapse into the top bucket; quantiles are
/// a pure function of the recorded multiset, so identical runs summarize to
/// identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountHist {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl CountHist {
    /// Creates a histogram over `0..=max` (values above clamp to `max`).
    pub fn new(max: usize) -> Self {
        CountHist {
            counts: vec![0; max + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let i = (v as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (v, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return v as u64;
            }
        }
        (self.counts.len() - 1) as u64
    }

    /// Largest recorded value (clamped to the range; 0 when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i as u64)
            .unwrap_or(0)
    }

    /// Adds another histogram's observations into this one (ranges must
    /// match).
    pub fn merge(&mut self, other: &CountHist) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Deterministic counters a [`Qp`] accumulates over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QpStats {
    /// WQEs posted.
    pub posted: u64,
    /// Doorbells rung (batches opened).
    pub doorbells: u64,
    /// WQEs that joined an open batch (rode someone else's doorbell).
    pub batched_wqes: u64,
    /// Doorbell batch sizes, recorded when each batch closes.
    pub batch_hist: CountHist,
    /// Outstanding completions at each post (CQ depth, including self).
    pub depth_hist: CountHist,
}

impl Default for QpStats {
    fn default() -> Self {
        QpStats {
            posted: 0,
            doorbells: 0,
            batched_wqes: 0,
            batch_hist: CountHist::new(BATCH_HIST_MAX),
            depth_hist: CountHist::new(DEPTH_HIST_MAX),
        }
    }
}

impl QpStats {
    /// Merges another QP's counters into this one.
    pub fn merge(&mut self, other: &QpStats) {
        self.posted += other.posted;
        self.doorbells += other.doorbells;
        self.batched_wqes += other.batched_wqes;
        self.batch_hist.merge(&other.batch_hist);
        self.depth_hist.merge(&other.depth_hist);
    }
}

/// Histogram range for doorbell batch sizes (≥ any [`QpConfig::max_batch`]
/// in practical use; larger batches clamp).
pub const BATCH_HIST_MAX: usize = 32;

/// Histogram range for CQ depths (≥ lanes per client in practical use).
pub const DEPTH_HIST_MAX: usize = 64;

/// One logical channel: the (client, memory-node) work-queue pair.
#[derive(Debug, Clone, Copy, Default)]
struct Chan {
    /// Virtual time of the last post to this channel.
    last_post_ns: u64,
    /// WQEs in the currently open doorbell batch (0 = none open).
    batch_msgs: u64,
    /// Completion timestamp of the open batch's tail WQE.
    batch_tail_ns: u64,
    /// Completion timestamp of the last WQE overall (RC in-order floor).
    last_completion_ns: u64,
}

/// Per-client queue-pair + completion-queue state, shared by all of the
/// client's coroutine lanes.
///
/// Posting is two-phase: [`Qp::post_wqe`] computes the completion timestamp
/// (ringing or riding a doorbell) and registers the WQE as outstanding;
/// [`Qp::poll_wqe`] reaps it. The split exists so the coroutine scheduler
/// can park a lane between post and poll, and so the `cq-discipline` lint
/// has a concrete protocol to police.
#[derive(Debug)]
pub struct Qp {
    cfg: QpConfig,
    net: NetConfig,
    chans: Vec<Chan>,
    /// Completion timestamps of posted-but-unpolled WQEs.
    outstanding: Vec<u64>,
    stats: QpStats,
}

impl Qp {
    /// Creates the QP state for one client reaching `mns` memory nodes.
    pub fn new(net: NetConfig, cfg: QpConfig, mns: u16) -> Self {
        Qp {
            cfg,
            net,
            chans: vec![Chan::default(); mns.max(1) as usize],
            outstanding: Vec::new(),
            stats: QpStats::default(),
        }
    }

    /// Posts `msgs` work requests (`wire_bytes` total on the wire, headers
    /// included) to memory node `mn` at virtual time `now_ns`.
    ///
    /// Joins the channel's open doorbell batch when posted within
    /// [`QpConfig::quantum_ns`] of the previous post and the batch has
    /// room; otherwise rings a fresh doorbell (one round trip).
    /// `trace` is the causal trace id of the posting operation; it rides
    /// the ticket so completions stay attributable (0 = untraced).
    pub fn post_wqe(
        &mut self,
        now_ns: u64,
        mn: u16,
        msgs: u64,
        wire_bytes: u64,
        trace: u64,
    ) -> WqeTicket {
        let stream_ns = (wire_bytes as f64 / self.net.bandwidth_bps * 1e9) as u64;
        let ci = (mn as usize).min(self.chans.len() - 1);
        let ch = &mut self.chans[ci];
        let joins = ch.batch_msgs > 0
            && now_ns >= ch.last_post_ns
            && now_ns <= ch.last_post_ns + self.cfg.quantum_ns
            && ch.batch_msgs + msgs <= self.cfg.max_batch;
        let outcome = if joins {
            // Ride the open doorbell: no new round trip, the WQE chains
            // behind the batch tail.
            ch.batch_msgs += msgs;
            let completion = ch.batch_tail_ns + msgs * WQE_GAP_NS + stream_ns;
            ch.batch_tail_ns = completion;
            self.stats.batched_wqes += msgs;
            WqeOutcome {
                completion_ns: completion,
                service_ns: msgs * WQE_GAP_NS + stream_ns,
                cq_wait_ns: (completion - now_ns).saturating_sub(msgs * WQE_GAP_NS + stream_ns),
                rtts: 0,
                batched: true,
            }
        } else {
            // Close the previous batch (if any) into the size histogram and
            // ring a new doorbell. RC QPs complete in order: a later
            // doorbell never completes before an earlier WQE.
            if ch.batch_msgs > 0 {
                self.stats.batch_hist.record(ch.batch_msgs);
            }
            let service = self.net.verb_latency_ns(msgs, wire_bytes);
            let ideal = now_ns + service;
            let completion = ideal.max(ch.last_completion_ns + WQE_GAP_NS);
            ch.batch_msgs = msgs;
            ch.batch_tail_ns = completion;
            self.stats.doorbells += 1;
            WqeOutcome {
                completion_ns: completion,
                service_ns: service,
                cq_wait_ns: completion - ideal,
                rtts: 1,
                batched: false,
            }
        };
        ch.last_post_ns = now_ns;
        ch.last_completion_ns = outcome.completion_ns;
        self.stats.posted += msgs;
        // CQ depth at post time: completions still pending, this WQE
        // included.
        self.outstanding.retain(|&c| c > now_ns);
        self.outstanding.push(outcome.completion_ns);
        self.stats.depth_hist.record(self.outstanding.len() as u64);
        WqeTicket {
            completion_ns: outcome.completion_ns,
            trace,
            outcome,
        }
    }

    /// Reaps the completion of a posted WQE, removing it from the
    /// outstanding set and returning its accounting outcome.
    pub fn poll_wqe(&mut self, ticket: WqeTicket) -> WqeOutcome {
        if let Some(i) = self
            .outstanding
            .iter()
            .position(|&c| c == ticket.completion_ns)
        {
            self.outstanding.swap_remove(i);
        }
        ticket.outcome
    }

    /// Flushes open doorbell batches into the batch-size histogram. Call
    /// once when the client's lanes have drained.
    pub fn finish(&mut self) {
        for ch in &mut self.chans {
            if ch.batch_msgs > 0 {
                self.stats.batch_hist.record(ch.batch_msgs);
                ch.batch_msgs = 0;
            }
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &QpStats {
        &self.stats
    }

    /// Drops outstanding entries whose completions are at or before
    /// `now_ns`, so [`Qp::outstanding_len`] reflects the CQ depth *as of*
    /// that virtual instant rather than as of the last post.
    pub fn expire_before(&mut self, now_ns: u64) {
        self.outstanding.retain(|&c| c > now_ns);
    }

    /// Completions currently pending (posted but neither polled nor expired
    /// via [`Qp::expire_before`]). The serve layer's backpressure watermark
    /// reads this as the live CQ depth.
    pub fn outstanding_len(&self) -> u64 {
        self.outstanding.len() as u64
    }
}

// ---------------------------------------------------------------------------
// The lane hook: how a coroutine scheduler intercepts verb boundaries
// ---------------------------------------------------------------------------

/// The seam between [`crate::verbs::Endpoint`] and a coroutine scheduler.
///
/// A scheduler installs one hook per lane *thread* (see
/// [`install_lane_hook`]); every verb the lane's endpoint issues then routes
/// through [`LaneHook::post`], which may park the calling thread until the
/// scheduler decides this lane's completion is the earliest pending event.
/// [`LaneHook::timer`] does the same for verb-free clock advances (backoff,
/// injected fault delays, allocation RPCs), so all virtual-time events
/// interleave in deterministic global order.
pub trait LaneHook: Send {
    /// Called when the lane posts `msgs` work requests (`wire_bytes` on the
    /// wire) to `mn` at lane-virtual time `now_ns`, stamped with the
    /// posting operation's causal `trace` id (0 = untraced). Returns once
    /// the completion may be consumed.
    fn post(&mut self, now_ns: u64, mn: u16, msgs: u64, wire_bytes: u64, trace: u64)
        -> WqeOutcome;

    /// Called when the lane's clock advances by `dt_ns` without posting a
    /// WQE. Returns once the lane may resume at `now_ns + dt_ns`.
    fn timer(&mut self, now_ns: u64, dt_ns: u64);
}

thread_local! {
    static LANE_HOOK: RefCell<Option<Box<dyn LaneHook>>> = const { RefCell::new(None) };
}

/// Installs `hook` as the current thread's lane hook. Panics if one is
/// already installed (a lane thread hosts exactly one lane).
pub fn install_lane_hook(hook: Box<dyn LaneHook>) {
    LANE_HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        assert!(slot.is_none(), "lane hook already installed on this thread");
        *slot = Some(hook);
    });
}

/// Removes and returns the current thread's lane hook, if any.
pub fn uninstall_lane_hook() -> Option<Box<dyn LaneHook>> {
    LANE_HOOK.with(|h| h.borrow_mut().take())
}

/// Whether a lane hook is installed on the current thread.
pub fn lane_active() -> bool {
    LANE_HOOK.with(|h| h.borrow().is_some())
}

/// Routes a verb through the installed lane hook, if any. `None` means no
/// hook: the caller charges the serial inline latency instead.
pub(crate) fn hook_post(
    now_ns: u64,
    mn: u16,
    msgs: u64,
    wire_bytes: u64,
    trace: u64,
) -> Option<WqeOutcome> {
    LANE_HOOK.with(|h| {
        h.borrow_mut()
            .as_mut()
            .map(|hook| hook.post(now_ns, mn, msgs, wire_bytes, trace))
    })
}

/// Routes a verb-free clock advance through the installed lane hook.
pub(crate) fn hook_timer(now_ns: u64, dt_ns: u64) {
    LANE_HOOK.with(|h| {
        if let Some(hook) = h.borrow_mut().as_mut() {
            hook.timer(now_ns, dt_ns);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> Qp {
        Qp::new(NetConfig::default(), QpConfig::default(), 2)
    }

    #[test]
    fn lone_wqe_costs_the_serial_latency() {
        let mut q = qp();
        let net = NetConfig::default();
        let t = q.post_wqe(1_000, 0, 1, 100, 0);
        let out = q.poll_wqe(t);
        assert_eq!(out.rtts, 1);
        assert!(!out.batched);
        assert_eq!(out.service_ns, net.verb_latency_ns(1, 100));
        assert_eq!(out.cq_wait_ns, 0);
        assert_eq!(out.completion_ns, 1_000 + net.verb_latency_ns(1, 100));
    }

    #[test]
    fn posts_within_quantum_share_one_doorbell() {
        let mut q = qp();
        let t1 = q.post_wqe(0, 0, 1, 100, 0);
        let t2 = q.post_wqe(50, 0, 1, 100, 0); // within the 200 ns window
        assert!(t2.completion_ns > t1.completion_ns, "chains behind tail");
        let o1 = q.poll_wqe(t1);
        let o2 = q.poll_wqe(t2);
        assert_eq!(o1.rtts, 1);
        assert_eq!(o2.rtts, 0, "joiner rides the rung doorbell");
        assert!(o2.batched);
        assert_eq!(
            o2.completion_ns,
            o1.completion_ns + WQE_GAP_NS + o2.service_ns - WQE_GAP_NS
        );
        // The joiner's CQ wait covers the in-flight RTT it skipped.
        assert!(o2.cq_wait_ns > 0);
        q.finish();
        assert_eq!(q.stats().doorbells, 1);
        assert_eq!(q.stats().batched_wqes, 1);
        assert_eq!(q.stats().batch_hist.max(), 2);
    }

    #[test]
    fn posts_outside_quantum_ring_separate_doorbells() {
        let mut q = qp();
        let t1 = q.post_wqe(0, 0, 1, 100, 0);
        let t2 = q.post_wqe(1_000, 0, 1, 100, 0); // past the window
        let o1 = q.poll_wqe(t1);
        let o2 = q.poll_wqe(t2);
        assert_eq!(o1.rtts + o2.rtts, 2);
        assert!(!o2.batched);
        q.finish();
        assert_eq!(q.stats().doorbells, 2);
        assert_eq!(q.stats().batch_hist.count(), 2);
    }

    #[test]
    fn different_mns_never_share_a_doorbell() {
        let mut q = qp();
        let t1 = q.post_wqe(0, 0, 1, 100, 0);
        let t2 = q.post_wqe(0, 1, 1, 100, 0);
        assert_eq!(q.poll_wqe(t1).rtts, 1);
        assert_eq!(q.poll_wqe(t2).rtts, 1);
    }

    #[test]
    fn completions_are_in_order_per_channel() {
        let mut q = qp();
        let t1 = q.post_wqe(0, 0, 4, 4_000, 0);
        // A new doorbell well past the window but before t1 completes: its
        // completion must not overtake t1 (RC ordering).
        let t2 = q.post_wqe(500, 0, 1, 16, 0);
        assert!(t2.completion_ns >= t1.completion_ns + WQE_GAP_NS);
        let o2 = q.poll_wqe(t2);
        assert!(o2.cq_wait_ns > 0, "held back by in-order delivery");
        let _ = q.poll_wqe(t1);
    }

    #[test]
    fn max_batch_caps_doorbell_size() {
        let mut q = Qp::new(
            NetConfig::default(),
            QpConfig {
                quantum_ns: 1_000_000,
                max_batch: 2,
            },
            1,
        );
        let mut rtts = 0;
        for _ in 0..6 {
            let t = q.post_wqe(0, 0, 1, 64, 0);
            rtts += q.poll_wqe(t).rtts;
        }
        assert_eq!(rtts, 3, "batches of 2 ring 3 doorbells for 6 WQEs");
        q.finish();
        assert_eq!(q.stats().batch_hist.max(), 2);
    }

    #[test]
    fn depth_histogram_sees_outstanding_completions() {
        let mut q = qp();
        let t1 = q.post_wqe(0, 0, 1, 64, 0);
        let t2 = q.post_wqe(10, 0, 1, 64, 0);
        assert_eq!(q.stats().depth_hist.max(), 2);
        let _ = q.poll_wqe(t1);
        let _ = q.poll_wqe(t2);
        // Post after both completions: depth back to 1 (self only).
        let t3 = q.post_wqe(1_000_000, 0, 1, 64, 0);
        let _ = q.poll_wqe(t3);
        assert_eq!(q.stats().depth_hist.quantile(0.01), 1);
    }

    #[test]
    fn count_hist_quantiles_and_merge() {
        let mut h = CountHist::new(8);
        for v in [1u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.max(), 8, "overflow clamps to the top bucket");
        let mut other = CountHist::new(8);
        other.record(4);
        h.merge(&other);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = QpStats::default();
        let mut q = qp();
        let t = q.post_wqe(0, 0, 1, 64, 0);
        let _ = q.poll_wqe(t);
        q.finish();
        a.merge(q.stats());
        a.merge(q.stats());
        assert_eq!(a.posted, 2);
        assert_eq!(a.doorbells, 2);
    }

    #[test]
    fn no_hook_means_inline_serial_path() {
        assert!(!lane_active());
        assert!(hook_post(0, 0, 1, 64, 0).is_none());
        hook_timer(0, 100); // no-op without a hook
    }
}
