//! The analytic network model.
//!
//! The paper's testbed bottlenecks are the memory-side NIC's bandwidth
//! (100 Gbps) and verb rate (IOPS). Both effects are pure functions of the
//! number of messages and wire bytes an index issues per operation, which the
//! substrate counts exactly. This module converts those counts into system
//! throughput and saturation-inflated latency, reproducing the paper's
//! bandwidth-bound vs IOPS-bound behaviour without RDMA hardware.

/// Static network parameters (per memory node unless stated otherwise).
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Base round-trip latency of a one-sided verb, in nanoseconds.
    pub rtt_ns: u64,
    /// Memory-side NIC bandwidth in bytes per second (100 Gbps default).
    pub bandwidth_bps: f64,
    /// Memory-side NIC verb rate cap, messages per second.
    pub iops: f64,
    /// Per-message wire overhead in bytes (headers, ACKs).
    pub msg_overhead: u64,
    /// Latency of an allocation RPC served by the MN's CPU, in nanoseconds.
    pub alloc_rpc_ns: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            rtt_ns: 2_500,
            bandwidth_bps: 12.5e9,
            iops: 80.0e6,
            msg_overhead: 48,
            alloc_rpc_ns: 12_000,
        }
    }
}

impl NetConfig {
    /// Virtual latency charged to a client for a doorbell batch of verbs.
    ///
    /// `msgs` work requests posted together pay one base RTT; payload bytes
    /// stream at line rate on the client link.
    pub fn verb_latency_ns(&self, msgs: u64, wire_bytes: u64) -> u64 {
        debug_assert!(msgs > 0);
        let stream_ns = (wire_bytes as f64 / self.bandwidth_bps * 1e9) as u64;
        self.rtt_ns + stream_ns + (msgs - 1) * 80
    }

    /// Wire bytes for a verb with `payload` bytes of data.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        payload + self.msg_overhead
    }

    /// Converts counted traffic into modeled system throughput.
    pub fn model(&self, acc: &RunAccounting) -> ThroughputEstimate {
        assert!(acc.ops > 0 && acc.clients > 0);
        let avg_lat = acc.sum_latency_ns as f64 / acc.ops as f64;
        let msgs_per_op = acc.total_msgs as f64 / acc.ops as f64;
        let bytes_per_op = acc.total_wire_bytes as f64 / acc.ops as f64;
        // Client-side offered load: each client finishes its share of ops in
        // `sum_busy_ns / clients` of virtual wall time. For serial clients
        // busy time equals summed op latency and this reduces to the classic
        // `clients / avg_latency`; pipelined clients overlap round trips, so
        // their busy time is below the latency sum and offered load rises.
        let busy_ns = if acc.sum_busy_ns > 0 {
            acc.sum_busy_ns
        } else {
            acc.sum_latency_ns
        };
        let t_clients = acc.ops as f64 * acc.clients as f64 / (busy_ns as f64 / 1e9);
        let cap = acc.mns as f64;
        // When per-MN traffic is skewed, the hottest MN's NIC saturates
        // first: each resource's system-wide cap is its per-MN rate divided
        // by the hottest MN's share of that resource. Zero max fields mean
        // "assume uniform" and reproduce the flat `rate * mns` cap exactly.
        let iops_mns = if acc.max_mn_msgs > 0 {
            (acc.total_msgs as f64 / acc.max_mn_msgs as f64).min(cap)
        } else {
            cap
        };
        let bw_mns = if acc.max_mn_wire_bytes > 0 {
            (acc.total_wire_bytes as f64 / acc.max_mn_wire_bytes as f64).min(cap)
        } else {
            cap
        };
        let t_iops = self.iops * iops_mns / msgs_per_op;
        let t_bw = self.bandwidth_bps * bw_mns / bytes_per_op;
        let tput = t_clients.min(t_iops).min(t_bw);
        let inflation = if tput < t_clients {
            t_clients / tput
        } else {
            1.0
        };
        let bound = if tput >= t_clients {
            Bound::Latency
        } else if t_iops <= t_bw {
            Bound::Iops
        } else {
            Bound::Bandwidth
        };
        ThroughputEstimate {
            mops: tput / 1e6,
            avg_latency_ns: avg_lat * inflation,
            inflation,
            bound,
            msgs_per_op,
            bytes_per_op,
        }
    }
}

/// What limits throughput in a modeled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Clients are latency-bound (below NIC saturation).
    Latency,
    /// The MN NIC verb rate is saturated (small messages).
    Iops,
    /// The MN NIC bandwidth is saturated (large messages).
    Bandwidth,
}

/// Aggregate inputs for [`NetConfig::model`], summed over all clients.
#[derive(Debug, Clone, Copy)]
pub struct RunAccounting {
    /// Completed application operations.
    pub ops: u64,
    /// Simulated client count.
    pub clients: u64,
    /// Memory nodes serving the run (capacity scales linearly).
    pub mns: u64,
    /// Total NIC work requests.
    pub total_msgs: u64,
    /// Total wire bytes.
    pub total_wire_bytes: u64,
    /// Sum of per-operation base (uncongested) latencies, ns.
    pub sum_latency_ns: u64,
    /// Sum over clients of elapsed busy virtual time, ns. For serial
    /// clients this equals `sum_latency_ns`; for pipelined clients it is
    /// the per-client makespan (max over the client's lanes), which is
    /// smaller because lanes overlap their round trips. Zero means
    /// "serial": [`NetConfig::model`] falls back to `sum_latency_ns`.
    pub sum_busy_ns: u64,
    /// NIC work requests landing on the single busiest MN. Zero means
    /// "uniform": the model assumes traffic spreads evenly over `mns`.
    /// Partitioned runs set this so a skew-loaded MN caps throughput.
    pub max_mn_msgs: u64,
    /// Wire bytes landing on the single busiest MN (zero = uniform).
    pub max_mn_wire_bytes: u64,
}

/// Output of the throughput model.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputEstimate {
    /// Modeled system throughput, million operations per second.
    pub mops: f64,
    /// Average per-op latency including saturation inflation, ns.
    pub avg_latency_ns: f64,
    /// Factor by which queueing inflates latencies at this load (>= 1).
    pub inflation: f64,
    /// The binding resource.
    pub bound: Bound,
    /// Mean NIC messages per operation.
    pub msgs_per_op: f64,
    /// Mean wire bytes per operation.
    pub bytes_per_op: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(ops: u64, clients: u64, msgs_per_op: u64, bytes_per_op: u64, lat: u64) -> RunAccounting {
        RunAccounting {
            ops,
            clients,
            mns: 1,
            total_msgs: ops * msgs_per_op,
            total_wire_bytes: ops * bytes_per_op,
            sum_latency_ns: ops * lat,
            sum_busy_ns: 0,
            max_mn_msgs: 0,
            max_mn_wire_bytes: 0,
        }
    }

    #[test]
    fn latency_bound_at_low_load() {
        let n = NetConfig::default();
        // 4 clients, 5 us ops: 0.8 Mops, far below caps.
        let e = n.model(&acc(1000, 4, 2, 300, 5_000));
        assert_eq!(e.bound, Bound::Latency);
        assert!((e.mops - 0.8).abs() < 0.01, "{}", e.mops);
        assert!((e.inflation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iops_bound_with_tiny_messages() {
        let n = NetConfig::default();
        // 10_000 clients, 1 msg/op, 60-byte messages: capped by 80 Mops.
        let e = n.model(&acc(1000, 10_000, 1, 60, 2_500));
        assert_eq!(e.bound, Bound::Iops);
        assert!((e.mops - 80.0).abs() < 1.0, "{}", e.mops);
        assert!(e.inflation > 1.0);
        assert!(e.avg_latency_ns > 2_500.0);
    }

    #[test]
    fn bandwidth_bound_with_large_messages() {
        let n = NetConfig::default();
        // 4 KB per op: bandwidth cap = 12.5e9/4096 ~ 3.05 Mops.
        let e = n.model(&acc(1000, 10_000, 2, 4096, 6_000));
        assert_eq!(e.bound, Bound::Bandwidth);
        assert!((e.mops - 3.05).abs() < 0.1, "{}", e.mops);
    }

    #[test]
    fn more_mns_scale_capacity() {
        let n = NetConfig::default();
        let mut a = acc(1000, 1_000, 1, 60, 2_500);
        a.mns = 10;
        let e = n.model(&a);
        // 10 MNs lift the IOPS cap to 800 Mops; 1000 clients at 2.5 us can
        // only offer 400 Mops, so they bind.
        assert_eq!(e.bound, Bound::Latency);
    }

    #[test]
    fn zero_busy_time_falls_back_to_latency_sum() {
        let n = NetConfig::default();
        let mut a = acc(1000, 4, 2, 300, 5_000);
        let serial = n.model(&a);
        a.sum_busy_ns = a.sum_latency_ns;
        let explicit = n.model(&a);
        assert_eq!(serial.mops, explicit.mops);
        assert_eq!(serial.bound, explicit.bound);
    }

    #[test]
    fn overlapped_busy_time_raises_offered_load() {
        let n = NetConfig::default();
        let mut a = acc(1000, 4, 2, 300, 5_000);
        // 4 lanes per client overlap perfectly: busy time is a quarter of
        // the latency sum, so offered load quadruples.
        a.sum_busy_ns = a.sum_latency_ns / 4;
        let e = n.model(&a);
        assert_eq!(e.bound, Bound::Latency);
        assert!((e.mops - 3.2).abs() < 0.05, "{}", e.mops);
    }

    #[test]
    fn skewed_mn_traffic_lowers_the_cap() {
        let n = NetConfig::default();
        // 8 MNs, but half of all messages land on one of them: the system
        // caps at 2x a single NIC, not 8x.
        let mut a = acc(1000, 100_000, 1, 60, 2_500);
        a.mns = 8;
        a.max_mn_msgs = a.total_msgs / 2;
        a.max_mn_wire_bytes = a.total_wire_bytes / 2;
        let e = n.model(&a);
        assert_eq!(e.bound, Bound::Iops);
        assert!((e.mops - 160.0).abs() < 1.0, "{}", e.mops);
        // Uniform traffic over the same 8 MNs caps 4x higher.
        a.max_mn_msgs = 0;
        a.max_mn_wire_bytes = 0;
        let u = n.model(&a);
        assert!((u.mops - 640.0).abs() < 4.0, "{}", u.mops);
    }

    #[test]
    fn verb_latency_components() {
        let n = NetConfig::default();
        let base = n.verb_latency_ns(1, 0);
        assert_eq!(base, n.rtt_ns);
        assert!(n.verb_latency_ns(1, 125_000) > base);
        assert!(n.verb_latency_ns(3, 0) > base);
    }
}
