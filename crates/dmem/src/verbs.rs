//! Client endpoints issuing one-sided verbs.
//!
//! An [`Endpoint`] is the per-client handle a compute-node thread (or
//! coroutine) uses to reach the memory pool. Every verb executes immediately
//! against the target region and charges *virtual* latency and traffic to the
//! endpoint's counters; the experiment harness later feeds those counters to
//! the network model.

use std::sync::Arc;

use crate::addr::GlobalAddr;
use crate::node::Pool;
use crate::stats::ClientStats;

/// A client-side verb endpoint with its own virtual clock and counters.
pub struct Endpoint {
    pool: Arc<Pool>,
    stats: ClientStats,
    clock_ns: u64,
}

impl Endpoint {
    /// Creates a new endpoint attached to `pool`.
    pub fn new(pool: Arc<Pool>) -> Self {
        Endpoint {
            pool,
            stats: ClientStats::default(),
            clock_ns: 0,
        }
    }

    /// Returns the pool this endpoint is attached to.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Returns the accumulated counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Returns the endpoint's virtual clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Records payload bytes actually requested by the application
    /// (denominator of the read-amplification factor).
    pub fn note_app_bytes(&mut self, n: u64) {
        self.stats.app_bytes += n;
    }

    fn charge(&mut self, msgs: u64, payload: u64, rtts: u64) {
        let net = self.pool.net();
        let wire = payload + msgs * net.msg_overhead;
        self.stats.msgs += msgs;
        self.stats.rtts += rtts;
        self.stats.wire_bytes += wire;
        self.clock_ns += net.verb_latency_ns(msgs, wire);
    }

    /// One-sided READ of `dst.len()` bytes at `addr`.
    pub fn read(&mut self, addr: GlobalAddr, dst: &mut [u8]) {
        self.pool
            .mn(addr.mn())
            .region()
            .read(addr.offset() as usize, dst);
        self.stats.reads += 1;
        self.charge(1, dst.len() as u64, 1);
    }

    /// Doorbell-batched READs: all requests are posted together and pay a
    /// single round-trip, but each is a separate NIC work request.
    pub fn read_batch(&mut self, reqs: &mut [(GlobalAddr, &mut [u8])]) {
        assert!(!reqs.is_empty());
        let mut payload = 0u64;
        for (addr, dst) in reqs.iter_mut() {
            self.pool
                .mn(addr.mn())
                .region()
                .read(addr.offset() as usize, dst);
            payload += dst.len() as u64;
            self.stats.reads += 1;
        }
        self.charge(reqs.len() as u64, payload, 1);
    }

    /// One-sided WRITE of `src` at `addr`.
    pub fn write(&mut self, addr: GlobalAddr, src: &[u8]) {
        self.pool
            .mn(addr.mn())
            .region()
            .write(addr.offset() as usize, src);
        self.stats.writes += 1;
        self.charge(1, src.len() as u64, 1);
    }

    /// Doorbell-batched WRITEs (e.g. Sherman-style "write data + unlock in
    /// one round-trip"). Writes are applied in order.
    pub fn write_batch(&mut self, reqs: &[(GlobalAddr, &[u8])]) {
        assert!(!reqs.is_empty());
        let mut payload = 0u64;
        for (addr, src) in reqs {
            self.pool
                .mn(addr.mn())
                .region()
                .write(addr.offset() as usize, src);
            payload += src.len() as u64;
            self.stats.writes += 1;
        }
        self.charge(reqs.len() as u64, payload, 1);
    }

    /// RDMA compare-and-swap on the 8-byte word at `addr`.
    ///
    /// Returns the previous value; the swap happened iff it equals `compare`.
    pub fn cas(&mut self, addr: GlobalAddr, compare: u64, swap: u64) -> u64 {
        let old = self
            .pool
            .mn(addr.mn())
            .region()
            .atomic_rmw_u64(addr.offset() as usize, |cur| {
                (cur == compare).then_some(swap)
            });
        self.stats.atomics += 1;
        self.charge(1, 16, 1);
        old
    }

    /// RDMA masked compare-and-swap (ConnectX extended atomic).
    ///
    /// Compares only the bits selected by `compare_mask`; on success swaps
    /// only the bits selected by `swap_mask`. Always returns the full
    /// previous 8-byte value, which is how CHIME piggybacks the vacancy
    /// bitmap onto lock acquisition.
    pub fn masked_cas(
        &mut self,
        addr: GlobalAddr,
        compare: u64,
        compare_mask: u64,
        swap: u64,
        swap_mask: u64,
    ) -> u64 {
        let old = self
            .pool
            .mn(addr.mn())
            .region()
            .atomic_rmw_u64(addr.offset() as usize, |cur| {
                (cur & compare_mask == compare & compare_mask)
                    .then_some((cur & !swap_mask) | (swap & swap_mask))
            });
        self.stats.atomics += 1;
        self.charge(1, 32, 1);
        old
    }

    /// RDMA fetch-and-add on the 8-byte word at `addr`; returns the old value.
    pub fn faa(&mut self, addr: GlobalAddr, add: u64) -> u64 {
        let old = self
            .pool
            .mn(addr.mn())
            .region()
            .atomic_rmw_u64(addr.offset() as usize, |cur| Some(cur.wrapping_add(add)));
        self.stats.atomics += 1;
        self.charge(1, 16, 1);
        old
    }

    /// Allocation RPC: asks memory node `mn` for a chunk of `size` bytes.
    ///
    /// This is the only MN-CPU-involving operation, used to grab 16 MB
    /// chunks that the client then sub-allocates locally.
    pub fn alloc_rpc(&mut self, mn: u16, size: u64) -> Option<GlobalAddr> {
        let r = self.pool.mn(mn).alloc(size);
        self.stats.rpcs += 1;
        self.stats.msgs += 2;
        self.stats.rtts += 1;
        self.stats.wire_bytes += 2 * self.pool.net().msg_overhead;
        self.clock_ns += self.pool.net().alloc_rpc_ns;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RESERVED_BYTES;

    fn ep() -> Endpoint {
        Endpoint::new(Pool::with_defaults(1, 1 << 20))
    }

    #[test]
    fn read_write_roundtrip_and_accounting() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, b"hello world!");
        let mut buf = [0u8; 12];
        e.read(addr, &mut buf);
        assert_eq!(&buf, b"hello world!");
        assert_eq!(e.stats().reads, 1);
        assert_eq!(e.stats().writes, 1);
        assert_eq!(e.stats().rtts, 2);
        assert!(e.clock_ns() >= 2 * e.pool().net().rtt_ns);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        assert_eq!(e.cas(addr, 0, 7), 0);
        assert_eq!(e.cas(addr, 0, 9), 7); // fails, returns current
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), 7);
    }

    #[test]
    fn masked_cas_semantics() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, &0xAABB_CCDD_0000_0000u64.to_le_bytes());
        // Compare only bit 0 (expect 0 = unlocked), swap only bit 0.
        let old = e.masked_cas(addr, 0, 1, 1, 1);
        assert_eq!(old, 0xAABB_CCDD_0000_0000); // full old value returned
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        // Only bit 0 changed.
        assert_eq!(u64::from_le_bytes(b), 0xAABB_CCDD_0000_0001);
        // Second acquire fails (bit 0 already 1) and leaves the word intact.
        let old2 = e.masked_cas(addr, 0, 1, 1, 1);
        assert_eq!(old2 & 1, 1);
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), 0xAABB_CCDD_0000_0001);
    }

    #[test]
    fn masked_cas_swap_mask_limits_written_bits() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, &u64::MAX.to_le_bytes());
        // Unlock via masked write of bit 0 only... done with swap_mask=1.
        let _ = e.masked_cas(addr, u64::MAX, u64::MAX, 0, 1);
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), u64::MAX - 1);
    }

    #[test]
    fn faa_accumulates() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        assert_eq!(e.faa(addr, 5), 0);
        assert_eq!(e.faa(addr, 3), 5);
        assert_eq!(e.faa(addr, 0), 8);
    }

    #[test]
    fn batched_reads_pay_one_rtt() {
        let mut e = ep();
        let a1 = GlobalAddr::new(0, RESERVED_BYTES);
        let a2 = GlobalAddr::new(0, RESERVED_BYTES + 128);
        e.write(a1, &[1u8; 16]);
        e.write(a2, &[2u8; 16]);
        let before = e.stats().clone();
        let clock_before = e.clock_ns();
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        {
            let mut reqs = [(a1, &mut b1[..]), (a2, &mut b2[..])];
            e.read_batch(&mut reqs);
        }
        assert_eq!(b1, [1u8; 16]);
        assert_eq!(b2, [2u8; 16]);
        let d = e.stats().since(&before);
        assert_eq!(d.rtts, 1);
        assert_eq!(d.msgs, 2);
        assert_eq!(d.reads, 2);
        // One doorbell batch is cheaper than two sequential reads.
        assert!(e.clock_ns() - clock_before < 2 * e.pool().net().rtt_ns);
    }

    #[test]
    fn alloc_rpc_returns_chunks() {
        let mut e = ep();
        let a = e.alloc_rpc(0, 4096).unwrap();
        let b = e.alloc_rpc(0, 4096).unwrap();
        assert_ne!(a, b);
        assert_eq!(e.stats().rpcs, 2);
    }
}
