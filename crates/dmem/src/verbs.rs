//! Client endpoints issuing one-sided verbs.
//!
//! An [`Endpoint`] is the per-client handle a compute-node thread (or
//! coroutine) uses to reach the memory pool. Every verb executes immediately
//! against the target region and charges *virtual* latency and traffic to the
//! endpoint's counters; the experiment harness later feeds those counters to
//! the network model.

use std::sync::Arc;

use obs::{FlightKind, FlightRecorder, OpProfile, Phase, RetryCause, TimeSeries, Tracer};

use crate::addr::GlobalAddr;
use crate::fault::{FaultClient, FaultSession, VerbFaults, VerbKind};
use crate::node::Pool;
use crate::qp;
use crate::stats::ClientStats;

/// Always-on continuous telemetry carried by every [`Endpoint`]: the
/// windowed [`TimeSeries`] and the black-box [`FlightRecorder`].
///
/// Unlike the opt-in [`Tracer`], telemetry never changes what the endpoint
/// charges to the virtual clock — it only observes charges as they happen —
/// so enabling or inspecting it cannot perturb gated metrics.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Fixed-width windowed counters on the virtual clock.
    pub series: TimeSeries,
    /// Bounded ring of the client's last coarse events.
    pub flight: FlightRecorder,
}

/// An open phase attribution frame returned by [`Endpoint::phase_begin`].
///
/// Closing it with [`Endpoint::phase_end`] restores the previously active
/// phase, so phases nest like a stack but tolerate a leaked frame (the next
/// `phase_end` still restores *its* saved predecessor).
#[derive(Debug, Clone, Copy)]
#[must_use = "close the frame with Endpoint::phase_end"]
pub struct PhaseFrame {
    phase: Phase,
    prev: Phase,
    t0_ns: u64,
}

/// A client-side verb endpoint with its own virtual clock and counters.
pub struct Endpoint {
    pool: Arc<Pool>,
    stats: ClientStats,
    clock_ns: u64,
    fault: Option<FaultClient>,
    tracer: Option<Box<Tracer>>,
    prof: Box<OpProfile>,
    phase: Phase,
    /// `stats.faults_injected` at the last op-retry attribution, so a retry
    /// following an injected fault is blamed on the fault engine.
    fault_mark: u64,
    telem: Box<Telemetry>,
    /// Causal trace id stamped on ops and WQEs (0 = untraced).
    trace_id: u64,
    /// Nesting depth of open spans; depth 0 -> 1 marks an op boundary.
    span_depth: u32,
    /// Virtual time the outermost open span began.
    op_t0: u64,
}

impl Endpoint {
    /// Creates a new endpoint attached to `pool`.
    pub fn new(pool: Arc<Pool>) -> Self {
        Endpoint {
            pool,
            stats: ClientStats::default(),
            clock_ns: 0,
            fault: None,
            tracer: None,
            prof: Box::default(),
            phase: Phase::Other,
            fault_mark: 0,
            telem: Box::default(),
            trace_id: 0,
            span_depth: 0,
            op_t0: 0,
        }
    }

    /// Creates an endpoint whose verbs are intercepted by a shared fault
    /// session; `client` identifies this endpoint in rules and traces.
    pub fn with_faults(pool: Arc<Pool>, session: Arc<FaultSession>, client: u32) -> Self {
        Endpoint {
            pool,
            stats: ClientStats::default(),
            clock_ns: 0,
            fault: Some(FaultClient::new(session, client)),
            tracer: None,
            prof: Box::default(),
            phase: Phase::Other,
            fault_mark: 0,
            telem: Box::default(),
            trace_id: 0,
            span_depth: 0,
            op_t0: 0,
        }
    }

    /// Attaches a span/event tracer; every subsequent verb (and injected
    /// fault) records an event on the virtual clock.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Returns the tracer, if one is attached.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Detaches and returns the tracer.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take().map(|t| *t)
    }

    /// Opens an operation span (0 without a tracer). The outermost span of
    /// a nest marks an operation boundary for the always-on telemetry: the
    /// flight recorder logs the begin and the time series counts the
    /// completion, tracer or not.
    pub fn span_begin(&mut self, op: &'static str, key: u64) -> u64 {
        let now = self.clock_ns;
        if self.span_depth == 0 {
            self.op_t0 = now;
            self.telem.flight.push(
                now,
                FlightKind::OpBegin {
                    op,
                    key,
                    trace: self.trace_id,
                },
            );
        }
        self.span_depth += 1;
        self.tracer
            .as_mut()
            .map_or(0, |t| t.begin_span(op, key, now))
    }

    /// Closes an operation span opened with [`Endpoint::span_begin`].
    pub fn span_end(&mut self, span: u64, ok: bool) {
        let now = self.clock_ns;
        if let Some(t) = self.tracer.as_mut() {
            if span != 0 {
                t.end_span(span, ok, now);
            }
        }
        if self.span_depth > 0 {
            self.span_depth -= 1;
            if self.span_depth == 0 {
                let dur = now - self.op_t0;
                self.telem.series.record_op(now, dur, ok);
                self.telem.flight.push(now, FlightKind::OpEnd { ok, dur_ns: dur });
            }
        }
    }

    /// Sets the causal trace id stamped on subsequent ops, tracer events
    /// and WQEs. Minted once per operation at the serve/bench entry point
    /// and carried through every layer; 0 means untraced.
    pub fn set_trace_id(&mut self, id: u64) {
        self.trace_id = id;
        if let Some(t) = self.tracer.as_mut() {
            t.set_trace(id);
        }
    }

    /// The active causal trace id (0 = untraced).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The always-on continuous telemetry (time series + flight recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telem
    }

    /// Mutable telemetry access: the serve layer records shed/served
    /// decisions and CQ depth here; harnesses snapshot and diff it.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telem
    }

    /// Records a free-form control-plane note (migration steps, route
    /// updates) on both the time series and the flight recorder.
    pub fn note_event(&mut self, label: &str) {
        self.telem.series.event(self.clock_ns, label);
        self.telem.flight.push(
            self.clock_ns,
            FlightKind::Note {
                label: label.to_string(),
            },
        );
    }

    /// Opens a phase: subsequent clock charges are attributed to `phase`
    /// until the frame is closed (nested phases take over in between).
    pub fn phase_begin(&mut self, phase: Phase) -> PhaseFrame {
        let now = self.clock_ns;
        if let Some(t) = self.tracer.as_mut() {
            t.phase_begin(now, phase.as_str());
        }
        let prev = std::mem::replace(&mut self.phase, phase);
        PhaseFrame {
            phase,
            prev,
            t0_ns: now,
        }
    }

    /// Closes a phase frame: records one episode (inclusive duration) on the
    /// profile and restores the previously active phase.
    pub fn phase_end(&mut self, frame: PhaseFrame) {
        let dur = self.clock_ns - frame.t0_ns;
        self.prof.episode(frame.phase, dur);
        if let Some(t) = self.tracer.as_mut() {
            t.phase_end(self.clock_ns, frame.phase.as_str(), dur);
        }
        self.phase = frame.prev;
    }

    /// The currently active attribution phase.
    pub fn current_phase(&self) -> Phase {
        self.phase
    }

    /// The accumulated phase/retry profile.
    pub fn profile(&self) -> &OpProfile {
        &self.prof
    }

    /// Records a verb event on the tracer (no-op without one).
    fn trace_verb(&mut self, t0: u64, verb: &'static str, addr: GlobalAddr, wire: u64, msgs: u64) {
        let dur = self.clock_ns - t0;
        if let Some(t) = self.tracer.as_mut() {
            t.verb(t0, dur, verb, addr.mn(), addr.raw(), wire, msgs);
        }
    }

    /// Returns the fault session, if this endpoint is fault-injected.
    pub fn fault_session(&self) -> Option<&Arc<FaultSession>> {
        self.fault.as_ref().map(|f| f.session())
    }

    /// Returns this endpoint's client id in the fault session (0 if none).
    pub fn client_id(&self) -> u32 {
        self.fault.as_ref().map_or(0, |f| f.client_id())
    }

    /// Declares a labeled crash point; a [`crate::fault::CrashRule`] matching
    /// the label kills this client here (panicking with
    /// [`crate::fault::CrashSignal`]). A no-op without a fault session.
    pub fn crash_point(&mut self, label: &str) {
        self.telem.flight.push(
            self.clock_ns,
            FlightKind::CrashPoint {
                label: label.to_string(),
            },
        );
        if let Some(fc) = self.fault.as_mut() {
            fc.on_crash_point(label);
        }
    }

    /// Resolves fault actions for a verb, applies due torn-write heals, and
    /// charges injected latency. Panics with `CrashSignal` on a crash rule.
    fn fault_enter(&mut self, kind: VerbKind, addr: u64) -> VerbFaults {
        let Some(fc) = self.fault.as_mut() else {
            return VerbFaults::default();
        };
        let (faults, due) = fc.on_verb(kind, addr);
        for w in due {
            self.pool
                .mn(w.addr.mn())
                .region()
                .write(w.addr.offset() as usize, &w.bytes);
        }
        self.stats.faults_injected += faults.injected;
        for (action, label) in &faults.fired {
            self.telem.flight.push(
                self.clock_ns,
                FlightKind::Fault {
                    action,
                    label: label.clone(),
                },
            );
        }
        if let Some(t) = self.tracer.as_mut() {
            for (action, label) in &faults.fired {
                t.fault(self.clock_ns, action, label.clone());
            }
        }
        self.advance(faults.delay_ns);
        faults
    }

    /// Advances the virtual clock, attributing the time to the active phase.
    ///
    /// When a coroutine lane hook is installed on this thread, the advance
    /// first parks at the scheduler as a timer event so verb-free waits
    /// (backoff, injected delays, allocation RPCs) interleave with other
    /// lanes' completions in deterministic global order.
    pub(crate) fn advance(&mut self, dt: u64) {
        if dt > 0 {
            qp::hook_timer(self.clock_ns, dt);
        }
        let t0 = self.clock_ns;
        self.clock_ns += dt;
        self.prof.add_time(self.phase, dt);
        self.telem.series.add_time(t0, dt, self.phase);
    }


    /// Returns the pool this endpoint is attached to.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Returns the accumulated counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Returns the endpoint's virtual clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Records payload bytes actually requested by the application
    /// (denominator of the read-amplification factor).
    pub fn note_app_bytes(&mut self, n: u64) {
        self.stats.app_bytes += n;
    }

    /// Records a torn read detected (and retried) by version validation —
    /// a retry whose root cause is a version mismatch.
    pub fn note_torn_read(&mut self) {
        self.stats.torn_reads_detected += 1;
        self.prof.retry(RetryCause::VersionMismatch);
        self.telem.series.retry(self.clock_ns, RetryCause::VersionMismatch);
    }

    /// Records a stale lock word reclaimed from a dead holder.
    pub fn note_stale_lock_reclaimed(&mut self) {
        self.stats.stale_locks_reclaimed += 1;
    }

    /// Records a lock-acquisition attempt that found the word locked —
    /// a retry whose root cause is a lock conflict.
    pub fn note_lock_retry(&mut self) {
        self.stats.lock_retries += 1;
        self.prof.retry(RetryCause::LockConflict);
        self.telem.series.retry(self.clock_ns, RetryCause::LockConflict);
    }

    /// Records a whole-operation optimistic retry attributed to `cause`.
    ///
    /// When the fault engine injected a fault since the last op retry, the
    /// injection — not the symptom the caller observed — is blamed.
    pub fn note_op_retry(&mut self, cause: RetryCause) {
        self.stats.op_retries += 1;
        let cause = if self.stats.faults_injected > self.fault_mark {
            RetryCause::InjectedFault
        } else {
            cause
        };
        self.fault_mark = self.stats.faults_injected;
        self.prof.retry(cause);
        self.telem.series.retry(self.clock_ns, cause);
        self.telem
            .flight
            .push(self.clock_ns, FlightKind::Retry { cause: cause.as_str() });
    }

    /// Advances the virtual clock without network traffic (used by backoff:
    /// the client spends time, not round-trips).
    pub fn advance_clock(&mut self, ns: u64) {
        self.advance(ns);
    }

    /// Charges client counters and the virtual clock; returns wire bytes.
    ///
    /// Serial clients (no lane hook) complete each verb inline at exactly
    /// [`crate::net::NetConfig::verb_latency_ns`]. When a coroutine lane
    /// hook is installed on this thread, the verb is instead posted as a
    /// WQE to the client's shared queue pair: the lane parks until the
    /// scheduler delivers its completion, round trips reflect doorbell
    /// batching, and wait time beyond the uncontended service time is
    /// attributed to the `cq_wait` phase.
    fn charge(&mut self, mn: u16, msgs: u64, payload: u64, rtts: u64) -> u64 {
        let net = self.pool.net();
        let wire = payload + msgs * net.msg_overhead;
        self.stats.msgs += msgs;
        self.stats.wire_bytes += wire;
        let t0 = self.clock_ns;
        if let Some(out) = qp::hook_post(self.clock_ns, mn, msgs, wire, self.trace_id) {
            self.stats.rtts += out.rtts;
            self.clock_ns = out.completion_ns;
            self.prof.add_time(self.phase, out.service_ns);
            self.prof.add_time(Phase::CqWait, out.cq_wait_ns);
            self.prof.add_verb(self.phase, msgs, out.rtts, wire);
            self.telem.series.add_time(t0, out.cq_wait_ns, Phase::CqWait);
            self.telem.series.add_time(
                out.completion_ns.saturating_sub(out.service_ns),
                out.service_ns,
                self.phase,
            );
            self.telem.series.add_verb(t0, msgs, out.rtts, wire);
        } else {
            self.stats.rtts += rtts;
            self.advance(net.verb_latency_ns(msgs, wire));
            self.prof.add_verb(self.phase, msgs, rtts, wire);
            self.telem.series.add_verb(t0, msgs, rtts, wire);
        }
        wire
    }

    /// One-sided READ of `dst.len()` bytes at `addr`.
    pub fn read(&mut self, addr: GlobalAddr, dst: &mut [u8]) {
        let t0 = self.clock_ns;
        self.fault_enter(VerbKind::Read, addr.raw());
        self.pool
            .mn(addr.mn())
            .region()
            .read(addr.offset() as usize, dst);
        self.stats.reads += 1;
        let wire = self.charge(addr.mn(), 1, dst.len() as u64, 1);
        self.pool.mn(addr.mn()).note_traffic(1, wire);
        self.trace_verb(t0, "read", addr, wire, 1);
    }

    /// Doorbell-batched READs: all requests are posted together and pay a
    /// single round-trip, but each is a separate NIC work request.
    pub fn read_batch(&mut self, reqs: &mut [(GlobalAddr, &mut [u8])]) {
        assert!(!reqs.is_empty());
        let t0 = self.clock_ns;
        self.fault_enter(VerbKind::Read, reqs[0].0.raw());
        let overhead = self.pool.net().msg_overhead;
        let mut payload = 0u64;
        for (addr, dst) in reqs.iter_mut() {
            self.pool
                .mn(addr.mn())
                .region()
                .read(addr.offset() as usize, dst);
            self.pool
                .mn(addr.mn())
                .note_traffic(1, dst.len() as u64 + overhead);
            payload += dst.len() as u64;
            self.stats.reads += 1;
        }
        let msgs = reqs.len() as u64;
        let wire = self.charge(reqs[0].0.mn(), msgs, payload, 1);
        self.trace_verb(t0, "read", reqs[0].0, wire, msgs);
    }

    /// One-sided WRITE of `src` at `addr`.
    pub fn write(&mut self, addr: GlobalAddr, src: &[u8]) {
        let t0 = self.clock_ns;
        let f = self.fault_enter(VerbKind::Write, addr.raw());
        if let Some((lines, heal_after)) = f.torn {
            self.torn_write(&[(addr, src)], lines, heal_after);
        } else {
            self.pool
                .mn(addr.mn())
                .region()
                .write(addr.offset() as usize, src);
        }
        self.stats.writes += 1;
        let wire = self.charge(addr.mn(), 1, src.len() as u64, 1);
        self.pool.mn(addr.mn()).note_traffic(1, wire);
        self.trace_verb(t0, "write", addr, wire, 1);
    }

    /// Doorbell-batched WRITEs (e.g. Sherman-style "write data + unlock in
    /// one round-trip"). Writes are applied in order.
    pub fn write_batch(&mut self, reqs: &[(GlobalAddr, &[u8])]) {
        assert!(!reqs.is_empty());
        let t0 = self.clock_ns;
        let f = self.fault_enter(VerbKind::Write, reqs[0].0.raw());
        if let Some((lines, heal_after)) = f.torn {
            self.torn_write(reqs, lines, heal_after);
        } else {
            for (addr, src) in reqs {
                self.pool
                    .mn(addr.mn())
                    .region()
                    .write(addr.offset() as usize, src);
            }
        }
        let overhead = self.pool.net().msg_overhead;
        let mut payload = 0u64;
        for (addr, src) in reqs {
            self.pool
                .mn(addr.mn())
                .note_traffic(1, src.len() as u64 + overhead);
            payload += src.len() as u64;
            self.stats.writes += 1;
        }
        let msgs = reqs.len() as u64;
        let wire = self.charge(reqs[0].0.mn(), msgs, payload, 1);
        self.trace_verb(t0, "write", reqs[0].0, wire, msgs);
    }

    /// Applies a torn (batched) write: the first `lines` 64-byte cache lines
    /// of the concatenated payload reach memory now; the rest lands after
    /// `heal_after` more verbs by this client, or never (`None`). The full
    /// cost is charged either way — the client believes the doorbell posted.
    fn torn_write(
        &mut self,
        reqs: &[(GlobalAddr, &[u8])],
        lines: usize,
        heal_after: Option<u64>,
    ) {
        let mut budget = lines * crate::region::LINE;
        for (addr, src) in reqs {
            let now = budget.min(src.len());
            if now > 0 {
                self.pool
                    .mn(addr.mn())
                    .region()
                    .write(addr.offset() as usize, &src[..now]);
                budget -= now;
            }
            if now < src.len() {
                if let Some(after) = heal_after {
                    let fc = self.fault.as_mut().expect("torn write without faults");
                    fc.schedule_heal(addr.add(now as u64), src[now..].to_vec(), after);
                }
            }
        }
    }

    /// RDMA compare-and-swap on the 8-byte word at `addr`.
    ///
    /// Returns the previous value; the swap happened iff it equals `compare`.
    pub fn cas(&mut self, addr: GlobalAddr, compare: u64, swap: u64) -> u64 {
        let t0 = self.clock_ns;
        let f = self.fault_enter(VerbKind::Cas, addr.raw());
        self.stats.atomics += 1;
        let wire = self.charge(addr.mn(), 1, 16, 1);
        self.pool.mn(addr.mn()).note_traffic(1, wire);
        self.trace_verb(t0, "cas", addr, wire, 1);
        let region = self.pool.mn(addr.mn()).region();
        let off = addr.offset() as usize;
        if f.fail_cas {
            // Completion dropped: nothing executes, and the reported old
            // value is made to conflict with `compare` so the caller sees a
            // clean failure and retries.
            let cur = region.atomic_rmw_u64(off, |_| None);
            return if cur == compare { cur ^ 1 } else { cur };
        }
        let old = region.atomic_rmw_u64(off, |cur| (cur == compare).then_some(swap));
        if f.duplicate {
            // Retransmitted completion: the atomic executes a second time.
            region.atomic_rmw_u64(off, |cur| (cur == compare).then_some(swap));
        }
        old
    }

    /// RDMA masked compare-and-swap (ConnectX extended atomic).
    ///
    /// Compares only the bits selected by `compare_mask`; on success swaps
    /// only the bits selected by `swap_mask`. Always returns the full
    /// previous 8-byte value, which is how CHIME piggybacks the vacancy
    /// bitmap onto lock acquisition.
    pub fn masked_cas(
        &mut self,
        addr: GlobalAddr,
        compare: u64,
        compare_mask: u64,
        swap: u64,
        swap_mask: u64,
    ) -> u64 {
        let t0 = self.clock_ns;
        let f = self.fault_enter(VerbKind::MaskedCas, addr.raw());
        self.stats.atomics += 1;
        let wire = self.charge(addr.mn(), 1, 32, 1);
        self.pool.mn(addr.mn()).note_traffic(1, wire);
        self.trace_verb(t0, "masked_cas", addr, wire, 1);
        let region = self.pool.mn(addr.mn()).region();
        let off = addr.offset() as usize;
        let apply = |cur: u64| {
            (cur & compare_mask == compare & compare_mask)
                .then_some((cur & !swap_mask) | (swap & swap_mask))
        };
        if f.fail_cas {
            // Completion dropped: flip the lowest compared bit of the
            // reported old value if it would have matched, so the caller
            // observes a spurious conflict.
            let cur = region.atomic_rmw_u64(off, |_| None);
            let flip = if compare_mask == 0 {
                1
            } else {
                compare_mask & compare_mask.wrapping_neg()
            };
            return if cur & compare_mask == compare & compare_mask {
                cur ^ flip
            } else {
                cur
            };
        }
        let old = region.atomic_rmw_u64(off, apply);
        if f.duplicate {
            region.atomic_rmw_u64(off, apply);
        }
        old
    }

    /// RDMA fetch-and-add on the 8-byte word at `addr`; returns the old value.
    pub fn faa(&mut self, addr: GlobalAddr, add: u64) -> u64 {
        let t0 = self.clock_ns;
        let f = self.fault_enter(VerbKind::Faa, addr.raw());
        self.stats.atomics += 1;
        let wire = self.charge(addr.mn(), 1, 16, 1);
        self.pool.mn(addr.mn()).note_traffic(1, wire);
        self.trace_verb(t0, "faa", addr, wire, 1);
        let region = self.pool.mn(addr.mn()).region();
        let off = addr.offset() as usize;
        let old = region.atomic_rmw_u64(off, |cur| Some(cur.wrapping_add(add)));
        if f.duplicate {
            // Retransmitted completion: the add lands twice.
            region.atomic_rmw_u64(off, |cur| Some(cur.wrapping_add(add)));
        }
        old
    }

    /// Allocation RPC: asks memory node `mn` for a chunk of `size` bytes.
    ///
    /// This is the only MN-CPU-involving operation, used to grab 16 MB
    /// chunks that the client then sub-allocates locally.
    pub fn alloc_rpc(&mut self, mn: u16, size: u64) -> Option<GlobalAddr> {
        let t0 = self.clock_ns;
        self.fault_enter(VerbKind::Alloc, (mn as u64) << 48);
        let r = self.pool.mn(mn).alloc(size);
        let wire = 2 * self.pool.net().msg_overhead;
        self.stats.rpcs += 1;
        self.stats.msgs += 2;
        self.stats.rtts += 1;
        self.stats.wire_bytes += wire;
        let t0a = self.clock_ns;
        let dt = self.pool.net().alloc_rpc_ns;
        self.advance(dt);
        self.prof.add_verb(self.phase, 2, 1, wire);
        self.telem.series.add_verb(t0a, 2, 1, wire);
        self.pool.mn(mn).note_traffic(2, wire);
        self.trace_verb(t0, "alloc", GlobalAddr::new(mn, 0), wire, 2);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RESERVED_BYTES;

    fn ep() -> Endpoint {
        Endpoint::new(Pool::with_defaults(1, 1 << 20))
    }

    #[test]
    fn read_write_roundtrip_and_accounting() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, b"hello world!");
        let mut buf = [0u8; 12];
        e.read(addr, &mut buf);
        assert_eq!(&buf, b"hello world!");
        assert_eq!(e.stats().reads, 1);
        assert_eq!(e.stats().writes, 1);
        assert_eq!(e.stats().rtts, 2);
        assert!(e.clock_ns() >= 2 * e.pool().net().rtt_ns);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        assert_eq!(e.cas(addr, 0, 7), 0);
        assert_eq!(e.cas(addr, 0, 9), 7); // fails, returns current
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), 7);
    }

    #[test]
    fn masked_cas_semantics() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, &0xAABB_CCDD_0000_0000u64.to_le_bytes());
        // Compare only bit 0 (expect 0 = unlocked), swap only bit 0.
        let old = e.masked_cas(addr, 0, 1, 1, 1);
        assert_eq!(old, 0xAABB_CCDD_0000_0000); // full old value returned
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        // Only bit 0 changed.
        assert_eq!(u64::from_le_bytes(b), 0xAABB_CCDD_0000_0001);
        // Second acquire fails (bit 0 already 1) and leaves the word intact.
        let old2 = e.masked_cas(addr, 0, 1, 1, 1);
        assert_eq!(old2 & 1, 1);
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), 0xAABB_CCDD_0000_0001);
    }

    #[test]
    fn masked_cas_swap_mask_limits_written_bits() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        e.write(addr, &u64::MAX.to_le_bytes());
        // Unlock via masked write of bit 0 only... done with swap_mask=1.
        let _ = e.masked_cas(addr, u64::MAX, u64::MAX, 0, 1);
        let mut b = [0u8; 8];
        e.read(addr, &mut b);
        assert_eq!(u64::from_le_bytes(b), u64::MAX - 1);
    }

    #[test]
    fn faa_accumulates() {
        let mut e = ep();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        assert_eq!(e.faa(addr, 5), 0);
        assert_eq!(e.faa(addr, 3), 5);
        assert_eq!(e.faa(addr, 0), 8);
    }

    #[test]
    fn batched_reads_pay_one_rtt() {
        let mut e = ep();
        let a1 = GlobalAddr::new(0, RESERVED_BYTES);
        let a2 = GlobalAddr::new(0, RESERVED_BYTES + 128);
        e.write(a1, &[1u8; 16]);
        e.write(a2, &[2u8; 16]);
        let before = e.stats().clone();
        let clock_before = e.clock_ns();
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        {
            let mut reqs = [(a1, &mut b1[..]), (a2, &mut b2[..])];
            e.read_batch(&mut reqs);
        }
        assert_eq!(b1, [1u8; 16]);
        assert_eq!(b2, [2u8; 16]);
        let d = e.stats().since(&before);
        assert_eq!(d.rtts, 1);
        assert_eq!(d.msgs, 2);
        assert_eq!(d.reads, 2);
        // One doorbell batch is cheaper than two sequential reads.
        assert!(e.clock_ns() - clock_before < 2 * e.pool().net().rtt_ns);
    }

    #[test]
    fn tracer_records_verbs_with_spans_and_mn_traffic() {
        let mut e = ep();
        e.set_tracer(obs::Tracer::new(0, 1024));
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let sp = e.span_begin("insert", 99);
        e.write(addr, &[1u8; 32]);
        assert_eq!(e.cas(addr.add(64), 0, 5), 0);
        e.span_end(sp, true);
        let mut buf = [0u8; 8];
        e.read(addr, &mut buf); // outside any span

        let t = e.tracer().unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].op, "insert");
        assert_eq!(spans[0].key, 99);
        let verbs: Vec<&str> = spans[0].verbs.iter().map(|v| v.verb).collect();
        assert_eq!(verbs, ["write", "cas"]);
        assert!(spans[0].ok);
        // The span's wire bytes match the client counters minus the
        // out-of-span read.
        let overhead = e.pool().net().msg_overhead;
        assert_eq!(spans[0].wire_bytes, (32 + overhead) + (16 + overhead));
        // Per-MN traffic saw all three verbs.
        let traffic = e.pool().traffic();
        assert_eq!(traffic[0].msgs, 3);
        assert_eq!(traffic[0].wire_bytes, e.stats().wire_bytes);
        // The loose read is attributed to span 0.
        let last = t.events().last().unwrap();
        assert_eq!(last.span, 0);
    }

    #[test]
    fn phases_attribute_time_verbs_and_retries() {
        use obs::{Phase, RetryCause};
        let mut e = ep();
        e.set_tracer(obs::Tracer::new(0, 1024));
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let sp = e.span_begin("search", 1);

        let fr = e.phase_begin(Phase::Traversal);
        let mut buf = [0u8; 8];
        e.read(addr, &mut buf);
        // Nested phase takes over attribution.
        let inner = e.phase_begin(Phase::LeafRead);
        e.read(addr, &mut buf);
        e.phase_end(inner);
        assert_eq!(e.current_phase(), Phase::Traversal);
        e.phase_end(fr);
        assert_eq!(e.current_phase(), Phase::Other);
        e.read(addr, &mut buf); // unattributed

        e.note_lock_retry();
        e.note_torn_read();
        e.note_op_retry(RetryCause::StaleSibling);
        e.span_end(sp, true);

        let p = e.profile();
        let trav = p.phase(Phase::Traversal);
        let leaf = p.phase(Phase::LeafRead);
        let other = p.phase(Phase::Other);
        assert_eq!(trav.verbs, 1);
        assert_eq!(leaf.verbs, 1);
        assert_eq!(other.verbs, 1);
        assert_eq!(trav.rtts + leaf.rtts + other.rtts, e.stats().rtts);
        assert_eq!(
            trav.wire_bytes + leaf.wire_bytes + other.wire_bytes,
            e.stats().wire_bytes
        );
        // Exclusive time sums to the clock; episodes are inclusive.
        assert_eq!(trav.ns + leaf.ns + other.ns, e.clock_ns());
        assert_eq!(trav.episodes, 1);
        assert_eq!(trav.hist.count(), 1);
        assert!(trav.hist.sum() >= trav.ns + leaf.ns, "inclusive episode");
        assert_eq!(p.retry_count(RetryCause::LockConflict), 1);
        assert_eq!(p.retry_count(RetryCause::VersionMismatch), 1);
        assert_eq!(p.retry_count(RetryCause::StaleSibling), 1);
        // The tracer saw typed phase sub-spans inside the op span.
        let spans = e.tracer().unwrap().spans();
        assert_eq!(spans[0].phase_ns.len(), 2);
        assert_eq!(spans[0].phase_ns[0].0, "leaf_read");
        assert_eq!(spans[0].phase_ns[1].0, "traversal");
    }

    #[test]
    fn op_retry_blames_injected_fault_over_symptom() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule, FaultSession, VerbKind};
        use obs::RetryCause;
        let mut plan = FaultPlan::seeded(9);
        plan.rules.push(FaultRule {
            label: "one-delay".into(),
            verb: Some(VerbKind::Read),
            client: None,
            probability: 1.0,
            after_seq: 0,
            max_fires: 1,
            action: FaultAction::Delay { ns: 10 },
        });
        let session = Arc::new(FaultSession::new(plan));
        let pool = Pool::with_defaults(1, 1 << 20);
        let mut e = Endpoint::with_faults(pool, session, 0);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let mut buf = [0u8; 8];
        e.read(addr, &mut buf); // fault fires here
        e.note_op_retry(RetryCause::StaleRoute);
        assert_eq!(e.profile().retry_count(RetryCause::InjectedFault), 1);
        assert_eq!(e.profile().retry_count(RetryCause::StaleRoute), 0);
        // No new fault since the mark: the symptom is blamed.
        e.read(addr, &mut buf);
        e.note_op_retry(RetryCause::StaleRoute);
        assert_eq!(e.profile().retry_count(RetryCause::StaleRoute), 1);
    }

    #[test]
    fn batch_traffic_splits_across_mns() {
        let mut e = Endpoint::new(Pool::with_defaults(2, 1 << 20));
        let a0 = GlobalAddr::new(0, RESERVED_BYTES);
        let a1 = GlobalAddr::new(1, RESERVED_BYTES);
        e.write_batch(&[(a0, &[1u8; 10]), (a1, &[2u8; 30])]);
        let overhead = e.pool().net().msg_overhead;
        let t = e.pool().traffic();
        assert_eq!(t[0], crate::node::MnTraffic { msgs: 1, wire_bytes: 10 + overhead });
        assert_eq!(t[1], crate::node::MnTraffic { msgs: 1, wire_bytes: 30 + overhead });
        assert_eq!(t[0].wire_bytes + t[1].wire_bytes, e.stats().wire_bytes);
    }

    #[test]
    fn alloc_rpc_returns_chunks() {
        let mut e = ep();
        let a = e.alloc_rpc(0, 4096).unwrap();
        let b = e.alloc_rpc(0, 4096).unwrap();
        assert_ne!(a, b);
        assert_eq!(e.stats().rpcs, 2);
    }

    mod faults {
        use super::*;
        use crate::fault::{
            CrashRule, CrashSignal, FaultAction, FaultPlan, FaultRule, FaultSession, VerbKind,
        };
        use std::sync::Arc;

        fn faulty_ep(plan: FaultPlan) -> (Endpoint, Arc<FaultSession>) {
            let session = Arc::new(FaultSession::new(plan));
            let pool = Pool::with_defaults(1, 1 << 20);
            (
                Endpoint::with_faults(pool, Arc::clone(&session), 0),
                session,
            )
        }

        #[test]
        fn delay_rule_advances_clock_and_counts() {
            let mut plan = FaultPlan::seeded(1);
            plan.rules.push(FaultRule::always(
                "spike",
                Some(VerbKind::Read),
                FaultAction::Delay { ns: 50_000 },
            ));
            let (mut e, s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            let before = e.clock_ns();
            let mut buf = [0u8; 8];
            e.read(addr, &mut buf);
            assert!(e.clock_ns() >= before + 50_000);
            assert_eq!(e.stats().faults_injected, 1);
            assert_eq!(s.trace().len(), 1);
        }

        #[test]
        fn torn_write_never_heals_drops_tail() {
            let mut plan = FaultPlan::seeded(2);
            plan.rules.push(FaultRule::always(
                "tear-1-line",
                Some(VerbKind::Write),
                FaultAction::TornWrite {
                    lines: 1,
                    heal_after: None,
                },
            ));
            let (mut e, _s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            e.write(addr, &[7u8; 128]);
            let mut clean = Endpoint::new(Arc::clone(e.pool()));
            let mut buf = [0u8; 128];
            clean.read(addr, &mut buf);
            assert_eq!(&buf[..64], &[7u8; 64][..], "first line landed");
            assert_eq!(&buf[64..], &[0u8; 64][..], "second line never landed");
        }

        #[test]
        fn torn_write_heals_after_n_verbs() {
            let mut plan = FaultPlan::seeded(3);
            plan.rules.push(FaultRule {
                label: "tear-then-heal".into(),
                verb: Some(VerbKind::Write),
                client: None,
                probability: 1.0,
                after_seq: 0,
                max_fires: 1,
                action: FaultAction::TornWrite {
                    lines: 1,
                    heal_after: Some(2),
                },
            });
            let (mut e, _s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            e.write(addr, &[9u8; 128]);
            let mut buf = [0u8; 128];
            e.read(addr, &mut buf); // verb 1 after the tear
            assert_eq!(&buf[64..], &[0u8; 64][..], "tail still missing");
            e.read(addr, &mut buf); // verb 2: heal applied before the read
            assert_eq!(&buf[..], &[9u8; 128][..], "tail healed");
        }

        #[test]
        fn failed_cas_reports_conflict_without_executing() {
            let mut plan = FaultPlan::seeded(4);
            plan.rules.push(FaultRule {
                label: "drop-cas".into(),
                verb: Some(VerbKind::Cas),
                client: None,
                probability: 1.0,
                after_seq: 0,
                max_fires: 1,
                action: FaultAction::FailCas,
            });
            let (mut e, _s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            let old = e.cas(addr, 0, 7);
            assert_ne!(old, 0, "reported old value must conflict");
            let mut b = [0u8; 8];
            e.read(addr, &mut b);
            assert_eq!(u64::from_le_bytes(b), 0, "swap must not have executed");
            // Budget spent: the retry succeeds.
            assert_eq!(e.cas(addr, 0, 7), 0);
            e.read(addr, &mut b);
            assert_eq!(u64::from_le_bytes(b), 7);
        }

        #[test]
        fn failed_masked_cas_flips_a_compared_bit_only() {
            let mut plan = FaultPlan::seeded(5);
            plan.rules.push(FaultRule {
                label: "drop-mcas".into(),
                verb: Some(VerbKind::MaskedCas),
                client: None,
                probability: 1.0,
                after_seq: 0,
                max_fires: 1,
                action: FaultAction::FailCas,
            });
            let (mut e, _s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            e.write(addr, &0xAABB_0000_0000_0000u64.to_le_bytes());
            // Lock acquisition: compare bit 0 == 0, swap bit 0 := 1.
            let old = e.masked_cas(addr, 0, 1, 1, 1);
            assert_eq!(old & 1, 1, "must look locked so the caller retries");
            assert_eq!(old & !1, 0xAABB_0000_0000_0000, "other bits untouched");
            let mut b = [0u8; 8];
            e.read(addr, &mut b);
            assert_eq!(
                u64::from_le_bytes(b),
                0xAABB_0000_0000_0000,
                "memory unchanged"
            );
        }

        #[test]
        fn duplicated_faa_lands_twice() {
            let mut plan = FaultPlan::seeded(6);
            plan.rules.push(FaultRule {
                label: "dup-faa".into(),
                verb: Some(VerbKind::Faa),
                client: None,
                probability: 1.0,
                after_seq: 0,
                max_fires: 1,
                action: FaultAction::DuplicateAtomic,
            });
            let (mut e, _s) = faulty_ep(plan);
            let addr = GlobalAddr::new(0, RESERVED_BYTES);
            assert_eq!(e.faa(addr, 5), 0);
            assert_eq!(e.faa(addr, 1), 10, "first add landed twice");
        }

        #[test]
        fn crash_point_kills_client() {
            let plan = FaultPlan {
                seed: 7,
                rules: vec![],
                crashes: vec![CrashRule {
                    label: "op.midway".into(),
                    client: Some(0),
                    at_hit: 1,
                }],
            };
            let (mut e, s) = faulty_ep(plan);
            e.crash_point("unrelated");
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                e.crash_point("op.midway");
            }));
            let payload = r.unwrap_err();
            let sig = payload.downcast_ref::<CrashSignal>().expect("CrashSignal");
            assert_eq!(sig.label, "op.midway");
            assert_eq!(s.trace().len(), 1);
        }

        #[test]
        fn same_seed_same_trace() {
            let run = |seed: u64| {
                let mut plan = FaultPlan::seeded(seed);
                plan.rules.push(FaultRule {
                    label: "p30-delay".into(),
                    verb: None,
                    client: None,
                    probability: 0.3,
                    after_seq: 0,
                    max_fires: u64::MAX,
                    action: FaultAction::Delay { ns: 10 },
                });
                let (mut e, s) = faulty_ep(plan);
                let addr = GlobalAddr::new(0, RESERVED_BYTES);
                let mut buf = [0u8; 16];
                for i in 0..100u64 {
                    match i % 3 {
                        0 => e.read(addr, &mut buf),
                        1 => e.write(addr, &buf),
                        _ => {
                            e.faa(addr.add(64), 1);
                        }
                    }
                }
                s.trace()
            };
            assert_eq!(run(11), run(11));
            assert_ne!(run(11), run(12), "different seeds should diverge");
        }
    }
}
