//! Global addresses for the disaggregated memory pool.
//!
//! Like Sherman, SMART and CHIME, every remote pointer is 8 bytes and packs
//! the memory-node id together with the byte offset inside that node's
//! registered region.

use core::fmt;

/// Number of low bits holding the byte offset inside a memory node.
const OFFSET_BITS: u32 = 48;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// An 8-byte pointer into the disaggregated memory pool.
///
/// Bit layout: `[63:48]` memory-node id, `[47:0]` byte offset. The all-zero
/// value is reserved as the null pointer (memory nodes never hand out offset
/// 0; the first allocatable byte is at [`crate::node::RESERVED_BYTES`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr(u64);

impl GlobalAddr {
    /// The null remote pointer.
    pub const NULL: GlobalAddr = GlobalAddr(0);

    /// Builds an address from a memory-node id and a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit into 48 bits.
    #[inline]
    pub fn new(mn: u16, offset: u64) -> Self {
        assert!(offset <= OFFSET_MASK, "offset {offset:#x} exceeds 48 bits");
        GlobalAddr(((mn as u64) << OFFSET_BITS) | offset)
    }

    /// Reconstructs an address from its raw 8-byte representation.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        GlobalAddr(raw)
    }

    /// Returns the raw 8-byte representation (what is stored in node fields).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the memory-node id.
    #[inline]
    pub fn mn(self) -> u16 {
        (self.0 >> OFFSET_BITS) as u16
    }

    /// Returns the byte offset within the memory node's region.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// Returns `true` for the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns this address advanced by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the new offset overflows 48 bits.
    // Not `ops::Add`: mixing address + byte-delta under the `+` operator
    // reads like pointer arithmetic on the raw u64 and hides the 48-bit
    // offset check; the explicit method keeps call sites unambiguous.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, delta: u64) -> Self {
        GlobalAddr::new(self.mn(), self.offset() + delta)
    }
}

impl fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "GlobalAddr(NULL)")
        } else {
            write!(f, "GlobalAddr(mn={}, off={:#x})", self.mn(), self.offset())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = GlobalAddr::new(7, 0xdead_beef);
        assert_eq!(a.mn(), 7);
        assert_eq!(a.offset(), 0xdead_beef);
        assert_eq!(GlobalAddr::from_raw(a.raw()), a);
        assert!(!a.is_null());
    }

    #[test]
    fn null_is_null() {
        assert!(GlobalAddr::NULL.is_null());
        assert_eq!(GlobalAddr::NULL.raw(), 0);
    }

    #[test]
    fn add_advances_offset() {
        let a = GlobalAddr::new(3, 0x1000);
        let b = a.add(0x10);
        assert_eq!(b.mn(), 3);
        assert_eq!(b.offset(), 0x1010);
    }

    #[test]
    #[should_panic]
    fn offset_overflow_panics() {
        let _ = GlobalAddr::new(0, 1 << 48);
    }

    #[test]
    fn max_offset_ok() {
        let a = GlobalAddr::new(u16::MAX, (1 << 48) - 1);
        assert_eq!(a.mn(), u16::MAX);
        assert_eq!(a.offset(), (1 << 48) - 1);
    }
}
