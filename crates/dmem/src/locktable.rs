//! Compute-node-local lock tables (Sherman's technique, adopted by CHIME).
//!
//! When many clients of one CN contend for the same remote node lock, only
//! one of them should spin on remote CASes; the rest queue locally. The
//! table tracks which remote locks are held by this CN: a client first
//! acquires the local slot, then performs the (now almost always
//! uncontended-within-the-CN) remote acquisition.
//!
//! Sharded to keep local contention negligible.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::verbs::Endpoint;

const SHARDS: usize = 64;

/// Virtual-time poll interval while a coroutine lane waits for a local
/// slot held by a parked sibling lane.
const LANE_POLL_NS: u64 = 200;

struct Shard {
    held: Mutex<HashSet<u64>>,
    cv: Condvar,
}

/// A per-CN table of remote locks currently held by local clients.
pub struct LocalLockTable {
    shards: Vec<Shard>,
}

impl Default for LocalLockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalLockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LocalLockTable {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    held: Mutex::new(HashSet::new()),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    fn shard(&self, raw: u64) -> &Shard {
        &self.shards[(crate::hash::mix64(raw) % SHARDS as u64) as usize]
    }

    /// Blocks until this client holds the local slot for `raw` (a remote
    /// lock address). Returns a guard that releases the slot on drop.
    pub fn acquire(self: &Arc<Self>, raw: u64) -> LocalLockGuard {
        let shard = self.shard(raw);
        let mut held = shard.held.lock();
        while held.contains(&raw) {
            shard.cv.wait(&mut held);
        }
        held.insert(raw);
        LocalLockGuard {
            table: Arc::clone(self),
            raw,
        }
    }

    /// Takes the local slot for `raw` if it is free, without blocking.
    pub fn try_acquire(self: &Arc<Self>, raw: u64) -> Option<LocalLockGuard> {
        let shard = self.shard(raw);
        let mut held = shard.held.lock();
        if held.contains(&raw) {
            return None;
        }
        held.insert(raw);
        Some(LocalLockGuard {
            table: Arc::clone(self),
            raw,
        })
    }

    /// Coroutine-safe [`acquire`](Self::acquire): on a scheduler lane
    /// ([`crate::lane_active`]) the wait happens in **virtual time** — the
    /// lane parks on a timer and its siblings run — instead of on the
    /// condvar. A lane blocked on the condvar would deadlock the whole
    /// client, because the slot holder is itself parked waiting for the
    /// scheduler to resume it. Off-lane callers fall through to the plain
    /// blocking path.
    pub fn acquire_with(self: &Arc<Self>, raw: u64, ep: &mut Endpoint) -> LocalLockGuard {
        if !crate::qp::lane_active() {
            return self.acquire(raw);
        }
        loop {
            if let Some(g) = self.try_acquire(raw) {
                return g;
            }
            ep.advance(LANE_POLL_NS);
        }
    }

    fn release(&self, raw: u64) {
        let shard = self.shard(raw);
        let mut held = shard.held.lock();
        held.remove(&raw);
        shard.cv.notify_all();
    }
}

/// RAII guard for a local lock slot.
pub struct LocalLockGuard {
    table: Arc<LocalLockTable>,
    raw: u64,
}

impl Drop for LocalLockGuard {
    fn drop(&mut self) {
        self.table.release(self.raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn acquire_release_roundtrip() {
        let t = Arc::new(LocalLockTable::new());
        let g = t.acquire(42);
        drop(g);
        let g2 = t.acquire(42);
        drop(g2);
    }

    #[test]
    fn distinct_addresses_do_not_block() {
        let t = Arc::new(LocalLockTable::new());
        let _a = t.acquire(1);
        let _b = t.acquire(2);
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        let t = Arc::new(LocalLockTable::new());
        let counter = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let counter = Arc::clone(&counter);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let _g = t.acquire(7);
                        let in_cs = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(in_cs, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "two holders at once");
    }
}
