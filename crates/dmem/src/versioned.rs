//! Versioned memory layout (two-level cache-line versions).
//!
//! Sherman and CHIME stripe every tree node over 64-byte cache lines whose
//! first byte is a *version byte*; the remaining 63 bytes per line hold
//! payload. A version byte packs a 4-bit node-level version (NV, high nibble)
//! and a 4-bit entry-level version (EV, low nibble):
//!
//! * a **node write** bumps NV in every version byte of the node;
//! * an **entry write** bumps EV in the entry's own leading version byte and
//!   in every line version byte that falls physically inside the entry;
//! * a reader checks that all fetched version bytes agree on NV, and that the
//!   version bytes within each fetched entry agree on EV.
//!
//! This module provides the logical↔physical mapping, fetch/write helpers and
//! nibble arithmetic. The convention throughout the workspace is that every
//! *object* (node header or entry) begins with its own version byte in
//! logical space, so a fetch that starts at an object boundary always carries
//! enough version information to detect cross-line tearing.

use crate::addr::GlobalAddr;
use crate::verbs::Endpoint;

/// Payload bytes per 64-byte line (one byte is the version byte).
pub const LINE_PAYLOAD: usize = 63;
/// Physical line size.
pub const LINE: usize = 64;

/// Packs node-level and entry-level versions into one version byte.
#[inline]
pub fn pack_ver(nv: u8, ev: u8) -> u8 {
    (nv << 4) | (ev & 0x0F)
}

/// Extracts the node-level version (high nibble).
#[inline]
pub fn nv(b: u8) -> u8 {
    b >> 4
}

/// Extracts the entry-level version (low nibble).
#[inline]
pub fn ev(b: u8) -> u8 {
    b & 0x0F
}

/// Increments a 4-bit version, wrapping at 16.
#[inline]
pub fn bump(v: u8) -> u8 {
    (v + 1) & 0x0F
}

/// The versioned layout of one node: a payload of `payload_len` logical
/// bytes striped over 64-byte lines, followed by an 8-byte lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    payload_len: usize,
}

impl Layout {
    /// Creates a layout for `payload_len` logical bytes.
    pub fn new(payload_len: usize) -> Self {
        assert!(payload_len > 0);
        Layout { payload_len }
    }

    /// Logical payload length.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Number of 64-byte lines the payload occupies.
    #[inline]
    pub fn lines(&self) -> usize {
        self.payload_len.div_ceil(LINE_PAYLOAD)
    }

    /// Physical size of the versioned payload area.
    #[inline]
    pub fn versioned_size(&self) -> usize {
        self.lines() * LINE
    }

    /// Physical offset of the 8-byte lock word (8-aligned by construction).
    #[inline]
    pub fn lock_offset(&self) -> usize {
        self.versioned_size()
    }

    /// Total physical node size including the lock word.
    #[inline]
    pub fn node_size(&self) -> usize {
        self.versioned_size() + 8
    }

    /// Maps a logical payload offset to its physical offset in the node.
    #[inline]
    pub fn phys_of(&self, logical: usize) -> usize {
        debug_assert!(logical <= self.payload_len);
        (logical / LINE_PAYLOAD) * LINE + 1 + logical % LINE_PAYLOAD
    }

    /// Physical start of an access whose logical range begins at `lstart`.
    ///
    /// When `lstart` falls exactly on a line-payload boundary the access
    /// also covers that line's version byte (Sherman-style writes begin at
    /// the version byte), so the physical start is one byte earlier than
    /// `phys_of(lstart)`.
    #[inline]
    pub fn phys_start(&self, lstart: usize) -> usize {
        if lstart.is_multiple_of(LINE_PAYLOAD) {
            self.phys_of(lstart) - 1
        } else {
            self.phys_of(lstart)
        }
    }

    /// Fetches logical range `[lstart, lend)` with one READ.
    ///
    /// The physical fetch starts at [`Layout::phys_start`]`(lstart)` — by
    /// convention an object boundary carrying a version byte — and ends at
    /// `phys_of(lend - 1) + 1`.
    pub fn fetch(
        &self,
        ep: &mut Endpoint,
        node: GlobalAddr,
        lstart: usize,
        lend: usize,
    ) -> Fetched {
        assert!(lstart < lend && lend <= self.payload_len);
        let pstart = self.phys_start(lstart);
        let pend = self.phys_of(lend - 1) + 1;
        let mut buf = vec![0u8; pend - pstart];
        ep.read(node.add(pstart as u64), &mut buf);
        Fetched {
            layout: *self,
            lstart,
            lend,
            pstart,
            buf,
        }
    }

    /// Fetches two logical ranges with one doorbell batch (wrap-around case).
    pub fn fetch2(
        &self,
        ep: &mut Endpoint,
        node: GlobalAddr,
        r1: (usize, usize),
        r2: (usize, usize),
    ) -> (Fetched, Fetched) {
        let mk = |(ls, le): (usize, usize)| {
            assert!(ls < le && le <= self.payload_len);
            let ps = self.phys_start(ls);
            let pe = self.phys_of(le - 1) + 1;
            (ps, vec![0u8; pe - ps])
        };
        let (p1, mut b1) = mk(r1);
        let (p2, mut b2) = mk(r2);
        {
            let mut reqs = [
                (node.add(p1 as u64), &mut b1[..]),
                (node.add(p2 as u64), &mut b2[..]),
            ];
            ep.read_batch(&mut reqs);
        }
        (
            Fetched {
                layout: *self,
                lstart: r1.0,
                lend: r1.1,
                pstart: p1,
                buf: b1,
            },
            Fetched {
                layout: *self,
                lstart: r2.0,
                lend: r2.1,
                pstart: p2,
                buf: b2,
            },
        )
    }

    /// Wraps raw physical bytes (read by the caller, starting at
    /// [`Layout::phys_start`]`(lstart)`) into a [`Fetched`] view.
    pub fn from_raw(&self, lstart: usize, lend: usize, buf: Vec<u8>) -> Fetched {
        assert!(lstart < lend && lend <= self.payload_len);
        let pstart = self.phys_start(lstart);
        let pend = self.phys_of(lend - 1) + 1;
        assert_eq!(buf.len(), pend - pstart, "raw buffer size mismatch");
        Fetched {
            layout: *self,
            lstart,
            lend,
            pstart,
            buf,
        }
    }

    /// Fetches any number of logical ranges with one doorbell batch.
    pub fn fetch_many(
        &self,
        ep: &mut Endpoint,
        node: GlobalAddr,
        ranges: &[(usize, usize)],
    ) -> Vec<Fetched> {
        assert!(!ranges.is_empty());
        let mut bufs: Vec<(usize, Vec<u8>)> = ranges
            .iter()
            .map(|&(ls, le)| {
                assert!(ls < le && le <= self.payload_len);
                let ps = self.phys_start(ls);
                let pe = self.phys_of(le - 1) + 1;
                (ps, vec![0u8; pe - ps])
            })
            .collect();
        {
            let mut reqs: Vec<(GlobalAddr, &mut [u8])> = bufs
                .iter_mut()
                .map(|(ps, buf)| (node.add(*ps as u64), &mut buf[..]))
                .collect();
            ep.read_batch(&mut reqs);
        }
        bufs.into_iter()
            .zip(ranges.iter())
            .map(|((ps, buf), &(ls, le))| Fetched {
                layout: *self,
                lstart: ls,
                lend: le,
                pstart: ps,
                buf,
            })
            .collect()
    }

    /// Builds the physical image of logical range `[lstart, lend)`.
    ///
    /// `data` supplies the logical bytes; `line_ver` is called with the
    /// logical offset *following* each interleaved line-version slot and must
    /// return the version byte to store there.
    pub fn build_phys(
        &self,
        lstart: usize,
        data: &[u8],
        mut line_ver: impl FnMut(usize) -> u8,
    ) -> (usize, Vec<u8>) {
        let lend = lstart + data.len();
        assert!(lend <= self.payload_len);
        let pstart = self.phys_start(lstart);
        let pend = self.phys_of(lend - 1) + 1;
        let mut out = vec![0u8; pend - pstart];
        for (i, b) in out.iter_mut().enumerate() {
            let p = pstart + i;
            if p.is_multiple_of(LINE) {
                // The version slot guards the payload byte at logical
                // position (p / LINE) * LINE_PAYLOAD.
                *b = line_ver((p / LINE) * LINE_PAYLOAD);
            } else {
                let l = (p / LINE) * LINE_PAYLOAD + (p % LINE - 1);
                *b = data[l - lstart];
            }
        }
        (pstart, out)
    }

    /// Writes logical range `[lstart, lstart+data.len())` with one WRITE.
    ///
    /// See [`Layout::build_phys`] for the `line_ver` contract.
    pub fn write(
        &self,
        ep: &mut Endpoint,
        node: GlobalAddr,
        lstart: usize,
        data: &[u8],
        line_ver: impl FnMut(usize) -> u8,
    ) {
        let (pstart, img) = self.build_phys(lstart, data, line_ver);
        ep.write(node.add(pstart as u64), &img);
    }

    /// Logical offsets (following positions) of the line-version slots that
    /// fall strictly inside physical range of logical `[lstart, lend)`.
    pub fn line_ver_slots(&self, lstart: usize, lend: usize) -> Vec<usize> {
        let pstart = self.phys_start(lstart);
        let pend = self.phys_of(lend - 1) + 1;
        let mut v = Vec::new();
        for line in pstart / LINE..=(pend - 1) / LINE {
            let p = line * LINE;
            if p >= pstart && p < pend {
                v.push(line * LINE_PAYLOAD);
            }
        }
        v
    }
}

/// The result of a versioned fetch: raw physical bytes plus accessors.
pub struct Fetched {
    layout: Layout,
    lstart: usize,
    lend: usize,
    pstart: usize,
    buf: Vec<u8>,
}

impl Fetched {
    /// First logical offset covered.
    pub fn lstart(&self) -> usize {
        self.lstart
    }

    /// One past the last logical offset covered.
    pub fn lend(&self) -> usize {
        self.lend
    }

    /// Returns the logical byte at absolute logical offset `l`.
    #[inline]
    pub fn get(&self, l: usize) -> u8 {
        debug_assert!(l >= self.lstart && l < self.lend);
        self.buf[self.layout.phys_of(l) - self.pstart]
    }

    /// Copies `len` logical bytes starting at absolute logical offset `l`.
    pub fn copy(&self, l: usize, len: usize) -> Vec<u8> {
        (l..l + len).map(|i| self.get(i)).collect()
    }

    /// Reads a little-endian `u64` at absolute logical offset `l`.
    pub fn u64_at(&self, l: usize) -> u64 {
        let mut b = [0u8; 8];
        for (i, x) in b.iter_mut().enumerate() {
            *x = self.get(l + i);
        }
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u16` at absolute logical offset `l`.
    pub fn u16_at(&self, l: usize) -> u16 {
        u16::from_le_bytes([self.get(l), self.get(l + 1)])
    }

    /// Version bytes of the line slots inside logical `[a, b)` (both bounds
    /// absolute), i.e. the interleaved cache-line versions a reader must
    /// check for an object spanning that range.
    pub fn line_versions(&self, a: usize, b: usize) -> Vec<u8> {
        self.layout
            .line_ver_slots(a, b)
            .iter()
            .map(|&slot| {
                let p = (slot / LINE_PAYLOAD) * LINE;
                self.buf[p - self.pstart]
            })
            .collect()
    }

    /// Checks that every version byte in the fetch (line slots plus the
    /// object-leading bytes at `object_leads`, absolute logical offsets)
    /// agrees on NV. Returns that NV on success.
    pub fn check_nv(&self, object_leads: &[usize]) -> Option<u8> {
        let mut expect: Option<u8> = None;
        let mut probe = |b: u8| -> bool {
            let n = nv(b);
            match expect {
                None => {
                    expect = Some(n);
                    true
                }
                Some(e) => e == n,
            }
        };
        for b in self.line_versions(self.lstart, self.lend) {
            if !probe(b) {
                return None;
            }
        }
        for &l in object_leads {
            if !probe(self.get(l)) {
                return None;
            }
        }
        expect
    }

    /// Checks that the object spanning logical `[a, b)` with leading version
    /// byte at `a` is EV-consistent (no concurrent entry write observed).
    pub fn check_ev(&self, a: usize, b: usize) -> bool {
        let lead = ev(self.get(a));
        self.line_versions(a, b).iter().all(|&v| ev(v) == lead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Pool, RESERVED_BYTES};

    fn ep() -> Endpoint {
        Endpoint::new(Pool::with_defaults(1, 1 << 20))
    }

    #[test]
    fn nibble_ops() {
        let b = pack_ver(0xA, 0x5);
        assert_eq!(nv(b), 0xA);
        assert_eq!(ev(b), 0x5);
        assert_eq!(bump(0xF), 0);
        assert_eq!(bump(7), 8);
    }

    #[test]
    fn layout_geometry() {
        let l = Layout::new(63);
        assert_eq!(l.lines(), 1);
        assert_eq!(l.versioned_size(), 64);
        assert_eq!(l.lock_offset(), 64);
        assert_eq!(l.node_size(), 72);
        let l = Layout::new(64);
        assert_eq!(l.lines(), 2);
        assert_eq!(l.node_size(), 136);
    }

    #[test]
    fn phys_mapping_skips_version_bytes() {
        let l = Layout::new(200);
        assert_eq!(l.phys_of(0), 1);
        assert_eq!(l.phys_of(62), 63);
        assert_eq!(l.phys_of(63), 65); // next line, after its version byte
        assert_eq!(l.phys_of(126), 129);
    }

    #[test]
    fn write_then_fetch_roundtrip() {
        let mut e = ep();
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        let layout = Layout::new(300);
        let data: Vec<u8> = (0..200u8).collect();
        layout.write(&mut e, node, 40, &data, |_| pack_ver(3, 1));
        let f = layout.fetch(&mut e, node, 40, 240);
        assert_eq!(f.copy(40, 200), data);
        // All interleaved line versions must be what we wrote.
        for v in f.line_versions(40, 240) {
            assert_eq!(nv(v), 3);
            assert_eq!(ev(v), 1);
        }
    }

    #[test]
    fn u64_and_u16_accessors() {
        let mut e = ep();
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        let layout = Layout::new(300);
        let mut data = vec![0u8; 100];
        data[58..66].copy_from_slice(&0xDEAD_BEEF_1234_5678u64.to_le_bytes());
        data[0..2].copy_from_slice(&0xABCDu16.to_le_bytes());
        layout.write(&mut e, node, 0, &data, |_| 0);
        let f = layout.fetch(&mut e, node, 0, 100);
        assert_eq!(f.u64_at(58), 0xDEAD_BEEF_1234_5678); // straddles a line
        assert_eq!(f.u16_at(0), 0xABCD);
    }

    #[test]
    fn nv_check_detects_mixed_versions() {
        let mut e = ep();
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        let layout = Layout::new(300);
        let data = vec![7u8; 150];
        layout.write(&mut e, node, 0, &data, |_| pack_ver(2, 0));
        // Overwrite the second line only, with a different NV.
        layout.write(&mut e, node, 63, &[7u8; 63], |_| pack_ver(3, 0));
        let f = layout.fetch(&mut e, node, 0, 150);
        assert_eq!(f.check_nv(&[]), None);
        // A fetch confined to the second line is self-consistent.
        let f2 = layout.fetch(&mut e, node, 63, 126);
        assert_eq!(f2.check_nv(&[]), Some(3));
    }

    #[test]
    fn ev_check_detects_partial_entry_write() {
        let mut e = ep();
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        let layout = Layout::new(300);
        // An "entry" spanning logical [50, 90): leading version byte at 50,
        // one interleaved line version slot at logical 63.
        let mut entry = vec![1u8; 40];
        entry[0] = pack_ver(0, 4);
        layout.write(&mut e, node, 50, &entry, |_| pack_ver(0, 4));
        let f = layout.fetch(&mut e, node, 50, 90);
        assert!(f.check_ev(50, 90));
        // Simulate a torn write: the line version got bumped but the lead
        // byte has not (reader raced the writer).
        layout.write(&mut e, node, 63, &[1u8], |_| pack_ver(0, 5));
        let f = layout.fetch(&mut e, node, 50, 90);
        assert!(!f.check_ev(50, 90));
    }

    #[test]
    fn line_ver_slots_positions() {
        let layout = Layout::new(300);
        // A range starting on a line-payload boundary owns that line's slot.
        assert_eq!(layout.line_ver_slots(0, 63), vec![0]);
        // Range [0, 64) crosses into line 1: also the slot guarding 63.
        assert_eq!(layout.line_ver_slots(0, 64), vec![0, 63]);
        // A mid-line start does not own the slot before it.
        assert_eq!(layout.line_ver_slots(50, 130), vec![63, 126]);
    }

    #[test]
    fn fetch2_doorbell() {
        let mut e = ep();
        let node = GlobalAddr::new(0, RESERVED_BYTES);
        let layout = Layout::new(300);
        layout.write(&mut e, node, 0, &[9u8; 20], |_| 0);
        layout.write(&mut e, node, 200, &[8u8; 20], |_| 0);
        let before = e.stats().rtts;
        let (f1, f2) = layout.fetch2(&mut e, node, (0, 20), (200, 220));
        assert_eq!(e.stats().rtts, before + 1);
        assert_eq!(f1.copy(0, 20), vec![9u8; 20]);
        assert_eq!(f2.copy(200, 20), vec![8u8; 20]);
    }
}
