//! Client-side chunk allocation.
//!
//! Like CHIME (§4.2.2), every client grabs a 16 MB chunk from a memory node
//! via RPC and bump-allocates node memory from it locally; a new chunk is
//! requested only when the current one is exhausted. Chunks are spread over
//! memory nodes round-robin.

use crate::addr::GlobalAddr;
use crate::verbs::Endpoint;

/// Default chunk size requested from memory nodes (16 MB, as in the paper).
pub const CHUNK_SIZE: u64 = 16 << 20;

/// Chunk size used by index clients in the scaled-down simulation: with
/// hundreds of simulated clients sharing a few GB of pool, the paper's
/// 16 MB chunks would exhaust memory on reservation alone. 1 MB preserves
/// the amortization behaviour (hundreds of nodes per RPC).
pub const SIM_CHUNK_SIZE: u64 = 1 << 20;

/// Error returned when the memory pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "memory pool exhausted")
    }
}

impl std::error::Error for OutOfMemory {}

/// A per-client bump allocator over RPC-fetched chunks.
pub struct ChunkAlloc {
    chunk: GlobalAddr,
    used: u64,
    cap: u64,
    chunk_size: u64,
    next_mn: u16,
    pinned: bool,
}

impl ChunkAlloc {
    /// Creates an allocator that requests `chunk_size`-byte chunks,
    /// round-robining over memory nodes starting at `first_mn`.
    pub fn new(chunk_size: u64, first_mn: u16) -> Self {
        ChunkAlloc {
            chunk: GlobalAddr::NULL,
            used: 0,
            cap: 0,
            chunk_size,
            next_mn: first_mn,
            pinned: false,
        }
    }

    /// Creates an allocator pinned to a single memory node: every chunk is
    /// requested from `mn`, and exhaustion of that MN is `OutOfMemory`
    /// rather than a spill onto a neighbour. Partitioned deployments use
    /// this to keep a partition's nodes physically on its home MN.
    pub fn pinned(chunk_size: u64, mn: u16) -> Self {
        ChunkAlloc {
            chunk: GlobalAddr::NULL,
            used: 0,
            cap: 0,
            chunk_size,
            next_mn: mn,
            pinned: true,
        }
    }

    /// Retargets a pinned allocator to a new home MN, abandoning the tail
    /// of the current chunk so the next allocation lands on `mn`. No-op on
    /// round-robin allocators and on an already-matching pin.
    pub fn retarget(&mut self, mn: u16) {
        if self.pinned && self.next_mn != mn {
            self.chunk = GlobalAddr::NULL;
            self.used = 0;
            self.cap = 0;
            self.next_mn = mn;
        }
    }

    /// The MN this allocator is pinned to, if any.
    pub fn pinned_mn(&self) -> Option<u16> {
        self.pinned.then_some(self.next_mn)
    }

    /// Creates an allocator with the paper's 16 MB chunk size.
    pub fn with_defaults() -> Self {
        Self::new(CHUNK_SIZE, 0)
    }

    /// Creates an allocator with the simulation-scaled chunk size.
    pub fn sim_scaled() -> Self {
        Self::new(SIM_CHUNK_SIZE, 0)
    }

    /// Allocates `size` bytes (64-byte aligned) of remote memory.
    pub fn alloc(&mut self, ep: &mut Endpoint, size: u64) -> Result<GlobalAddr, OutOfMemory> {
        let size = size.div_ceil(64) * 64;
        assert!(size <= self.chunk_size, "allocation larger than chunk");
        if self.used + size > self.cap {
            let num_mns = ep.pool().num_mns();
            // Try every MN once before giving up; a pinned allocator only
            // ever asks its home MN.
            let tries = if self.pinned { 1 } else { num_mns };
            let mut got = None;
            for _ in 0..tries {
                let mn = self.next_mn % num_mns;
                if !self.pinned {
                    self.next_mn = self.next_mn.wrapping_add(1);
                }
                if let Some(c) = ep.alloc_rpc(mn, self.chunk_size) {
                    got = Some(c);
                    break;
                }
            }
            let c = got.ok_or(OutOfMemory)?;
            self.chunk = c;
            self.used = 0;
            self.cap = self.chunk_size;
        }
        let addr = self.chunk.add(self.used);
        self.used += size;
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Pool;

    #[test]
    fn bump_allocation_within_chunk() {
        let pool = Pool::with_defaults(1, 64 << 20);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::new(1 << 20, 0);
        let x = a.alloc(&mut ep, 100).unwrap();
        let y = a.alloc(&mut ep, 100).unwrap();
        assert_eq!(y.offset() - x.offset(), 128);
        assert_eq!(ep.stats().rpcs, 1, "second alloc reuses the chunk");
    }

    #[test]
    fn new_chunk_when_exhausted() {
        let pool = Pool::with_defaults(1, 64 << 20);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::new(4096, 0);
        let _ = a.alloc(&mut ep, 4096).unwrap();
        let _ = a.alloc(&mut ep, 64).unwrap();
        assert_eq!(ep.stats().rpcs, 2);
    }

    #[test]
    fn round_robin_over_mns() {
        let pool = Pool::with_defaults(4, 64 << 20);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::new(4096, 0);
        let mut mns = std::collections::HashSet::new();
        for _ in 0..4 {
            mns.insert(a.alloc(&mut ep, 4096).unwrap().mn());
        }
        assert_eq!(mns.len(), 4);
    }

    #[test]
    fn pinned_allocator_stays_on_home_mn() {
        let pool = Pool::with_defaults(4, 64 << 20);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::pinned(4096, 2);
        for _ in 0..4 {
            assert_eq!(a.alloc(&mut ep, 4096).unwrap().mn(), 2);
        }
        assert_eq!(a.pinned_mn(), Some(2));
        a.retarget(3);
        assert_eq!(a.alloc(&mut ep, 64).unwrap().mn(), 3);
    }

    #[test]
    fn pinned_allocator_does_not_spill() {
        // MN 0 has room for exactly one chunk (region reserves space too);
        // a pinned allocator must report OutOfMemory instead of spilling
        // onto MN 1.
        let pool = Pool::with_defaults(2, 8192 + 4096);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::pinned(8192, 0);
        assert!(a.alloc(&mut ep, 64).is_ok());
        assert_eq!(a.alloc(&mut ep, 8192), Err(OutOfMemory));
    }

    #[test]
    fn out_of_memory_reported() {
        let pool = Pool::with_defaults(1, 8192 + 4096);
        let mut ep = Endpoint::new(pool);
        let mut a = ChunkAlloc::new(8192, 0);
        assert!(a.alloc(&mut ep, 64).is_ok());
        assert_eq!(a.alloc(&mut ep, 8192), Err(OutOfMemory));
    }
}
