//! Deterministic fault injection at the verb boundary.
//!
//! A [`FaultPlan`] scripts adversarial behaviour for a group of endpoints:
//! latency spikes, torn multi-line writes (the doorbell batch stalls after N
//! cache lines and heals later — or never), spuriously failed or duplicated
//! atomic completions, and labeled *crash points* that kill a simulated
//! compute node mid-operation (including while it holds a leaf lock word).
//!
//! Determinism is the core contract: every decision is drawn from a
//! per-client xorshift generator seeded from `plan.seed` and the client id,
//! keyed to per-client verb sequence numbers. Replaying the same plan against
//! the same (single-threaded) schedule reproduces the identical
//! [`FaultEvent`] trace, which is what lets a chaos harness print a failing
//! seed and have it reproduce exactly.
//!
//! The engine is wired into [`crate::verbs::Endpoint`]: endpoints created
//! with [`crate::verbs::Endpoint::with_faults`] consult the shared
//! [`FaultSession`] on every verb and at every labeled
//! [`crate::verbs::Endpoint::crash_point`].

use std::sync::Mutex;

use crate::addr::GlobalAddr;

/// Verb classes a [`FaultRule`] can match on.
///
/// Doorbell batches are classified by their element verb (a batched read is
/// [`VerbKind::Read`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbKind {
    /// One-sided READ (single or doorbell-batched).
    Read,
    /// One-sided WRITE (single or doorbell-batched).
    Write,
    /// 8-byte compare-and-swap.
    Cas,
    /// Masked compare-and-swap (ConnectX extended atomic).
    MaskedCas,
    /// Fetch-and-add.
    Faa,
    /// Allocation RPC.
    Alloc,
}

/// What a fired [`FaultRule`] does to the verb it hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Adds `ns` of virtual latency to the verb.
    Delay {
        /// Extra nanoseconds charged to the endpoint's virtual clock.
        ns: u64,
    },
    /// Tears a WRITE: only the first `lines` 64-byte cache lines of the
    /// payload reach memory now. With `heal_after = Some(n)` the remainder
    /// lands after the client issues `n` more verbs (a stalled doorbell that
    /// eventually drains); with `None` it never lands (the client must be
    /// about to die for this to be sound).
    TornWrite {
        /// Cache lines that complete immediately.
        lines: usize,
        /// Verbs after which the rest completes; `None` = never.
        heal_after: Option<u64>,
    },
    /// The atomic's completion is dropped: the compare-and-swap does not
    /// execute and the returned "old value" is made to conflict with the
    /// compare, so the caller observes a clean spurious failure and retries.
    FailCas,
    /// The atomic executes twice (a retransmitted completion). Idempotent
    /// for CAS (the second application fails); visible for FAA.
    DuplicateAtomic,
    /// The client panics with [`CrashSignal`] before the verb executes.
    Crash,
}

impl FaultAction {
    fn kind_name(&self) -> &'static str {
        match self {
            FaultAction::Delay { .. } => "delay",
            FaultAction::TornWrite { .. } => "torn-write",
            FaultAction::FailCas => "fail-cas",
            FaultAction::DuplicateAtomic => "duplicate-atomic",
            FaultAction::Crash => "crash",
        }
    }
}

/// A scripted fault: *when* (verb/client/sequence window, probability) and
/// *what* ([`FaultAction`]).
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Name echoed in the trace; pick something grep-able.
    pub label: String,
    /// Verb class to match; `None` matches every verb.
    pub verb: Option<VerbKind>,
    /// Client to match; `None` matches every client.
    pub client: Option<u32>,
    /// Probability the rule fires on a matching verb (1.0 = always).
    pub probability: f64,
    /// The rule only arms once the client's verb sequence reaches this.
    pub after_seq: u64,
    /// Maximum number of times the rule fires across the session.
    pub max_fires: u64,
    /// The injected behaviour.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule that always fires on every matching verb, with no budget.
    pub fn always(label: impl Into<String>, verb: Option<VerbKind>, action: FaultAction) -> Self {
        FaultRule {
            label: label.into(),
            verb,
            client: None,
            probability: 1.0,
            after_seq: 0,
            max_fires: u64::MAX,
            action,
        }
    }
}

/// A deterministic crash at a labeled code location.
///
/// Crash points are semantic positions inside `core` operations (e.g.
/// `"leaf.lock.acquired"`, hit right after a leaf lock word is taken), so a
/// plan can kill a client at a *protocol* state rather than a verb count.
#[derive(Debug, Clone)]
pub struct CrashRule {
    /// Label passed to [`crate::verbs::Endpoint::crash_point`].
    pub label: String,
    /// Client to kill; `None` matches every client.
    pub client: Option<u32>,
    /// The crash fires on the N-th matching hit (1-based) of this label by
    /// this client.
    pub at_hit: u64,
}

/// A complete, seedable fault script shared by all endpoints of a session.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision in the session.
    pub seed: u64,
    /// Probabilistic verb-level rules.
    pub rules: Vec<FaultRule>,
    /// Deterministic labeled crash points.
    pub crashes: Vec<CrashRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed (useful as a builder base).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }
}

/// Payload carried by the panic that kills a crashed client.
///
/// Harnesses catch it with `std::panic::catch_unwind` and downcast to tell a
/// scripted crash from a genuine test failure.
#[derive(Debug, Clone)]
pub struct CrashSignal {
    /// The client that died.
    pub client: u32,
    /// The crash-point label (or rule label for verb-level crashes).
    pub label: String,
}

/// One injected fault, as recorded in the session trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Client the fault was injected into.
    pub client: u32,
    /// That client's verb sequence number (crash points reuse the current
    /// verb sequence without advancing it).
    pub seq: u64,
    /// Short action name (`delay`, `torn-write`, `fail-cas`,
    /// `duplicate-atomic`, `crash`).
    pub action: &'static str,
    /// Label of the rule or crash point that fired.
    pub label: String,
    /// Packed target address of the verb (0 for crash points).
    pub addr: u64,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "client={} seq={} {} [{}] addr={:#x}",
            self.client, self.seq, self.action, self.label, self.addr
        )
    }
}

#[derive(Default)]
struct SessionState {
    trace: Vec<FaultEvent>,
    rule_fires: Vec<u64>,
}

/// Shared state of one fault-injected run: the plan plus the cross-client
/// event trace and per-rule fire budgets.
pub struct FaultSession {
    plan: FaultPlan,
    state: Mutex<SessionState>,
}

impl FaultSession {
    /// Creates a session for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fires = vec![0u64; plan.rules.len()];
        FaultSession {
            plan,
            state: Mutex::new(SessionState {
                trace: Vec::new(),
                rule_fires: fires,
            }),
        }
    }

    /// Returns the plan this session executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Returns a copy of the fault trace so far, in injection order.
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.state.lock().unwrap().trace.clone()
    }

    /// Formats the trace one event per line (for failure reports).
    pub fn trace_report(&self) -> String {
        let st = self.state.lock().unwrap();
        let mut out = String::new();
        for ev in &st.trace {
            out.push_str(&format!("{ev}\n"));
        }
        out
    }

    fn record(&self, ev: FaultEvent) {
        self.state.lock().unwrap().trace.push(ev);
    }

    /// Attempts to consume one fire of rule `idx`; false when the budget is
    /// exhausted.
    fn try_consume_fire(&self, idx: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.rule_fires[idx] >= self.plan.rules[idx].max_fires {
            return false;
        }
        st.rule_fires[idx] += 1;
        true
    }
}

/// Faults resolved for one verb, applied by the endpoint.
#[derive(Debug, Default)]
pub(crate) struct VerbFaults {
    /// Extra virtual latency to charge.
    pub delay_ns: u64,
    /// `(lines, heal_after)` of a torn write, if one fired.
    pub torn: Option<(usize, Option<u64>)>,
    /// Fail the atomic with a conflicting old value.
    pub fail_cas: bool,
    /// Apply the atomic twice.
    pub duplicate: bool,
    /// Number of faults injected (for stats).
    pub injected: u64,
    /// `(action, label)` of each fired rule, for the endpoint's tracer.
    /// Crash rules never appear here — they unwind out of `on_verb`
    /// (the session trace still records them).
    pub fired: Vec<(&'static str, String)>,
}

/// A write that tore and is scheduled to complete later.
struct PendingHeal {
    due_seq: u64,
    addr: GlobalAddr,
    bytes: Vec<u8>,
}

/// Per-endpoint fault state: deterministic RNG, verb sequence, pending heals
/// and per-crash-point hit counts.
pub(crate) struct FaultClient {
    session: std::sync::Arc<FaultSession>,
    client: u32,
    rng: u64,
    verb_seq: u64,
    heals: Vec<PendingHeal>,
    crash_hits: Vec<u64>,
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultClient {
    pub(crate) fn new(session: std::sync::Arc<FaultSession>, client: u32) -> Self {
        let rng = mix64(session.plan.seed ^ mix64(client as u64 + 1));
        let crash_hits = vec![0u64; session.plan.crashes.len()];
        FaultClient {
            session,
            client,
            rng: if rng == 0 { 1 } else { rng },
            verb_seq: 0,
            heals: Vec::new(),
            crash_hits,
        }
    }

    pub(crate) fn session(&self) -> &std::sync::Arc<FaultSession> {
        &self.session
    }

    pub(crate) fn client_id(&self) -> u32 {
        self.client
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*; the state is never zero.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Advances the verb sequence, drains due heals, and resolves which
    /// rules fire on this verb. Panics with [`CrashSignal`] if a crash rule
    /// fires.
    pub(crate) fn on_verb(&mut self, kind: VerbKind, addr: u64) -> (VerbFaults, Vec<PendingWrite>) {
        self.verb_seq += 1;
        let seq = self.verb_seq;
        let due: Vec<PendingWrite> = {
            let mut out = Vec::new();
            let mut i = 0;
            while i < self.heals.len() {
                if self.heals[i].due_seq <= seq {
                    let h = self.heals.swap_remove(i);
                    out.push(PendingWrite {
                        addr: h.addr,
                        bytes: h.bytes,
                    });
                } else {
                    i += 1;
                }
            }
            out
        };

        let mut faults = VerbFaults::default();
        let n_rules = self.session.plan.rules.len();
        for idx in 0..n_rules {
            let rule = &self.session.plan.rules[idx];
            if let Some(v) = rule.verb {
                if v != kind {
                    continue;
                }
            }
            if let Some(c) = rule.client {
                if c != self.client {
                    continue;
                }
            }
            if seq < rule.after_seq {
                continue;
            }
            let probability = rule.probability;
            // The draw is a function of (seed, client, verb history) alone —
            // budgets are part of the plan, so consuming the draw only for
            // armed rules is still deterministic.
            let fire = probability >= 1.0 || self.next_unit() < probability;
            if !fire || !self.session.try_consume_fire(idx) {
                continue;
            }
            let action = self.session.plan.rules[idx].action.clone();
            let label = self.session.plan.rules[idx].label.clone();
            self.session.record(FaultEvent {
                client: self.client,
                seq,
                action: action.kind_name(),
                label: label.clone(),
                addr,
            });
            faults.injected += 1;
            faults.fired.push((action.kind_name(), label.clone()));
            match action {
                FaultAction::Delay { ns } => faults.delay_ns += ns,
                FaultAction::TornWrite { lines, heal_after } => {
                    faults.torn = Some((lines, heal_after));
                }
                FaultAction::FailCas => faults.fail_cas = true,
                FaultAction::DuplicateAtomic => faults.duplicate = true,
                FaultAction::Crash => {
                    std::panic::panic_any(CrashSignal {
                        client: self.client,
                        label,
                    });
                }
            }
        }
        (faults, due)
    }

    /// Schedules the torn-off remainder of a write to land `after` verbs
    /// from now.
    pub(crate) fn schedule_heal(&mut self, addr: GlobalAddr, bytes: Vec<u8>, after: u64) {
        self.heals.push(PendingHeal {
            due_seq: self.verb_seq + after.max(1),
            addr,
            bytes,
        });
    }

    /// Hit a labeled crash point; panics with [`CrashSignal`] when a crash
    /// rule's hit count is reached.
    pub(crate) fn on_crash_point(&mut self, label: &str) {
        let n = self.session.plan.crashes.len();
        for idx in 0..n {
            let rule = &self.session.plan.crashes[idx];
            if rule.label != label {
                continue;
            }
            if let Some(c) = rule.client {
                if c != self.client {
                    continue;
                }
            }
            self.crash_hits[idx] += 1;
            if self.crash_hits[idx] == rule.at_hit {
                self.session.record(FaultEvent {
                    client: self.client,
                    seq: self.verb_seq,
                    action: "crash",
                    label: label.to_string(),
                    addr: 0,
                });
                std::panic::panic_any(CrashSignal {
                    client: self.client,
                    label: label.to_string(),
                });
            }
        }
    }
}

/// A deferred write produced by a healing torn write.
pub(crate) struct PendingWrite {
    pub addr: GlobalAddr,
    pub bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn plan_with_rule(rule: FaultRule) -> Arc<FaultSession> {
        Arc::new(FaultSession::new(FaultPlan {
            seed: 42,
            rules: vec![rule],
            crashes: vec![],
        }))
    }

    #[test]
    fn deterministic_decisions_by_seed() {
        let mk = || {
            plan_with_rule(FaultRule {
                label: "p50-delay".into(),
                verb: Some(VerbKind::Read),
                client: None,
                probability: 0.5,
                after_seq: 0,
                max_fires: u64::MAX,
                action: FaultAction::Delay { ns: 100 },
            })
        };
        let run = |s: Arc<FaultSession>| {
            let mut c = FaultClient::new(Arc::clone(&s), 3);
            let mut fired = Vec::new();
            for i in 0..200 {
                let (f, _) = c.on_verb(VerbKind::Read, i);
                fired.push(f.injected);
            }
            fired
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a, b);
        assert!(a.iter().sum::<u64>() > 50, "p=0.5 should fire often");
        assert!(a.iter().sum::<u64>() < 150);
    }

    #[test]
    fn rule_filters_by_verb_client_seq_and_budget() {
        let s = plan_with_rule(FaultRule {
            label: "one-shot".into(),
            verb: Some(VerbKind::Cas),
            client: Some(7),
            probability: 1.0,
            after_seq: 3,
            max_fires: 1,
            action: FaultAction::FailCas,
        });
        let mut other = FaultClient::new(Arc::clone(&s), 1);
        assert_eq!(other.on_verb(VerbKind::Cas, 0).0.injected, 0);

        let mut c = FaultClient::new(Arc::clone(&s), 7);
        assert_eq!(c.on_verb(VerbKind::Cas, 0).0.injected, 0); // seq 1 < 3
        assert_eq!(c.on_verb(VerbKind::Read, 0).0.injected, 0); // wrong verb
        assert!(c.on_verb(VerbKind::Cas, 0).0.fail_cas); // seq 3 >= 3: fires
        let trace = s.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "one-shot");
        assert_eq!(trace[0].seq, 3);
        // Budget exhausted: never fires again.
        for _ in 0..10 {
            assert_eq!(c.on_verb(VerbKind::Cas, 0).0.injected, 0);
        }
    }

    #[test]
    fn torn_write_heals_on_schedule() {
        let s = plan_with_rule(FaultRule::always(
            "tear",
            Some(VerbKind::Write),
            FaultAction::TornWrite {
                lines: 1,
                heal_after: Some(2),
            },
        ));
        let mut c = FaultClient::new(Arc::clone(&s), 0);
        let (f, due) = c.on_verb(VerbKind::Write, 0x100);
        assert!(due.is_empty());
        assert_eq!(f.torn, Some((1, Some(2))));
        c.schedule_heal(GlobalAddr::new(0, 0x140), vec![1, 2, 3], 2);
        let (_, due) = c.on_verb(VerbKind::Read, 0);
        assert!(due.is_empty(), "heal not due yet");
        let (_, due) = c.on_verb(VerbKind::Read, 0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].bytes, vec![1, 2, 3]);
    }

    #[test]
    fn crash_point_fires_on_nth_hit() {
        let s = Arc::new(FaultSession::new(FaultPlan {
            seed: 1,
            rules: vec![],
            crashes: vec![CrashRule {
                label: "leaf.lock.acquired".into(),
                client: Some(2),
                at_hit: 2,
            }],
        }));
        let mut c = FaultClient::new(Arc::clone(&s), 2);
        c.on_crash_point("leaf.lock.acquired"); // hit 1: survives
        c.on_crash_point("other.label"); // no match
        let mut c_moved = c;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            c_moved.on_crash_point("leaf.lock.acquired"); // hit 2: dies
        }));
        let payload = r.unwrap_err();
        let sig = payload.downcast_ref::<CrashSignal>().expect("CrashSignal");
        assert_eq!(sig.client, 2);
        assert_eq!(sig.label, "leaf.lock.acquired");
        let trace = s.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].action, "crash");
    }

}
