//! Crash-injected migration chaos: a migrator dies at each protocol crash
//! point with point operations still flowing, recovery replays the journal
//! to a consistent state, and the whole schedule — fault trace included —
//! is a pure function of the seed.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use chime::ChimeConfig;
use dmem::{CrashRule, CrashSignal, Endpoint, FaultEvent, FaultPlan, FaultSession, Pool, RangeIndex};
use part::{
    migrate, Cluster, ClusterConfig, RecoveryOutcome, CRASH_MIGRATE_COPIED, CRASH_MIGRATE_DONE,
    CRASH_MIGRATE_LOCKED, CRASH_MIGRATE_SWITCHED,
};

/// Fault-engine client id of the migrator's control endpoint.
const MIG_CLIENT: u32 = 7;
const PARTS: usize = 4;

/// xorshift64* scheduler RNG, independent of the fault engine's streams.
struct SchedRng(u64);

impl SchedRng {
    fn new(seed: u64) -> Self {
        SchedRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn quiet_crash_signals() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                default(info);
            }
        }));
    });
}

fn chaos_cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        parts: PARTS,
        chime: ChimeConfig {
            span: 16,
            internal_span: 8,
            neighborhood: 4,
            cache_bytes: 1 << 18,
            hotspot_bytes: 1 << 14,
            ..Default::default()
        },
        check_every: 4,
        migrate: None,
    }
}

/// Key `i` of partition `p` (partitions are even u64 ranges).
fn pkey(p: usize, i: u64) -> u64 {
    (u64::MAX / PARTS as u64) * p as u64 + 1 + 13 * i
}

fn val(key: u64, step: u64) -> Vec<u8> {
    (key ^ (step << 40)).to_le_bytes().to_vec()
}

struct RunResult {
    items: Vec<(u64, Vec<u8>)>,
    trace: Vec<FaultEvent>,
    outcome: RecoveryOutcome,
    crashed: bool,
    clock: u64,
}

/// One deterministic crash-and-recover schedule: preload, start a
/// migration of partition 0 → MN 1 that dies at `plan`'s crash point,
/// run in-flight point ops against the half-migrated partition (reads
/// chase forwarding tombstones; writes go to other partitions — an
/// insert into the migrating range would spin on the not-yet-switched
/// root, which is the documented non-follow policy), then recover and
/// audit everything against the oracle.
fn run(seed: u64, plan: FaultPlan) -> RunResult {
    quiet_crash_signals();
    let pool = Pool::with_defaults(2, 256 << 20);
    let cluster = Cluster::create(&pool, chaos_cluster_cfg());
    let session = Arc::new(FaultSession::new(plan));
    let cn = cluster.new_cn();
    let mut c = cluster.client(&cn);
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    // Dense partition 0 (several leaves to migrate), sparse elsewhere.
    for i in 0..40 {
        let k = pkey(0, i);
        c.insert(k, &val(k, 0)).unwrap();
        oracle.insert(k, val(k, 0));
    }
    for p in 1..PARTS {
        for i in 0..8 {
            let k = pkey(p, i);
            c.insert(k, &val(k, 0)).unwrap();
            oracle.insert(k, val(k, 0));
        }
    }

    // The migrator: its control endpoint carries the crash rules.
    let mig_cn = cluster.new_cn();
    let mut src = cluster.tree(0).client(&mig_cn.states()[0]);
    let mut ctl = Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), MIG_CLIENT);
    let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
        migrate::migrate(&cluster, 0, 1, &mut ctl, &mut src).unwrap()
    }));
    let crashed = match attempt {
        Ok(_) => false,
        Err(payload) => match payload.downcast_ref::<CrashSignal>() {
            Some(sig) => {
                assert_eq!(sig.client, MIG_CLIENT, "crash killed the wrong client");
                true
            }
            None => panic::resume_unwind(payload),
        },
    };

    // In-flight ops against the crashed (or completed) migration state.
    let mut rng = SchedRng::new(seed);
    for step in 1..=120u64 {
        match rng.below(10) {
            0..=4 => {
                // Read anywhere — including the half-migrated partition,
                // where moved leaves forward and unmoved ones still serve.
                let k = pkey(
                    rng.below(PARTS as u64) as usize,
                    rng.below(40),
                );
                let got = c.search(k);
                let expect = oracle.get(&k).cloned();
                assert_eq!(got, expect, "in-flight search({k}) diverged");
            }
            5..=7 => {
                let k = pkey(1 + rng.below(PARTS as u64 - 1) as usize, rng.below(12));
                c.insert(k, &val(k, step)).unwrap();
                oracle.insert(k, val(k, step));
            }
            _ => {
                let k = pkey(1 + rng.below(PARTS as u64 - 1) as usize, rng.below(12));
                let did = c.delete(k).unwrap();
                assert_eq!(did, oracle.remove(&k).is_some(), "delete({k}) diverged");
            }
        }
    }

    // Recover on a fresh, fault-free control endpoint.
    let mut rec_ctl = Endpoint::new(Arc::clone(&pool));
    let mut rec_src = cluster.tree(0).client(&mig_cn.states()[0]);
    let outcome = migrate::recover(&cluster, &mut rec_ctl, &mut rec_src);

    // Full audit: every key, the migrated partition writable again, and a
    // cross-partition scan in key order.
    for (&k, v) in &oracle {
        assert_eq!(c.search(k).as_ref(), Some(v), "post-recovery search({k})");
    }
    let fresh = pkey(0, 100);
    c.insert(fresh, &val(fresh, 999)).unwrap();
    oracle.insert(fresh, val(fresh, 999));
    assert_eq!(c.search(fresh), Some(val(fresh, 999)));
    let mut scanned = Vec::new();
    c.scan(1, oracle.len() + 8, &mut scanned);
    let expect: Vec<(u64, Vec<u8>)> = oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(scanned, expect, "post-recovery scan diverged from oracle");

    RunResult {
        items: oracle.into_iter().collect(),
        trace: session.trace(),
        outcome,
        crashed,
        clock: c.clock_ns(),
    }
}

fn crash_plan(label: &str, at_hit: u64) -> FaultPlan {
    let mut p = FaultPlan::seeded(0xCAB0 ^ at_hit);
    p.crashes.push(CrashRule {
        label: label.to_string(),
        client: Some(MIG_CLIENT),
        at_hit,
    });
    p
}

fn assert_replays(seed: u64, mk: impl Fn() -> FaultPlan) -> RunResult {
    let a = run(seed, mk());
    let b = run(seed, mk());
    assert_eq!(a.trace, b.trace, "same seed must replay the same trace");
    assert_eq!(a.items, b.items);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.clock, b.clock, "virtual time must replay byte-identically");
    a
}

#[test]
fn crash_after_lock_unlocks_and_aborts_nothing() {
    let a = assert_replays(11, || crash_plan(CRASH_MIGRATE_LOCKED, 1));
    assert!(a.crashed);
    assert_eq!(a.outcome, RecoveryOutcome::Unlocked);
}

#[test]
fn crash_mid_copy_rolls_forward() {
    // Die after the second leaf move: part of partition 0 is tombstoned
    // and forwarding, the rest still serves from the old tree.
    let a = assert_replays(22, || crash_plan(CRASH_MIGRATE_COPIED, 2));
    assert!(a.crashed);
    assert_eq!(a.outcome, RecoveryOutcome::RolledForward);
    assert!(
        a.trace
            .iter()
            .any(|e| e.action == "crash" && e.label == CRASH_MIGRATE_COPIED),
        "crash must appear in the fault trace"
    );
}

#[test]
fn crash_after_switch_finishes_the_publish() {
    let a = assert_replays(33, || crash_plan(CRASH_MIGRATE_SWITCHED, 1));
    assert!(a.crashed);
    assert_eq!(a.outcome, RecoveryOutcome::Finished);
}

#[test]
fn crash_after_publish_only_releases_the_lock() {
    let a = assert_replays(44, || crash_plan(CRASH_MIGRATE_DONE, 1));
    assert!(a.crashed);
    assert_eq!(a.outcome, RecoveryOutcome::Unlocked);
}

#[test]
fn fault_free_migration_is_the_control() {
    let a = assert_replays(55, || FaultPlan::seeded(0));
    assert!(!a.crashed);
    assert_eq!(a.outcome, RecoveryOutcome::Clean);
    assert!(a.trace.is_empty());
}
