//! Router integration: routed CRUD against an oracle, cross-partition
//! scans, home-pinned allocation, live migration with routing-epoch
//! refresh, and determinism — serial and under the coroutine engine with
//! a [`sched::LaneGate`] guarding the migrator.

use std::collections::BTreeMap;
use std::sync::Arc;

use chime::ChimeConfig;
use dmem::{Endpoint, Pool, RangeIndex};
use part::{layout, migrate, Cluster, ClusterConfig, MigrateConfig, RecoveryOutcome};
use sched::{Engine, EngineConfig, LaneBody, LaneGate};

fn small_chime() -> ChimeConfig {
    ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        value_size: 8,
        cache_bytes: 1 << 18,
        hotspot_bytes: 1 << 14,
        ..Default::default()
    }
}

fn cfg(parts: usize) -> ClusterConfig {
    ClusterConfig {
        parts,
        chime: small_chime(),
        check_every: 8,
        migrate: None,
    }
}

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

/// `n` keys spread over all partitions of a `parts`-way map.
fn spread_keys(parts: usize, n: usize) -> Vec<u64> {
    let stride = u64::MAX / parts as u64;
    (0..n)
        .map(|i| (i % parts) as u64 * stride + 1 + 17 * (i / parts) as u64)
        .collect()
}

#[test]
fn routed_crud_matches_oracle_across_partitions() {
    let pool = Pool::with_defaults(2, 256 << 20);
    let cluster = Cluster::create(&pool, cfg(4));
    let cn = cluster.new_cn();
    let mut c = cluster.client(&cn);
    let mut oracle = BTreeMap::new();
    for k in spread_keys(4, 64) {
        c.insert(k, &v(k)).unwrap();
        oracle.insert(k, v(k));
    }
    for (i, k) in spread_keys(4, 64).into_iter().enumerate() {
        if i % 3 == 0 {
            c.update(k, &v(k + 1)).unwrap();
            oracle.insert(k, v(k + 1));
        } else if i % 3 == 1 {
            c.delete(k).unwrap();
            oracle.remove(&k);
        }
    }
    for (&k, val) in &oracle {
        assert_eq!(c.search(k).as_ref(), Some(val), "key {k}");
    }
    assert_eq!(c.search(3).is_some(), oracle.contains_key(&3));
    let stats = cluster.stats();
    let per_part: u64 = stats
        .part_ops
        .iter()
        .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        .sum();
    assert_eq!(
        per_part,
        stats.route_hits.load(std::sync::atomic::Ordering::Relaxed),
        "every routed op lands in exactly one partition counter"
    );
    // 64 inserts, ~43 updates/deletes, one search per surviving key.
    assert!(per_part >= 128, "routed {per_part} ops");
}

#[test]
fn scans_cross_partition_boundaries_in_key_order() {
    let pool = Pool::with_defaults(2, 256 << 20);
    let cluster = Cluster::create(&pool, cfg(4));
    let cn = cluster.new_cn();
    let mut c = cluster.client(&cn);
    let mut oracle = BTreeMap::new();
    for k in spread_keys(4, 80) {
        c.insert(k, &v(k)).unwrap();
        oracle.insert(k, v(k));
    }
    // Start mid-way through partition 0, ask for enough to spill into
    // partitions 1 and 2.
    let start = 10;
    let want = 50;
    let mut got = Vec::new();
    c.scan(start, want, &mut got);
    let expect: Vec<(u64, Vec<u8>)> = oracle
        .range(start..)
        .take(want)
        .map(|(&k, v)| (k, v.clone()))
        .collect();
    assert_eq!(got, expect, "scan must concatenate partitions in key order");
}

#[test]
fn partition_trees_allocate_on_their_home_mns() {
    let pool = Pool::with_defaults(2, 256 << 20);
    let _cluster = Cluster::create(&pool, cfg(4));
    // Homes round-robin 0,1,0,1: both MNs hold bootstrap allocations.
    assert!(pool.mn(0).allocated_bytes() > 0);
    assert!(pool.mn(1).allocated_bytes() > 0);
}

#[test]
fn migration_moves_a_partition_and_bumps_the_epoch() {
    let pool = Pool::with_defaults(2, 256 << 20);
    let cluster = Cluster::create(&pool, cfg(4));
    let cn = cluster.new_cn();
    let mut c = cluster.client(&cn);
    let keys = spread_keys(4, 96);
    for &k in &keys {
        c.insert(k, &v(k)).unwrap();
    }
    // A second client whose routing table predates the migration.
    let cn2 = cluster.new_cn();
    let mut c2 = cluster.client(&cn2);
    assert_eq!(c2.search(keys[0]), Some(v(keys[0])));

    // Move partition 0 (home MN 0) onto MN 1.
    let mut ctl = Endpoint::new(Arc::clone(&pool));
    let cnm = cluster.new_cn();
    let mut src = cluster.tree(0).client(&cnm.states()[0]);
    let report = migrate::migrate(&cluster, 0, 1, &mut ctl, &mut src).unwrap();
    assert!(report.leaves > 0 && report.items > 0);
    assert_ne!(report.old_root, report.new_root);

    // Every key still readable through both clients (stale caches chase
    // forwarding tombstones or refresh through the switched root slot).
    for &k in &keys {
        assert_eq!(c.search(k), Some(v(k)), "client 1, key {k}");
        assert_eq!(c2.search(k), Some(v(k)), "client 2, key {k}");
    }
    // Writes to the migrated partition land in the new tree.
    let k0 = keys[0];
    c.update(k0, &v(k0 + 9)).unwrap();
    assert_eq!(c2.search(k0), Some(v(k0 + 9)));

    // The epoch check notices the bump and refreshes the home table.
    let mut word = [0u8; 8];
    ctl.read(layout::route_epoch_addr(), &mut word);
    assert_eq!(u64::from_le_bytes(word), 2);
    for _ in 0..cluster.config().check_every {
        let _ = c2.search(k0);
    }
    let (epoch, homes) = c2.routing_table();
    assert_eq!(epoch, 2);
    assert_eq!(homes[0], 1, "partition 0 re-homed to MN 1");
    let stale = cluster
        .stats()
        .route_stale_epoch
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(stale >= 1, "clients observed the stale epoch");

    // Recovery on a clean cluster is a no-op.
    let mut src2 = cluster.tree(0).client(&cnm.states()[0]);
    assert_eq!(
        migrate::recover(&cluster, &mut ctl, &mut src2),
        RecoveryOutcome::Clean
    );
}

#[test]
fn skewed_traffic_triggers_the_rebalancer() {
    let pool = Pool::with_defaults(2, 256 << 20);
    let mut cc = cfg(4);
    cc.migrate = Some(MigrateConfig {
        check_every: 64,
        min_window: 256,
        imbalance: 1.2,
    });
    let cluster = Cluster::create(&pool, cc);
    let cn = cluster.new_cn();
    let mut c = cluster.client(&cn);
    assert!(c.is_rebalancer());
    let keys = spread_keys(4, 64);
    for &k in &keys {
        c.insert(k, &v(k)).unwrap();
    }
    // Hammer partitions 0 and 2 — both homed on MN 0 — until the policy
    // off-loads the colder of the two.
    let stride = u64::MAX / 4;
    for i in 0..2_000u64 {
        let k = if i % 8 == 0 { 2 * stride + 1 } else { 1 };
        let _ = c.search(k);
    }
    let migs = cluster
        .stats()
        .migrations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(migs >= 1, "imbalance must trigger at least one migration");
    let (_, homes) = c.routing_table();
    assert_eq!(homes[0], 0, "the hot partition stays put");
    assert_eq!(homes[2], 1, "the cold partition on the hot MN moves");
    for &k in &keys {
        assert_eq!(c.search(k), Some(v(k)), "key {k} after rebalance");
    }
}

/// One engine client: lane 0 migrates partition 0 under the gate while
/// lanes 1–2 run point ops. Returns each lane's (clock, verdict) plus the
/// final key census, for determinism comparison.
fn gated_engine_run() -> (Vec<u64>, u64) {
    let pool = Pool::with_defaults(2, 256 << 20);
    let cluster = Cluster::create(&pool, cfg(4));
    let setup_cn = cluster.new_cn();
    let mut setup = cluster.client(&setup_cn);
    let keys = spread_keys(4, 48);
    for &k in &keys {
        setup.insert(k, &v(k)).unwrap();
    }
    let engine = Engine::new(EngineConfig {
        lanes: 3,
        qp: dmem::QpConfig::default(),
    });
    let gate = LaneGate::new();
    let mut bodies: Vec<LaneBody<u64>> = Vec::new();
    {
        let (cluster, gate) = (Arc::clone(&cluster), Arc::clone(&gate));
        bodies.push(Box::new(move || {
            let cn = cluster.new_cn();
            let mut src = cluster.tree(0).client(&cn.states()[0]);
            let mut ctl = Endpoint::new(Arc::clone(cluster.pool()));
            gate.enter(0);
            let report = migrate::migrate(&cluster, 0, 1, &mut ctl, &mut src).unwrap();
            gate.exit(0);
            assert!(report.items > 0);
            src.clock_ns()
        }));
    }
    for lane in 1..3usize {
        let cluster = Arc::clone(&cluster);
        let keys = keys.clone();
        bodies.push(Box::new(move || {
            let cn = cluster.new_cn();
            let mut c = cluster.client(&cn);
            for (i, &k) in keys.iter().enumerate() {
                if i % 2 == lane % 2 {
                    assert_eq!(c.search(k), Some(v(k)), "lane {lane}, key {k}");
                }
            }
            c.clock_ns()
        }));
    }
    let net = *pool.net();
    let run = engine.run_client_gated(net, 2, bodies, gate);
    let clocks = run.into_results();
    let mut census = 0u64;
    for &k in &keys {
        if setup.search(k).is_some() {
            census += 1;
        }
    }
    (clocks, census)
}

#[test]
fn gated_migration_under_lanes_is_correct_and_deterministic() {
    let (clocks_a, census_a) = gated_engine_run();
    assert_eq!(census_a, 48, "no key lost across the gated migration");
    assert_eq!(clocks_a.len(), 3);
    let (clocks_b, census_b) = gated_engine_run();
    assert_eq!(clocks_a, clocks_b, "gated runs must replay identically");
    assert_eq!(census_a, census_b);
}

#[test]
fn serial_router_runs_are_deterministic() {
    let run = || {
        let pool = Pool::with_defaults(2, 256 << 20);
        let cluster = Cluster::create(&pool, cfg(4));
        let cn = cluster.new_cn();
        let mut c = cluster.client(&cn);
        for k in spread_keys(4, 64) {
            c.insert(k, &v(k)).unwrap();
        }
        for k in spread_keys(4, 64) {
            let _ = c.search(k);
        }
        (
            c.clock_ns(),
            c.stats().rtts,
            cluster
                .stats()
                .route_hits
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    };
    assert_eq!(run(), run());
}
