//! Property tests for the partition map: full single coverage of the key
//! space, lookup/linear-scan equivalence, and split/merge invariants.

use part::PartitionMap;
use proptest::prelude::*;

/// Reference lookup: linear scan for the last range start at or below key.
fn linear_lookup(starts: &[u64], key: u64) -> usize {
    starts
        .iter()
        .enumerate()
        .rev()
        .find(|&(_, &s)| s <= key)
        .map(|(i, _)| i)
        .expect("starts[0] == 0 covers every key")
}

/// Builds a valid map from drawn raw parts: sorted unique starts beginning
/// at 0, homes round-robin over `mns`.
fn build_map(rest: std::collections::BTreeSet<u64>, mns: u16) -> PartitionMap {
    let mut starts = vec![0u64];
    starts.extend(rest);
    let homes = (0..starts.len())
        .map(|i| (i % mns as usize) as u16)
        .collect();
    PartitionMap::new(starts, homes)
}

proptest! {
    /// Every key maps to exactly the partition a linear scan finds, and
    /// that partition's bounds contain the key.
    #[test]
    fn lookup_matches_linear_scan(
        rest in proptest::collection::btree_set(1u64..u64::MAX, 0..12),
        mns in 1u16..8,
        keys in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let m = build_map(rest, mns);
        let starts: Vec<u64> = (0..m.len()).map(|p| m.bounds(p).0).collect();
        for key in keys {
            let p = m.lookup(key);
            prop_assert_eq!(p, linear_lookup(&starts, key));
            let (lo, hi) = m.bounds(p);
            prop_assert!(lo <= key && key <= hi);
        }
    }

    /// Partition bounds tile the key space: consecutive ranges abut, the
    /// first starts at 0, the last ends at u64::MAX — no gap, no overlap.
    #[test]
    fn bounds_tile_the_key_space(
        rest in proptest::collection::btree_set(1u64..u64::MAX, 0..12),
        mns in 1u16..8,
    ) {
        let m = build_map(rest, mns);
        prop_assert_eq!(m.bounds(0).0, 0);
        prop_assert_eq!(m.bounds(m.len() - 1).1, u64::MAX);
        for p in 0..m.len() - 1 {
            let (lo, hi) = m.bounds(p);
            prop_assert!(lo <= hi);
            prop_assert_eq!(hi + 1, m.bounds(p + 1).0, "ranges must abut");
        }
    }

    /// Splitting keeps validity, grows the map by one, preserves every
    /// key's home assignment, and merging the pair restores the original.
    #[test]
    fn split_then_merge_roundtrips(
        rest in proptest::collection::btree_set(1u64..u64::MAX, 0..12),
        mns in 1u16..8,
        p_seed in any::<usize>(),
        keys in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let m = build_map(rest, mns);
        let mut split = m.clone();
        let p = p_seed % m.len();
        if split.split(p) {
            split.validate();
            prop_assert_eq!(split.len(), m.len() + 1);
            for &key in &keys {
                prop_assert_eq!(split.home(split.lookup(key)), m.home(m.lookup(key)),
                    "split must not re-home any key");
            }
            prop_assert!(split.merge(p));
            prop_assert_eq!(&split, &m);
        } else {
            // Split refuses only on one-key ranges or a full map.
            let (lo, hi) = m.bounds(p);
            prop_assert!(lo == hi || m.len() >= 64);
        }
    }

    /// Re-homing moves exactly the keys of the target partition.
    #[test]
    fn set_home_moves_one_partition(
        rest in proptest::collection::btree_set(1u64..u64::MAX, 0..12),
        mns in 1u16..8,
        p_seed in any::<usize>(),
        keys in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let m = build_map(rest, mns);
        let mut moved = m.clone();
        let p = p_seed % m.len();
        let new_home = m.home(p) + 100;
        moved.set_home(p, new_home);
        for &key in &keys {
            let kp = m.lookup(key);
            let expect = if kp == p { new_home } else { m.home(kp) };
            prop_assert_eq!(moved.home(moved.lookup(key)), expect);
        }
    }
}
