//! Well-known control words for partitioned deployments.
//!
//! Everything a compute node must discover about the partition layout lives
//! in MN 0's reserved region (the same region that holds the single-tree
//! root slots): the routing epoch, the migration lock and journal, and one
//! home word plus one tree-root slot per partition. All of it is reachable
//! with plain one-sided reads, so routing-table refresh needs no RPC.
//!
//! Slot map (each slot is one 8-byte word, see [`dmem::root_slot`]):
//!
//! | slot            | contents                                        |
//! |-----------------|-------------------------------------------------|
//! | 0..16           | single-tree deployments (figs, examples)        |
//! | 16              | `route_epoch` — bumped once per migration       |
//! | 17              | `part_lock` — CAS 0→1 guards migration          |
//! | 18..22          | migration journal: valid, part, old root, target|
//! | 24              | scratch root slot for the tree being built      |
//! | 128..128+P      | home word of partition *i* (the MN id)          |
//! | 192..192+P      | live root-pointer slot of partition *i*'s tree  |

use dmem::GlobalAddr;

/// Root-slot index of the routing-table epoch word.
pub const EPOCH_SLOT: u64 = 16;
/// Root-slot index of the migration lock word.
pub const LOCK_SLOT: u64 = 17;
/// First of the four contiguous migration-journal words.
pub const JOURNAL_SLOT: u64 = 18;
/// Root-slot index the migrator bootstraps the destination tree into.
pub const SCRATCH_SLOT: u64 = 24;
/// Root-slot index of partition 0's home word.
pub const HOME_SLOT0: u64 = 128;
/// Root-slot index of partition 0's live tree-root slot.
pub const TREE_SLOT0: u64 = 192;
/// Maximum partitions the reserved region can describe.
pub const MAX_PARTS: usize = 64;

/// Remote address of the `route_epoch` word.
pub fn route_epoch_addr() -> GlobalAddr {
    dmem::root_slot(EPOCH_SLOT)
}

/// Remote address of the `part_lock` word.
pub fn part_lock_addr() -> GlobalAddr {
    dmem::root_slot(LOCK_SLOT)
}

/// Remote address of the migration journal (4 contiguous words, 32 bytes —
/// within one 64-byte line, so a single write lands atomically).
pub fn journal_addr() -> GlobalAddr {
    dmem::root_slot(JOURNAL_SLOT)
}

/// Remote address of partition `i`'s home word.
pub fn home_addr(i: usize) -> GlobalAddr {
    debug_assert!(i < MAX_PARTS);
    dmem::root_slot(HOME_SLOT0 + i as u64)
}

/// Root-slot *index* of partition `i`'s tree (pass to [`chime::Chime`]
/// constructors, which resolve it through [`dmem::root_slot`] themselves).
pub fn tree_slot(i: usize) -> u64 {
    debug_assert!(i < MAX_PARTS);
    TREE_SLOT0 + i as u64
}

/// Remote address of partition `i`'s live tree-root slot.
pub fn tree_slot_addr(i: usize) -> GlobalAddr {
    dmem::root_slot(tree_slot(i))
}

/// Remote address of the scratch tree-root slot.
pub fn scratch_addr() -> GlobalAddr {
    dmem::root_slot(SCRATCH_SLOT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem::node::RESERVED_BYTES;

    #[test]
    fn every_control_word_fits_in_the_reserved_region() {
        let last = tree_slot_addr(MAX_PARTS - 1);
        assert_eq!(last.mn(), 0);
        assert!(last.offset() + 8 <= RESERVED_BYTES);
        assert!(home_addr(MAX_PARTS - 1).offset() + 8 <= tree_slot_addr(0).offset());
        assert!(journal_addr().offset() + 32 <= scratch_addr().offset());
        // The journal's 32 bytes stay within one 64-byte line.
        let j = journal_addr().offset();
        assert!(j % 64 + 32 <= 64, "journal straddles a line");
    }
}
