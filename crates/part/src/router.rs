//! The partition router: a [`RangeIndex`] facade over one tree per range.
//!
//! A [`Cluster`] owns `P` pinned CHIME trees, one per partition, and the
//! remote routing table ([`crate::layout`]). Each [`RouterClient`] drives a
//! single [`chime::ChimeClient`] — one endpoint, one virtual clock, one
//! phase profile — and swaps per-partition [`chime::TreeBinding`]s through
//! it as keys route, so the cost of serving the whole key space lands on
//! one honest timeline.
//!
//! Routing state is epoch-versioned: partition *bounds* are static (lookup
//! is pure CN-side arithmetic), only *homes* change. Every `check_every`
//! operations a client reads the remote epoch word ([`obs::Phase::Route`]
//! time); on a mismatch it re-reads the home words in one contiguous read
//! and re-pins its allocators. A client running between a migration's
//! publish and its own refresh keeps allocating on the old home — that is
//! the modeled cost of stale routing, not a correctness hazard: reads and
//! writes follow the live root slot and forwarding tombstones regardless.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use chime::{Chime, ChimeClient, ChimeConfig, CnState, TreeBinding};
use dmem::{Endpoint, IndexError, Pool, RangeIndex};
use obs::Phase;

use crate::layout;
use crate::map::PartitionMap;
use crate::migrate::{self, MigrateError};

/// Scale-out deployment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of range partitions (each a pinned tree).
    pub parts: usize,
    /// Per-tree CHIME geometry and budgets. Deployments dividing a fixed
    /// CN cache budget over partitions scale `cache_bytes` down by `parts`.
    pub chime: ChimeConfig,
    /// Operations between remote routing-epoch checks.
    pub check_every: u64,
    /// Hotspot migration policy; `None` disables the migrator.
    pub migrate: Option<MigrateConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            parts: 4,
            chime: ChimeConfig::default(),
            check_every: 64,
            migrate: None,
        }
    }
}

/// When and how aggressively the rebalancer moves partitions.
#[derive(Debug, Clone, Copy)]
pub struct MigrateConfig {
    /// Operations between rebalance evaluations (rebalancer-local).
    pub check_every: u64,
    /// Minimum routed operations in the traffic window before any verdict.
    pub min_window: u64,
    /// Trigger: hottest MN's window share must exceed `imbalance / mns`.
    pub imbalance: f64,
}

impl Default for MigrateConfig {
    fn default() -> Self {
        MigrateConfig {
            check_every: 256,
            min_window: 2_048,
            imbalance: 1.5,
        }
    }
}

/// Shared routing and migration counters, mirrored into the metrics
/// snapshot by the bench layer.
#[derive(Debug)]
pub struct RouterStats {
    /// Routed operations (every op resolves through the table).
    pub route_hits: AtomicU64,
    /// Epoch checks that found the local table stale.
    pub route_stale_epoch: AtomicU64,
    /// Full home-word refreshes performed.
    pub route_refreshes: AtomicU64,
    /// Completed migrations.
    pub migrations: AtomicU64,
    /// Leaves moved by completed migrations.
    pub migrate_leaves_moved: AtomicU64,
    /// Items moved by completed migrations.
    pub migrate_items_moved: AtomicU64,
    /// Lifetime routed operations per partition.
    pub part_ops: Vec<AtomicU64>,
    /// Windowed per-partition traffic, reset after each migration.
    window_ops: Vec<AtomicU64>,
}

impl RouterStats {
    fn new(parts: usize) -> Self {
        RouterStats {
            route_hits: AtomicU64::new(0),
            route_stale_epoch: AtomicU64::new(0),
            route_refreshes: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            migrate_leaves_moved: AtomicU64::new(0),
            migrate_items_moved: AtomicU64::new(0),
            part_ops: (0..parts).map(|_| AtomicU64::new(0)).collect(),
            window_ops: (0..parts).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Snapshot of the migration traffic window, in partition order.
    pub fn window(&self) -> Vec<u64> {
        self.window_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Clears the migration traffic window. The rebalancer resets it after
    /// every migration; harnesses reset it after preload so the measured
    /// phase starts with a clean traffic profile.
    pub fn reset_window(&self) {
        for c in &self.window_ops {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A partitioned CHIME deployment: `P` pinned trees plus the remote
/// routing table that lets any CN find them.
pub struct Cluster {
    pool: Arc<Pool>,
    cfg: ClusterConfig,
    map: PartitionMap,
    trees: Vec<Chime>,
    stats: Arc<RouterStats>,
    rebalancer_claimed: AtomicBool,
}

impl Cluster {
    /// Creates the partitioned deployment: bootstraps one pinned tree per
    /// partition (round-robin homes) and publishes the routing table —
    /// epoch 1, the home words, a free migration lock and a zeroed
    /// journal — to MN 0's reserved region.
    pub fn create(pool: &Arc<Pool>, cfg: ClusterConfig) -> Arc<Cluster> {
        assert!(cfg.parts >= 1 && cfg.parts <= layout::MAX_PARTS);
        assert!(cfg.check_every >= 1);
        let map = PartitionMap::new_even(cfg.parts, pool.num_mns());
        let trees: Vec<Chime> = (0..cfg.parts)
            .map(|i| Chime::create_pinned(pool, cfg.chime, layout::tree_slot(i), map.home(i)))
            .collect();
        let mut ctl = Endpoint::new(Arc::clone(pool));
        // Table contents first (lock word, journal, homes), the epoch word
        // last: the epoch is the publish point, so nothing may observe a
        // live epoch over unwritten home words — the same discipline
        // `publish_routing` follows under `part_lock`.
        ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
        ctl.write(layout::journal_addr(), &[0u8; 32]);
        ctl.write(layout::scratch_addr(), &0u64.to_le_bytes());
        let homes: Vec<u8> = map
            .homes()
            .iter()
            .flat_map(|&mn| (mn as u64).to_le_bytes())
            .collect();
        ctl.write(layout::home_addr(0), &homes);
        ctl.write(layout::route_epoch_addr(), &1u64.to_le_bytes());
        let stats = Arc::new(RouterStats::new(cfg.parts));
        Arc::new(Cluster {
            pool: Arc::clone(pool),
            cfg,
            map,
            trees,
            stats,
            rebalancer_claimed: AtomicBool::new(false),
        })
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The static partition map as created (bounds are authoritative;
    /// homes reflect the *initial* placement — live homes are the remote
    /// words).
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Partition `p`'s tree handle.
    pub fn tree(&self, p: usize) -> &Chime {
        &self.trees[p]
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Shared routing/migration counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.stats
    }

    /// Creates the per-compute-node state: one CHIME CN state (cache,
    /// hotspot buffer, lock table) per partition.
    pub fn new_cn(&self) -> PartCn {
        PartCn {
            states: self.trees.iter().map(|t| t.new_cn()).collect(),
        }
    }

    /// Creates a routed client on compute node `cn`. With migration
    /// enabled, the first client created cluster-wide becomes the
    /// rebalancer: it evaluates traffic windows and runs migrations
    /// synchronously inside its own operation stream (so migration cost
    /// is charged to a real client's timeline, not hidden).
    pub fn client(self: &Arc<Cluster>, cn: &PartCn) -> RouterClient {
        assert_eq!(cn.states.len(), self.cfg.parts);
        let client = self.trees[0].client_pinned(&cn.states[0], self.map.home(0));
        let bindings = (0..self.cfg.parts)
            .map(|p| {
                (p != 0).then(|| self.trees[p].binding(&cn.states[p], Some(self.map.home(p))))
            })
            .collect();
        let rebalancer = self.cfg.migrate.is_some()
            && !self.rebalancer_claimed.swap(true, Ordering::Relaxed);
        RouterClient {
            cluster: Arc::clone(self),
            cns: cn.states.clone(),
            client,
            bindings,
            mounted: 0,
            epoch: 1,
            homes: self.map.homes().to_vec(),
            ops: 0,
            ctl: rebalancer.then(|| Endpoint::new(Arc::clone(&self.pool))),
        }
    }
}

/// Per-compute-node state of a partitioned deployment.
pub struct PartCn {
    states: Vec<Arc<CnState>>,
}

impl PartCn {
    /// The per-partition CHIME CN states (cache/hotspot probes).
    pub fn states(&self) -> &[Arc<CnState>] {
        &self.states
    }
}

/// One logical client of a partitioned deployment; implements
/// [`RangeIndex`] by routing each operation to its partition's tree.
pub struct RouterClient {
    cluster: Arc<Cluster>,
    cns: Vec<Arc<CnState>>,
    client: ChimeClient,
    /// Detached bindings; `None` exactly at `mounted`.
    bindings: Vec<Option<TreeBinding>>,
    mounted: usize,
    /// CN-cached routing epoch and home words.
    epoch: u64,
    homes: Vec<u16>,
    /// Routed operations issued by this client.
    ops: u64,
    /// The rebalancer's control endpoint; `None` for ordinary clients.
    ctl: Option<Endpoint>,
}

impl RouterClient {
    /// True for the one client that runs migrations.
    pub fn is_rebalancer(&self) -> bool {
        self.ctl.is_some()
    }

    /// This client's cached routing table (epoch, homes).
    pub fn routing_table(&self) -> (u64, &[u16]) {
        (self.epoch, &self.homes)
    }

    /// Swaps partition `p`'s tree binding into the operating client.
    fn mount(&mut self, p: usize) {
        if p != self.mounted {
            let b = self.bindings[p].take().expect("binding parked");
            let prev = self.client.rebind(b);
            self.bindings[self.mounted] = Some(prev);
            self.mounted = p;
        }
        self.client.retarget_alloc(self.homes[p]);
    }

    /// Checks the remote routing epoch every `check_every` ops; on a
    /// mismatch, refreshes the home words in one contiguous read.
    fn maybe_refresh(&mut self) {
        if !self.ops.is_multiple_of(self.cluster.cfg.check_every) {
            return;
        }
        let mut word = [0u8; 8];
        self.client
            .read_raw(layout::route_epoch_addr(), &mut word, Phase::Route);
        let remote = u64::from_le_bytes(word);
        if remote == self.epoch {
            return;
        }
        self.cluster
            .stats
            .route_stale_epoch
            .fetch_add(1, Ordering::Relaxed);
        self.refresh_homes(remote);
    }

    fn refresh_homes(&mut self, epoch: u64) {
        let parts = self.cluster.cfg.parts;
        let mut buf = vec![0u8; parts * 8];
        self.client
            .read_raw(layout::home_addr(0), &mut buf, Phase::Route);
        for (p, w) in buf.chunks_exact(8).enumerate() {
            self.homes[p] = u64::from_le_bytes(w.try_into().unwrap()) as u16;
        }
        self.epoch = epoch;
        self.cluster
            .stats
            .route_refreshes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Routes one point operation: resolve key → partition, account the
    /// hit, mount the partition's binding, run, then (rebalancer only)
    /// evaluate the migration policy.
    fn routed<R>(&mut self, key: u64, f: impl FnOnce(&mut ChimeClient) -> R) -> R {
        self.ops += 1;
        self.maybe_refresh();
        let p = self.cluster.map.lookup(key);
        self.cluster.stats.route_hits.fetch_add(1, Ordering::Relaxed);
        self.cluster.stats.part_ops[p].fetch_add(1, Ordering::Relaxed);
        self.cluster.stats.window_ops[p].fetch_add(1, Ordering::Relaxed);
        self.mount(p);
        let r = f(&mut self.client);
        if self.ctl.is_some() {
            self.maybe_rebalance();
        }
        r
    }

    /// The rebalancer's policy: every `check_every` of its ops, find the
    /// hottest MN in the traffic window. If its share exceeds the
    /// configured imbalance over the uniform share and it homes more than
    /// one partition, off-load the *coldest* partition it homes onto the
    /// least-loaded MN — peeling cold ranges away isolates the hot keys
    /// over successive windows without ping-ponging the hot range itself.
    fn maybe_rebalance(&mut self) {
        let mig = self.cluster.cfg.migrate.expect("rebalancer without policy");
        if !self.ops.is_multiple_of(mig.check_every) {
            return;
        }
        let window = self.cluster.stats.window();
        let total: u64 = window.iter().sum();
        if total < mig.min_window {
            return;
        }
        // The rebalancer publishes migrations itself, so its table is
        // authoritative once refreshed; refresh cheaply from local state.
        let mns = self.cluster.pool.num_mns() as usize;
        let mut load = vec![0u64; mns];
        for (p, &w) in window.iter().enumerate() {
            load[self.homes[p] as usize] += w;
        }
        let hot = (0..mns).max_by_key(|&m| (load[m], m)).unwrap();
        let cold = (0..mns).min_by_key(|&m| (load[m], m)).unwrap();
        if hot == cold {
            return;
        }
        let mean = total as f64 / mns as f64;
        if (load[hot] as f64) < mig.imbalance * mean {
            return;
        }
        let victim = (0..window.len())
            .filter(|&p| self.homes[p] as usize == hot)
            .min_by_key(|&p| (window[p], p));
        let Some(victim) = victim else { return };
        let on_hot = self
            .homes
            .iter()
            .filter(|&&h| h as usize == hot)
            .count();
        if on_hot <= 1 {
            // Moving the only partition just moves the hotspot; splitting
            // ranges is future work (bounds are static in this design).
            return;
        }
        self.run_migration(victim, cold as u16);
    }

    /// Runs one migration synchronously on this client's timeline.
    fn run_migration(&mut self, victim: usize, target: u16) {
        self.mount(victim);
        let mut ctl = self.ctl.take().expect("rebalancer endpoint");
        // One timeline: the control endpoint joins the client's clock, and
        // the client later absorbs the migration's elapsed virtual time.
        let now = self.client.clock_ns();
        if now > ctl.clock_ns() {
            ctl.advance_clock(now - ctl.clock_ns());
        }
        let r = migrate::migrate(&self.cluster, victim, target, &mut ctl, &mut self.client);
        self.client.sync_clock_to(ctl.clock_ns());
        self.ctl = Some(ctl);
        match r {
            Ok(report) => {
                self.homes[victim] = target;
                self.epoch += 1;
                let stats = &self.cluster.stats;
                stats.migrations.fetch_add(1, Ordering::Relaxed);
                stats
                    .migrate_leaves_moved
                    .fetch_add(report.leaves, Ordering::Relaxed);
                stats
                    .migrate_items_moved
                    .fetch_add(report.items, Ordering::Relaxed);
                stats.reset_window();
            }
            Err(MigrateError::Busy) => {}
            Err(MigrateError::Index(e)) => {
                panic!("migration of partition {victim} failed: {e}")
            }
        }
    }

    /// Scans forward across partition boundaries: partitions are ranges,
    /// so the per-tree scans concatenate in key order.
    fn scan_routed(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        self.ops += 1;
        self.maybe_refresh();
        let mut p = self.cluster.map.lookup(start);
        self.cluster.stats.route_hits.fetch_add(1, Ordering::Relaxed);
        self.cluster.stats.part_ops[p].fetch_add(1, Ordering::Relaxed);
        self.cluster.stats.window_ops[p].fetch_add(1, Ordering::Relaxed);
        let mut from = start;
        loop {
            self.mount(p);
            let before = out.len();
            self.client.scan(from, count - out.len(), out);
            debug_assert!(out.len() >= before);
            if out.len() >= count || p + 1 >= self.cluster.cfg.parts {
                break;
            }
            let (_, hi) = self.cluster.map.bounds(p);
            if hi == u64::MAX {
                break;
            }
            p += 1;
            from = hi + 1;
        }
    }
}

impl RangeIndex for RouterClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        self.routed(key, |c| c.insert(key, value))
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        self.routed(key, |c| c.search(key))
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        self.routed(key, |c| c.update(key, value))
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        self.routed(key, |c| c.delete(key))
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        self.scan_routed(start, count, out)
    }

    fn stats(&self) -> &dmem::ClientStats {
        self.client.stats()
    }

    fn clock_ns(&self) -> u64 {
        self.client.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.cns.iter().map(|cn| cn.cache_bytes()).sum()
    }

    fn profile(&self) -> Option<&obs::OpProfile> {
        self.client.profile()
    }

    fn telemetry(&self) -> Option<&dmem::Telemetry> {
        self.client.telemetry()
    }

    fn telemetry_mut(&mut self) -> Option<&mut dmem::Telemetry> {
        self.client.telemetry_mut()
    }

    fn set_trace_id(&mut self, id: u64) {
        self.client.set_trace_id(id);
    }

    fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.client.set_tracer(tracer);
    }

    fn take_tracer(&mut self) -> Option<obs::Tracer> {
        RangeIndex::take_tracer(&mut self.client)
    }
}
