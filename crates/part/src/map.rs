//! The range partition map.
//!
//! The key space (full `u64`, since benchmark keys are hashed) is cut into
//! contiguous ranges. Partition `i` covers `[starts[i], starts[i+1])` (the
//! last runs to `u64::MAX` inclusive) and is *homed* on one memory node:
//! its subtree root and leaf allocations are pinned there. Bounds are
//! static for a deployment — only homes change, when the migrator moves a
//! partition — so key→partition lookup never needs a remote read; the
//! remote routing table ([`crate::layout`]) carries just the epoch and the
//! home words.

/// A contiguous range partitioning of the `u64` key space with per-range
/// memory-node homes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// Ascending range starts; `starts[0] == 0` so every key is covered.
    starts: Vec<u64>,
    /// Home memory node of each range.
    homes: Vec<u16>,
}

impl PartitionMap {
    /// Cuts the key space into `parts` equal ranges, homes round-robin
    /// over `mns` memory nodes.
    pub fn new_even(parts: usize, mns: u16) -> Self {
        assert!((1..=crate::layout::MAX_PARTS).contains(&parts));
        assert!(mns >= 1);
        let stride = u64::MAX / parts as u64;
        let m = PartitionMap {
            starts: (0..parts).map(|i| i as u64 * stride).collect(),
            homes: (0..parts).map(|i| (i % mns as usize) as u16).collect(),
        };
        m.validate();
        m
    }

    /// Builds a map from explicit range starts and homes.
    pub fn new(starts: Vec<u64>, homes: Vec<u16>) -> Self {
        let m = PartitionMap { starts, homes };
        m.validate();
        m
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Always `false`: a valid map covers the whole key space.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The partition owning `key` (binary search over range starts).
    pub fn lookup(&self, key: u64) -> usize {
        self.starts.partition_point(|&s| s <= key) - 1
    }

    /// Inclusive key bounds `[lo, hi]` of partition `p`.
    pub fn bounds(&self, p: usize) -> (u64, u64) {
        let lo = self.starts[p];
        let hi = match self.starts.get(p + 1) {
            Some(&next) => next - 1,
            None => u64::MAX,
        };
        (lo, hi)
    }

    /// Home memory node of partition `p`.
    pub fn home(&self, p: usize) -> u16 {
        self.homes[p]
    }

    /// All homes, in partition order.
    pub fn homes(&self) -> &[u16] {
        &self.homes
    }

    /// Re-homes partition `p` onto `mn` (what a migration publishes).
    pub fn set_home(&mut self, p: usize, mn: u16) {
        self.homes[p] = mn;
    }

    /// Splits partition `p` at the midpoint of its range; both halves keep
    /// `p`'s home. No-op (returns `false`) when the range has one key or
    /// the map is at capacity.
    pub fn split(&mut self, p: usize) -> bool {
        let (lo, hi) = self.bounds(p);
        if lo == hi || self.len() >= crate::layout::MAX_PARTS {
            return false;
        }
        let mid = lo + (hi - lo) / 2 + 1;
        self.starts.insert(p + 1, mid);
        self.homes.insert(p + 1, self.homes[p]);
        self.validate();
        true
    }

    /// Merges partition `p` with its right neighbour; the union keeps
    /// `p`'s home. Returns `false` when `p` is the last partition.
    pub fn merge(&mut self, p: usize) -> bool {
        if p + 1 >= self.len() {
            return false;
        }
        self.starts.remove(p + 1);
        self.homes.remove(p + 1);
        self.validate();
        true
    }

    /// Panics unless the map covers the key space exactly once: `starts`
    /// begins at 0, is strictly ascending, and pairs with `homes` 1:1.
    pub fn validate(&self) {
        assert!(!self.starts.is_empty(), "a map needs at least one range");
        assert_eq!(self.starts[0], 0, "range starts must cover key 0");
        assert!(
            self.starts.windows(2).all(|w| w[0] < w[1]),
            "range starts must be strictly ascending"
        );
        assert_eq!(self.starts.len(), self.homes.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_map_covers_and_round_robins() {
        let m = PartitionMap::new_even(4, 3);
        assert_eq!(m.len(), 4);
        assert_eq!(m.lookup(0), 0);
        assert_eq!(m.lookup(u64::MAX), 3);
        assert_eq!(m.homes(), &[0, 1, 2, 0]);
        for p in 0..4 {
            let (lo, hi) = m.bounds(p);
            assert_eq!(m.lookup(lo), p);
            assert_eq!(m.lookup(hi), p);
        }
    }

    #[test]
    fn split_and_merge_are_inverse() {
        let mut m = PartitionMap::new_even(4, 2);
        let before = m.clone();
        assert!(m.split(1));
        assert_eq!(m.len(), 5);
        assert_eq!(m.home(1), m.home(2), "both halves keep the home");
        assert!(m.merge(1));
        assert_eq!(m, before);
    }
}
