//! `part` — multi-MN scale-out for CHIME.
//!
//! A single CHIME tree saturates one memory node's NIC long before it
//! exhausts a cluster's capacity. This crate shards the key space into
//! contiguous range partitions, pins each partition's tree (root and leaf
//! allocations) to a home memory node, and routes every operation through
//! a CN-cached, epoch-versioned routing table:
//!
//! * [`map`] — the static range partition map: key → partition is pure
//!   CN-side arithmetic, only *homes* (partition → MN) ever change;
//! * [`layout`] — the remote routing table: epoch word, home words, the
//!   migration lock/journal, all in MN 0's reserved region;
//! * [`router`] — [`router::Cluster`] (the deployment) and
//!   [`router::RouterClient`] (a [`dmem::RangeIndex`] that multiplexes one
//!   endpoint over per-partition tree bindings);
//! * [`migrate`] — live hotspot migration: lock, journal, copy leaves
//!   behind forwarding tombstones, CAS the live root, publish a new
//!   routing epoch — with named crash points and [`migrate::recover`].
//!
//! Everything is deterministic per seed: the router adds no hidden state,
//! migrations run synchronously on the rebalancing client's virtual
//! timeline, and crash recovery replays byte-identically under the fault
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod map;
pub mod migrate;
pub mod router;

pub use map::PartitionMap;
pub use migrate::{
    recover, MigrateError, MigrationReport, RecoveryOutcome, CRASH_MIGRATE_COPIED,
    CRASH_MIGRATE_DONE, CRASH_MIGRATE_LOCKED, CRASH_MIGRATE_SWITCHED,
};
pub use router::{Cluster, ClusterConfig, MigrateConfig, PartCn, RouterClient, RouterStats};
