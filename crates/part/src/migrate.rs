//! Live partition migration with crash-safe recovery.
//!
//! Moving partition `p` from MN `a` to MN `b` rebuilds its tree on `b`
//! while point operations keep flowing:
//!
//! 1. **lock** — CAS `part_lock` 0→1 (single migrator cluster-wide), then
//!    zero the scratch slot and journal the intent `(p, old_root, b)` in
//!    one atomic 32-byte write;
//! 2. **build + copy** — bootstrap an empty tree pinned to `b` under the
//!    scratch slot, then move leaves left→right with
//!    [`chime::ChimeClient::move_leaf_into`]: each source leaf is locked,
//!    drained into the new tree, and retired behind a forwarding tombstone
//!    naming the new tree's current root. In-flight reads, updates and
//!    deletes that land on a tombstone chase the forward; inserts and
//!    scans instead retry through the (still-old) live root slot — an
//!    insert that split in the new tree would up-propagate pivots through
//!    the *old* root slot, and a scan following a forward would silently
//!    skip unmoved leaves;
//! 3. **switch** — CAS the partition's live root slot `old_root → new
//!    root`: the new tree becomes authoritative in one verb;
//! 4. **publish** — bump `route_epoch`, rewrite the partition's home word,
//!    zero the journal, release `part_lock`. CNs notice the epoch on their
//!    next check and re-pin allocators; until then they run with stale
//!    placement, never stale data.
//!
//! Each step ends at a named crash point. [`recover`] replays a crashed
//! migration from the journal: roll forward when the copy started (moves
//! are idempotent — tombstoned leaves are skipped, inserts upsert), abort
//! when it had not, finish the publish when the switch already happened.

use chime::{Chime, ChimeClient};
use dmem::{Endpoint, GlobalAddr, IndexError, RangeIndex};

use crate::layout;
use crate::router::Cluster;

/// Crash point: `part_lock` acquired, nothing journaled yet.
pub const CRASH_MIGRATE_LOCKED: &str = "part.migrate.locked";
/// Crash point: fires after *each* leaf is moved (select one via `at_hit`).
pub const CRASH_MIGRATE_COPIED: &str = "part.migrate.copied";
/// Crash point: live root slot switched, routing not yet published.
pub const CRASH_MIGRATE_SWITCHED: &str = "part.migrate.switched";
/// Crash point: routing published and journal cleared, lock still held.
pub const CRASH_MIGRATE_DONE: &str = "part.migrate.done";

/// Why a migration did not run.
#[derive(Debug)]
pub enum MigrateError {
    /// Another migrator holds `part_lock`.
    Busy,
    /// Copying failed (e.g. the destination MN ran out of memory). The
    /// lock and journal are left in place for [`recover`] to roll the
    /// migration forward once the cause clears.
    Index(IndexError),
}

/// What a completed migration did.
#[derive(Debug, Clone, Copy)]
pub struct MigrationReport {
    /// The migrated partition.
    pub part: usize,
    /// Destination memory node.
    pub target: u16,
    /// Leaves moved (tombstoned source leaves are skipped, not counted).
    pub leaves: u64,
    /// Items moved.
    pub items: u64,
    /// The retired root of the source tree.
    pub old_root: GlobalAddr,
    /// The published root of the destination tree.
    pub new_root: GlobalAddr,
}

/// How [`recover`] resolved the on-disk migration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// `part_lock` was free: no migration was in flight.
    Clean,
    /// Lock held but nothing journaled (crash at lock or after publish):
    /// released the lock.
    Unlocked,
    /// Journaled but the copy never started: cleared the journal and
    /// released the lock; the source tree stays authoritative.
    Aborted,
    /// Copy had started: re-drove the moves, switched and published.
    RolledForward,
    /// Switch already done: finished the publish and released the lock.
    Finished,
}

/// Stamps a control-plane note on both the control endpoint's telemetry
/// (at its clock) and the source client's time series (at the later of the
/// two clocks, since the copy advances `src` while `ctl` stands still).
/// The anomaly detector pairs `migrate.locked` / `migrate.published` notes
/// to measure each migration's lock-to-publish interval.
fn note_step(ctl: &mut Endpoint, src: &mut ChimeClient, label: &str) {
    ctl.note_event(label);
    let t = ctl.clock_ns().max(src.clock_ns());
    if let Some(tm) = src.telemetry_mut() {
        tm.series.event(t, label);
    }
}

/// The migration journal: a 32-byte record in MN 0's reserved region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Journal {
    valid: u64,
    part: u64,
    old_root: u64,
    target: u64,
}

impl Journal {
    fn read(ep: &mut Endpoint) -> Journal {
        let mut b = [0u8; 32];
        ep.read(layout::journal_addr(), &mut b);
        let w = |i: usize| u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
        Journal {
            valid: w(0),
            part: w(1),
            old_root: w(2),
            target: w(3),
        }
    }

    fn write(&self, ep: &mut Endpoint) {
        let mut b = [0u8; 32];
        for (i, v) in [self.valid, self.part, self.old_root, self.target]
            .into_iter()
            .enumerate()
        {
            b[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        ep.write(layout::journal_addr(), &b);
    }

    fn clear(ep: &mut Endpoint) {
        ep.write(layout::journal_addr(), &[0u8; 32]);
    }
}

/// Publishes the routing-table change of a switched migration. The caller
/// holds `part_lock` (checked); the `route_epoch` bump, the home-word
/// rewrite and the journal clear all happen under it, so a CN that sees
/// the new epoch always reads the new home word.
fn publish_routing(ctl: &mut Endpoint, part: usize, target: u16) {
    let mut lock = [0u8; 8];
    ctl.read(layout::part_lock_addr(), &mut lock);
    assert_eq!(
        u64::from_le_bytes(lock),
        1,
        "routing published without part_lock held"
    );
    ctl.write(layout::home_addr(part), &(target as u64).to_le_bytes());
    ctl.faa(layout::route_epoch_addr(), 1);
    Journal::clear(ctl);
}

/// Moves every live leaf under `old_root` into `dst`'s tree, retiring each
/// behind a forwarding tombstone. Idempotent: a re-drive after a crash
/// skips already-retired leaves and upserts the rest.
fn copy_leaves(
    src: &mut ChimeClient,
    dst: &mut ChimeClient,
    old_root: GlobalAddr,
    ctl: &mut Endpoint,
) -> Result<(u64, u64), IndexError> {
    let (mut leaves, mut items) = (0u64, 0u64);
    for addr in src.leaf_addrs_under(old_root) {
        // Tombstones name the destination's *current* root: late leaves
        // forward straight to the grown tree instead of an older level.
        let fwd = dst.current_root();
        if let Some(moved) = src.move_leaf_into(addr, dst, fwd)? {
            leaves += 1;
            items += moved;
        }
        ctl.crash_point(CRASH_MIGRATE_COPIED);
    }
    Ok((leaves, items))
}

/// Runs one migration of `part` to `target` on the caller's timeline.
/// `ctl` issues the control-word verbs (and hosts the crash points);
/// `src` must be a client of `part`'s tree.
pub fn migrate(
    cluster: &Cluster,
    part: usize,
    target: u16,
    ctl: &mut Endpoint,
    src: &mut ChimeClient,
) -> Result<MigrationReport, MigrateError> {
    let prev = ctl.cas(layout::part_lock_addr(), 0, 1);
    if prev != 0 {
        return Err(MigrateError::Busy);
    }
    ctl.crash_point(CRASH_MIGRATE_LOCKED);
    note_step(ctl, src, &format!("migrate.locked part={part} dst={target}"));
    let old_root = src.current_root();
    ctl.write(layout::scratch_addr(), &0u64.to_le_bytes());
    Journal {
        valid: 1,
        part: part as u64,
        old_root: old_root.raw(),
        target: target as u64,
    }
    .write(ctl);
    // Build the destination tree pinned to the target MN under the
    // scratch slot; its root becomes live only at the switch CAS.
    let dst_tree = Chime::create_pinned(
        cluster.pool(),
        cluster.config().chime,
        layout::SCRATCH_SLOT,
        target,
    );
    let dst_cn = dst_tree.new_cn();
    let mut dst = dst_tree.client_pinned(&dst_cn, target);
    dst.sync_clock_to(src.clock_ns().max(ctl.clock_ns()));
    let (leaves, items) =
        copy_leaves(src, &mut dst, old_root, ctl).map_err(MigrateError::Index)?;
    note_step(
        ctl,
        src,
        &format!("migrate.copied part={part} dst={target} leaves={leaves} items={items}"),
    );
    let new_root = dst.current_root();
    let live = ctl.cas(layout::tree_slot_addr(part), old_root.raw(), new_root.raw());
    assert_eq!(live, old_root.raw(), "live root changed under part_lock");
    ctl.crash_point(CRASH_MIGRATE_SWITCHED);
    publish_routing(ctl, part, target);
    note_step(ctl, src, &format!("migrate.published part={part} dst={target}"));
    ctl.crash_point(CRASH_MIGRATE_DONE);
    ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
    let span = src.clock_ns().max(dst.clock_ns());
    src.sync_clock_to(span);
    if span > ctl.clock_ns() {
        ctl.advance_clock(span - ctl.clock_ns());
    }
    Ok(MigrationReport {
        part,
        target,
        leaves,
        items,
        old_root,
        new_root,
    })
}

/// Replays whatever migration state a crash left behind. `src` may be any
/// client sharing the cluster's tree geometry (it walks the old tree and
/// drives leaf moves); `ctl` issues the control-word verbs.
pub fn recover(
    cluster: &Cluster,
    ctl: &mut Endpoint,
    src: &mut ChimeClient,
) -> RecoveryOutcome {
    let mut word = [0u8; 8];
    ctl.read(layout::part_lock_addr(), &mut word);
    if u64::from_le_bytes(word) == 0 {
        return RecoveryOutcome::Clean;
    }
    let j = Journal::read(ctl);
    if j.valid == 0 {
        // Crash at the lock step or after publish: nothing (left) to redo.
        ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
        return RecoveryOutcome::Unlocked;
    }
    let part = j.part as usize;
    let old_root = GlobalAddr::from_raw(j.old_root);
    let target = j.target as u16;
    ctl.read(layout::tree_slot_addr(part), &mut word);
    let live = u64::from_le_bytes(word);
    if live == old_root.raw() {
        ctl.read(layout::scratch_addr(), &mut word);
        if u64::from_le_bytes(word) == 0 {
            // Journaled but the destination tree was never bootstrapped:
            // the source tree is untouched, so abort.
            Journal::clear(ctl);
            ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
            return RecoveryOutcome::Aborted;
        }
        // The copy started: re-drive it. `leaf_addrs_under` walks level-1
        // entries, which tombstones do not sever, so the enumeration is
        // complete even though the leaf sibling chain is cut.
        let dst_tree = Chime::open(cluster.pool(), cluster.config().chime, layout::SCRATCH_SLOT);
        let dst_cn = dst_tree.new_cn();
        let mut dst = dst_tree.client_pinned(&dst_cn, target);
        dst.sync_clock_to(src.clock_ns().max(ctl.clock_ns()));
        let _ = copy_leaves(src, &mut dst, old_root, ctl)
            .expect("roll-forward copy failed");
        let new_root = dst.current_root();
        let prev = ctl.cas(layout::tree_slot_addr(part), old_root.raw(), new_root.raw());
        assert_eq!(prev, old_root.raw(), "live root changed under part_lock");
        publish_routing(ctl, part, target);
        ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
        src.sync_clock_to(dst.clock_ns().max(ctl.clock_ns()));
        return RecoveryOutcome::RolledForward;
    }
    // Switched but not published: the new tree is live; finish the
    // routing publish.
    publish_routing(ctl, part, target);
    ctl.write(layout::part_lock_addr(), &0u64.to_le_bytes());
    RecoveryOutcome::Finished
}
