//! CHIME-Learned (Fig. 15b): a learned index with hopscotch leaf nodes.
//!
//! The final step of the paper's second factor analysis swaps ROLEX's
//! sorted leaves for CHIME's hopscotch leaves: searches fetch one
//! *neighborhood* per candidate leaf instead of whole leaves. Because the
//! model error spans several leaves, a search may fetch multiple
//! neighborhoods — which is exactly why the paper prefers the B+-tree
//! combination (plain CHIME) over the learned one.
//!
//! Leaves reuse `chime::leaf` in fence mode (replicas carry fence keys, so
//! ownership checks need no tree). Overflow inserts chain synonym leaves
//! from the owner's replica sibling pointer, all guarded by the owner lock.

use std::sync::Arc;

use chime::hopscotch::build_table;
use chime::layout::LeafLayout;
use chime::leaf::{LeafMeta, LeafOps};
use dmem::hash::home_entry;
use dmem::{ChunkAlloc, ClientStats, Endpoint, GlobalAddr, IndexError, Pool, RangeIndex};

use crate::plr::PlrModel;
use crate::tree::RolexConfig;

const OP_RETRY_LIMIT: usize = 100_000;
/// Target fill of a hopscotch leaf at load time.
const LOAD_FILL_NUM: usize = 3;
const LOAD_FILL_DEN: usize = 4;

struct Shared {
    pool: Arc<Pool>,
    cfg: RolexConfig,
    leaf: LeafOps,
    base: GlobalAddr,
    num_leaves: usize,
    items_per_leaf: usize,
    model: PlrModel,
}

/// A CHIME-Learned index handle.
#[derive(Clone)]
pub struct ChimeLearned {
    shared: Arc<Shared>,
}

/// One CHIME-Learned client.
pub struct ChimeLearnedClient {
    shared: Arc<Shared>,
    ep: Endpoint,
    alloc: ChunkAlloc,
}

impl ChimeLearned {
    /// Bulk-loads sorted `items` and trains the model.
    pub fn create(pool: &Arc<Pool>, cfg: RolexConfig, items: &[(u64, Vec<u8>)]) -> Self {
        assert!(!items.is_empty());
        // Hopscotch leaves use a span that is a multiple of H = 8; scale the
        // configured span up if needed.
        let span = cfg.span.max(16).div_ceil(8) * 8;
        let h = 8usize.min(span);
        let leaf = LeafOps::new(LeafLayout {
            span,
            h,
            key_size: 8,
            value_size: if cfg.indirect_values { 8 } else { cfg.value_size },
            replication: true,
            fences: true,
            piggyback: true,
        });
        let items_per_leaf = (span * LOAD_FILL_NUM / LOAD_FILL_DEN).max(1);
        let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        let model = PlrModel::train(&keys, cfg.delta);
        let num_leaves = items.len().div_ceil(items_per_leaf);
        let node_size = leaf.layout.node_size().div_ceil(64) * 64;
        let base = pool
            .mn(0)
            .alloc((num_leaves * node_size) as u64)
            .expect("pool too small for CHIME-Learned load");
        let shared = Arc::new(Shared {
            pool: Arc::clone(pool),
            cfg,
            leaf,
            base,
            num_leaves,
            items_per_leaf,
            model,
        });
        let mut ep = Endpoint::new(Arc::clone(&shared.pool));
        for i in 0..num_leaves {
            let chunk = &items[i * items_per_leaf..((i + 1) * items_per_leaf).min(items.len())];
            let lo = if i == 0 { 0 } else { chunk[0].0 };
            let hi = items
                .get((i + 1) * items_per_leaf)
                .map(|&(k, _)| k)
                .unwrap_or(u64::MAX);
            let chunk_vec: Vec<(u64, Vec<u8>)> = chunk
                .iter()
                .map(|(k, v)| {
                    let mut v = v.clone();
                    v.resize(shared.leaf.layout.value_size, 0);
                    (*k, v)
                })
                .collect();
            let w = build_table(span, h, &chunk_vec)
                .expect("leaf fill below hopscotch capacity");
            let meta = LeafMeta {
                sibling: GlobalAddr::NULL,
                valid: true,
                fences: Some((lo, hi)),
            };
            shared.leaf.write_new(&mut ep, shared.leaf_addr(i), &w, &meta);
        }
        ChimeLearned { shared }
    }

    /// Creates a client.
    pub fn client(&self) -> ChimeLearnedClient {
        ChimeLearnedClient {
            shared: Arc::clone(&self.shared),
            ep: Endpoint::new(Arc::clone(&self.shared.pool)),
            alloc: ChunkAlloc::sim_scaled(),
        }
    }
}

impl Shared {
    fn leaf_addr(&self, i: usize) -> GlobalAddr {
        let node_size = (self.leaf.layout.node_size().div_ceil(64) * 64) as u64;
        self.base.add(i as u64 * node_size)
    }

    fn candidates(&self, key: u64, widen: usize) -> (usize, usize) {
        let pos = self.model.predict(key);
        let d = self.cfg.delta + (widen as u64) * self.items_per_leaf as u64;
        let lo = (pos.saturating_sub(d) as usize) / self.items_per_leaf;
        let hi = ((pos + d) as usize / self.items_per_leaf).min(self.num_leaves - 1);
        (lo.min(self.num_leaves - 1), hi)
    }
}

impl ChimeLearnedClient {
    /// Finds the owner leaf index by probing candidate neighborhoods:
    /// one neighborhood READ per candidate leaf (the CHIME-Learned cost).
    /// Returns `(owner index, search result within its chain)`.
    fn probe(&mut self, key: u64) -> (usize, Option<Vec<u8>>) {
        let leaf = self.shared.leaf;
        for widen in 0..OP_RETRY_LIMIT {
            let (lo, hi) = self.shared.candidates(key, widen);
            for i in lo..=hi {
                let r = leaf.read_neighborhood(&mut self.ep, self.shared.leaf_addr(i), key);
                let (flo, fhi) = r.meta.fences.expect("fence mode");
                if dmem::hash::in_range(key, flo, fhi) {
                    if let Some((_, v)) = r.found {
                        return (i, Some(v));
                    }
                    // Overflow chain.
                    let mut syn = r.meta.sibling;
                    while !syn.is_null() {
                        let rs = leaf.read_neighborhood(&mut self.ep, syn, key);
                        if let Some((_, v)) = rs.found {
                            return (i, Some(v));
                        }
                        syn = rs.meta.sibling;
                    }
                    return (i, None);
                }
            }
        }
        panic!("chime-learned owner not found for key {key}");
    }
}

impl RangeIndex for ChimeLearnedClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let leaf = self.shared.leaf;
        let span = leaf.layout.span;
        let mut stored = value.to_vec();
        stored.resize(leaf.layout.value_size, 0);
        let home = home_entry(key, span);
        let (owner_idx, _) = self.probe(key);
        let owner = self.shared.leaf_addr(owner_idx);
        {
            let word = leaf.lock(&mut self.ep, owner);
            // Try the owner leaf first.
            if let Some(mut lr) = leaf.read_hop_window(&mut self.ep, owner, home, word) {
                if let Some(pos) = lr.w.find_in_neighborhood(key) {
                    lr.w.set_value(pos, stored.clone());
                    leaf.write_window_and_unlock(
                        &mut self.ep,
                        owner,
                        &lr.w,
                        &lr.evs,
                        lr.nv,
                        &lr.meta,
                        word,
                    );
                    return Ok(());
                }
                // Duplicate in the synonym chain? (A key that overflowed
                // while the owner was full stays there even after owner
                // space frees up.)
                if !lr.meta.sibling.is_null()
                    && self.update_in_chain(owner, lr.meta.sibling, key, &stored, word)
                {
                    return Ok(());
                }
                if let Some(empty) = lr.w.first_empty_from(home) {
                    if let Ok(pos) = lr.w.insert(key, stored.clone(), empty) {
                        let vm = leaf.vm;
                        let g = vm.group_of(empty);
                        let (gs, ge) = vm.group_range(g);
                        let any_empty = (gs..=ge)
                            .any(|i| lr.w.rel(i).map(|_| lr.w.slot_empty(i)).unwrap_or(false));
                        let mut nw = word.with_vacancy_bit(g, any_empty);
                        if lr.max_key.is_none_or(|mx| key > mx) {
                            nw = nw.with_argmax(pos as u16);
                        }
                        leaf.write_window_and_unlock(
                            &mut self.ep,
                            owner,
                            &lr.w,
                            &lr.evs,
                            lr.nv,
                            &lr.meta,
                            nw,
                        );
                        return Ok(());
                    }
                }
                // No room/hop in the owner: fall through to the chain.
                let meta = lr.meta;
                if self.insert_into_chain(owner, meta, key, &stored, word)? {
                    return Ok(());
                }
                return Ok(());
            }
            // Owner full per vacancy bitmap: chain.
            let lr = leaf.read_full_locked(&mut self.ep, owner, word);
            let meta = lr.meta;
            // Duplicate may still live in the full owner.
            if let Some(pos) = lr.w.find_in_neighborhood(key) {
                let mut lr = lr;
                lr.w.set_value(pos, stored.clone());
                leaf.write_window_and_unlock(
                    &mut self.ep,
                    owner,
                    &lr.w,
                    &lr.evs,
                    lr.nv,
                    &lr.meta,
                    word,
                );
                return Ok(());
            }
            if self.insert_into_chain(owner, meta, key, &stored, word)? {
                return Ok(());
            }
            Ok(())
        }
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        assert_ne!(key, 0, "key 0 is reserved");
        self.ep
            .note_app_bytes(self.shared.cfg.value_size as u64 + 8);
        let (_, v) = self.probe(key);
        v
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let leaf = self.shared.leaf;
        let mut stored = value.to_vec();
        stored.resize(leaf.layout.value_size, 0);
        let home = home_entry(key, leaf.layout.span);
        let (owner_idx, found) = self.probe(key);
        if found.is_none() {
            return Ok(false);
        }
        let owner = self.shared.leaf_addr(owner_idx);
        let word = leaf.lock(&mut self.ep, owner);
        // Walk owner + chain under the owner lock.
        let mut addr = owner;
        loop {
            let mut lr = leaf.read_nbh_window(&mut self.ep, addr, home, word);
            if let Some(pos) = lr.w.find_in_neighborhood(key) {
                lr.w.set_value(pos, stored);
                leaf.write_window_and_unlock(
                    &mut self.ep,
                    addr,
                    &lr.w,
                    &lr.evs,
                    lr.nv,
                    &lr.meta,
                    word.with_locked(addr != owner), // only unlock the owner's word
                );
                if addr != owner {
                    leaf.unlock(&mut self.ep, owner, word);
                }
                return Ok(true);
            }
            if lr.meta.sibling.is_null() {
                leaf.unlock(&mut self.ep, owner, word);
                return Ok(false);
            }
            addr = lr.meta.sibling;
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let leaf = self.shared.leaf;
        let home = home_entry(key, leaf.layout.span);
        let (owner_idx, found) = self.probe(key);
        if found.is_none() {
            return Ok(false);
        }
        let owner = self.shared.leaf_addr(owner_idx);
        let word = leaf.lock(&mut self.ep, owner);
        let mut addr = owner;
        loop {
            let mut lr = leaf.read_nbh_window(&mut self.ep, addr, home, word);
            if let Some(pos) = lr.w.find_in_neighborhood(key) {
                lr.w.remove(pos);
                let vm = leaf.vm;
                let nw = word.with_vacancy_bit(vm.group_of(pos), true);
                leaf.write_window_and_unlock(
                    &mut self.ep,
                    addr,
                    &lr.w,
                    &lr.evs,
                    lr.nv,
                    &lr.meta,
                    nw.with_locked(addr != owner),
                );
                if addr != owner {
                    leaf.unlock(&mut self.ep, owner, word);
                }
                return Ok(true);
            }
            if lr.meta.sibling.is_null() {
                leaf.unlock(&mut self.ep, owner, word);
                return Ok(false);
            }
            addr = lr.meta.sibling;
        }
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        assert_ne!(start, 0, "key 0 is reserved");
        if count == 0 {
            return;
        }
        let leaf = self.shared.leaf;
        let (mut idx, _) = self.probe(start);
        let mut collected: Vec<(u64, Vec<u8>)> = Vec::new();
        while idx < self.shared.num_leaves {
            let addr = self.shared.leaf_addr(idx);
            let snap = leaf.read_full(&mut self.ep, addr);
            for (k, v) in snap.items() {
                if k >= start {
                    collected.push((k, v));
                }
            }
            let mut syn = snap.meta.sibling;
            while !syn.is_null() {
                let s = leaf.read_full(&mut self.ep, syn);
                for (k, v) in s.items() {
                    if k >= start {
                        collected.push((k, v));
                    }
                }
                syn = s.meta.sibling;
            }
            idx += 1;
            if collected.len() >= count {
                break;
            }
        }
        collected.sort_by_key(|&(k, _)| k);
        collected.truncate(count);
        out.extend(collected);
    }

    fn stats(&self) -> &ClientStats {
        self.ep.stats()
    }

    fn profile(&self) -> Option<&dmem::OpProfile> {
        Some(self.ep.profile())
    }

    fn clock_ns(&self) -> u64 {
        self.ep.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.shared.model.cache_bytes()
    }
}

impl ChimeLearnedClient {
    /// Updates `key` in place if it lives in the synonym chain (owner lock
    /// held). Returns `true` (and unlocks the owner) when updated.
    fn update_in_chain(
        &mut self,
        owner: GlobalAddr,
        head: GlobalAddr,
        key: u64,
        stored: &[u8],
        word: chime::lockword::LockWord,
    ) -> bool {
        let leaf = self.shared.leaf;
        let home = home_entry(key, leaf.layout.span);
        let mut addr = head;
        while !addr.is_null() {
            let syn_word = chime::lockword::LockWord::initial(leaf.vm.groups());
            let mut lr = leaf.read_nbh_window(&mut self.ep, addr, home, syn_word);
            if let Some(pos) = lr.w.find_in_neighborhood(key) {
                lr.w.set_value(pos, stored.to_vec());
                leaf.write_window_and_unlock(
                    &mut self.ep,
                    addr,
                    &lr.w,
                    &lr.evs,
                    lr.nv,
                    &lr.meta,
                    syn_word,
                );
                leaf.unlock(&mut self.ep, owner, word);
                return true;
            }
            addr = lr.meta.sibling;
        }
        false
    }

    /// Inserts into the synonym chain (owner lock held); always succeeds by
    /// appending a fresh synonym leaf when needed, then unlocks the owner.
    fn insert_into_chain(
        &mut self,
        owner: GlobalAddr,
        owner_meta: LeafMeta,
        key: u64,
        stored: &[u8],
        word: chime::lockword::LockWord,
    ) -> Result<bool, IndexError> {
        let leaf = self.shared.leaf;
        let span = leaf.layout.span;
        let h = leaf.layout.h;
        let home = home_entry(key, span);
        let mut addr = owner_meta.sibling;
        let mut last_meta = owner_meta;
        let mut last_addr = owner;
        while !addr.is_null() {
            // Synonym lock words are unused (the owner lock guards the
            // chain); read with a neutral word and write back in place.
            let syn_word = chime::lockword::LockWord::initial(leaf.vm.groups());
            if let Some(mut lr) = leaf.read_hop_window(&mut self.ep, addr, home, syn_word) {
                if let Some(pos) = lr.w.find_in_neighborhood(key) {
                    lr.w.set_value(pos, stored.to_vec());
                    leaf.write_window_and_unlock(
                        &mut self.ep,
                        addr,
                        &lr.w,
                        &lr.evs,
                        lr.nv,
                        &lr.meta,
                        syn_word,
                    );
                    leaf.unlock(&mut self.ep, owner, word);
                    return Ok(true);
                }
                if let Some(empty) = lr.w.first_empty_from(home) {
                    if lr.w.insert(key, stored.to_vec(), empty).is_ok() {
                        leaf.write_window_and_unlock(
                            &mut self.ep,
                            addr,
                            &lr.w,
                            &lr.evs,
                            lr.nv,
                            &lr.meta,
                            syn_word,
                        );
                        leaf.unlock(&mut self.ep, owner, word);
                        return Ok(true);
                    }
                }
                last_meta = lr.meta;
            }
            last_addr = addr;
            addr = last_meta.sibling;
        }
        // Append a fresh synonym leaf holding just this key.
        let syn_addr = self
            .alloc
            .alloc(&mut self.ep, leaf.layout.node_size() as u64)?;
        let w = build_table(span, h, &[(key, stored.to_vec())]).expect("single item fits");
        let meta = LeafMeta {
            sibling: GlobalAddr::NULL,
            valid: true,
            fences: last_meta.fences,
        };
        leaf.write_new(&mut self.ep, syn_addr, &w, &meta);
        // Publish by pointing the chain tail (or owner) at it. For the
        // owner this rides on the unlock; for a tail synonym we rewrite its
        // replicas via a full rewrite.
        if last_addr == owner {
            // Rewrite owner replicas with the new sibling and unlock.
            let lr = leaf.read_full_locked(&mut self.ep, owner, word);
            let mut m = lr.meta;
            m.sibling = syn_addr;
            leaf.rewrite_and_unlock(&mut self.ep, owner, &lr.w, lr.nv, &m);
        } else {
            let syn_word = chime::lockword::LockWord::initial(leaf.vm.groups());
            let lr = leaf.read_full_locked(&mut self.ep, last_addr, syn_word);
            let mut m = lr.meta;
            m.sibling = syn_addr;
            leaf.rewrite_and_unlock(&mut self.ep, last_addr, &lr.w, lr.nv, &m);
            leaf.unlock(&mut self.ep, owner, word);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    fn items(n: u64) -> Vec<(u64, Vec<u8>)> {
        let mut keys: Vec<u64> = (1..=n).map(dmem::hash::mix64).collect();
        keys.sort();
        keys.dedup();
        keys.into_iter().map(|k| (k, v(k))).collect()
    }

    #[test]
    fn load_and_search() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(3_000);
        let t = ChimeLearned::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        for (k, val) in &data {
            assert_eq!(c.search(*k), Some(val.clone()), "key {k:#x}");
        }
        assert_eq!(c.search(3), None);
    }

    #[test]
    fn neighborhood_reads_are_smaller_than_leaves() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(5_000);
        let plain = crate::Rolex::create(&pool, RolexConfig::default(), &data);
        let hop = ChimeLearned::create(&pool, RolexConfig::default(), &data);
        let mut pc = plain.client();
        let mut hc = hop.client();
        for (k, _) in data.iter().take(300) {
            pc.search(*k).unwrap();
            hc.search(*k).unwrap();
        }
        let pb = pc.stats().wire_bytes / 300;
        let hb = hc.stats().wire_bytes / 300;
        assert!(
            hb < pb,
            "hopscotch leaves should read fewer bytes: {hb} vs {pb}"
        );
    }

    #[test]
    fn insert_update_delete() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(1_000);
        let t = ChimeLearned::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        let mut new_keys = Vec::new();
        for s in 50_000..50_300u64 {
            let k = dmem::hash::mix64(s) | 1;
            if c.search(k).is_none() {
                c.insert(k, &v(k)).unwrap();
                new_keys.push(k);
            }
        }
        for k in &new_keys {
            assert_eq!(c.search(*k), Some(v(*k)), "inserted {k:#x}");
        }
        for (k, _) in data.iter().take(100) {
            assert!(c.update(*k, &v(k + 1)).unwrap());
            assert_eq!(c.search(*k), Some(v(k + 1)));
        }
        for (k, _) in data.iter().take(50) {
            assert!(c.delete(*k).unwrap());
            assert_eq!(c.search(*k), None);
        }
    }

    #[test]
    fn scan_sorted() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data: Vec<(u64, Vec<u8>)> = (1..=500u64).map(|k| (k * 2, v(k))).collect();
        let t = ChimeLearned::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        let mut out = Vec::new();
        c.scan(100, 20, &mut out);
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (50..70).map(|k| k * 2).collect();
        assert_eq!(got, want);
    }
}
