//! Greedy piecewise linear regression with a hard error bound.
//!
//! ROLEX trains piecewise linear models mapping keys to positions in the
//! sorted key array, guaranteeing `|predicted - actual| <= delta`. The
//! greedy shrinking-cone algorithm (FITing-tree style) builds segments in
//! one pass over the sorted keys.

/// One linear segment: covers keys `>= start_key` until the next segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First key covered.
    pub start_key: u64,
    /// Position of `start_key` in the global sorted order.
    pub start_pos: u64,
    /// Slope (positions per key unit).
    pub slope: f64,
}

/// A trained piecewise linear model with error bound `delta`.
#[derive(Debug, Clone)]
pub struct PlrModel {
    segments: Vec<Segment>,
    delta: u64,
    n: u64,
}

impl PlrModel {
    /// Trains on `keys` (strictly ascending) with error bound `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or not strictly ascending.
    pub fn train(keys: &[u64], delta: u64) -> Self {
        assert!(!keys.is_empty());
        let mut segments = Vec::new();
        let mut i0 = 0usize;
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        for i in 1..keys.len() {
            assert!(keys[i] > keys[i - 1], "keys must be strictly ascending");
            let dx = (keys[i] - keys[i0]) as f64;
            let dy = (i - i0) as f64;
            let d = delta as f64;
            let nlo = (dy - d) / dx;
            let nhi = (dy + d) / dx;
            let lo2 = lo.max(nlo);
            let hi2 = hi.min(nhi);
            if lo2 > hi2 {
                // Close the current segment with the midpoint slope.
                segments.push(Segment {
                    start_key: keys[i0],
                    start_pos: i0 as u64,
                    slope: mid_slope(lo, hi),
                });
                i0 = i;
                lo = f64::NEG_INFINITY;
                hi = f64::INFINITY;
            } else {
                lo = lo2;
                hi = hi2;
            }
        }
        segments.push(Segment {
            start_key: keys[i0],
            start_pos: i0 as u64,
            slope: mid_slope(lo, hi),
        });
        PlrModel {
            segments,
            delta,
            n: keys.len() as u64,
        }
    }

    /// Predicted position of `key` in the sorted order (clamped to range).
    pub fn predict(&self, key: u64) -> u64 {
        let i = match self.segments.binary_search_by_key(&key, |s| s.start_key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let s = self.segments[i];
        let p = s.start_pos as f64 + s.slope * key.saturating_sub(s.start_key) as f64;
        (p.max(0.0) as u64).min(self.n.saturating_sub(1))
    }

    /// The trained error bound.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Number of trained keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Compute-side bytes of the model (ROLEX's CN cache).
    pub fn cache_bytes(&self) -> u64 {
        self.segments.len() as u64 * 24 + 32
    }
}

fn mid_slope(lo: f64, hi: f64) -> f64 {
    match (lo.is_finite(), hi.is_finite()) {
        (true, true) => (lo + hi) / 2.0,
        (true, false) => lo.max(0.0),
        (false, true) => hi.max(0.0),
        (false, false) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bound_holds_on_linear_keys() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 7 + 3).collect();
        let m = PlrModel::train(&keys, 8);
        assert!(m.segments() <= 3, "linear data needs ~1 segment");
        for (i, &k) in keys.iter().enumerate() {
            let p = m.predict(k) as i64;
            assert!((p - i as i64).abs() <= 8, "key {k}: |{p} - {i}| > 8");
        }
    }

    #[test]
    fn error_bound_holds_on_random_keys() {
        let mut keys: Vec<u64> = (1..5_000u64).map(dmem::hash::mix64).collect();
        keys.sort();
        keys.dedup();
        let m = PlrModel::train(&keys, 16);
        for (i, &k) in keys.iter().enumerate() {
            let p = m.predict(k) as i64;
            assert!(
                (p - i as i64).abs() <= 16,
                "key {k}: |{p} - {i}| > 16 ({} segs)",
                m.segments()
            );
        }
    }

    #[test]
    fn clustered_keys_make_more_segments() {
        // Two dense clusters far apart.
        let mut keys: Vec<u64> = (0..1_000).collect();
        keys.extend((0..1_000u64).map(|i| 1 << 40 | i));
        let m = PlrModel::train(&keys, 4);
        assert!(m.segments() >= 2);
        for (i, &k) in keys.iter().enumerate() {
            let p = m.predict(k) as i64;
            assert!((p - i as i64).abs() <= 4);
        }
    }

    #[test]
    fn predict_clamps_out_of_range() {
        let keys: Vec<u64> = (100..200).collect();
        let m = PlrModel::train(&keys, 4);
        assert_eq!(m.predict(1), 0);
        assert!(m.predict(u64::MAX) <= 99);
    }

    #[test]
    fn single_key_model() {
        let m = PlrModel::train(&[42], 4);
        assert_eq!(m.predict(42), 0);
        assert_eq!(m.segments(), 1);
    }

    #[test]
    fn cache_bytes_scale_with_segments() {
        let keys: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let m = PlrModel::train(&keys, 4);
        assert_eq!(m.cache_bytes(), m.segments() as u64 * 24 + 32);
    }
}
