//! The ROLEX learned index over disaggregated memory.
//!
//! Leaves are Sherman-format sorted nodes of a small span (default 16) laid
//! out **contiguously** at load time, so a leaf address is computable from
//! its index. Each compute node keeps only the piecewise-linear model: a
//! search predicts a position, derives the candidate leaf window from the
//! error bound `delta`, and fetches those leaves in one doorbell batch (the
//! paper's "fetch two leaf nodes per search"). Overflow inserts go to
//! synonym leaves chained from the owner leaf's sibling pointer, protected
//! by the owner's lock; models are pre-trained and never retrained (the
//! paper likewise excludes ROLEX from YCSB LOAD).

use std::sync::Arc;

use dmem::{ChunkAlloc, ClientStats, Endpoint, GlobalAddr, IndexError, Pool, RangeIndex};
use sherman::leaf::{LeafSnapshot, ShermanLeafLayout, ShermanLeafOps};

use crate::plr::PlrModel;

const OP_RETRY_LIMIT: usize = 100_000;

/// ROLEX configuration.
#[derive(Debug, Clone, Copy)]
pub struct RolexConfig {
    /// Leaf span (entries per leaf). Paper default: 16.
    pub span: usize,
    /// Model error bound. Paper default: 16 (equal to the span).
    pub delta: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Store values out-of-line (ROLEX-Indirect).
    pub indirect_values: bool,
    /// Use hopscotch leaf nodes (CHIME-Learned, Fig. 15b). Handled by
    /// [`crate::learned_hop::ChimeLearned`]; plain [`Rolex`] ignores it.
    pub hopscotch_leaves: bool,
}

impl Default for RolexConfig {
    fn default() -> Self {
        RolexConfig {
            span: 16,
            delta: 16,
            value_size: 8,
            indirect_values: false,
            hopscotch_leaves: false,
        }
    }
}

struct Shared {
    pool: Arc<Pool>,
    cfg: RolexConfig,
    leaf: ShermanLeafOps,
    base: GlobalAddr,
    num_leaves: usize,
    model: PlrModel,
}

/// A handle to a ROLEX index.
#[derive(Clone)]
pub struct Rolex {
    shared: Arc<Shared>,
}

/// One ROLEX client.
pub struct RolexClient {
    shared: Arc<Shared>,
    ep: Endpoint,
    alloc: ChunkAlloc,
}

impl Rolex {
    /// Bulk-loads `items` (sorted by key, unique, non-zero keys) and trains
    /// the model.
    pub fn create(pool: &Arc<Pool>, cfg: RolexConfig, items: &[(u64, Vec<u8>)]) -> Self {
        assert!(!items.is_empty());
        assert!(items.windows(2).all(|p| p[0].0 < p[1].0), "items must be sorted");
        let leaf = ShermanLeafOps {
            layout: ShermanLeafLayout {
                span: cfg.span,
                value_size: if cfg.indirect_values { 8 } else { cfg.value_size },
            },
        };
        let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        let model = PlrModel::train(&keys, cfg.delta);
        let num_leaves = items.len().div_ceil(cfg.span);
        let node_size = leaf.layout.node_size().div_ceil(64) * 64;
        let base = pool
            .mn(0)
            .alloc((num_leaves * node_size) as u64)
            .expect("pool too small for ROLEX load");
        let shared = Arc::new(Shared {
            pool: Arc::clone(pool),
            cfg,
            leaf,
            base,
            num_leaves,
            model,
        });
        let mut ep = Endpoint::new(Arc::clone(&shared.pool));
        let mut alloc = ChunkAlloc::with_defaults();
        for i in 0..num_leaves {
            let chunk = &items[i * cfg.span..((i + 1) * cfg.span).min(items.len())];
            let lo = if i == 0 { 0 } else { chunk[0].0 };
            let hi = items
                .get((i + 1) * cfg.span)
                .map(|&(k, _)| k)
                .unwrap_or(u64::MAX);
            let mut ks = Vec::with_capacity(chunk.len());
            let mut vs = Vec::with_capacity(chunk.len());
            for (k, v) in chunk {
                ks.push(*k);
                if cfg.indirect_values {
                    let block_len = 16 + cfg.value_size;
                    let addr = alloc.alloc(&mut ep, block_len as u64).expect("pool");
                    let mut block = Vec::with_capacity(block_len);
                    block.extend_from_slice(&k.to_le_bytes());
                    block.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    block.extend_from_slice(v);
                    block.resize(block_len, 0);
                    ep.write(addr, &block);
                    vs.push(addr.raw().to_le_bytes().to_vec());
                } else {
                    let mut v = v.clone();
                    v.resize(cfg.value_size, 0);
                    vs.push(v);
                }
            }
            shared.leaf.write_full(
                &mut ep,
                shared.leaf_addr(i),
                0,
                &ks,
                &vs,
                GlobalAddr::NULL,
                (lo, hi),
                false,
            );
        }
        Rolex { shared }
    }

    /// Creates a client (the model is shared — it is the CN cache).
    pub fn client(&self) -> RolexClient {
        RolexClient {
            shared: Arc::clone(&self.shared),
            ep: Endpoint::new(Arc::clone(&self.shared.pool)),
            alloc: ChunkAlloc::sim_scaled(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RolexConfig {
        &self.shared.cfg
    }

    /// Number of model segments (Fig. 14 cache accounting).
    pub fn model_segments(&self) -> usize {
        self.shared.model.segments()
    }
}

impl Shared {
    fn leaf_addr(&self, i: usize) -> GlobalAddr {
        let node_size = (self.leaf.layout.node_size().div_ceil(64) * 64) as u64;
        self.base.add(i as u64 * node_size)
    }

    /// Candidate leaf-index window for `key` from the model.
    fn candidates(&self, key: u64, widen: usize) -> (usize, usize) {
        let pos = self.model.predict(key);
        let d = self.cfg.delta + (widen as u64) * self.cfg.span as u64;
        let lo = (pos.saturating_sub(d) as usize) / self.cfg.span;
        let hi = ((pos + d) as usize / self.cfg.span).min(self.num_leaves - 1);
        (lo.min(self.num_leaves - 1), hi)
    }
}

impl RolexClient {
    /// Reads the owner leaf (whose fences contain `key`), widening the
    /// candidate window on (rare) model non-monotonicity at segment joins.
    fn read_owner(&mut self, key: u64) -> (usize, LeafSnapshot) {
        for widen in 0..OP_RETRY_LIMIT {
            let (lo, hi) = self.shared.candidates(key, widen);
            let addrs: Vec<GlobalAddr> =
                (lo..=hi).map(|i| self.shared.leaf_addr(i)).collect();
            let snaps = self.shared.leaf.read_batch(&mut self.ep, &addrs);
            for (i, snap) in snaps.into_iter().enumerate() {
                if dmem::hash::in_range(key, snap.fences.0, snap.fences.1) {
                    return (lo + i, snap);
                }
            }
        }
        panic!("rolex owner not found for key {key}");
    }

    /// Follows the synonym chain of a leaf, returning each snapshot.
    fn chain(&mut self, head: GlobalAddr) -> Vec<(GlobalAddr, LeafSnapshot)> {
        let mut out = Vec::new();
        let mut addr = head;
        while !addr.is_null() {
            let snap = self.shared.leaf.read(&mut self.ep, addr);
            let next = snap.sibling;
            out.push((addr, snap));
            addr = next;
        }
        out
    }

    fn store_value(&mut self, key: u64, value: &[u8]) -> Result<Vec<u8>, IndexError> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            let mut v = value.to_vec();
            v.resize(cfg.value_size, 0);
            return Ok(v);
        }
        let block_len = 16 + cfg.value_size;
        let addr = self.alloc.alloc(&mut self.ep, block_len as u64)?;
        let mut block = Vec::with_capacity(block_len);
        block.extend_from_slice(&key.to_le_bytes());
        block.extend_from_slice(&(value.len() as u64).to_le_bytes());
        block.extend_from_slice(value);
        block.resize(block_len, 0);
        self.ep.write(addr, &block);
        Ok(addr.raw().to_le_bytes().to_vec())
    }

    fn resolve_value(&mut self, stored: Vec<u8>) -> Vec<u8> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            return stored;
        }
        let addr = GlobalAddr::from_raw(u64::from_le_bytes(stored[..8].try_into().unwrap()));
        let mut block = vec![0u8; 16 + cfg.value_size];
        self.ep.read(addr, &mut block);
        let len = u64::from_le_bytes(block[8..16].try_into().unwrap()) as usize;
        block[16..16 + len.min(cfg.value_size)].to_vec()
    }
}

impl RangeIndex for RolexClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let stored = self.store_value(key, value)?;
        let leaf = self.shared.leaf;
        for _ in 0..OP_RETRY_LIMIT {
            let (owner_idx, _) = self.read_owner(key);
            let owner_addr = self.shared.leaf_addr(owner_idx);
            leaf.lock(&mut self.ep, owner_addr);
            let snap = leaf.read(&mut self.ep, owner_addr);
            if !dmem::hash::in_range(key, snap.fences.0, snap.fences.1) {
                leaf.unlock(&mut self.ep, owner_addr);
                continue;
            }
            // Duplicate in the owner?
            if let Some((i, _)) = snap.find(key) {
                leaf.write_entry_and_unlock(&mut self.ep, owner_addr, &snap, i, &stored);
                return Ok(());
            }
            // Duplicate in the synonym chain? (A key that overflowed while
            // the owner was full stays in the chain even after owner
            // deletions free up space.)
            if !snap.sibling.is_null() {
                let chain = self.chain(snap.sibling);
                if let Some((addr, cs, i)) = chain
                    .iter()
                    .find_map(|(a, cs)| cs.find(key).map(|(i, _)| (*a, cs.clone(), i)))
                {
                    leaf.write_entry_and_unlock(&mut self.ep, addr, &cs, i, &stored);
                    leaf.unlock(&mut self.ep, owner_addr);
                    return Ok(());
                }
            }
            // Room in the owner?
            if snap.keys.len() < leaf.layout.span {
                let mut ks = snap.keys.clone();
                let mut vs = snap.values.clone();
                let i = ks.binary_search(&key).unwrap_err();
                ks.insert(i, key);
                vs.insert(i, stored);
                leaf.write_suffix_and_unlock(&mut self.ep, owner_addr, &snap, i, &ks, &vs);
                return Ok(());
            }
            // Walk the synonym chain under the owner's lock.
            let chain = self.chain(snap.sibling);
            for (addr, s) in &chain {
                if let Some((i, _)) = s.find(key) {
                    leaf.write_entry_and_unlock(&mut self.ep, *addr, s, i, &stored);
                    leaf.unlock(&mut self.ep, owner_addr);
                    return Ok(());
                }
            }
            for (addr, s) in &chain {
                if s.keys.len() < leaf.layout.span {
                    let mut ks = s.keys.clone();
                    let mut vs = s.values.clone();
                    let i = ks.binary_search(&key).unwrap_err();
                    ks.insert(i, key);
                    vs.insert(i, stored);
                    leaf.write_suffix_and_unlock(&mut self.ep, *addr, s, i, &ks, &vs);
                    leaf.unlock(&mut self.ep, owner_addr);
                    return Ok(());
                }
            }
            // Allocate a new synonym leaf at the chain head.
            let syn_addr = self
                .alloc
                .alloc(&mut self.ep, leaf.layout.node_size() as u64)?;
            leaf.write_full(
                &mut self.ep,
                syn_addr,
                0,
                &[key],
                std::slice::from_ref(&stored),
                snap.sibling,
                snap.fences,
                false,
            );
            // Publish: rewrite the owner header (sibling -> new synonym) and
            // release the lock in the same round-trip.
            let mut snap2 = snap.clone();
            snap2.sibling = syn_addr;
            let count = snap2.keys.len();
            let ks = snap2.keys.clone();
            let vs = snap2.values.clone();
            let _ = count;
            leaf.write_suffix_and_unlock(&mut self.ep, owner_addr, &snap2, ks.len(), &ks, &vs);
            return Ok(());
        }
        panic!("rolex insert retry limit for key {key}");
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        assert_ne!(key, 0, "key 0 is reserved");
        let (_, snap) = self.read_owner(key);
        self.ep
            .note_app_bytes(self.shared.cfg.value_size as u64 + 8);
        if let Some((_, v)) = snap.find(key) {
            let v = v.to_vec();
            return Some(self.resolve_value(v));
        }
        // Overflow chain.
        let chain = self.chain(snap.sibling);
        for (_, s) in &chain {
            if let Some((_, v)) = s.find(key) {
                let v = v.to_vec();
                return Some(self.resolve_value(v));
            }
        }
        None
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let stored = self.store_value(key, value)?;
        let leaf = self.shared.leaf;
        for _ in 0..OP_RETRY_LIMIT {
            let (owner_idx, owner) = self.read_owner(key);
            // Find the containing leaf (owner or synonym).
            let mut target = None;
            if owner.find(key).is_some() {
                target = Some(self.shared.leaf_addr(owner_idx));
            } else {
                for (addr, s) in self.chain(owner.sibling) {
                    if s.find(key).is_some() {
                        target = Some(addr);
                        break;
                    }
                }
            }
            let Some(addr) = target else {
                return Ok(false);
            };
            leaf.lock(&mut self.ep, addr);
            let snap = leaf.read(&mut self.ep, addr);
            match snap.find(key) {
                Some((i, _)) => {
                    leaf.write_entry_and_unlock(&mut self.ep, addr, &snap, i, &stored);
                    return Ok(true);
                }
                None => {
                    leaf.unlock(&mut self.ep, addr);
                    // Key moved (racing delete+insert); retry.
                }
            }
        }
        panic!("rolex update retry limit for key {key}");
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let leaf = self.shared.leaf;
        for _ in 0..OP_RETRY_LIMIT {
            let (owner_idx, owner) = self.read_owner(key);
            let mut target = None;
            if owner.find(key).is_some() {
                target = Some(self.shared.leaf_addr(owner_idx));
            } else {
                for (addr, s) in self.chain(owner.sibling) {
                    if s.find(key).is_some() {
                        target = Some(addr);
                        break;
                    }
                }
            }
            let Some(addr) = target else {
                return Ok(false);
            };
            leaf.lock(&mut self.ep, addr);
            let snap = leaf.read(&mut self.ep, addr);
            match snap.find(key) {
                Some((i, _)) => {
                    let mut ks = snap.keys.clone();
                    let mut vs = snap.values.clone();
                    ks.remove(i);
                    vs.remove(i);
                    leaf.write_suffix_and_unlock(&mut self.ep, addr, &snap, i, &ks, &vs);
                    return Ok(true);
                }
                None => {
                    leaf.unlock(&mut self.ep, addr);
                }
            }
        }
        panic!("rolex delete retry limit for key {key}");
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        assert_ne!(start, 0, "key 0 is reserved");
        if count == 0 {
            return;
        }
        let (mut idx, _) = self.read_owner(start);
        let mut collected: Vec<(u64, Vec<u8>)> = Vec::new();
        let per_leaf = self.shared.cfg.span;
        while idx < self.shared.num_leaves {
            let need = count.saturating_sub(collected.len());
            let take = need
                .div_ceil(per_leaf)
                .max(1)
                .min(self.shared.num_leaves - idx);
            let addrs: Vec<GlobalAddr> = (idx..idx + take)
                .map(|i| self.shared.leaf_addr(i))
                .collect();
            let snaps = self.shared.leaf.read_batch(&mut self.ep, &addrs);
            for snap in snaps {
                for (k, v) in snap.keys.iter().zip(snap.values.iter()) {
                    if *k >= start {
                        collected.push((*k, v.clone()));
                    }
                }
                for (_, s) in self.chain(snap.sibling) {
                    for (k, v) in s.keys.iter().zip(s.values.iter()) {
                        if *k >= start {
                            collected.push((*k, v.clone()));
                        }
                    }
                }
            }
            idx += take;
            if collected.len() >= count {
                break;
            }
        }
        collected.sort_by_key(|&(k, _)| k);
        collected.truncate(count);
        for (k, v) in collected {
            let v = self.resolve_value(v);
            out.push((k, v));
        }
    }

    fn stats(&self) -> &ClientStats {
        self.ep.stats()
    }

    fn profile(&self) -> Option<&dmem::OpProfile> {
        Some(self.ep.profile())
    }

    fn clock_ns(&self) -> u64 {
        self.ep.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.shared.model.cache_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    fn items(n: u64) -> Vec<(u64, Vec<u8>)> {
        let mut keys: Vec<u64> = (1..=n).map(dmem::hash::mix64).collect();
        keys.sort();
        keys.dedup();
        keys.into_iter().map(|k| (k, v(k))).collect()
    }

    #[test]
    fn bulk_load_and_search() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(5_000);
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        for (k, val) in &data {
            assert_eq!(c.search(*k), Some(val.clone()), "key {k:#x}");
        }
        assert_eq!(c.search(3), None);
    }

    #[test]
    fn inserts_go_to_owner_or_synonym() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(2_000);
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        // Insert new keys interleaved with existing ones.
        let mut new_keys = Vec::new();
        for s in 10_000..10_500u64 {
            let k = dmem::hash::mix64(s) | 1;
            if c.search(k).is_none() {
                c.insert(k, &v(k)).unwrap();
                new_keys.push(k);
            }
        }
        for k in &new_keys {
            assert_eq!(c.search(*k), Some(v(*k)), "inserted {k:#x}");
        }
        for (k, val) in &data {
            assert_eq!(c.search(*k), Some(val.clone()), "preloaded {k:#x}");
        }
    }

    #[test]
    fn update_delete_roundtrip() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(1_000);
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        for (k, _) in data.iter().take(200) {
            assert!(c.update(*k, &v(k + 1)).unwrap());
            assert_eq!(c.search(*k), Some(v(k + 1)));
        }
        assert!(!c.update(3, &v(0)).unwrap());
        for (k, _) in data.iter().take(100) {
            assert!(c.delete(*k).unwrap());
            assert_eq!(c.search(*k), None);
        }
    }

    #[test]
    fn scan_sorted_across_leaves() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data: Vec<(u64, Vec<u8>)> = (1..=1_000u64).map(|k| (k * 2, v(k))).collect();
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        let mut out = Vec::new();
        c.scan(100, 30, &mut out);
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (50..80).map(|k| k * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn search_reads_about_two_leaves() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(10_000);
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        let mut c = t.client();
        let before = c.stats().clone();
        for (k, _) in data.iter().take(500) {
            c.search(*k).unwrap();
        }
        let d = c.stats().since(&before);
        let reads_per_op = d.reads as f64 / 500.0;
        assert!(
            (1.5..=3.5).contains(&reads_per_op),
            "reads/op = {reads_per_op}"
        );
        // All candidate leaves arrive in one round-trip.
        let rtts_per_op = d.rtts as f64 / 500.0;
        assert!(rtts_per_op < 1.5, "rtts/op = {rtts_per_op}");
    }

    #[test]
    fn concurrent_mixed_ops() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let data = items(2_000);
        let t = Rolex::create(&pool, RolexConfig::default(), &data);
        crossbeam::thread::scope(|s| {
            for tid in 0..3u64 {
                let t = t.clone();
                let data = data.clone();
                s.spawn(move |_| {
                    let mut c = t.client();
                    for i in 0..300u64 {
                        let (k, _) = &data[((i * 7 + tid * 13) % 2_000) as usize];
                        assert!(c.search(*k).is_some());
                        c.update(*k, &v(i)).unwrap();
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn indirect_values_roundtrip() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let cfg = RolexConfig {
            indirect_values: true,
            value_size: 64,
            ..Default::default()
        };
        let data: Vec<(u64, Vec<u8>)> = (1..=500u64).map(|k| (k * 3, vec![k as u8; 20])).collect();
        let t = Rolex::create(&pool, cfg, &data);
        let mut c = t.client();
        for (k, val) in &data {
            assert_eq!(c.search(*k), Some(val.clone()));
        }
        c.insert(1, &[7u8; 10]).unwrap();
        assert_eq!(c.search(1), Some(vec![7u8; 10]));
    }
}
