//! ROLEX: a learned range index on disaggregated memory (FAST'23), the
//! learned-index baseline of the CHIME evaluation.
//!
//! ROLEX keeps piecewise-linear models (with a hard error bound) on every
//! compute node as the *entire* index cache; leaves live contiguously in the
//! memory pool so leaf addresses are computable. Each search fetches the
//! model-predicted candidate leaves (typically two, the paper's
//! amplification factor of 2x span) in one doorbell batch; overflow inserts
//! chain synonym leaves off the owner leaf.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod learned_hop;
pub mod plr;
pub mod tree;

pub use learned_hop::{ChimeLearned, ChimeLearnedClient};
pub use plr::PlrModel;
pub use tree::{Rolex, RolexClient, RolexConfig};
