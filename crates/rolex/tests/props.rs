//! Property tests for ROLEX: the PLR error bound on arbitrary sorted key
//! sets and index/model equivalence for both leaf formats.

use std::collections::BTreeMap;

use dmem::{Pool, RangeIndex};
use proptest::prelude::*;
use rolex::{ChimeLearned, PlrModel, Rolex, RolexConfig};

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

proptest! {
    /// |predicted - actual| <= delta for every trained key, on arbitrary
    /// strictly-ascending key sets.
    #[test]
    fn plr_error_bound(
        raw in proptest::collection::btree_set(1u64..(1 << 50), 1..600),
        delta in 2u64..64,
    ) {
        let keys: Vec<u64> = raw.into_iter().collect();
        let m = PlrModel::train(&keys, delta);
        for (i, &k) in keys.iter().enumerate() {
            let p = m.predict(k) as i64;
            prop_assert!(
                (p - i as i64).abs() <= delta as i64,
                "key {k}: |{p} - {i}| > {delta}"
            );
        }
        prop_assert!(m.segments() >= 1);
        prop_assert_eq!(m.n(), keys.len() as u64);
    }
}

fn model_check(hopscotch: bool, seed_ops: Vec<(u64, u8)>) -> Result<(), TestCaseError> {
    let pool = Pool::with_defaults(1, 256 << 20);
    let pre: Vec<(u64, Vec<u8>)> = (1..=500u64).map(|k| (k * 4, v(k))).collect();
    let cfg = RolexConfig {
        hopscotch_leaves: hopscotch,
        ..Default::default()
    };
    let mut model: BTreeMap<u64, Vec<u8>> = pre.iter().cloned().collect();
    let mut c: Box<dyn RangeIndex> = if hopscotch {
        Box::new(ChimeLearned::create(&pool, cfg, &pre).client())
    } else {
        Box::new(Rolex::create(&pool, cfg, &pre).client())
    };
    for (seed, op) in seed_ops {
        let key = 1 + seed % 2_500;
        match op {
            0 | 1 => {
                c.insert(key, &v(key)).unwrap();
                model.insert(key, v(key));
            }
            2 => {
                prop_assert_eq!(c.delete(key).unwrap(), model.remove(&key).is_some());
            }
            _ => {
                prop_assert_eq!(c.search(key), model.get(&key).cloned());
            }
        }
    }
    for (k, val) in &model {
        prop_assert_eq!(c.search(*k), Some(val.clone()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sorted-leaf ROLEX agrees with a BTreeMap (synonym chains included).
    #[test]
    fn rolex_matches_model(ops in proptest::collection::vec((any::<u64>(), 0u8..4), 1..150)) {
        model_check(false, ops)?;
    }

    /// CHIME-Learned (hopscotch leaves) agrees with a BTreeMap.
    #[test]
    fn chime_learned_matches_model(ops in proptest::collection::vec((any::<u64>(), 0u8..4), 1..150)) {
        model_check(true, ops)?;
    }
}
