//! Integration test anchor crate; tests live in /tests.

#![forbid(unsafe_code)]
