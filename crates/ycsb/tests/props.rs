//! Property tests for the workload generators.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ycsb::{KeySpace, Op, OpGen, Workload, WorkloadState, Zipfian};

proptest! {
    /// Zipfian samples stay in range and rank 0 is (weakly) the mode.
    #[test]
    fn zipfian_range_and_mode(n in 2u64..5_000, theta in 0.3f64..0.99, seed in any::<u64>()) {
        let z = Zipfian::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c0 = 0u32;
        let mut cmid = 0u32;
        let mid = n / 2;
        for _ in 0..4_000 {
            let r = z.next(&mut rng);
            prop_assert!(r < n);
            if r == 0 { c0 += 1; }
            if r == mid { cmid += 1; }
        }
        // The head must not be rarer than a mid-rank item (allow slack for
        // sampling noise at small n).
        prop_assert!(c0 + 25 >= cmid, "rank0={c0} mid={cmid}");
    }

    /// The key space is injective over large windows and never yields 0.
    #[test]
    fn keyspace_injective_window(start in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000u64 {
            let k = KeySpace::key(start.wrapping_add(i));
            prop_assert_ne!(k, 0);
            prop_assert!(seen.insert(k));
        }
    }

    /// Every generated op targets a plausible key: reads/updates hit the
    /// loaded id space, inserts always use fresh sequence numbers.
    #[test]
    fn ops_target_valid_keys(seed in any::<u64>()) {
        let loaded = 1_000u64;
        let state = WorkloadState::new(loaded);
        let preloaded: std::collections::HashSet<u64> =
            (0..loaded).map(KeySpace::key).collect();
        for w in [Workload::A, Workload::B, Workload::C, Workload::E] {
            let mut g = OpGen::new(w, Arc::clone(&state), seed);
            for _ in 0..300 {
                match g.next_op() {
                    Op::Read(k) | Op::Update(k) | Op::Scan(k, _) => {
                        prop_assert!(preloaded.contains(&k), "unloaded key {k}");
                    }
                    Op::Insert(k) => {
                        prop_assert!(!preloaded.contains(&k), "insert reused {k}");
                    }
                }
            }
        }
    }
}
