//! Request distributions (YCSB-compatible).
//!
//! The Zipfian generator follows Gray et al.'s rejection-free construction,
//! as used by the original YCSB client: `zeta(n, θ)` is computed once and
//! ranks are drawn in O(1) per sample. The scrambled variant decorrelates
//! rank from item id with a 64-bit mixer.

use dmem::hash::mix64;
use rand::Rng;

/// Default YCSB Zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A Zipfian distribution over `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Scrambled Zipfian: Zipfian popularity, but popular items are spread
/// uniformly over the id space (the YCSB default for workloads A–C).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled Zipfian over `0..n`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Draws an item id in `0..n`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        mix64(self.inner.next(rng)) % self.inner.n()
    }
}

/// "Latest" distribution (YCSB D): recency-skewed over a growing id space.
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Creates the distribution for an initial population of `n` items.
    pub fn new(n: u64) -> Self {
        Latest {
            zipf: Zipfian::new(n, ZIPFIAN_CONSTANT),
        }
    }

    /// Draws an id in `0..current`, skewed toward `current - 1`.
    pub fn next<R: Rng>(&self, rng: &mut R, current: u64) -> u64 {
        assert!(current > 0);
        let r = self.zipf.next(rng) % current;
        current - 1 - r
    }
}

/// Uniform distribution over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Creates a uniform distribution over `0..n`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        Uniform { n }
    }

    /// Draws an id.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_head_is_heavy() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0;
        let trials = 100_000;
        for _ in 0..trials {
            if z.next(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top-1% of ranks draw well over a third.
        assert!(head as f64 / trials as f64 > 0.35, "head share {head}");
    }

    #[test]
    fn zipfian_skew_increases_with_theta() {
        let mut rng = SmallRng::seed_from_u64(7);
        let share = |theta: f64, rng: &mut SmallRng| {
            let z = Zipfian::new(10_000, theta);
            let mut top = 0;
            for _ in 0..50_000 {
                if z.next(rng) == 0 {
                    top += 1;
                }
            }
            top
        };
        let low = share(0.5, &mut rng);
        let high = share(0.99, &mut rng);
        assert!(high > 2 * low, "low={low} high={high}");
    }

    #[test]
    fn zipfian_in_range() {
        let z = Zipfian::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 100);
        }
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let s = ScrambledZipfian::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        // The hottest id should no longer be id 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(s.next(&mut rng)).or_insert(0usize) += 1;
        }
        let (hottest, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(counts.values().all(|&c| c <= 50_000));
        assert_ne!(*hottest, 0, "scrambling should displace rank 0");
    }

    #[test]
    fn latest_prefers_recent() {
        let l = Latest::new(1_000);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut recent = 0;
        for _ in 0..10_000 {
            let id = l.next(&mut rng, 5_000);
            assert!(id < 5_000);
            if id >= 4_900 {
                recent += 1;
            }
        }
        assert!(recent > 3_000, "recent draws: {recent}");
    }

    #[test]
    fn uniform_covers_range() {
        let u = Uniform::new(10);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[u.next(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
