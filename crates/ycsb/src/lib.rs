//! YCSB-style workload generation for the CHIME evaluation.
//!
//! Implements the request distributions (Zipfian with Gray's O(1) sampler,
//! scrambled Zipfian, latest, uniform) and the six workloads the paper
//! evaluates (A/B/C/D/E/LOAD) over a deterministic hashed key space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod workload;

pub use dist::{Latest, ScrambledZipfian, Uniform, Zipfian, ZIPFIAN_CONSTANT};
pub use workload::{KeySpace, Op, OpGen, Workload, WorkloadState};
