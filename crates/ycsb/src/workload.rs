//! YCSB core workloads A–E plus LOAD, over a shared key space.
//!
//! The key space maps sequence numbers to unique, pseudo-random, non-zero
//! 64-bit keys (the SplitMix64 mixer is a bijection), mirroring YCSB's
//! hashed `user###` keys. Inserts draw fresh sequence numbers from a shared
//! atomic counter so concurrent clients never collide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dmem::hash::mix64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::{Latest, ScrambledZipfian, Uniform, ZIPFIAN_CONSTANT};

/// Maps YCSB sequence numbers to unique non-zero keys.
#[derive(Debug, Clone, Copy)]
pub struct KeySpace;

impl KeySpace {
    /// The key of sequence number `seq`.
    pub fn key(seq: u64) -> u64 {
        let k = mix64(seq.wrapping_add(1));
        if k == 0 {
            0x5EED_5EED_5EED_5EED
        } else {
            k
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Read(u64),
    /// In-place value update.
    Update(u64),
    /// Insert of a fresh key.
    Insert(u64),
    /// Range scan of up to `1` items starting at `0`.
    Scan(u64, usize),
}

impl Op {
    /// The key this operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Read(k) | Op::Update(k) | Op::Insert(k) | Op::Scan(k, _) => k,
        }
    }
}

/// The six evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50% search, 50% update, Zipfian.
    A,
    /// 95% search, 5% update, Zipfian.
    B,
    /// 100% search, Zipfian.
    C,
    /// 95% search, 5% insert, latest distribution.
    D,
    /// 95% scan (up to 100 items), 5% insert, Zipfian.
    E,
    /// 100% insert.
    Load,
}

impl Workload {
    /// All six workloads, in the paper's presentation order.
    pub const ALL: [Workload; 6] = [
        Workload::A,
        Workload::B,
        Workload::C,
        Workload::D,
        Workload::E,
        Workload::Load,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::E => "E",
            Workload::Load => "LOAD",
        }
    }

    /// Whether the workload performs inserts.
    pub fn has_inserts(self) -> bool {
        matches!(self, Workload::D | Workload::E | Workload::Load)
    }
}

/// Shared, thread-safe workload state (insert counter).
#[derive(Debug)]
pub struct WorkloadState {
    /// Number of keys present (loaded + inserted so far).
    pub count: AtomicU64,
}

impl WorkloadState {
    /// State for a store preloaded with `loaded` keys.
    pub fn new(loaded: u64) -> Arc<Self> {
        Arc::new(WorkloadState {
            count: AtomicU64::new(loaded),
        })
    }
}

/// A per-client operation generator.
///
/// # Examples
///
/// ```
/// use ycsb::{Op, OpGen, Workload, WorkloadState};
///
/// let state = WorkloadState::new(10_000);
/// let mut gen = OpGen::new(Workload::A, state, 7);
/// match gen.next_op() {
///     Op::Read(k) | Op::Update(k) => assert_ne!(k, 0),
///     other => panic!("YCSB A only reads/updates: {other:?}"),
/// }
/// ```
pub struct OpGen {
    workload: Workload,
    rng: SmallRng,
    zipf: ScrambledZipfian,
    latest: Latest,
    uniform: Uniform,
    state: Arc<WorkloadState>,
    theta: f64,
}

impl OpGen {
    /// Creates a generator for `workload` over `state`, seeded per client.
    pub fn new(workload: Workload, state: Arc<WorkloadState>, seed: u64) -> Self {
        Self::with_theta(workload, state, seed, ZIPFIAN_CONSTANT)
    }

    /// Like [`OpGen::new`] with an explicit Zipfian constant (Fig. 18a).
    pub fn with_theta(
        workload: Workload,
        state: Arc<WorkloadState>,
        seed: u64,
        theta: f64,
    ) -> Self {
        let n = state.count.load(Ordering::Relaxed).max(1);
        OpGen {
            workload,
            rng: SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00),
            zipf: ScrambledZipfian::new(n, theta),
            latest: Latest::new(n),
            uniform: Uniform::new(n),
            state,
            theta,
        }
    }

    /// The Zipfian constant in use.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn existing_key(&mut self) -> u64 {
        KeySpace::key(self.zipf.next(&mut self.rng))
    }

    fn fresh_key(&mut self) -> u64 {
        KeySpace::key(self.state.count.fetch_add(1, Ordering::Relaxed))
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Op {
        let p: f64 = self.rng.gen();
        match self.workload {
            Workload::A => {
                if p < 0.5 {
                    Op::Read(self.existing_key())
                } else {
                    Op::Update(self.existing_key())
                }
            }
            Workload::B => {
                if p < 0.95 {
                    Op::Read(self.existing_key())
                } else {
                    Op::Update(self.existing_key())
                }
            }
            Workload::C => Op::Read(self.existing_key()),
            Workload::D => {
                if p < 0.95 {
                    let cur = self.state.count.load(Ordering::Relaxed).max(1);
                    Op::Read(KeySpace::key(self.latest.next(&mut self.rng, cur)))
                } else {
                    Op::Insert(self.fresh_key())
                }
            }
            Workload::E => {
                if p < 0.95 {
                    let len = self.rng.gen_range(1..=100);
                    Op::Scan(self.existing_key(), len)
                } else {
                    Op::Insert(self.fresh_key())
                }
            }
            Workload::Load => Op::Insert(self.fresh_key()),
        }
    }

    /// Convenience: draws an existing key id (uniform), for tests.
    pub fn uniform_key(&mut self) -> u64 {
        KeySpace::key(self.uniform.next(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_space_unique_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..100_000u64 {
            let k = KeySpace::key(s);
            assert_ne!(k, 0);
            assert!(seen.insert(k), "duplicate key for seq {s}");
        }
    }

    #[test]
    fn workload_mixes_match_spec() {
        let state = WorkloadState::new(10_000);
        let trials = 50_000;
        let frac = |w: Workload, pred: fn(&Op) -> bool| {
            let mut g = OpGen::new(w, Arc::clone(&state), 7);
            let mut c = 0;
            for _ in 0..trials {
                if pred(&g.next_op()) {
                    c += 1;
                }
            }
            c as f64 / trials as f64
        };
        let read = |o: &Op| matches!(o, Op::Read(_));
        let upd = |o: &Op| matches!(o, Op::Update(_));
        let ins = |o: &Op| matches!(o, Op::Insert(_));
        let scan = |o: &Op| matches!(o, Op::Scan(..));
        assert!((frac(Workload::A, read) - 0.5).abs() < 0.02);
        assert!((frac(Workload::A, upd) - 0.5).abs() < 0.02);
        assert!((frac(Workload::B, read) - 0.95).abs() < 0.01);
        assert!((frac(Workload::C, read) - 1.0).abs() < 1e-9);
        assert!((frac(Workload::D, ins) - 0.05).abs() < 0.01);
        assert!((frac(Workload::E, scan) - 0.95).abs() < 0.01);
        assert!((frac(Workload::Load, ins) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inserts_use_fresh_keys() {
        let state = WorkloadState::new(100);
        let mut g = OpGen::new(Workload::Load, Arc::clone(&state), 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            match g.next_op() {
                Op::Insert(k) => assert!(seen.insert(k)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(state.count.load(Ordering::Relaxed), 1_100);
    }

    #[test]
    fn scan_lengths_bounded() {
        let state = WorkloadState::new(1_000);
        let mut g = OpGen::new(Workload::E, state, 7);
        for _ in 0..5_000 {
            if let Op::Scan(_, len) = g.next_op() {
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mk = |seed| {
            let state = WorkloadState::new(1_000);
            let mut g = OpGen::new(Workload::A, state, seed);
            (0..100).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}
