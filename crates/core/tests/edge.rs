//! Edge-case tests for the CHIME tree: extreme keys, minimal geometries,
//! emptied leaves, wrap-around neighborhoods and boundary scans.

use chime::{Chime, ChimeConfig};
use dmem::{Pool, RangeIndex};

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

fn tree(cfg: ChimeConfig) -> (Chime, chime::ChimeClient) {
    let pool = Pool::with_defaults(1, 256 << 20);
    let t = Chime::create(&pool, cfg, 0);
    let cn = t.new_cn();
    let c = t.client(&cn);
    (t, c)
}

#[test]
fn extreme_keys_roundtrip() {
    let (_t, mut c) = tree(ChimeConfig::default());
    for k in [1u64, 2, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 48) + 5] {
        c.insert(k, &v(k)).unwrap();
    }
    for k in [1u64, 2, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 48) + 5] {
        assert_eq!(c.search(k), Some(v(k)), "key {k:#x}");
    }
    let mut out = Vec::new();
    c.scan(u64::MAX - 10, 10, &mut out);
    assert_eq!(
        out.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
        vec![u64::MAX - 1, u64::MAX]
    );
}

#[test]
#[should_panic(expected = "key 0 is reserved")]
fn key_zero_rejected() {
    let (_t, mut c) = tree(ChimeConfig::default());
    let _ = c.insert(0, &v(0));
}

#[test]
fn minimal_geometry_span_equals_h() {
    let cfg = ChimeConfig {
        span: 4,
        neighborhood: 4,
        internal_span: 4,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    for k in 1..=500u64 {
        c.insert(k, &v(k)).unwrap();
    }
    for k in 1..=500u64 {
        assert_eq!(c.search(k), Some(v(k)), "key {k}");
    }
    assert!(c.counters.splits > 10, "tiny leaves must split a lot");
}

#[test]
fn emptied_leaf_stays_usable() {
    let cfg = ChimeConfig {
        span: 8,
        neighborhood: 4,
        internal_span: 4,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    for k in 1..=300u64 {
        c.insert(k, &v(k)).unwrap();
    }
    // Delete everything, then rebuild.
    for k in 1..=300u64 {
        assert!(c.delete(k).unwrap());
    }
    for k in 1..=300u64 {
        assert_eq!(c.search(k), None);
    }
    let mut out = Vec::new();
    c.scan(1, 100, &mut out);
    assert!(out.is_empty());
    for k in 1..=300u64 {
        c.insert(k, &v(k + 1)).unwrap();
    }
    for k in 1..=300u64 {
        assert_eq!(c.search(k), Some(v(k + 1)));
    }
}

#[test]
fn value_padding_and_truncation() {
    let cfg = ChimeConfig {
        value_size: 16,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    // Short values are zero-padded to value_size.
    c.insert(1, &[7u8; 4]).unwrap();
    let got = c.search(1).unwrap();
    assert_eq!(got.len(), 16);
    assert_eq!(&got[..4], &[7u8; 4]);
    assert_eq!(&got[4..], &[0u8; 12]);
    // Long values are truncated to value_size.
    c.insert(2, &[9u8; 100]).unwrap();
    assert_eq!(c.search(2).unwrap(), vec![9u8; 16]);
}

#[test]
fn scan_count_zero_and_past_end() {
    let (_t, mut c) = tree(ChimeConfig::default());
    for k in 1..=100u64 {
        c.insert(k * 2, &v(k)).unwrap();
    }
    let mut out = Vec::new();
    c.scan(10, 0, &mut out);
    assert!(out.is_empty());
    c.scan(201, 50, &mut out);
    assert!(out.is_empty(), "scan past the last key returns nothing");
    c.scan(199, 50, &mut out);
    assert_eq!(out, vec![(200, v(100))]);
}

#[test]
fn dense_sequential_and_reverse_inserts() {
    // Sequential keys stress the right edge (argmax corner) in both
    // directions.
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 8,
        internal_span: 8,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    for k in 1..=2_000u64 {
        c.insert(k, &v(k)).unwrap();
    }
    for k in (2_001..=4_000u64).rev() {
        c.insert(k, &v(k)).unwrap();
    }
    for k in 1..=4_000u64 {
        assert_eq!(c.search(k), Some(v(k)), "key {k}");
    }
    let mut out = Vec::new();
    c.scan(1, 4_000, &mut out);
    assert_eq!(out.len(), 4_000);
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn large_values_span_many_cache_lines() {
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 4,
        internal_span: 8,
        value_size: 512,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    for k in 1..=200u64 {
        c.insert(k, &vec![k as u8; 512]).unwrap();
    }
    for k in 1..=200u64 {
        assert_eq!(c.search(k), Some(vec![k as u8; 512]), "key {k}");
    }
    for k in 1..=50u64 {
        assert!(c.update(k, &vec![255 - k as u8; 512]).unwrap());
        assert_eq!(c.search(k), Some(vec![255 - k as u8; 512]));
    }
}

#[test]
fn neighborhood_wraparound_paths() {
    // With span == H * 2 many homes wrap; exercise search/insert there.
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 8,
        internal_span: 8,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    // Find keys whose home entry is near the span end.
    let mut wrapped = Vec::new();
    let mut k = 1u64;
    while wrapped.len() < 50 {
        if dmem::hash::home_entry(k, 16) >= 12 {
            wrapped.push(k);
        }
        k += 1;
    }
    for &k in &wrapped {
        c.insert(k, &v(k)).unwrap();
    }
    for &k in &wrapped {
        assert_eq!(c.search(k), Some(v(k)), "wrapped key {k}");
        assert!(c.update(k, &v(k + 1)).unwrap());
        assert_eq!(c.search(k), Some(v(k + 1)));
    }
    for &k in &wrapped {
        assert!(c.delete(k).unwrap());
    }
    for &k in &wrapped {
        assert_eq!(c.search(k), None);
    }
}

#[test]
fn random_order_inserts_interior_last_children() {
    // Regression: keys arriving out of order must not be misrouted when
    // they exceed the current max of an interior last-child leaf.
    let cfg = ChimeConfig {
        span: 8,
        neighborhood: 4,
        internal_span: 4,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    // Insert in a scrambled order.
    let mut keys: Vec<u64> = (1..=2_000u64).collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..keys.len()).rev() {
        state = dmem::hash::mix64(state);
        keys.swap(i, (state % (i as u64 + 1)) as usize);
    }
    for &k in &keys {
        c.insert(k, &v(k)).unwrap();
    }
    for k in 1..=2_000u64 {
        assert_eq!(c.search(k), Some(v(k)), "key {k}");
    }
    let mut out = Vec::new();
    c.scan(1, 2_000, &mut out);
    assert_eq!(out.len(), 2_000, "scan must see every key exactly once");
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "no duplicates");
}

#[test]
fn many_cns_share_one_tree() {
    let pool = Pool::with_defaults(1, 256 << 20);
    let t = Chime::create(&pool, ChimeConfig::default(), 0);
    let cns: Vec<_> = (0..8).map(|_| t.new_cn()).collect();
    // Round-robin inserts across CNs, then reads from every CN.
    let mut clients: Vec<_> = cns.iter().map(|cn| t.client(cn)).collect();
    for k in 1..=800u64 {
        clients[(k % 8) as usize].insert(k, &v(k)).unwrap();
    }
    for c in clients.iter_mut() {
        for k in (1..=800u64).step_by(37) {
            assert_eq!(c.search(k), Some(v(k)));
        }
    }
}

#[test]
fn integrity_checker_accepts_valid_trees() {
    let cfg = ChimeConfig {
        span: 8,
        neighborhood: 4,
        internal_span: 4,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    assert_eq!(c.check_integrity().unwrap(), 0);
    for k in 1..=1_500u64 {
        c.insert(k * 7 % 10_000 + 1, &v(k)).unwrap();
    }
    let n = c.check_integrity().unwrap();
    assert!(n > 1_000, "integrity walk saw {n} keys");
    for k in (1..=700u64).step_by(3) {
        c.delete(k * 7 % 10_000 + 1).unwrap();
    }
    c.check_integrity().unwrap();
}

#[test]
fn integrity_checker_after_concurrent_churn() {
    let pool = Pool::with_defaults(1, 256 << 20);
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 8,
        internal_span: 8,
        ..Default::default()
    };
    let t = Chime::create(&pool, cfg, 0);
    crossbeam::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = t.clone();
            s.spawn(move |_| {
                let cn = t.new_cn();
                let mut c = t.client(&cn);
                for i in 0..600u64 {
                    let k = 1 + dmem::hash::mix64(i * 4 + tid) % 1_000_000;
                    c.insert(k, &v(k)).unwrap();
                    if i % 5 == 0 {
                        c.delete(1 + dmem::hash::mix64(i * 2 + tid) % 1_000_000).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    c.check_integrity().unwrap();
}

#[test]
fn deletes_trigger_leaf_merges() {
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 8,
        internal_span: 8,
        ..Default::default()
    };
    let (_t, mut c) = tree(cfg);
    for k in 1..=3_000u64 {
        c.insert(k, &v(k)).unwrap();
    }
    // Delete from the top down so every node's max is repeatedly removed
    // (the merge check runs on full-window deletes).
    for k in (1..=2_900u64).rev() {
        assert!(c.delete(k).unwrap(), "delete {k}");
    }
    assert!(c.counters.merges > 0, "top-down deletes must trigger merges");
    c.check_integrity().unwrap();
    for k in 2_901..=3_000u64 {
        assert_eq!(c.search(k), Some(v(k)), "survivor {k}");
    }
    for k in (1..=2_900u64).step_by(97) {
        assert_eq!(c.search(k), None, "deleted {k}");
    }
    // The merged tree keeps working for inserts.
    for k in 1..=500u64 {
        c.insert(k, &v(k + 1)).unwrap();
    }
    for k in 1..=500u64 {
        assert_eq!(c.search(k), Some(v(k + 1)));
    }
    c.check_integrity().unwrap();
}

#[test]
fn concurrent_deletes_with_merges() {
    let pool = Pool::with_defaults(1, 256 << 20);
    let cfg = ChimeConfig {
        span: 16,
        neighborhood: 8,
        internal_span: 8,
        ..Default::default()
    };
    let t = Chime::create(&pool, cfg, 0);
    {
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=4_000u64 {
            c.insert(k, &v(k)).unwrap();
        }
    }
    crossbeam::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = t.clone();
            s.spawn(move |_| {
                let cn = t.new_cn();
                let mut c = t.client(&cn);
                // Each thread deletes its own stripe, top-down.
                for i in (0..1_000u64).rev() {
                    let k = 1 + i * 4 + tid;
                    if k <= 4_000 {
                        assert!(c.delete(k).unwrap(), "delete {k}");
                    }
                }
                // And re-inserts half of it.
                for i in 0..500u64 {
                    let k = 1 + i * 8 + tid;
                    c.insert(k, &v(k)).unwrap();
                }
            });
        }
    })
    .unwrap();
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    c.check_integrity().unwrap();
    for tid in 0..4u64 {
        for i in 0..500u64 {
            let k = 1 + i * 8 + tid;
            assert_eq!(c.search(k), Some(v(k)), "reinserted {k}");
        }
    }
}

#[test]
fn root_slot_isolation_between_trees() {
    // Two trees in one pool must not interfere.
    let pool = Pool::with_defaults(1, 256 << 20);
    let t1 = Chime::create(&pool, ChimeConfig::default(), 0);
    let t2 = Chime::create(&pool, ChimeConfig::default(), 1);
    let cn1 = t1.new_cn();
    let cn2 = t2.new_cn();
    let mut c1 = t1.client(&cn1);
    let mut c2 = t2.client(&cn2);
    for k in 1..=300u64 {
        c1.insert(k, &v(k)).unwrap();
        c2.insert(k, &v(k * 2)).unwrap();
    }
    for k in 1..=300u64 {
        assert_eq!(c1.search(k), Some(v(k)));
        assert_eq!(c2.search(k), Some(v(k * 2)));
    }
}
