//! Failure injection: crafted torn/intermediate remote states that the
//! three-level optimistic synchronization must refuse to return.
//!
//! A "stalled writer" is simulated by writing an inconsistent intermediate
//! image directly through the substrate (bypassing the index protocol),
//! letting a reader observe it, and then completing the write. The reader
//! must block in its retry loop while the state is torn and return the
//! correct value once it heals — never a torn result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use chime::hopscotch::build_table;
use chime::layout::LeafLayout;
use chime::leaf::{LeafMeta, LeafOps};
use dmem::node::RESERVED_BYTES;
use dmem::versioned::{pack_ver, Layout};
use dmem::{Endpoint, GlobalAddr, Pool};

fn ops() -> LeafOps {
    LeafOps::new(LeafLayout {
        span: 64,
        h: 8,
        key_size: 8,
        value_size: 8,
        replication: true,
        fences: false,
        piggyback: true,
    })
}

type Setup = (Arc<Pool>, LeafOps, GlobalAddr, Vec<(u64, Vec<u8>)>);

fn setup(n: u64) -> Setup {
    let pool = Pool::with_defaults(1, 4 << 20);
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let ops = ops();
    let addr = GlobalAddr::new(0, RESERVED_BYTES);
    let items: Vec<(u64, Vec<u8>)> = (1..=n).map(|k| (k * 3, k.to_le_bytes().to_vec())).collect();
    let w = build_table(64, 8, &items).unwrap();
    let meta = LeafMeta {
        sibling: GlobalAddr::NULL,
        valid: true,
        fences: None,
    };
    ops.write_new(&mut ep, addr, &w, &meta);
    (pool, ops, addr, items)
}

/// Overwrites one entry's version byte with a mismatching NV, simulating a
/// node write stalled after touching only part of the node.
fn tear_nv(pool: &Arc<Pool>, ops: &LeafOps, addr: GlobalAddr, entry: usize) -> Vec<u8> {
    let layout: Layout = ops.layout.versioned();
    let off = ops.layout.entry_off(entry);
    let p = layout.phys_of(off);
    let mut ep = Endpoint::new(Arc::clone(pool));
    let mut orig = vec![0u8; 1];
    ep.read(addr.add(p as u64), &mut orig);
    ep.write(addr.add(p as u64), &[pack_ver(0xA, 0)]);
    orig
}

#[test]
fn reader_waits_out_torn_nv_and_returns_correct_value() {
    let (pool, ops, addr, items) = setup(40);
    let (target_key, target_val) = items[10].clone();
    // Find the entry index so we can tear exactly the fetched range.
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let snap = ops.read_full(&mut ep, addr);
    let (idx, _) = snap.find(target_key, 8).unwrap();
    // Tear the entry: a stalled node write bumped this NV only.
    let orig = tear_nv(&pool, &ops, addr, idx);
    let healed = Arc::new(AtomicBool::new(false));
    let reader = {
        let pool = Arc::clone(&pool);
        let healed = Arc::clone(&healed);
        std::thread::spawn(move || {
            let mut ep = Endpoint::new(pool);
            let r = ops.read_neighborhood(&mut ep, addr, target_key);
            // By the time the read validates, the state must be healed.
            assert!(
                healed.load(Ordering::SeqCst),
                "reader returned from a torn state"
            );
            r.found.expect("key present").1
        })
    };
    // Let the reader spin on the torn state, then heal it.
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!reader.is_finished(), "reader must retry while torn");
    healed.store(true, Ordering::SeqCst);
    let layout = ops.layout.versioned();
    let p = layout.phys_of(ops.layout.entry_off(idx));
    let mut ep = Endpoint::new(Arc::clone(&pool));
    ep.write(addr.add(p as u64), &orig);
    assert_eq!(reader.join().unwrap(), target_val);
}

/// A hop-range write stalled between moving a key and updating its home
/// bitmap: the reused-bitmap check must reject the intermediate state.
#[test]
fn reader_rejects_intermediate_hop_state() {
    let (pool, ops, addr, items) = setup(40);
    let (target_key, target_val) = items[5].clone();
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let snap = ops.read_full(&mut ep, addr);
    let (idx, _) = snap.find(target_key, 8).unwrap();
    let home = dmem::hash::home_entry(target_key, 64);
    // Simulate: the key moved out of `idx` (zeroed) but the home bitmap
    // still claims it — exactly the middle row of the paper's Fig. 7b.
    let layout = ops.layout.versioned();
    let key_off = ops.layout.entry_off(idx) + chime::layout::entry_field::KEY;
    let p = layout.phys_of(key_off);
    let mut orig = vec![0u8; 8];
    ep.read(addr.add(p as u64), &mut orig);
    ep.write(addr.add(p as u64), &0u64.to_le_bytes());
    let healed = Arc::new(AtomicBool::new(false));
    let reader = {
        let pool = Arc::clone(&pool);
        let healed = Arc::clone(&healed);
        std::thread::spawn(move || {
            let mut ep = Endpoint::new(pool);
            let r = ops.read_neighborhood(&mut ep, addr, target_key);
            assert!(
                healed.load(Ordering::SeqCst),
                "reader accepted a half-hopped state"
            );
            r.found.expect("key present after heal").1
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!reader.is_finished(), "bitmap check must force retries");
    healed.store(true, Ordering::SeqCst);
    ep.write(addr.add(p as u64), &orig);
    assert_eq!(reader.join().unwrap(), target_val);
    let _ = home;
}

/// Speculative reads fail closed: a torn entry never yields a value, the
/// caller just falls back to the neighborhood path.
#[test]
fn speculative_read_fails_closed_on_torn_entry() {
    let (pool, ops, addr, items) = setup(40);
    let (target_key, _) = items[3];
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let snap = ops.read_full(&mut ep, addr);
    let (idx, _) = snap.find(target_key, 8).unwrap();
    // Tear the entry's EV (lead byte bumped, line slots not).
    let layout = ops.layout.versioned();
    let off = ops.layout.entry_off(idx);
    let p = layout.phys_of(off);
    let mut orig = vec![0u8; 1];
    ep.read(addr.add(p as u64), &mut orig);
    // Entries straddling a line have interior version slots; bumping only
    // the lead byte makes them disagree.
    let slots = layout.line_ver_slots(off, off + ops.layout.entry_size());
    if slots.is_empty() {
        // Entry fits one line: a torn EV is impossible by construction;
        // nothing to inject (that is itself the guarantee).
        return;
    }
    ep.write(addr.add(p as u64), &[pack_ver(0, 0x7)]);
    assert_eq!(
        ops.spec_read(&mut ep, addr, idx, target_key),
        None,
        "speculation must fail closed on EV mismatch"
    );
    ep.write(addr.add(p as u64), &orig);
}
