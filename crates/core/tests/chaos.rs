//! Deterministic multi-client chaos runs under injected faults.
//!
//! A seeded scheduler drives several clients (each on its own CN, each with
//! its own fault-engine RNG stream) through randomized operation schedules
//! against one tree, checking every result against an in-memory oracle.
//! Crash rules kill clients at labeled crash points — including while they
//! hold a leaf lock — and surviving clients must reclaim the stale lock via
//! the lease epoch. Everything is a pure function of the seed: a failure
//! prints the seed and the verb-level fault trace needed to replay it.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use chime::leaf::CRASH_LEAF_LOCKED;
use chime::{Chime, ChimeClient, ChimeConfig};
use dmem::{
    CrashRule, CrashSignal, Endpoint, FaultAction, FaultEvent, FaultPlan, FaultRule, FaultSession,
    Pool, RangeIndex, VerbKind,
};

const KEYS: u64 = 40;

/// xorshift64* scheduler RNG, independent of the fault engine's streams.
struct SchedRng(u64);

impl SchedRng {
    fn new(seed: u64) -> Self {
        SchedRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Suppresses the default panic printout for intentional [`CrashSignal`]
/// panics (the simulated client deaths) while keeping it for real failures.
fn quiet_crash_signals() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                default(info);
            }
        }));
    });
}

struct RunResult {
    /// Final tree contents as observed by a surviving client's scan.
    items: Vec<(u64, Vec<u8>)>,
    trace: Vec<FaultEvent>,
    crashed: Vec<u32>,
    reclaimed: u64,
    torn_detected: u64,
    op_retries: u64,
    lock_retries: u64,
    faults: u64,
}

fn chaos_cfg(lease_spins: u32) -> ChimeConfig {
    ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        cache_bytes: 1 << 20,
        hotspot_bytes: 1 << 16,
        lock_lease_spins: lease_spins,
        ..Default::default()
    }
}

fn val(key: u64, step: usize) -> Vec<u8> {
    (key ^ ((step as u64) << 32)).to_le_bytes().to_vec()
}

/// Runs one deterministic chaos schedule; panics (with seed + fault trace)
/// on any oracle violation.
fn run(seed: u64, steps: usize, n_clients: usize, plan: FaultPlan, lease_spins: u32) -> RunResult {
    quiet_crash_signals();
    let pool = Pool::with_defaults(1, 256 << 20);
    let tree = Chime::create(&pool, chaos_cfg(lease_spins), 0);
    let session = Arc::new(FaultSession::new(plan));
    let mut clients: Vec<ChimeClient> = (0..n_clients)
        .map(|i| {
            let cn = tree.new_cn();
            let ep = Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), i as u32);
            tree.client_with_endpoint(&cn, ep)
        })
        .collect();
    let mut alive = vec![true; n_clients];
    let mut crashed: Vec<u32> = Vec::new();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = SchedRng::new(seed);

    macro_rules! check {
        ($cond:expr, $($msg:tt)*) => {
            if !$cond {
                eprintln!(
                    "chaos violation (seed {seed}); fault trace:\n{}",
                    session.trace_report()
                );
                panic!($($msg)*);
            }
        };
    }

    for step in 0..steps {
        let live: Vec<usize> = (0..n_clients).filter(|&i| alive[i]).collect();
        if live.is_empty() {
            break;
        }
        let ci = live[rng.below(live.len() as u64) as usize];
        let key = 1 + rng.below(KEYS);
        let v = val(key, step);
        let op = rng.below(10);
        let c = &mut clients[ci];
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| match op {
            0..=3 => {
                c.insert(key, &v).unwrap();
                (Some(v.clone()), None, None)
            }
            4..=5 => {
                let did = c.update(key, &v).unwrap();
                (did.then(|| v.clone()), Some(did), None)
            }
            6..=7 => {
                let did = c.delete(key).unwrap();
                (None, Some(did), None)
            }
            8 => (None, None, Some(c.search(key))),
            _ => {
                let mut out = Vec::new();
                c.scan(key, 8, &mut out);
                (None, None, Some(out.first().map(|(_, v)| v.clone())))
            }
        }));
        match outcome {
            Ok((wrote, did, read)) => match op {
                0..=3 => {
                    oracle.insert(key, wrote.unwrap());
                }
                4..=5 => {
                    let expect = oracle.contains_key(&key);
                    check!(did == Some(expect), "update({key}) hit = {did:?}, oracle {expect}");
                    if expect {
                        oracle.insert(key, v);
                    }
                }
                6..=7 => {
                    let expect = oracle.remove(&key).is_some();
                    check!(did == Some(expect), "delete({key}) hit = {did:?}, oracle {expect}");
                }
                8 => {
                    let expect = oracle.get(&key).cloned();
                    check!(read == Some(expect.clone()), "search({key}) = {read:?}, oracle {expect:?}");
                }
                _ => {
                    let expect = oracle.range(key..).next().map(|(_, v)| v.clone());
                    check!(
                        read == Some(expect.clone()),
                        "scan({key}) first = {read:?}, oracle {expect:?}"
                    );
                }
            },
            Err(payload) => {
                let Some(sig) = payload.downcast_ref::<CrashSignal>() else {
                    eprintln!(
                        "chaos violation (seed {seed}); fault trace:\n{}",
                        session.trace_report()
                    );
                    panic::resume_unwind(payload);
                };
                assert_eq!(sig.client, ci as u32, "crash killed the wrong client");
                alive[ci] = false;
                crashed.push(ci as u32);
                // Crash points fire strictly before a mutation publishes, so
                // the crashed op must not have taken effect. A survivor's
                // lock-free read is the ground truth for the one touched key.
                if let Some(&s) = (0..n_clients).find(|&i| alive[i]).as_ref() {
                    let truth = clients[s].search(key);
                    let expect = oracle.get(&key).cloned();
                    check!(
                        truth == expect,
                        "crashed op on key {key} leaked an effect: tree {truth:?}, oracle {expect:?}"
                    );
                }
            }
        }
    }

    // Final audit by the first survivor: every key, then a full scan.
    if let Some(s) = (0..n_clients).find(|&i| alive[i]) {
        for key in 1..=KEYS {
            let got = clients[s].search(key);
            let expect = oracle.get(&key).cloned();
            check!(got == expect, "final search({key}) = {got:?}, oracle {expect:?}");
        }
        let mut out = Vec::new();
        clients[s].scan(1, oracle.len() + KEYS as usize, &mut out);
        let expect: Vec<(u64, Vec<u8>)> =
            oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
        check!(out == expect, "final scan diverged from oracle");
    }

    let mut agg = dmem::ClientStats::default();
    for c in &clients {
        agg.merge(c.stats());
    }
    RunResult {
        items: oracle.into_iter().collect(),
        trace: session.trace(),
        crashed,
        reclaimed: agg.stale_locks_reclaimed,
        torn_detected: agg.torn_reads_detected,
        op_retries: agg.op_retries,
        lock_retries: agg.lock_retries,
        faults: agg.faults_injected,
    }
}

/// The acceptance scenario: a crash rule kills client 0 at the
/// "leaf.lock.acquired" crash point — it dies holding a leaf lock. The
/// survivors must reclaim the stale lock via the lease epoch, the oracle
/// must pass, and the same seed must reproduce the identical verb-level
/// fault trace on two consecutive runs.
#[test]
fn crash_while_holding_leaf_lock_recovers_and_replays() {
    let plan = || {
        let mut p = FaultPlan::seeded(0xC0FFEE);
        p.crashes.push(CrashRule {
            label: CRASH_LEAF_LOCKED.to_string(),
            client: Some(0),
            at_hit: 5,
        });
        p
    };
    let a = run(7, 400, 3, plan(), 4);
    assert_eq!(a.crashed, vec![0], "client 0 must die at the crash point");
    assert!(
        a.trace.iter().any(|e| e.action == "crash" && e.label == CRASH_LEAF_LOCKED),
        "crash must appear in the fault trace"
    );
    assert!(
        a.reclaimed >= 1,
        "a survivor must reclaim the dead client's leaf lock (got {})",
        a.reclaimed
    );
    assert!(a.lock_retries >= 1);

    // Determinism: an identical run replays the identical fault trace and
    // converges to the identical final state.
    let b = run(7, 400, 3, plan(), 4);
    assert_eq!(a.trace, b.trace, "same seed must replay the same fault trace");
    assert_eq!(a.items, b.items);
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.reclaimed, b.reclaimed);
}

/// Multi-client schedule under retry-visible faults (latency spikes and
/// spuriously failing atomics): the oracle must hold and the injected
/// conflicts must surface in the retry counters.
#[test]
fn verb_faults_only_cause_retries() {
    let plan = || {
        let mut p = FaultPlan::seeded(0xBEEF);
        p.rules.push(FaultRule {
            probability: 0.05,
            ..FaultRule::always("read-spike", Some(VerbKind::Read), FaultAction::Delay { ns: 40_000 })
        });
        p.rules.push(FaultRule {
            probability: 0.25,
            ..FaultRule::always(
                "lock-cas-fails",
                Some(VerbKind::MaskedCas),
                FaultAction::FailCas,
            )
        });
        p.rules.push(FaultRule {
            probability: 0.10,
            ..FaultRule::always("cas-fails", Some(VerbKind::Cas), FaultAction::FailCas)
        });
        p
    };
    let a = run(21, 500, 4, plan(), 0);
    assert!(a.crashed.is_empty());
    assert!(a.faults > 0, "faults must actually fire");
    assert!(
        a.lock_retries > 0,
        "failing lock CASes must show up as lock retries"
    );
    let b = run(21, 500, 4, plan(), 0);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.items, b.items);
}

/// Torn multi-line writes that heal a few verbs later: version validation
/// must detect every torn read and the oracle must still hold. Single
/// client, so its own follow-up verbs drain the heals.
#[test]
fn torn_writes_heal_and_are_detected() {
    let plan = || {
        let mut p = FaultPlan::seeded(0xD15C);
        p.rules.push(FaultRule {
            probability: 0.3,
            ..FaultRule::always(
                "torn-write",
                Some(VerbKind::Write),
                FaultAction::TornWrite {
                    lines: 1,
                    heal_after: Some(2),
                },
            )
        });
        p
    };
    let a = run(33, 300, 1, plan(), 0);
    assert!(a.crashed.is_empty());
    assert!(a.faults > 0, "torn writes must actually fire");
    let b = run(33, 300, 1, plan(), 0);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.items, b.items);
    // torn_detected is workload-dependent (reads must race the heal window)
    // but determinism makes it a stable property of the seed.
    assert_eq!(a.torn_detected, b.torn_detected);
}

/// A fault-free schedule is the control: no faults, no crashes, and the
/// backoff-instrumented retry path stays quiet under a single client.
#[test]
fn fault_free_control_run() {
    let a = run(1, 300, 2, FaultPlan::seeded(0), 0);
    assert!(a.crashed.is_empty());
    assert_eq!(a.faults, 0);
    assert!(a.trace.is_empty());
    let b = run(1, 300, 2, FaultPlan::seeded(0), 0);
    assert_eq!(a.items, b.items);
    assert_eq!(a.op_retries, b.op_retries);
}
