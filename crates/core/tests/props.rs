//! Property tests for CHIME's core data structures: hopscotch invariants,
//! lock-word algebra, leaf geometry and tree/model equivalence.

use std::collections::BTreeMap;

use chime::hopscotch::{build_table, check_invariants, cyc_dist, Window};
use chime::layout::LeafLayout;
use chime::lockword::{LockWord, VacancyMap};
use chime::{Chime, ChimeConfig};
use dmem::hash::home_entry;
use dmem::{Pool, RangeIndex};
use proptest::prelude::*;

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

proptest! {
    /// Any key set below ~2/3 load builds a valid hopscotch table and every
    /// key is findable within its neighborhood.
    #[test]
    fn build_table_preserves_invariants(
        keys in proptest::collection::hash_set(1u64..u64::MAX, 1..40),
    ) {
        let items: Vec<(u64, Vec<u8>)> = keys.iter().map(|&k| (k, v(k))).collect();
        if let Some(w) = build_table(64, 8, &items) {
            check_invariants(&w).unwrap();
            for (k, val) in &items {
                let pos = w.find_in_neighborhood(*k).expect("key must be findable");
                let (kk, vv, _) = w.slot(pos);
                prop_assert_eq!(kk, *k);
                prop_assert_eq!(vv, &val[..]);
                prop_assert!(cyc_dist(home_entry(*k, 64), pos, 64) < 8);
            }
        } else {
            // Builds only fail near/above capacity.
            prop_assert!(items.len() > 32, "build failed at {} items", items.len());
        }
    }

    /// Random insert/remove sequences keep the bitmap-occupancy bijection.
    #[test]
    fn window_ops_preserve_invariants(ops in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..120)) {
        let mut w = Window::new(32, 8, 0, 32);
        let mut present: Vec<u64> = Vec::new();
        for (seed, del) in ops {
            let key = 1 + seed % 1_000_003;
            if del && !present.is_empty() {
                let k = present.swap_remove((seed % present.len() as u64) as usize);
                let pos = w.find_in_neighborhood(k).expect("present key");
                w.remove(pos);
            } else if !present.contains(&key) {
                let home = home_entry(key, 32);
                let empty = (0..32).map(|d| (home + d) % 32).find(|&i| w.slot_empty(i));
                if let Some(empty) = empty {
                    if w.insert(key, v(key), empty).is_ok() {
                        present.push(key);
                    }
                }
            }
        }
        check_invariants(&w).unwrap();
        for k in &present {
            prop_assert!(w.find_in_neighborhood(*k).is_some());
        }
    }

    /// Lock-word field updates never interfere with each other.
    #[test]
    fn lockword_field_independence(
        argmax in 0u16..1023,
        bits in proptest::collection::vec(0usize..chime::lockword::VACANCY_BITS, 0..10),
        locked in any::<bool>(),
        epoch in any::<u8>(),
    ) {
        let mut w = LockWord(0)
            .with_argmax(argmax)
            .with_locked(locked)
            .with_epoch(epoch);
        for &b in &bits {
            w = w.with_vacancy_bit(b, true);
        }
        prop_assert_eq!(w.argmax(), argmax);
        prop_assert_eq!(w.locked(), locked);
        prop_assert_eq!(w.epoch(), epoch);
        for &b in &bits {
            prop_assert!(w.vacancy_bit(b));
        }
        let w2 = w.with_argmax(7).with_epoch(epoch.wrapping_add(1));
        prop_assert_eq!(w2.locked(), locked);
        prop_assert_eq!(w2.epoch(), epoch.wrapping_add(1));
        for &b in &bits {
            prop_assert!(w2.vacancy_bit(b));
        }
    }

    /// Vacancy groups tile the span exactly.
    #[test]
    fn vacancy_groups_tile_span(span in 1usize..1024) {
        let vm = VacancyMap::new(span);
        let mut covered = vec![false; span];
        for g in 0..vm.groups() {
            let (s, t) = vm.group_range(g);
            for (i, c) in covered.iter_mut().enumerate().take(t + 1).skip(s) {
                prop_assert!(!*c, "entry {i} covered twice");
                *c = true;
                prop_assert_eq!(vm.group_of(i), g);
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Leaf layout: entries and replicas never overlap and fill the payload.
    #[test]
    fn leaf_layout_partitions_payload(
        span_blocks in 1usize..16,
        h in 2usize..9,
        value_size in 1usize..64,
        replication in any::<bool>(),
        fences in any::<bool>(),
    ) {
        let span = span_blocks * h;
        let l = LeafLayout {
            span,
            h,
            key_size: 8,
            value_size,
            replication,
            fences,
            piggyback: true,
        };
        let mut covered = vec![false; l.payload_len()];
        let mut mark = |a: usize, b: usize| {
            for c in covered[a..b].iter_mut() {
                assert!(!*c, "overlap");
                *c = true;
            }
        };
        let blocks = if replication { span / h } else { 1 };
        for b in 0..blocks {
            let off = l.replica_off(b);
            mark(off, off + l.replica_size());
        }
        for i in 0..span {
            let off = l.entry_off(i);
            mark(off, off + l.entry_size());
        }
        prop_assert!(covered.iter().all(|&c| c), "payload has gaps");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full tree agrees with a BTreeMap on random op sequences
    /// (smaller case count: each case builds a tree).
    #[test]
    fn tree_matches_model(ops in proptest::collection::vec((1u64..300, 0u8..4), 1..250)) {
        let pool = Pool::with_defaults(1, 128 << 20);
        let cfg = ChimeConfig {
            span: 8,
            internal_span: 4,
            neighborhood: 4,
            ..Default::default()
        };
        let t = Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (key, op) in ops {
            match op {
                0 | 1 => {
                    c.insert(key, &v(key * 3)).unwrap();
                    model.insert(key, v(key * 3));
                }
                2 => {
                    let a = c.delete(key).unwrap();
                    let b = model.remove(&key).is_some();
                    prop_assert_eq!(a, b);
                }
                _ => {
                    prop_assert_eq!(c.search(key), model.get(&key).cloned());
                }
            }
        }
        for (k, val) in &model {
            prop_assert_eq!(c.search(*k), Some(val.clone()));
        }
        let mut out = Vec::new();
        c.scan(1, model.len() + 5, &mut out);
        let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(out, want);
    }
}
