//! Fault injection composed with the coroutine engine: lanes of one
//! pipelined client absorb verb faults, one lane is killed at a crash
//! point while holding a leaf lock, and the survivors reclaim the stale
//! lock — all of it byte-for-byte reproducible per seed.

use std::panic;
use std::sync::Arc;

use chime::leaf::CRASH_LEAF_LOCKED;
use chime::{Chime, ChimeConfig};
use dmem::{
    CrashRule, CrashSignal, Endpoint, FaultAction, FaultEvent, FaultPlan, FaultRule, FaultSession,
    Pool, QpConfig, RangeIndex, VerbKind,
};
use sched::{Engine, EngineConfig, LaneBody};

const LANES: usize = 4;
const OPS_PER_LANE: u64 = 120;
/// Per-lane disjoint key block (lane l owns [BLOCK*l+1, BLOCK*l+1+OPS); key 0 is reserved).
const BLOCK: u64 = 1_000;
/// One shared key every lane hammers, to force cross-lane lock conflicts
/// (and give survivors a stale lock to reclaim after the crash).
const SHARED_KEY: u64 = 9_999;

/// Suppresses the default panic printout for intentional [`CrashSignal`]
/// deaths while keeping it for real failures.
fn quiet_crash_signals() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                default(info);
            }
        }));
    });
}

struct PipelinedChaos {
    /// Which lanes died (by index).
    crashed: Vec<usize>,
    /// Final value of every lane-owned key, audited serially afterwards.
    audit: Vec<(u64, Option<Vec<u8>>)>,
    trace: Vec<FaultEvent>,
    reclaimed: u64,
    lock_retries: u64,
    faults: u64,
}

fn run(crash_lane: u32, plan: FaultPlan) -> PipelinedChaos {
    quiet_crash_signals();
    let pool = Pool::with_defaults(1, 256 << 20);
    let cfg = ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        cache_bytes: 1 << 20,
        hotspot_bytes: 0,
        speculative_read: false,
        lock_lease_spins: 4,
        ..Default::default()
    };
    let tree = Chime::create(&pool, cfg, 0);
    let cn = tree.new_cn();
    let session = Arc::new(FaultSession::new(plan));

    let mut loader = tree.client(&cn);
    loader.insert(SHARED_KEY, &0u64.to_le_bytes()).unwrap();

    let engine = Engine::new(EngineConfig {
        lanes: LANES,
        qp: QpConfig::default(),
    });
    let bodies: Vec<LaneBody<dmem::ClientStats>> = (0..LANES)
        .map(|l| {
            let ep = Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), l as u32);
            let mut c = tree.client_with_endpoint(&cn, ep);
            Box::new(move || {
                for i in 0..OPS_PER_LANE {
                    let v = (l as u64 ^ (i << 32)).to_le_bytes();
                    c.insert(BLOCK * l as u64 + i + 1, &v).unwrap();
                    if i % 8 == 0 {
                        c.insert(SHARED_KEY, &v).unwrap();
                    }
                }
                c.stats().clone()
            }) as LaneBody<dmem::ClientStats>
        })
        .collect();
    let net = *pool.net();
    let run = engine.run_client(net, 1, bodies);

    let mut crashed = Vec::new();
    let mut agg = dmem::ClientStats::default();
    for (l, r) in run.lanes.into_iter().enumerate() {
        match r {
            Ok(stats) => agg.merge(&stats),
            Err(payload) => {
                if let Some(msg) = payload.downcast_ref::<String>() {
                    panic!("lane {l} died: {msg}");
                }
                if let Some(msg) = payload.downcast_ref::<&str>() {
                    panic!("lane {l} died: {msg}");
                }
                let sig = payload
                    .downcast_ref::<CrashSignal>()
                    .expect("lane died of something other than an injected crash");
                assert_eq!(sig.client, l as u32, "crash killed the wrong lane");
                crashed.push(l);
            }
        }
    }
    assert_eq!(crashed, vec![crash_lane as usize]);

    // Serial post-mortem audit with a fresh, fault-free client. The dead
    // lane's leaf lock must be reclaimable: these reads and the survivors'
    // earlier inserts prove the tree is not wedged.
    let mut auditor = tree.client(&cn);
    let mut audit = Vec::new();
    for l in 0..LANES as u64 {
        for i in (0..OPS_PER_LANE).step_by(7) {
            let key = BLOCK * l + i + 1;
            audit.push((key, auditor.search(key)));
        }
    }
    audit.push((SHARED_KEY, auditor.search(SHARED_KEY)));
    // Survivor-owned keys must all be present with the exact lane value.
    for l in (0..LANES as u64).filter(|&l| l != crash_lane as u64) {
        for i in 0..OPS_PER_LANE {
            let got = auditor.search(BLOCK * l + i + 1);
            assert_eq!(
                got,
                Some((l ^ (i << 32)).to_le_bytes().to_vec()),
                "survivor lane {l} lost key {i}"
            );
        }
    }

    PipelinedChaos {
        crashed,
        audit,
        trace: session.trace(),
        reclaimed: agg.stale_locks_reclaimed,
        lock_retries: agg.lock_retries,
        faults: agg.faults_injected,
    }
}

/// A crash rule kills lane 1 at the leaf-lock crash point mid-run; verb
/// faults (read delays, spuriously failing lock CASes) fire throughout.
/// The engine must surface the death as that lane's result, the other
/// lanes must finish their schedules, and the run must replay exactly.
#[test]
fn a_lane_crash_under_verb_faults_leaves_survivors_consistent() {
    let plan = || {
        let mut p = FaultPlan::seeded(0xFACE);
        p.crashes.push(CrashRule {
            label: CRASH_LEAF_LOCKED.to_string(),
            client: Some(1),
            at_hit: 40,
        });
        p.rules.push(FaultRule {
            probability: 0.05,
            ..FaultRule::always("read-spike", Some(VerbKind::Read), FaultAction::Delay { ns: 40_000 })
        });
        p.rules.push(FaultRule {
            probability: 0.15,
            ..FaultRule::always(
                "lock-cas-fails",
                Some(VerbKind::MaskedCas),
                FaultAction::FailCas,
            )
        });
        p.rules.push(FaultRule {
            probability: 0.10,
            ..FaultRule::always(
                "torn-write",
                Some(VerbKind::Write),
                FaultAction::TornWrite {
                    lines: 1,
                    heal_after: Some(2),
                },
            )
        });
        p
    };
    let a = run(1, plan());
    assert!(a.faults > 0, "verb faults must actually fire");
    assert!(
        a.trace.iter().any(|e| e.action == "torn-write"),
        "torn writes must fire under pipelined lanes"
    );
    assert!(a.lock_retries > 0, "lanes contending on the shared key must retry");
    assert!(
        a.trace.iter().any(|e| e.action == "crash" && e.label == CRASH_LEAF_LOCKED),
        "crash must appear in the fault trace"
    );

    let b = run(1, plan());
    assert_eq!(a.trace, b.trace, "same seed must replay the same fault trace");
    assert_eq!(a.audit, b.audit, "same seed must converge to the same tree");
    assert_eq!(a.crashed, b.crashed);
    assert_eq!((a.reclaimed, a.lock_retries, a.faults), (b.reclaimed, b.lock_retries, b.faults));
}
