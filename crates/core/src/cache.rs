//! The compute-side internal-node cache.
//!
//! Each CN caches internal nodes (never leaves) under a byte budget shared
//! by all its clients. Eviction is LRU. The cache is the only state the
//! Fig. 14 cache-consumption experiment measures for CHIME/Sherman-style
//! indexes.

use std::collections::{HashMap, VecDeque};

use dmem::GlobalAddr;

use crate::internal::InternalNode;

/// An LRU cache of internal nodes with a byte budget.
pub struct NodeCache {
    map: HashMap<u64, (InternalNode, u64)>,
    lru: VecDeque<(u64, u64)>,
    tick: u64,
    bytes: u64,
    budget: u64,
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// Creates a cache with the given byte budget.
    pub fn new(budget: u64) -> Self {
        NodeCache {
            map: HashMap::new(),
            lru: VecDeque::new(),
            tick: 0,
            bytes: 0,
            budget,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the node at `addr`, refreshing its recency.
    pub fn get(&mut self, addr: GlobalAddr) -> Option<InternalNode> {
        self.tick += 1;
        match self.map.get_mut(&addr.raw()) {
            Some((node, stamp)) => {
                *stamp = self.tick;
                self.lru.push_back((addr.raw(), self.tick));
                self.hits += 1;
                let node = node.clone();
                self.compact_lru();
                Some(node)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops superseded recency entries once the queue outgrows the map.
    ///
    /// Every hit pushes a fresh `(key, tick)` entry but stale ones are only
    /// consumed by `insert`'s eviction loop, so a read-mostly workload that
    /// never evicts would grow `lru` without bound. Compacting when the queue
    /// is more than twice the live-node count keeps it O(len()) while staying
    /// amortized O(1) per hit.
    fn compact_lru(&mut self) {
        if self.lru.len() > (2 * self.map.len()).max(16) {
            let map = &self.map;
            self.lru
                .retain(|(key, stamp)| matches!(map.get(key), Some((_, cur)) if cur == stamp));
        }
    }

    /// Inserts (or replaces) a node, evicting LRU victims over budget.
    pub fn insert(&mut self, node: InternalNode) {
        let key = node.addr.raw();
        let sz = node.cached_bytes();
        if sz > self.budget {
            return; // budget too small to cache anything of this size
        }
        self.tick += 1;
        if let Some((old, _)) = self.map.insert(key, (node, self.tick)) {
            self.bytes -= old.cached_bytes();
        }
        self.bytes += sz;
        self.lru.push_back((key, self.tick));
        while self.bytes > self.budget {
            let Some((victim, stamp)) = self.lru.pop_front() else {
                break;
            };
            match self.map.get(&victim) {
                // Stale queue entry: the node was touched again later.
                Some((_, cur)) if *cur != stamp => continue,
                Some(_) => {
                    let (evicted, _) = self.map.remove(&victim).unwrap();
                    self.bytes -= evicted.cached_bytes();
                }
                None => continue,
            }
        }
    }

    /// Drops `addr` from the cache (sibling-validation invalidation).
    pub fn invalidate(&mut self, addr: GlobalAddr) {
        if let Some((node, _)) = self.map.remove(&addr.raw()) {
            self.bytes -= node.cached_bytes();
        }
    }

    /// Current cache footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Length of the internal recency queue (exposed for the growth
    /// regression test; stays within a small factor of `len()`).
    pub fn recency_queue_len(&self) -> usize {
        self.lru.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(off: u64, entries: usize) -> InternalNode {
        InternalNode {
            addr: GlobalAddr::new(0, off),
            level: 1,
            valid: true,
            fence_low: 0,
            fence_high: u64::MAX,
            sibling: GlobalAddr::NULL,
            entries: vec![(0, GlobalAddr::NULL); entries],
            nv: 0,
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = NodeCache::new(10_000);
        c.insert(node(0x1000, 4));
        let got = c.get(GlobalAddr::new(0, 0x1000)).unwrap();
        assert_eq!(got.entries.len(), 4);
        assert!(c.get(GlobalAddr::new(0, 0x2000)).is_none());
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn eviction_respects_budget() {
        // Each node: 48 + 16*4 = 112 bytes; budget fits 3.
        let mut c = NodeCache::new(350);
        for i in 0..10 {
            c.insert(node(0x1000 * (i + 1), 4));
        }
        assert!(c.bytes() <= 350);
        assert!(c.len() <= 3);
        // Most recent stays.
        assert!(c.get(GlobalAddr::new(0, 0x1000 * 10)).is_some());
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = NodeCache::new(250); // fits 2 nodes of 112 B
        c.insert(node(0x1000, 4));
        c.insert(node(0x2000, 4));
        // Touch the first, then insert a third: the second must go.
        assert!(c.get(GlobalAddr::new(0, 0x1000)).is_some());
        c.insert(node(0x3000, 4));
        assert!(c.get(GlobalAddr::new(0, 0x1000)).is_some());
        assert!(c.get(GlobalAddr::new(0, 0x2000)).is_none());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = NodeCache::new(10_000);
        c.insert(node(0x1000, 4));
        c.invalidate(GlobalAddr::new(0, 0x1000));
        assert!(c.get(GlobalAddr::new(0, 0x1000)).is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = NodeCache::new(10_000);
        c.insert(node(0x1000, 4));
        let b1 = c.bytes();
        c.insert(node(0x1000, 8));
        assert_eq!(c.bytes(), b1 + 64);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_node_not_cached() {
        let mut c = NodeCache::new(100);
        c.insert(node(0x1000, 64));
        assert!(c.is_empty());
    }

    #[test]
    fn read_mostly_workload_does_not_grow_recency_queue() {
        // Regression: get() used to push a recency entry per hit that was
        // only ever drained by insert()'s eviction loop, so a cache that
        // stopped evicting grew its queue by one entry per lookup.
        let mut c = NodeCache::new(10_000);
        for i in 0..8 {
            c.insert(node(0x1000 * (i + 1), 4));
        }
        for round in 0..10_000u64 {
            let i = round % 8;
            assert!(c.get(GlobalAddr::new(0, 0x1000 * (i + 1))).is_some());
        }
        assert!(
            c.recency_queue_len() <= (2 * c.len()).max(16),
            "recency queue grew to {} entries for {} cached nodes",
            c.recency_queue_len(),
            c.len()
        );
        // LRU order must survive compaction: touch node 1, insert over budget
        // repeatedly and check node 1 outlives the untouched ones.
        let mut small = NodeCache::new(250);
        small.insert(node(0x1000, 4));
        small.insert(node(0x2000, 4));
        for _ in 0..100 {
            assert!(small.get(GlobalAddr::new(0, 0x1000)).is_some());
        }
        small.insert(node(0x3000, 4));
        assert!(small.get(GlobalAddr::new(0, 0x1000)).is_some());
        assert!(small.get(GlobalAddr::new(0, 0x2000)).is_none());
    }
}
