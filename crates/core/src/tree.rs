//! The CHIME tree: search / insert / update / delete / scan.
//!
//! A [`Chime`] handle owns the shared description of one remote tree
//! (geometry, root-pointer slot). Each compute node creates one [`CnState`]
//! (internal-node cache + hotspot buffer, shared by its clients) and any
//! number of [`ChimeClient`]s, each with its own verb endpoint.
//!
//! The operation protocols follow §4.4 of the paper, including sibling-based
//! validation with the `argmax_keys` corner case, Sherman-style node splits
//! with up-propagation, and hotness-aware speculative reads.

use std::sync::Arc;

use parking_lot::Mutex;

use dmem::hash::{fingerprint16, home_entry};
use dmem::{
    ChunkAlloc, ClientStats, Endpoint, GlobalAddr, IndexError, Phase, Pool, RangeIndex, RetryCause,
};

use crate::backoff::Backoff;
use crate::cache::NodeCache;
use crate::config::ChimeConfig;
use crate::hopscotch::{build_table, Window};
use crate::hotspot::HotspotBuffer;
use crate::internal::{InternalNode, InternalOps};
use crate::layout::{InternalLayout, LeafLayout};
use crate::leaf::{LeafMeta, LeafOps, LockedRead};
use crate::lockword::{LockWord, ARGMAX_NONE};

const OP_RETRY_LIMIT: usize = 100_000;

/// Max split-off leaves a scan will bridge via sibling pointers between two
/// consecutive parent entries before declaring the parent view stale.
const SCAN_BRIDGE_LIMIT: usize = 64;

/// Shared description of one remote CHIME tree.
pub struct Shared {
    pool: Arc<Pool>,
    /// The tree configuration.
    pub cfg: ChimeConfig,
    root_slot: GlobalAddr,
    leaf: LeafOps,
    internal: InternalOps,
}

/// A handle to a CHIME tree on the memory pool.
///
/// # Examples
///
/// ```
/// use chime::{Chime, ChimeConfig};
/// use dmem::{Pool, RangeIndex};
///
/// let pool = Pool::with_defaults(1, 64 << 20);
/// let tree = Chime::create(&pool, ChimeConfig::default(), 0);
/// let cn = tree.new_cn();
/// let mut client = tree.client(&cn);
/// client.insert(7, b"hello").unwrap();
/// assert_eq!(client.search(7).unwrap()[..5], *b"hello");
/// assert!(client.delete(7).unwrap());
/// ```
#[derive(Clone)]
pub struct Chime {
    shared: Arc<Shared>,
}

/// Per-compute-node shared state: the internal-node cache and the hotspot
/// buffer, shared by all clients of that CN.
pub struct CnState {
    cache: Mutex<NodeCache>,
    hotspot: Mutex<HotspotBuffer>,
    root_hint: Mutex<GlobalAddr>,
    lock_table: Arc<dmem::LocalLockTable>,
}

impl CnState {
    /// Bytes of compute-side memory this CN spends on the index.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.lock().bytes() + self.hotspot.lock().bytes()
    }

    /// `(hits, lookups)` of the hotspot buffer.
    pub fn hotspot_stats(&self) -> (u64, u64) {
        self.hotspot.lock().hit_stats()
    }

    /// `(hits, misses)` of the internal-node cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().hit_stats()
    }

    /// `(node cache bytes, hotspot buffer bytes)` currently used.
    pub fn cache_breakdown(&self) -> (u64, u64) {
        (self.cache.lock().bytes(), self.hotspot.lock().bytes())
    }
}

/// Per-client operation counters beyond the raw verb statistics.
#[derive(Debug, Default, Clone)]
pub struct OpCounters {
    /// Speculative reads attempted.
    pub spec_attempts: u64,
    /// Speculative reads that returned the correct value.
    pub spec_hits: u64,
    /// Leaf splits this client performed.
    pub splits: u64,
    /// Sibling chases (half-split windows observed).
    pub chases: u64,
    /// Leaf merges this client performed.
    pub merges: u64,
    /// Compute-side cache invalidations triggered by sibling validation.
    pub invalidations: u64,
}

/// One client of a CHIME tree (implements [`RangeIndex`]).
pub struct ChimeClient {
    shared: Arc<Shared>,
    cn: Arc<CnState>,
    ep: Endpoint,
    alloc: ChunkAlloc,
    /// Operation counters.
    pub counters: OpCounters,
    /// Backoff state for whole-operation optimistic retries; the conflict
    /// streak resets at the start of each operation.
    retry_backoff: Backoff,
    /// One-shot descent override installed by a migration forwarding
    /// tombstone: the next traversal starts from this internal node (the
    /// moved subtree's root) instead of the live root slot.
    forward: Option<GlobalAddr>,
}

/// Result of a sibling chase: either the operation finished, or the chase hit
/// an invalidated node and the whole operation must restart from the root.
enum ChaseOutcome {
    Done(Option<Vec<u8>>),
    Restart,
}

/// Where a traversal landed: the leaf plus validation context.
struct LeafLoc {
    addr: GlobalAddr,
    /// The next child pointer in the parent (sibling-validation expectation);
    /// `None` when the leaf is the parent's last child.
    expected: Option<GlobalAddr>,
    via_cache: bool,
    parent: GlobalAddr,
}

impl Chime {
    /// Creates a new empty tree whose root pointer lives in well-known slot
    /// `slot` of memory node 0.
    pub fn create(pool: &Arc<Pool>, cfg: ChimeConfig, slot: u64) -> Self {
        let t = Self::open(pool, cfg, slot);
        t.bootstrap(ChunkAlloc::with_defaults());
        t
    }

    /// Like [`Chime::create`], but every bootstrap allocation is pinned to
    /// memory node `mn` (partitioned deployments place each partition's
    /// subtree on its home MN). Uses the simulation-scaled chunk size so a
    /// fleet of partition trees does not exhaust the pool on reservation.
    pub fn create_pinned(pool: &Arc<Pool>, cfg: ChimeConfig, slot: u64, mn: u16) -> Self {
        let t = Self::open(pool, cfg, slot);
        t.bootstrap(ChunkAlloc::pinned(dmem::alloc::SIM_CHUNK_SIZE, mn));
        t
    }

    /// Attaches to an existing tree whose root pointer lives in slot `slot`
    /// (no bootstrap writes; the creator already published the root).
    pub fn open(pool: &Arc<Pool>, cfg: ChimeConfig, slot: u64) -> Self {
        cfg.validate();
        let leaf = LeafOps::new(leaf_layout(&cfg)).with_lease_spins(cfg.lock_lease_spins);
        let internal = InternalOps {
            layout: InternalLayout {
                span: cfg.internal_span,
            },
        };
        let shared = Arc::new(Shared {
            pool: Arc::clone(pool),
            cfg,
            root_slot: dmem::root_slot(slot),
            leaf,
            internal,
        });
        Chime { shared }
    }

    fn bootstrap(&self, mut alloc: ChunkAlloc) {
        let s = &self.shared;
        let mut ep = Endpoint::new(Arc::clone(&s.pool));
        let leaf_addr = alloc
            .alloc(&mut ep, s.leaf.layout.node_size() as u64)
            .expect("pool too small for bootstrap");
        let w = Window::new(s.cfg.span, s.cfg.neighborhood, 0, s.cfg.span);
        let meta = LeafMeta {
            sibling: GlobalAddr::NULL,
            valid: true,
            fences: s.leaf.layout.fences.then_some((0, u64::MAX)),
        };
        s.leaf.write_new(&mut ep, leaf_addr, &w, &meta);
        let root_addr = alloc
            .alloc(&mut ep, s.internal.layout.node_size() as u64)
            .expect("pool too small for bootstrap");
        let root = InternalNode {
            addr: root_addr,
            level: 1,
            valid: true,
            fence_low: 0,
            fence_high: u64::MAX,
            sibling: GlobalAddr::NULL,
            entries: vec![(0, leaf_addr)],
            nv: 0,
        };
        s.internal.write_new(&mut ep, &root);
        ep.write(s.root_slot, &root_addr.raw().to_le_bytes());
    }

    /// Creates the shared state for one compute node.
    pub fn new_cn(&self) -> Arc<CnState> {
        Arc::new(CnState {
            cache: Mutex::new(NodeCache::new(self.shared.cfg.cache_bytes)),
            hotspot: Mutex::new(HotspotBuffer::new(self.shared.cfg.hotspot_bytes)),
            root_hint: Mutex::new(GlobalAddr::NULL),
            lock_table: Arc::new(dmem::LocalLockTable::new()),
        })
    }

    /// Creates a client attached to compute node `cn`.
    pub fn client(&self, cn: &Arc<CnState>) -> ChimeClient {
        self.client_with_endpoint(cn, Endpoint::new(Arc::clone(&self.shared.pool)))
    }

    /// Creates a client whose node allocations (splits, indirect values)
    /// are pinned to memory node `mn` — see [`ChunkAlloc::pinned`].
    pub fn client_pinned(&self, cn: &Arc<CnState>, mn: u16) -> ChimeClient {
        let mut c = self.client(cn);
        c.alloc = ChunkAlloc::pinned(dmem::alloc::SIM_CHUNK_SIZE, mn);
        c
    }

    /// Creates a client over a pre-built endpoint (e.g. one wired to a
    /// [`dmem::FaultSession`] for fault-injection runs).
    pub fn client_with_endpoint(&self, cn: &Arc<CnState>, mut ep: Endpoint) -> ChimeClient {
        if self.shared.cfg.trace_events > 0 && ep.tracer().is_none() {
            ep.set_tracer(dmem::Tracer::new(
                ep.client_id(),
                self.shared.cfg.trace_events,
            ));
        }
        let seed = 0xC1BE_u64 ^ ((ep.client_id() as u64) << 32);
        ChimeClient {
            shared: Arc::clone(&self.shared),
            cn: Arc::clone(cn),
            ep,
            alloc: ChunkAlloc::sim_scaled(),
            counters: OpCounters::default(),
            retry_backoff: Backoff::new(seed),
            forward: None,
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &ChimeConfig {
        &self.shared.cfg
    }

    /// Builds a detached [`TreeBinding`] for this tree. `home` pins the
    /// binding's allocator to that memory node (partitioned deployments);
    /// `None` round-robins allocations as usual.
    pub fn binding(&self, cn: &Arc<CnState>, home: Option<u16>) -> TreeBinding {
        TreeBinding {
            shared: Arc::clone(&self.shared),
            cn: Arc::clone(cn),
            alloc: match home {
                Some(mn) => ChunkAlloc::pinned(dmem::alloc::SIM_CHUNK_SIZE, mn),
                None => ChunkAlloc::sim_scaled(),
            },
        }
    }
}

/// A client's attachment to one tree: the root slot and geometry, the
/// CN-local cache state, and the allocator that places the tree's new
/// nodes. A partition router holds one binding per partition and swaps
/// them through a single [`ChimeClient`] (see [`ChimeClient::rebind`]),
/// so one endpoint — one clock, one statistics block, one phase profile —
/// serves the whole key space.
pub struct TreeBinding {
    shared: Arc<Shared>,
    cn: Arc<CnState>,
    alloc: ChunkAlloc,
}

/// Derives the leaf geometry from a configuration.
pub fn leaf_layout(cfg: &ChimeConfig) -> LeafLayout {
    LeafLayout {
        span: cfg.span,
        h: cfg.neighborhood,
        key_size: cfg.key_size,
        value_size: if cfg.indirect_values { 8 } else { cfg.value_size },
        replication: cfg.metadata_replication,
        fences: !cfg.sibling_validation,
        piggyback: cfg.vacancy_piggyback,
    }
}

impl ChimeClient {
    /// The span/event trace of this client, when `cfg.trace_events > 0`.
    pub fn tracer(&self) -> Option<&dmem::Tracer> {
        self.ep.tracer()
    }

    /// Detaches and returns this client's tracer (e.g. for JSONL export).
    pub fn take_tracer(&mut self) -> Option<dmem::Tracer> {
        self.ep.take_tracer()
    }

    /// Advances this client's virtual clock by `ns`, attributing the time
    /// to `phase`. The serve layer charges request decode, admission waits,
    /// backpressure deferrals and response encoding through this, so those
    /// costs land in the same phase taxonomy (and, under the coroutine
    /// engine, park the lane like any other virtual-time advance).
    pub fn advance_phase(&mut self, phase: Phase, ns: u64) {
        let frame = self.ep.phase_begin(phase);
        self.ep.advance_clock(ns);
        self.ep.phase_end(frame);
    }

    fn leaf(&self) -> LeafOps {
        self.shared.leaf
    }

    fn span(&self) -> usize {
        self.shared.cfg.span
    }

    fn h(&self) -> usize {
        self.shared.cfg.neighborhood
    }

    /// Queues locally for a remote node lock (Sherman's local lock table):
    /// contending clients of one CN hand the lock over locally instead of
    /// hammering the MN with CAS retries.
    fn local_lock(&mut self, addr: GlobalAddr) -> dmem::LocalLockGuard {
        let table = Arc::clone(&self.cn.lock_table);
        table.acquire_with(addr.raw(), &mut self.ep)
    }

    /// Runs `f` with `phase` as the active attribution phase.
    fn in_phase<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> R) -> R {
        let fr = self.ep.phase_begin(phase);
        let r = f(self);
        self.ep.phase_end(fr);
        r
    }

    /// Records a whole-operation optimistic retry attributed to its root
    /// `cause` and backs off with seeded jitter before the next attempt.
    fn on_op_conflict(&mut self, cause: RetryCause) {
        self.ep.note_op_retry(cause);
        let fr = self.ep.phase_begin(Phase::RetryBackoff);
        self.retry_backoff.wait(&mut self.ep);
        self.ep.phase_end(fr);
    }

    /// Reads the root pointer slot and refreshes the CN-wide hint.
    fn refresh_root(&mut self) -> GlobalAddr {
        let fr = self.ep.phase_begin(Phase::Traversal);
        let mut b = [0u8; 8];
        self.ep.read(self.shared.root_slot, &mut b);
        self.ep.phase_end(fr);
        let addr = GlobalAddr::from_raw(u64::from_le_bytes(b));
        *self.cn.root_hint.lock() = addr;
        addr
    }

    fn root(&mut self) -> GlobalAddr {
        let hint = *self.cn.root_hint.lock();
        if hint.is_null() {
            self.refresh_root()
        } else {
            hint
        }
    }

    /// Where the next traversal starts: a pending forwarding target if a
    /// migration tombstone installed one, otherwise the (hinted) root.
    fn descent_origin(&mut self) -> GlobalAddr {
        match self.forward.take() {
            Some(f) => f,
            None => self.root(),
        }
    }

    /// Reacts to an invalid leaf observed mid-operation. A leaf retired by
    /// a partition migration carries a forwarding pointer (invalid, sibling
    /// non-null: the destination tree's root internal node) — when `follow`
    /// is set, the next descent restarts from there, keeping the operation
    /// wait-free while a crashed migration leaves the live root stale.
    /// Searches, updates and deletes follow (they never split, so they
    /// cannot up-propagate pivots into the wrong tree's internals); inserts
    /// and scans do not — they retry through the live root until recovery
    /// republishes it. A leaf retired by a merge (sibling null) always
    /// falls back to a root refresh. Either way the cached parent route is
    /// dropped.
    fn on_invalid_leaf(&mut self, parent: GlobalAddr, tombstone_sibling: GlobalAddr, follow: bool) {
        self.cn.cache.lock().invalidate(parent);
        if follow && !tombstone_sibling.is_null() {
            self.counters.chases += 1;
            self.forward = Some(tombstone_sibling);
        }
        // Either way, re-read the root slot: a tombstone means this
        // partition is (or was) migrating, and once the switch has
        // published, the refreshed CN-wide hint sends every subsequent
        // descent straight to the live tree instead of chasing the forward
        // on each operation. Before the switch the slot still names the
        // old root and the chase repeats — correct, just slower.
        self.refresh_root();
        self.on_op_conflict(RetryCause::StaleRoute);
    }

    /// Reads an internal node through the CN cache; remote reads populate it.
    fn read_internal_cached(&mut self, addr: GlobalAddr, key: u64) -> (InternalNode, bool) {
        let hit = self.in_phase(Phase::CacheLookup, |me| {
            me.cn.cache.lock().get(addr).filter(|n| n.covers(key))
        });
        if let Some(n) = hit {
            return (n, true);
        }
        let n = self.shared.internal.read(&mut self.ep, addr);
        if n.valid {
            self.cn.cache.lock().insert(n.clone());
        }
        (n, false)
    }

    /// Traverses internal levels down to the parent of the target leaf.
    fn locate_leaf(&mut self, key: u64) -> LeafLoc {
        let fr = self.ep.phase_begin(Phase::Traversal);
        let loc = self.locate_leaf_inner(key);
        self.ep.phase_end(fr);
        loc
    }

    fn locate_leaf_inner(&mut self, key: u64) -> LeafLoc {
        let mut addr = self.descent_origin();
        for _ in 0..OP_RETRY_LIMIT {
            let (node, via_cache) = self.read_internal_cached(addr, key);
            if !node.valid {
                self.cn.cache.lock().invalidate(addr);
                addr = self.refresh_root();
                self.on_op_conflict(RetryCause::StaleRoute);
                continue;
            }
            if !node.covers(key) {
                if key >= node.fence_high && !node.sibling.is_null() {
                    // B-link lateral move (half-split at this level).
                    addr = node.sibling;
                } else {
                    addr = self.refresh_root();
                    self.on_op_conflict(RetryCause::StaleRoute);
                }
                continue;
            }
            let (child, mut next) = node.select(key);
            if node.level == 1 {
                if next.is_none() && !node.sibling.is_null() {
                    // The leaf is its parent's last child: the expected
                    // sibling pointer is the *first child of the parent's
                    // B-link sibling* (usually cached). Without it, every
                    // interior last-child access would look half-split.
                    next = self.first_child_of(node.sibling);
                }
                return LeafLoc {
                    addr: child,
                    expected: next,
                    via_cache,
                    parent: node.addr,
                };
            }
            addr = child;
        }
        panic!("locate_leaf retry limit for key {key}");
    }

    /// First child pointer of the internal node at `addr` (cached when
    /// possible). Used to resolve the expected sibling of last children.
    fn first_child_of(&mut self, addr: GlobalAddr) -> Option<GlobalAddr> {
        if let Some(n) = self.cn.cache.lock().get(addr) {
            return n.entries.first().map(|e| e.1);
        }
        let n = self.shared.internal.read(&mut self.ep, addr);
        if !n.valid {
            return None;
        }
        self.cn.cache.lock().insert(n.clone());
        n.entries.first().map(|e| e.1)
    }

    /// Like [`Self::locate_leaf`] but returns the parent node itself
    /// (used by scans to batch-read consecutive leaves).
    fn locate_parent(&mut self, key: u64) -> InternalNode {
        let fr = self.ep.phase_begin(Phase::Traversal);
        let node = self.locate_parent_inner(key);
        self.ep.phase_end(fr);
        node
    }

    fn locate_parent_inner(&mut self, key: u64) -> InternalNode {
        let mut addr = self.descent_origin();
        for _ in 0..OP_RETRY_LIMIT {
            let (node, _) = self.read_internal_cached(addr, key);
            if !node.valid {
                addr = self.refresh_root();
                self.on_op_conflict(RetryCause::StaleRoute);
                continue;
            }
            if !node.covers(key) {
                if key >= node.fence_high && !node.sibling.is_null() {
                    addr = node.sibling;
                } else {
                    addr = self.refresh_root();
                    self.on_op_conflict(RetryCause::StaleRoute);
                }
                continue;
            }
            if node.level == 1 {
                return node;
            }
            let (child, _) = node.select(key);
            addr = child;
        }
        panic!("locate_parent retry limit for key {key}");
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    fn search_impl(&mut self, key: u64) -> Option<Vec<u8>> {
        assert_ne!(key, 0, "key 0 is reserved");
        self.retry_backoff.reset();
        let cfg = self.shared.cfg;
        let span = self.span();
        let h = self.h();
        let fp = fingerprint16(key);
        let home = home_entry(key, span);
        for attempt in 0..OP_RETRY_LIMIT {
            let loc = self.locate_leaf(key);
            // Hotness-aware speculative read (§4.3).
            if cfg.speculative_read && cfg.hotspot_bytes > 0 {
                let idx = {
                    let mut buf = self.cn.hotspot.lock();
                    buf.lookup(loc.addr, (0..h).map(|d| ((home + d) % span) as u16), fp)
                };
                if let Some(idx) = idx {
                    if let Some(v) = self.try_speculative_read(loc.addr, idx, key, fp) {
                        return Some(v);
                    }
                }
            }
            let r = self
                .in_phase(Phase::LeafRead, |me| {
                    me.leaf().read_neighborhood(&mut me.ep, loc.addr, key)
                });
            if !r.meta.valid {
                self.on_invalid_leaf(loc.parent, r.meta.sibling, true);
                continue;
            }
            // Fence-key validation path (sibling validation disabled).
            if let Some((lo, hi)) = r.meta.fences {
                if key < lo {
                    self.cn.cache.lock().invalidate(loc.parent);
                    self.refresh_root();
                    self.on_op_conflict(RetryCause::StaleRoute);
                    continue;
                }
                if !dmem::hash::in_range(key, lo, hi) {
                    self.counters.chases += 1;
                    self.cn.cache.lock().invalidate(loc.parent);
                    let out = self
                        .in_phase(Phase::Validate, |me| me.chase_fences(r.meta.sibling, key));
                    return match out {
                        ChaseOutcome::Done(v) => v,
                        ChaseOutcome::Restart => self.search_impl(key),
                    };
                }
            }
            if let Some((idx, v)) = r.found {
                self.ep.note_app_bytes(cfg.value_size as u64 + 8);
                if cfg.hotspot_bytes > 0 {
                    self.cn.hotspot.lock().on_access(loc.addr, idx as u16, fp);
                }
                return Some(self.resolve_value(v));
            }
            if r.meta.fences.is_some() {
                return None; // fences proved ownership; the key is absent
            }
            // Sibling-based validation (§4.2.3).
            match loc.expected {
                Some(e) if r.meta.sibling == e => return None,
                None if r.meta.sibling.is_null() => return None,
                _ => {
                    if loc.via_cache && attempt == 0 {
                        // Cache validation: refresh the parent and retry.
                        self.counters.invalidations += 1;
                        self.cn.cache.lock().invalidate(loc.parent);
                        self.on_op_conflict(RetryCause::StaleSibling);
                        continue;
                    }
                    // Half-split window: chase the sibling chain.
                    self.counters.chases += 1;
                    let out = self.in_phase(Phase::Validate, |me| me.chase(loc.addr, key));
                    return match out {
                        ChaseOutcome::Done(v) => v,
                        ChaseOutcome::Restart => self.search_impl(key),
                    };
                }
            }
        }
        panic!("search retry limit for key {key}");
    }

    /// Reads the hotspot-predicted slot directly (the speculative read),
    /// returning the value on a hit.
    fn try_speculative_read(
        &mut self,
        addr: GlobalAddr,
        idx: u16,
        key: u64,
        fp: u16,
    ) -> Option<Vec<u8>> {
        let fr = self.ep.phase_begin(Phase::SpeculativeRead);
        self.counters.spec_attempts += 1;
        let mut out = None;
        if let Some(v) = self.leaf().spec_read(&mut self.ep, addr, idx as usize, key) {
            self.counters.spec_hits += 1;
            self.ep
                .note_app_bytes(self.shared.cfg.value_size as u64 + 8);
            self.cn.hotspot.lock().on_access(addr, idx, fp);
            out = Some(self.resolve_value(v));
        }
        self.ep.phase_end(fr);
        out
    }

    /// Sibling chase with whole-node reads (sibling-validation mode).
    /// `Restart` tells the caller to re-run the whole operation (outside the
    /// validate phase, so the restart is attributed to its own phases).
    fn chase(&mut self, mut addr: GlobalAddr, key: u64) -> ChaseOutcome {
        for _ in 0..OP_RETRY_LIMIT {
            let snap = self.leaf().read_full(&mut self.ep, addr);
            if !snap.meta.valid {
                return ChaseOutcome::Restart;
            }
            if let Some((_, v)) = snap.find(key, self.h()) {
                let v = v.to_vec();
                return ChaseOutcome::Done(Some(self.resolve_value(v)));
            }
            match snap.max_key() {
                Some(mx) if mx >= key => return ChaseOutcome::Done(None),
                _ => {}
            }
            if snap.meta.sibling.is_null() {
                return ChaseOutcome::Done(None);
            }
            addr = snap.meta.sibling;
        }
        panic!("chase retry limit for key {key}");
    }

    /// Sibling chase guided by fence keys (fence mode).
    fn chase_fences(&mut self, mut addr: GlobalAddr, key: u64) -> ChaseOutcome {
        for _ in 0..OP_RETRY_LIMIT {
            if addr.is_null() {
                return ChaseOutcome::Done(None);
            }
            let r = self.leaf().read_neighborhood(&mut self.ep, addr, key);
            if !r.meta.valid {
                return ChaseOutcome::Restart;
            }
            let (lo, hi) = r.meta.fences.expect("fence mode");
            if key < lo {
                return ChaseOutcome::Restart;
            }
            if !dmem::hash::in_range(key, lo, hi) {
                addr = r.meta.sibling;
                continue;
            }
            let v = r.found.map(|(_, v)| v).map(|v| self.resolve_value(v));
            return ChaseOutcome::Done(v);
        }
        panic!("fence chase retry limit for key {key}");
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Decides whether the locked leaf still owns `key`; on a half-split it
    /// returns the sibling the caller should move to.
    fn owns_key(
        &mut self,
        key: u64,
        loc_expected: Option<GlobalAddr>,
        lr: &LockedRead,
    ) -> Option<GlobalAddr> {
        if let Some((lo, hi)) = lr.meta.fences {
            // Fence mode: exact ownership.
            if !dmem::hash::in_range(key, lo, hi) {
                return Some(lr.meta.sibling);
            }
            assert!(key >= lo, "routed below fence_low");
            return None;
        }
        match loc_expected {
            Some(e) if lr.meta.sibling == e => None,
            _ if lr.meta.sibling.is_null() => None,
            _ => match lr.max_key {
                // Empty node ⇒ no split happened ⇒ routing was valid.
                None => None,
                // key <= max is always sound: a split leaves only keys
                // below the propagated pivot behind, so max < pivot.
                Some(mx) if key <= mx => None,
                // key > max: the key is definitely NOT here. Searches,
                // updates and deletes may chase the chain (presence checks
                // are sound); inserts must NOT place the key by this
                // heuristic — deletes can open a gap below the pivot — and
                // instead re-traverse from a fresh parent (see insert_impl).
                Some(_) => Some(lr.meta.sibling),
            },
        }
    }

    fn insert_impl(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        self.retry_backoff.reset();
        let stored = self.store_value(key, value)?;
        let span = self.span();
        let home = home_entry(key, span);
        let mut override_addr: Option<GlobalAddr> = None;
        for _ in 0..OP_RETRY_LIMIT {
            let (addr, expected, parent) = match override_addr.take() {
                Some(a) => (a, None, GlobalAddr::NULL),
                None => {
                    let loc = self.locate_leaf(key);
                    (loc.addr, loc.expected, loc.parent)
                }
            };
            // On an ownership miss in sibling-validation mode, inserts must
            // not trust the rightward heuristic (unsound under deletes);
            // they invalidate the cached parent and re-traverse until the
            // pending split has propagated.
            let mut on_miss = |me: &mut Self, next: GlobalAddr, fenced: bool| {
                if fenced {
                    override_addr = Some(next);
                } else {
                    me.cn.cache.lock().invalidate(parent);
                    me.refresh_root();
                }
            };
            if !self.shared.cfg.vacancy_piggyback {
                // Without the vacancy bitmap the insert cannot identify the
                // hop range remotely: lock and fetch the entire leaf
                // (the paper's pre-piggybacking baseline).
                let _lk = self.local_lock(addr);
                let word = self
                    .in_phase(Phase::LockAcquire, |me| me.leaf().lock_plain(&mut me.ep, addr));
                let lr = self
                    .in_phase(Phase::LeafRead, |me| {
                        me.leaf().read_full_locked(&mut me.ep, addr, word)
                    });
                if !lr.meta.valid {
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    self.on_invalid_leaf(parent, lr.meta.sibling, false);
                    continue;
                }
                if let Some(next) = self.owns_key(key, expected, &lr) {
                    self.counters.chases += 1;
                    let fenced = lr.meta.fences.is_some();
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    on_miss(self, next, fenced);
                    self.on_op_conflict(RetryCause::StaleSibling);
                    continue;
                }
                match self.insert_into_full_window(addr, word, lr, key, &stored)? {
                    true => return Ok(()),
                    false => continue,
                }
            }
            let _lk = self.local_lock(addr);
            let word = self.in_phase(Phase::LockAcquire, |me| me.leaf().lock(&mut me.ep, addr));
            let Some(mut lr) = self.in_phase(Phase::LeafRead, |me| {
                me.leaf().read_hop_window(&mut me.ep, addr, home, word)
            }) else {
                // Vacancy bitmap shows a full node: read everything & split.
                let lr = self
                    .in_phase(Phase::LeafRead, |me| {
                        me.leaf().read_full_locked(&mut me.ep, addr, word)
                    });
                if !lr.meta.valid {
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    self.on_invalid_leaf(parent, lr.meta.sibling, false);
                    continue;
                }
                if let Some(next) = self.owns_key(key, expected, &lr) {
                    let fenced = lr.meta.fences.is_some();
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    on_miss(self, next, fenced);
                    self.on_op_conflict(RetryCause::StaleSibling);
                    continue;
                }
                self.split_leaf(addr, lr)?;
                continue;
            };
            if !lr.meta.valid {
                // The leaf was merged away or migrated: drop the stale route.
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                self.on_invalid_leaf(parent, lr.meta.sibling, false);
                continue;
            }
            if let Some(next) = self.owns_key(key, expected, &lr) {
                self.counters.chases += 1;
                let fenced = lr.meta.fences.is_some();
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                on_miss(self, next, fenced);
                self.on_op_conflict(RetryCause::StaleSibling);
                continue;
            }
            // Duplicate: update in place.
            if let Some(pos) = lr.w.find_in_neighborhood(key) {
                lr.w.set_value(pos, stored.clone());
                self.in_phase(Phase::WriteBack, |me| {
                    let leaf = me.leaf();
                    leaf.write_window_and_unlock(
                        &mut me.ep,
                        addr,
                        &lr.w,
                        &lr.evs,
                        lr.nv,
                        &lr.meta,
                        word,
                    );
                });
                return Ok(());
            }
            // Find the true first empty slot at/after home in the window.
            let Some(empty) = lr.w.first_empty_from(home) else {
                // The vacant group's empties sat before `home` (conservative
                // bitmap): fall back to a full-node window.
                let lr_full = self.in_phase(Phase::LeafRead, |me| {
                    me.leaf().read_full_locked(&mut me.ep, addr, word)
                });
                match self.insert_into_full_window(addr, word, lr_full, key, &stored)? {
                    true => return Ok(()),
                    false => continue,
                }
            };
            match lr.w.insert(key, stored.clone(), empty) {
                Ok(pos) => {
                    let new_word = self.word_after_insert(&lr, word, key, pos, empty);
                    self.in_phase(Phase::WriteBack, |me| {
                        let leaf = me.leaf();
                        leaf.write_window_and_unlock(
                            &mut me.ep,
                            addr,
                            &lr.w,
                            &lr.evs,
                            lr.nv,
                            &lr.meta,
                            new_word,
                        );
                    });
                    return Ok(());
                }
                Err(_) => {
                    // No feasible hopping: split.
                    let lr_full = self.in_phase(Phase::LeafRead, |me| {
                    me.leaf().read_full_locked(&mut me.ep, addr, word)
                });
                    self.split_leaf(addr, lr_full)?;
                    continue;
                }
            }
        }
        panic!("insert retry limit for key {key}");
    }

    /// Inserts into a freshly read full-node window; returns `Ok(true)` on
    /// success, `Ok(false)` to retry after a split.
    fn insert_into_full_window(
        &mut self,
        addr: GlobalAddr,
        word: LockWord,
        mut lr: LockedRead,
        key: u64,
        stored: &[u8],
    ) -> Result<bool, IndexError> {
        let home = home_entry(key, self.span());
        if let Some(pos) = lr.w.find_in_neighborhood(key) {
            lr.w.set_value(pos, stored.to_vec());
            self.in_phase(Phase::WriteBack, |me| {
                let leaf = me.leaf();
                leaf.write_window_and_unlock(&mut me.ep, addr, &lr.w, &lr.evs, lr.nv, &lr.meta, word);
            });
            return Ok(true);
        }
        let empty = (0..self.span())
            .map(|d| (home + d) % self.span())
            .find(|&i| lr.w.slot_empty(i));
        let Some(empty) = empty else {
            self.split_leaf(addr, lr)?;
            return Ok(false);
        };
        match lr.w.insert(key, stored.to_vec(), empty) {
            Ok(pos) => {
                let new_word = self.word_after_insert(&lr, word, key, pos, empty);
                self.in_phase(Phase::WriteBack, |me| {
                    let leaf = me.leaf();
                    leaf.write_window_and_unlock(
                        &mut me.ep,
                        addr,
                        &lr.w,
                        &lr.evs,
                        lr.nv,
                        &lr.meta,
                        new_word,
                    );
                });
                Ok(true)
            }
            Err(_) => {
                self.split_leaf(addr, lr)?;
                Ok(false)
            }
        }
    }

    /// Computes the post-insert lock word (vacancy + argmax).
    fn word_after_insert(
        &self,
        lr: &LockedRead,
        word: LockWord,
        key: u64,
        pos: usize,
        empty: usize,
    ) -> LockWord {
        let w = &lr.w;
        let vm = self.leaf().vm;
        // Only `empty`'s occupancy changed; recompute its group exactly.
        let g = vm.group_of(empty);
        let (gs, ge) = vm.group_range(g);
        let any_empty = (gs..=ge).any(|i| w.rel(i).map(|_| w.slot_empty(i)).unwrap_or(false));
        let mut new_word = word.with_vacancy_bit(g, any_empty);
        // Track the maximum key's position.
        let new_max = match lr.max_key {
            None => Some(pos),
            Some(mx) if key > mx => Some(pos),
            Some(mx) => {
                // The old max may have been hopped to a new slot.
                let old_am = word.argmax() as usize % self.span();
                if w.rel(old_am).is_some() && w.slot(old_am).0 != mx {
                    Some(
                        (0..self.span())
                            .filter(|&i| w.rel(i).is_some())
                            .find(|&i| w.slot(i).0 == mx)
                            .expect("max key vanished during hop"),
                    )
                } else {
                    None
                }
            }
        };
        if let Some(am) = new_max {
            new_word = new_word.with_argmax(am as u16);
        }
        new_word
    }

    fn update_impl(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        self.retry_backoff.reset();
        let stored = self.store_value(key, value)?;
        let span = self.span();
        let home = home_entry(key, span);
        let mut override_addr: Option<GlobalAddr> = None;
        for _ in 0..OP_RETRY_LIMIT {
            let (addr, expected, parent) = match override_addr.take() {
                Some(a) => (a, None, GlobalAddr::NULL),
                None => {
                    let loc = self.locate_leaf(key);
                    (loc.addr, loc.expected, loc.parent)
                }
            };
            let _lk = self.local_lock(addr);
            let word = self.in_phase(Phase::LockAcquire, |me| {
                if me.shared.cfg.vacancy_piggyback {
                    me.leaf().lock(&mut me.ep, addr)
                } else {
                    me.leaf().lock_plain(&mut me.ep, addr)
                }
            });
            let mut lr = self.in_phase(Phase::LeafRead, |me| {
                me.leaf().read_nbh_window(&mut me.ep, addr, home, word)
            });
            if !lr.meta.valid {
                // The leaf was merged away or migrated: drop the stale route.
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                self.on_invalid_leaf(parent, lr.meta.sibling, true);
                continue;
            }
            if let Some(next) = self.owns_key(key, expected, &lr) {
                self.counters.chases += 1;
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                if next.is_null() {
                    return Ok(false);
                }
                override_addr = Some(next);
                self.on_op_conflict(RetryCause::StaleSibling);
                continue;
            }
            let Some(pos) = lr.w.find_in_neighborhood(key) else {
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                return Ok(false);
            };
            lr.w.set_value(pos, stored);
            self.in_phase(Phase::WriteBack, |me| {
                let leaf = me.leaf();
                leaf.write_window_and_unlock(&mut me.ep, addr, &lr.w, &lr.evs, lr.nv, &lr.meta, word);
            });
            return Ok(true);
        }
        panic!("update retry limit for key {key}");
    }

    fn delete_impl(&mut self, key: u64) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        self.retry_backoff.reset();
        let span = self.span();
        let home = home_entry(key, span);
        let mut override_addr: Option<GlobalAddr> = None;
        for _ in 0..OP_RETRY_LIMIT {
            let (addr, expected, parent) = match override_addr.take() {
                Some(a) => (a, None, GlobalAddr::NULL),
                None => {
                    let loc = self.locate_leaf(key);
                    (loc.addr, loc.expected, loc.parent)
                }
            };
            let _lk = self.local_lock(addr);
            let word = self.in_phase(Phase::LockAcquire, |me| {
                if me.shared.cfg.vacancy_piggyback {
                    me.leaf().lock(&mut me.ep, addr)
                } else {
                    me.leaf().lock_plain(&mut me.ep, addr)
                }
            });
            let mut lr = self.in_phase(Phase::LeafRead, |me| {
                me.leaf().read_nbh_window(&mut me.ep, addr, home, word)
            });
            if !lr.meta.valid {
                // The leaf was merged away or migrated: drop the stale route.
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                self.on_invalid_leaf(parent, lr.meta.sibling, true);
                continue;
            }
            if let Some(next) = self.owns_key(key, expected, &lr) {
                self.counters.chases += 1;
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                if next.is_null() {
                    return Ok(false);
                }
                override_addr = Some(next);
                self.on_op_conflict(RetryCause::StaleSibling);
                continue;
            }
            if lr.w.find_in_neighborhood(key).is_none() {
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                return Ok(false);
            }
            // Deleting the maximum key requires recomputing argmax from the
            // whole node.
            let deleting_max = lr.max_key == Some(key);
            if deleting_max {
                lr = self.in_phase(Phase::LeafRead, |me| {
                    me.leaf().read_full_locked(&mut me.ep, addr, word)
                });
            }
            let pos = lr
                .w
                .find_in_neighborhood(key)
                .expect("key vanished under lock");
            lr.w.remove(pos);
            let vm = self.leaf().vm;
            let mut new_word = word.with_vacancy_bit(vm.group_of(pos), true);
            if deleting_max {
                let am = (0..span)
                    .filter(|&i| !lr.w.slot_empty(i))
                    .max_by_key(|&i| lr.w.slot(i).0);
                new_word = new_word.with_argmax(am.map(|i| i as u16).unwrap_or(ARGMAX_NONE));
            }
            // Underflow check (§4.4 Delete): when the whole node was in
            // hand and it dropped below a quarter full, attempt a merge
            // with the right sibling after the delete completes.
            let underflow = deleting_max
                && (0..span).filter(|&i| !lr.w.slot_empty(i)).count() <= span / 4;
            let probe = if underflow {
                (0..span)
                    .filter(|&i| !lr.w.slot_empty(i))
                    .map(|i| lr.w.slot(i).0)
                    .next()
            } else {
                None
            };
            self.in_phase(Phase::WriteBack, |me| {
                let leaf = me.leaf();
                leaf.write_window_and_unlock(
                    &mut me.ep,
                    addr,
                    &lr.w,
                    &lr.evs,
                    lr.nv,
                    &lr.meta,
                    new_word,
                );
            });
            if underflow {
                // Best-effort merge; drop the local guard first so the
                // merge can take locks in parent-first order.
                drop(_lk);
                self.try_merge(addr, probe.unwrap_or(key));
            }
            return Ok(true);
        }
        panic!("delete retry limit for key {key}");
    }

    /// Best-effort merge of the underflowed leaf `addr` with its right
    /// sibling *under the same parent* (merging across parent boundaries
    /// would break routing).
    ///
    /// Lock order: parent -> left leaf -> right leaf. Holding the parent
    /// throughout pins both pivots (no racing parent split can move them),
    /// so the pivot removal is a plain in-place rewrite. Leaf locks are
    /// taken without the CN-local table here: remote holders always release
    /// their leaf lock before waiting on a parent, so the spin is bounded
    /// and the parent-first order introduces no cycle.
    fn try_merge(&mut self, addr: GlobalAddr, probe_key: u64) {
        let cfg = self.shared.cfg;
        // Find and lock the (fresh) parent of `addr`.
        let parent_addr = self.locate_parent(probe_key).addr;
        let _pk = self.local_lock(parent_addr);
        self.in_phase(Phase::LockAcquire, |me| {
            me.shared.internal.lock(&mut me.ep, parent_addr)
        });
        let mut parent = self
            .in_phase(Phase::Traversal, |me| {
                me.shared.internal.read(&mut me.ep, parent_addr)
            });
        let unlock_parent = |me: &mut Self| {
            me.in_phase(Phase::WriteBack, |m| {
                m.shared.internal.unlock(&mut m.ep, parent_addr)
            });
        };
        if !parent.valid {
            return unlock_parent(self);
        }
        let Some(i) = parent.entries.iter().position(|e| e.1 == addr) else {
            return unlock_parent(self);
        };
        let Some(&(sib_pivot, sib)) = parent.entries.get(i + 1) else {
            return unlock_parent(self); // last child: partner elsewhere
        };
        // Lock and re-validate the left leaf.
        let xword = self.in_phase(Phase::LockAcquire, |me| me.leaf().lock(&mut me.ep, addr));
        let xlr = self.in_phase(Phase::LeafRead, |me| {
            me.leaf().read_full_locked(&mut me.ep, addr, xword)
        });
        let span = cfg.span;
        let xcount = (0..span).filter(|&j| !xlr.w.slot_empty(j)).count();
        if !xlr.meta.valid || xlr.meta.sibling != sib || xcount > span / 4 {
            self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, xword));
            return unlock_parent(self);
        }
        // Lock the right leaf and check the combined fit.
        let sword = self.in_phase(Phase::LockAcquire, |me| me.leaf().lock(&mut me.ep, sib));
        let slr = self.in_phase(Phase::LeafRead, |me| {
            me.leaf().read_full_locked(&mut me.ep, sib, sword)
        });
        let mut items: Vec<(u64, Vec<u8>)> = Vec::new();
        for w in [&xlr.w, &slr.w] {
            for j in 0..span {
                if !w.slot_empty(j) {
                    let (k, v, _) = w.slot(j);
                    items.push((k, v.to_vec()));
                }
            }
        }
        let merged = if !slr.meta.valid || items.len() > (span * 2) / 3 {
            None
        } else {
            build_table(span, cfg.neighborhood, &items)
        };
        let Some(merged) = merged else {
            self.in_phase(Phase::WriteBack, |me| {
                me.leaf().unlock(&mut me.ep, sib, sword);
                me.leaf().unlock(&mut me.ep, addr, xword);
            });
            return unlock_parent(self);
        };
        self.counters.merges += 1;
        // Publish order: merged left node (all keys stay reachable) ->
        // invalidate the right node -> drop its pivot from the parent.
        let (old_lo, _) = xlr.meta.fences.unwrap_or((0, u64::MAX));
        let (_, sib_hi) = slr.meta.fences.unwrap_or((0, u64::MAX));
        let meta = LeafMeta {
            sibling: slr.meta.sibling,
            valid: true,
            fences: self.leaf().layout.fences.then_some((old_lo, sib_hi)),
        };
        self.in_phase(Phase::WriteBack, |me| {
            me.leaf()
                .rewrite_and_unlock(&mut me.ep, addr, &merged, xlr.nv, &meta)
        });
        let empty = Window::new(span, cfg.neighborhood, 0, span);
        let dead = LeafMeta {
            sibling: GlobalAddr::NULL,
            valid: false,
            fences: self.leaf().layout.fences.then_some((sib_pivot, sib_pivot)),
        };
        self.in_phase(Phase::WriteBack, |me| {
            me.leaf()
                .rewrite_and_unlock(&mut me.ep, sib, &empty, slr.nv, &dead)
        });
        assert!(i + 1 > 0);
        parent.entries.remove(i + 1);
        self.in_phase(Phase::WriteBack, |me| {
            me.shared.internal.write_and_unlock(&mut me.ep, &parent)
        });
        self.cn.cache.lock().invalidate(parent_addr);
    }

    // ------------------------------------------------------------------
    // Split & up-propagation
    // ------------------------------------------------------------------

    /// Splits the locked leaf `addr` (whose full content is in `lr`),
    /// releases its lock and up-propagates the new pivots.
    fn split_leaf(&mut self, addr: GlobalAddr, lr: LockedRead) -> Result<(), IndexError> {
        self.counters.splits += 1;
        let cfg = self.shared.cfg;
        let mut items: Vec<(u64, Vec<u8>)> = (0..cfg.span)
            .filter(|&i| !lr.w.slot_empty(i))
            .map(|i| {
                let (k, v, _) = lr.w.slot(i);
                (k, v.to_vec())
            })
            .collect();
        items.sort_by_key(|&(k, _)| k);
        assert!(items.len() >= 2, "splitting a near-empty node");
        let mid = items.len() / 2;
        // Build chains (usually exactly one chunk per half).
        let chunks = {
            let mut c = build_chunks(cfg.span, cfg.neighborhood, &items[..mid]);
            c.extend(build_chunks(cfg.span, cfg.neighborhood, &items[mid..]));
            c
        };
        assert!(chunks.len() >= 2);
        // Boundary pivots: max of previous chunk + 1 (argmax-corner rule).
        let mut pivots = Vec::with_capacity(chunks.len());
        pivots.push(0u64); // unused for chunk 0 (keeps the old low bound)
        for pair in chunks.windows(2) {
            let prev_max = pair[0].1.last().expect("chunk cannot be empty").0;
            pivots.push(prev_max + 1);
        }
        // Allocate the new nodes (all but chunk 0, which reuses `addr`).
        let node_size = self.leaf().layout.node_size() as u64;
        let mut addrs = vec![addr];
        for _ in 1..chunks.len() {
            let a = self.in_phase(Phase::WriteBack, |me| me.alloc.alloc(&mut me.ep, node_size));
            addrs.push(a?);
        }
        let (old_lo, old_hi) = lr.meta.fences.unwrap_or((0, u64::MAX));
        // Write new nodes right-to-left so each points at an already
        // written sibling; the old node is rewritten last (publish point).
        for i in (1..chunks.len()).rev() {
            let sibling = if i + 1 < chunks.len() {
                addrs[i + 1]
            } else {
                lr.meta.sibling
            };
            let hi = if i + 1 < chunks.len() {
                pivots[i + 1]
            } else {
                old_hi
            };
            let meta = LeafMeta {
                sibling,
                valid: true,
                fences: self.leaf().layout.fences.then_some((pivots[i], hi)),
            };
            self.in_phase(Phase::WriteBack, |me| {
                me.leaf()
                    .write_new(&mut me.ep, addrs[i], &chunks[i].0, &meta)
            });
        }
        let meta0 = LeafMeta {
            sibling: addrs[1],
            valid: true,
            fences: self.leaf().layout.fences.then_some((old_lo, pivots[1])),
        };
        self.in_phase(Phase::WriteBack, |me| {
            me.leaf()
                .rewrite_and_unlock(&mut me.ep, addr, &chunks[0].0, lr.nv, &meta0)
        });
        // Up-propagate every new pivot.
        for i in 1..chunks.len() {
            self.insert_into_parent(1, pivots[i], addrs[i])?;
        }
        Ok(())
    }

    /// Inserts `(pivot, child)` into the internal node at `level` covering
    /// `pivot`, splitting upward as needed (Sherman's Steps 1–3).
    fn insert_into_parent(
        &mut self,
        level: u8,
        pivot: u64,
        child: GlobalAddr,
    ) -> Result<(), IndexError> {
        for _ in 0..OP_RETRY_LIMIT {
            let root_addr = self.refresh_root();
            let mut node = self
                .in_phase(Phase::Traversal, |me| {
                    me.shared.internal.read(&mut me.ep, root_addr)
                });
            if node.level < level {
                continue; // racing root growth; re-read the slot
            }
            // Descend to `level`.
            let mut ok = true;
            while node.level > level {
                if !node.covers(pivot) {
                    if pivot >= node.fence_high && !node.sibling.is_null() {
                        let sib = node.sibling;
                        node = self
                            .in_phase(Phase::Traversal, |me| {
                                me.shared.internal.read(&mut me.ep, sib)
                            });
                        continue;
                    }
                    ok = false;
                    break;
                }
                let (c, _) = node.select(pivot);
                node = self.in_phase(Phase::Traversal, |me| me.shared.internal.read(&mut me.ep, c));
            }
            if !ok || node.level != level {
                continue;
            }
            // Lateral moves at the target level.
            while node.valid && !node.covers(pivot) && pivot >= node.fence_high {
                if node.sibling.is_null() {
                    break;
                }
                let sib = node.sibling;
                node = self.in_phase(Phase::Traversal, |me| me.shared.internal.read(&mut me.ep, sib));
            }
            if !node.valid || !node.covers(pivot) {
                continue;
            }
            // Lock and re-read the authoritative copy.
            let addr = node.addr;
            let _lk = self.local_lock(addr);
            self.in_phase(Phase::LockAcquire, |me| {
                me.shared.internal.lock(&mut me.ep, addr)
            });
            let mut fresh = self
                .in_phase(Phase::Traversal, |me| {
                    me.shared.internal.read(&mut me.ep, addr)
                });
            if !fresh.valid || !fresh.covers(pivot) {
                self.in_phase(Phase::WriteBack, |me| {
                me.shared.internal.unlock(&mut me.ep, addr)
            });
                self.on_op_conflict(RetryCause::StaleRoute);
                continue;
            }
            match fresh.entries.binary_search_by_key(&pivot, |e| e.0) {
                Ok(i) => {
                    // Idempotent re-insert of the same pivot.
                    assert_eq!(fresh.entries[i].1, child, "pivot collision");
                    self.in_phase(Phase::WriteBack, |me| {
                me.shared.internal.unlock(&mut me.ep, addr)
            });
                    return Ok(());
                }
                Err(i) => {
                    if fresh.entries.len() < self.shared.cfg.internal_span {
                        fresh.entries.insert(i, (pivot, child));
                        self.shared.internal.write_and_unlock(&mut self.ep, &fresh);
                        self.cn.cache.lock().invalidate(addr);
                        return Ok(());
                    }
                }
            }
            // Node full: split it (unlocks), then retry this insert.
            self.split_internal(&mut fresh, root_addr)?;
        }
        panic!("insert_into_parent retry limit (pivot {pivot})");
    }

    /// Splits a locked, full internal node and up-propagates (or grows a
    /// new root). Leaves the node unlocked.
    fn split_internal(
        &mut self,
        node: &mut InternalNode,
        root_addr: GlobalAddr,
    ) -> Result<(), IndexError> {
        let mid = node.entries.len() / 2;
        let split_key = node.entries[mid].0;
        let upper: Vec<_> = node.entries.split_off(mid);
        let new_addr = self.in_phase(Phase::WriteBack, |me| {
            me.alloc
                .alloc(&mut me.ep, me.shared.internal.layout.node_size() as u64)
        })?;
        let new_node = InternalNode {
            addr: new_addr,
            level: node.level,
            valid: true,
            fence_low: split_key,
            fence_high: node.fence_high,
            sibling: node.sibling,
            entries: upper,
            nv: 0,
        };
        self.in_phase(Phase::WriteBack, |me| {
            me.shared.internal.write_new(&mut me.ep, &new_node)
        });
        node.fence_high = split_key;
        node.sibling = new_addr;
        self.in_phase(Phase::WriteBack, |me| {
            me.shared.internal.write_and_unlock(&mut me.ep, node)
        });
        self.cn.cache.lock().invalidate(node.addr);
        if node.addr == root_addr {
            // Grow a new root.
            let new_root_addr = self.in_phase(Phase::WriteBack, |me| {
                me.alloc
                    .alloc(&mut me.ep, me.shared.internal.layout.node_size() as u64)
            })?;
            let new_root = InternalNode {
                addr: new_root_addr,
                level: node.level + 1,
                valid: true,
                fence_low: 0,
                fence_high: u64::MAX,
                sibling: GlobalAddr::NULL,
                entries: vec![(node.fence_low, node.addr), (split_key, new_addr)],
                nv: 0,
            };
            self.in_phase(Phase::WriteBack, |me| {
                me.shared.internal.write_new(&mut me.ep, &new_root)
            });
            let old = self.in_phase(Phase::WriteBack, |me| {
                me.ep
                    .cas(me.shared.root_slot, root_addr.raw(), new_root_addr.raw())
            });
            if old == root_addr.raw() {
                *self.cn.root_hint.lock() = new_root_addr;
                return Ok(());
            }
            // Someone else grew the root first: insert into the new tree.
            return self.insert_into_parent(node.level + 1, split_key, new_addr);
        }
        self.insert_into_parent(node.level + 1, split_key, new_addr)
    }

    // ------------------------------------------------------------------
    // Scan
    // ------------------------------------------------------------------

    /// Walks the whole remote tree and verifies its structural invariants
    /// (test/debug aid; issues many READs):
    ///
    /// * internal fences tile the key space and children respect pivots;
    /// * the leaf sibling chain is reachable left-to-right with strictly
    ///   ascending key ranges and no duplicates;
    /// * every leaf satisfies the hopscotch bitmap/occupancy bijection
    ///   (checked by the validated read itself);
    /// * the lock word's argmax names the true maximum key.
    ///
    /// Returns the total number of keys, or a description of the first
    /// violation.
    pub fn check_integrity(&mut self) -> Result<u64, String> {
        let root = self.refresh_root();
        let node = self.shared.internal.read(&mut self.ep, root);
        if node.fence_low != 0 || node.fence_high != u64::MAX {
            return Err(format!(
                "root fences not unbounded: [{}, {}]",
                node.fence_low, node.fence_high
            ));
        }
        let leftmost_leaf = self.check_internal_level(&node)?;
        // Walk the leaf chain.
        let mut addr = leftmost_leaf;
        let mut prev_max: Option<u64> = None;
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        while !addr.is_null() {
            if !seen.insert(addr.raw()) {
                return Err(format!("leaf chain cycle at {addr:?}"));
            }
            let snap = self.leaf().read_full(&mut self.ep, addr);
            if !snap.meta.valid {
                return Err(format!("invalid leaf {addr:?} in chain"));
            }
            let keys: Vec<u64> = snap.keys.iter().copied().filter(|&k| k != 0).collect();
            if let (Some(pmax), Some(&min)) = (prev_max, keys.iter().min()) {
                if min <= pmax {
                    return Err(format!(
                        "leaf {addr:?} min {min} <= previous leaf max {pmax}"
                    ));
                }
            }
            // argmax in the lock word must name the true maximum.
            let _lk = self.local_lock(addr);
            let word = self.leaf().lock(&mut self.ep, addr);
            let argmax = word.argmax();
            let true_max = keys.iter().max().copied();
            match (true_max, argmax) {
                (None, am) if am == ARGMAX_NONE => {}
                (Some(mx), am) if am != ARGMAX_NONE => {
                    // Re-read under the lock (the snapshot may have raced).
                    let lr = self
                    .in_phase(Phase::LeafRead, |me| {
                        me.leaf().read_full_locked(&mut me.ep, addr, word)
                    });
                    let locked_max = lr.max_key;
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    if locked_max != Some(mx) && locked_max.is_none() {
                        return Err(format!("leaf {addr:?} argmax empty but max {mx}"));
                    }
                }
                (mx, am) => {
                    self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                    return Err(format!("leaf {addr:?} argmax {am} vs max {mx:?}"));
                }
            }
            if true_max.is_none() {
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
            }
            if let Some(&mx) = keys.iter().max().as_ref() {
                prev_max = Some(*mx);
            }
            total += keys.len() as u64;
            addr = snap.meta.sibling;
        }
        Ok(total)
    }

    /// Recursively checks one internal node and its subtree; returns the
    /// leftmost leaf address under it.
    fn check_internal_level(&mut self, node: &InternalNode) -> Result<GlobalAddr, String> {
        if node.entries.is_empty() {
            return Err(format!("internal {:?} has no entries", node.addr));
        }
        if node.entries[0].0 != node.fence_low {
            return Err(format!(
                "internal {:?} first pivot {} != fence_low {}",
                node.addr, node.entries[0].0, node.fence_low
            ));
        }
        for w in node.entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("internal {:?} pivots not ascending", node.addr));
            }
        }
        if node.level == 1 {
            return Ok(node.entries[0].1);
        }
        let mut leftmost = GlobalAddr::NULL;
        for (i, &(pivot, child)) in node.entries.iter().enumerate() {
            let c = self.shared.internal.read(&mut self.ep, child);
            if c.level != node.level - 1 {
                return Err(format!("child {child:?} level {} under level {}", c.level, node.level));
            }
            if c.fence_low != pivot {
                return Err(format!(
                    "child {child:?} fence_low {} != pivot {pivot}",
                    c.fence_low
                ));
            }
            let hi = node
                .entries
                .get(i + 1)
                .map(|e| e.0)
                .unwrap_or(node.fence_high);
            if c.fence_high > hi && (hi != u64::MAX) {
                return Err(format!(
                    "child {child:?} fence_high {} beyond parent bound {hi}",
                    c.fence_high
                ));
            }
            let lm = self.check_internal_level(&c)?;
            if i == 0 {
                leftmost = lm;
            }
        }
        Ok(leftmost)
    }

    fn scan_impl(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        assert_ne!(start, 0, "key 0 is reserved");
        if count == 0 {
            return;
        }
        self.retry_backoff.reset();
        let per_leaf = (self.span() * 3) / 4; // load-factor estimate
        'attempt: for _ in 0..OP_RETRY_LIMIT {
            let mut collected: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut parent = self.locate_parent(start);
            let mut idx = match parent.entries.binary_search_by_key(&start, |e| e.0) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            // Right sibling of the previously consumed leaf: every further
            // leaf must continue this chain. A half-split leaf may be linked
            // in the chain before its pivot reaches the parent (B-link), so
            // a gap is bridged by walking the sibling pointers; only a chain
            // that cannot reconnect means the parent view is stale.
            let mut chain: Option<GlobalAddr> = None;
            loop {
                // Batch-read the next group of candidate leaves in one RTT.
                let need = count.saturating_sub(collected.len());
                let take = need
                    .div_ceil(per_leaf)
                    .max(1)
                    .min(parent.entries.len() - idx);
                let addrs: Vec<GlobalAddr> = parent.entries[idx..idx + take]
                    .iter()
                    .map(|e| e.1)
                    .collect();
                let snaps = self.in_phase(Phase::LeafRead, |me| {
                    me.leaf().read_full_batch(&mut me.ep, &addrs)
                });
                for (i, snap) in snaps.iter().enumerate() {
                    if !snap.meta.valid {
                        // Deprecated leaf: the parent view is stale.
                        self.counters.invalidations += 1;
                        self.cn.cache.lock().invalidate(parent.addr);
                        self.refresh_root();
                        self.on_op_conflict(RetryCause::StaleRoute);
                        continue 'attempt;
                    }
                    // Bridge split-off leaves the parent does not know yet.
                    if let Some(mut c) = chain {
                        let mut hops = 0usize;
                        while c != addrs[i] {
                            if c.is_null() || hops >= SCAN_BRIDGE_LIMIT {
                                // The chain ends (or wanders) before the
                                // parent's next child: stale parent view.
                                self.counters.invalidations += 1;
                                self.cn.cache.lock().invalidate(parent.addr);
                                self.refresh_root();
                                self.on_op_conflict(RetryCause::StaleRoute);
                                continue 'attempt;
                            }
                            let gap = self.in_phase(Phase::ScanChain, |me| {
                                me.leaf().read_full_batch(&mut me.ep, &[c]).swap_remove(0)
                            });
                            if !gap.meta.valid {
                                self.counters.invalidations += 1;
                                self.cn.cache.lock().invalidate(parent.addr);
                                self.refresh_root();
                                self.on_op_conflict(RetryCause::StaleRoute);
                                continue 'attempt;
                            }
                            for (k, v) in gap.items() {
                                if k >= start {
                                    collected.push((k, v));
                                }
                            }
                            c = gap.meta.sibling;
                            hops += 1;
                        }
                    }
                    chain = Some(snap.meta.sibling);
                    for (k, v) in snap.items() {
                        if k >= start {
                            collected.push((k, v));
                        }
                    }
                }
                idx += take;
                if collected.len() >= count {
                    break;
                }
                if idx >= parent.entries.len() {
                    if parent.sibling.is_null() {
                        // Drain trailing split-off leaves past the parent's
                        // last known child before concluding the tree ends.
                        let mut c = chain.unwrap_or(GlobalAddr::NULL);
                        let mut hops = 0usize;
                        while !c.is_null() && collected.len() < count {
                            if hops >= SCAN_BRIDGE_LIMIT {
                                self.counters.invalidations += 1;
                                self.cn.cache.lock().invalidate(parent.addr);
                                self.refresh_root();
                                self.on_op_conflict(RetryCause::StaleRoute);
                                continue 'attempt;
                            }
                            let tail = self.in_phase(Phase::ScanChain, |me| {
                                me.leaf().read_full_batch(&mut me.ep, &[c]).swap_remove(0)
                            });
                            if !tail.meta.valid {
                                self.counters.invalidations += 1;
                                self.cn.cache.lock().invalidate(parent.addr);
                                self.refresh_root();
                                self.on_op_conflict(RetryCause::StaleRoute);
                                continue 'attempt;
                            }
                            for (k, v) in tail.items() {
                                if k >= start {
                                    collected.push((k, v));
                                }
                            }
                            c = tail.meta.sibling;
                            hops += 1;
                        }
                        break;
                    }
                    let sib = parent.sibling;
                    let next = self
                        .in_phase(Phase::Traversal, |me| {
                            me.shared.internal.read(&mut me.ep, sib)
                        });
                    if !next.valid {
                        self.counters.invalidations += 1;
                        self.cn.cache.lock().invalidate(parent.addr);
                        self.refresh_root();
                        self.on_op_conflict(RetryCause::StaleRoute);
                        continue 'attempt;
                    }
                    parent = next;
                    idx = 0;
                }
            }
            collected.sort_by_key(|&(k, _)| k);
            collected.truncate(count);
            for (k, v) in collected {
                let v = self.resolve_value(v);
                out.push((k, v));
            }
            return;
        }
        panic!("scan retry limit from key {start}");
    }

    // ------------------------------------------------------------------
    // Indirect values (§4.5)
    // ------------------------------------------------------------------

    /// Converts an application value into the stored leaf-entry bytes
    /// (inline value, or a pointer to a freshly written value block).
    fn store_value(&mut self, key: u64, value: &[u8]) -> Result<Vec<u8>, IndexError> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            let mut v = value.to_vec();
            v.resize(cfg.value_size, 0);
            return Ok(v);
        }
        let block_len = 16 + cfg.value_size;
        let addr = self
            .in_phase(Phase::WriteBack, |me| {
                me.alloc.alloc(&mut me.ep, block_len as u64)
            })?;
        let mut block = Vec::with_capacity(block_len);
        block.extend_from_slice(&key.to_le_bytes());
        block.extend_from_slice(&(value.len() as u64).to_le_bytes());
        block.extend_from_slice(value);
        block.resize(block_len, 0);
        self.in_phase(Phase::WriteBack, |me| me.ep.write(addr, &block));
        Ok(addr.raw().to_le_bytes().to_vec())
    }

    /// Converts stored leaf-entry bytes back into the application value.
    fn resolve_value(&mut self, stored: Vec<u8>) -> Vec<u8> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            return stored;
        }
        let addr = GlobalAddr::from_raw(u64::from_le_bytes(
            stored[..8].try_into().expect("pointer entry"),
        ));
        let mut block = vec![0u8; 16 + cfg.value_size];
        self.in_phase(Phase::LeafRead, |me| me.ep.read(addr, &mut block));
        let len = u64::from_le_bytes(block[8..16].try_into().unwrap()) as usize;
        block[16..16 + len.min(cfg.value_size)].to_vec()
    }

    // ------------------------------------------------------------------
    // Migration support (partitioned deployments)
    // ------------------------------------------------------------------

    /// Re-reads the live root pointer slot. Migrators use this to snapshot
    /// the root of the tree they are about to move.
    pub fn current_root(&mut self) -> GlobalAddr {
        self.refresh_root()
    }

    /// The remote address of this tree's root-pointer slot.
    pub fn root_slot_addr(&self) -> GlobalAddr {
        self.shared.root_slot
    }

    /// Retargets this client's pinned allocator to `mn` (no-op for
    /// round-robin allocators); see [`ChunkAlloc::retarget`].
    pub fn retarget_alloc(&mut self, mn: u16) {
        self.alloc.retarget(mn);
    }

    /// Advances this client's virtual clock to `ns` if it lags behind.
    /// A partition router multiplexes one logical client over several
    /// per-partition clients and keeps their clocks on one timeline.
    pub fn sync_clock_to(&mut self, ns: u64) {
        let now = self.ep.clock_ns();
        if ns > now {
            self.ep.advance_clock(ns - now);
        }
    }

    /// Fires the labeled crash point on this client's endpoint (see
    /// [`dmem::Endpoint::crash_point`]); migration drivers mark their
    /// protocol steps through this.
    pub fn crash_point(&mut self, label: &str) {
        self.ep.crash_point(label);
    }

    /// Swaps this client's tree binding — root slot, CN cache state and
    /// allocator — returning the previous one. The endpoint stays put:
    /// its clock, verb statistics and phase profile span every tree the
    /// client serves, which is exactly what a partition router wants.
    /// Any pending forwarding override is dropped (it pointed into the
    /// previous binding's tree).
    pub fn rebind(&mut self, b: TreeBinding) -> TreeBinding {
        debug_assert_eq!(
            self.shared.cfg.span, b.shared.cfg.span,
            "rebind across trees of different geometry"
        );
        self.forward = None;
        TreeBinding {
            shared: std::mem::replace(&mut self.shared, b.shared),
            cn: std::mem::replace(&mut self.cn, b.cn),
            alloc: std::mem::replace(&mut self.alloc, b.alloc),
        }
    }

    /// Reads raw bytes at `addr` on this client's endpoint, attributed to
    /// `phase`. Partition routers read routing-table words through the
    /// operating client so the cost lands on its timeline and profile.
    pub fn read_raw(&mut self, addr: GlobalAddr, dst: &mut [u8], phase: Phase) {
        let fr = self.ep.phase_begin(phase);
        self.ep.read(addr, dst);
        self.ep.phase_end(fr);
    }

    /// Leaf addresses reachable through the level-1 entries of the tree
    /// rooted at `root`, left to right (tombstoned leaves included; the
    /// caller filters). Pivot up-propagation completes before any index
    /// operation returns, so between operations the level-1 entries are
    /// the complete leaf set — unlike the leaf sibling chain, which
    /// forwarding tombstones sever, this enumeration stays sound while a
    /// partition is half-migrated (crash recovery relies on that).
    pub fn leaf_addrs_under(&mut self, root: GlobalAddr) -> Vec<GlobalAddr> {
        let fr = self.ep.phase_begin(Phase::Traversal);
        let mut node = self.shared.internal.read(&mut self.ep, root);
        while node.level > 1 {
            let child = node.entries[0].1;
            node = self.shared.internal.read(&mut self.ep, child);
        }
        let mut out: Vec<GlobalAddr> = Vec::new();
        loop {
            out.extend(node.entries.iter().map(|e| e.1));
            if node.sibling.is_null() {
                break;
            }
            let sib = node.sibling;
            node = self.shared.internal.read(&mut self.ep, sib);
        }
        self.ep.phase_end(fr);
        out
    }

    /// Atomically moves one leaf into `dst`'s tree: locks the leaf, copies
    /// every item over (inserts upsert, so a crash-recovery re-drive of a
    /// partially copied leaf converges), then retires the leaf behind a
    /// forwarding tombstone whose sibling pointer names `forward` — the
    /// destination tree's root internal node. Point operations landing on
    /// the tombstone restart their descent from `forward`. Returns the
    /// number of items moved, or `None` if the leaf was already retired.
    pub fn move_leaf_into(
        &mut self,
        addr: GlobalAddr,
        dst: &mut ChimeClient,
        forward: GlobalAddr,
    ) -> Result<Option<u64>, IndexError> {
        let _lk = self.local_lock(addr);
        let word = self.in_phase(Phase::LockAcquire, |me| me.leaf().lock(&mut me.ep, addr));
        let lr = self.in_phase(Phase::LeafRead, |me| {
            me.leaf().read_full_locked(&mut me.ep, addr, word)
        });
        if !lr.meta.valid {
            self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
            return Ok(None);
        }
        let span = self.span();
        let mut items: Vec<(u64, Vec<u8>)> = (0..span)
            .filter(|&i| !lr.w.slot_empty(i))
            .map(|i| {
                let (k, v, _) = lr.w.slot(i);
                (k, v.to_vec())
            })
            .collect();
        items.sort_by_key(|&(k, _)| k);
        let mut moved = 0u64;
        for (k, stored) in items {
            let v = self.resolve_value(stored);
            if let Err(e) = dst.insert(k, &v) {
                // Abort without tombstoning: the source leaf stays live and
                // authoritative; the half-built destination is abandoned.
                self.in_phase(Phase::WriteBack, |me| me.leaf().unlock(&mut me.ep, addr, word));
                return Err(e);
            }
            moved += 1;
        }
        let empty = Window::new(span, self.h(), 0, span);
        let dead = LeafMeta {
            sibling: forward,
            valid: false,
            fences: lr.meta.fences,
        };
        self.in_phase(Phase::WriteBack, |me| {
            me.leaf().rewrite_and_unlock(&mut me.ep, addr, &empty, lr.nv, &dead)
        });
        Ok(Some(moved))
    }
}

/// One built leaf chunk: its hopscotch window plus the items it holds.
type Chunk = (Window, Vec<(u64, Vec<u8>)>);

/// Recursively builds hopscotch tables for `items`, splitting chunks that
/// do not fit. Returns `(window, sorted items)` per chunk, in key order.
fn build_chunks(span: usize, h: usize, items: &[(u64, Vec<u8>)]) -> Vec<Chunk> {
    if let Some(w) = build_table(span, h, items) {
        return vec![(w, items.to_vec())];
    }
    assert!(items.len() >= 2, "cannot split a single unfittable item");
    let mid = items.len() / 2;
    let mut out = build_chunks(span, h, &items[..mid]);
    out.extend(build_chunks(span, h, &items[mid..]));
    out
}

impl RangeIndex for ChimeClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let sp = self.ep.span_begin("insert", key);
        let r = self.insert_impl(key, value);
        self.ep.span_end(sp, r.is_ok());
        r
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        let sp = self.ep.span_begin("search", key);
        let r = self.search_impl(key);
        self.ep.span_end(sp, r.is_some());
        r
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        let sp = self.ep.span_begin("update", key);
        let r = self.update_impl(key, value);
        self.ep.span_end(sp, matches!(r, Ok(true)));
        r
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        let sp = self.ep.span_begin("delete", key);
        let r = self.delete_impl(key);
        self.ep.span_end(sp, matches!(r, Ok(true)));
        r
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        let sp = self.ep.span_begin("scan", start);
        self.scan_impl(start, count, out);
        self.ep.span_end(sp, true);
    }

    fn stats(&self) -> &ClientStats {
        self.ep.stats()
    }

    fn profile(&self) -> Option<&dmem::OpProfile> {
        Some(self.ep.profile())
    }

    fn clock_ns(&self) -> u64 {
        self.ep.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.cn.cache_bytes()
    }

    fn telemetry(&self) -> Option<&dmem::Telemetry> {
        Some(self.ep.telemetry())
    }

    fn telemetry_mut(&mut self) -> Option<&mut dmem::Telemetry> {
        Some(self.ep.telemetry_mut())
    }

    fn set_trace_id(&mut self, id: u64) {
        self.ep.set_trace_id(id);
    }

    fn set_tracer(&mut self, tracer: dmem::Tracer) {
        self.ep.set_tracer(tracer);
    }

    fn take_tracer(&mut self) -> Option<dmem::Tracer> {
        self.ep.take_tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ChimeConfig {
        ChimeConfig {
            span: 16,
            internal_span: 8,
            neighborhood: 4,
            value_size: 8,
            cache_bytes: 1 << 20,
            hotspot_bytes: 1 << 16,
            ..Default::default()
        }
    }

    fn pool() -> Arc<Pool> {
        Pool::with_defaults(1, 256 << 20)
    }

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    #[test]
    fn insert_search_small() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=10u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for k in 1..=10u64 {
            assert_eq!(c.search(k), Some(v(k)), "key {k}");
        }
        assert_eq!(c.search(999), None);
    }

    #[test]
    fn trace_events_attaches_tracer_and_records_op_spans() {
        let pool = pool();
        let cfg = ChimeConfig {
            trace_events: 4096,
            ..small_cfg()
        };
        let t = Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        assert!(c.tracer().is_some(), "trace_events > 0 must attach a tracer");
        c.insert(7, &v(7)).unwrap();
        assert_eq!(c.search(7), Some(v(7)));
        assert_eq!(c.search(8), None);
        let spans = c.tracer().unwrap().spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.op).collect::<Vec<_>>(),
            ["insert", "search", "search"]
        );
        assert!(spans.iter().all(|s| s.closed));
        assert_eq!(
            spans.iter().map(|s| s.ok).collect::<Vec<_>>(),
            [true, true, false]
        );
        // Every index op on an empty cache must issue at least one verb, and
        // the verb events carry real wire bytes on the virtual clock.
        for s in &spans {
            assert!(!s.verbs.is_empty(), "span {:?} recorded no verbs", s.op);
            assert!(s.wire_bytes > 0);
            assert!(s.end_ns >= s.start_ns);
        }
        // Tracing is off by default.
        let t2 = Chime::create(&pool, small_cfg(), 8);
        let cn2 = t2.new_cn();
        let c2 = t2.client(&cn2);
        assert!(c2.tracer().is_none());
    }

    #[test]
    fn scan_bridges_leaf_chain_gaps_missing_from_parent() {
        // Regression for the fig12 YCSB-E livelock: a leaf can be reachable
        // through the sibling chain while its pivot is absent from the
        // level-1 node (unpropagated half-split). The scan must bridge the
        // gap by walking the chain instead of restarting forever.
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let n = 2_000u64;
        for k in 1..=n {
            c.insert(k, &v(k)).unwrap();
        }
        // Drop a mid pivot from a level-1 node, leaving its leaf reachable
        // only through the previous leaf's sibling pointer.
        let parent = c.locate_parent(n / 2);
        assert!(parent.entries.len() >= 3, "need a populated level-1 node");
        let victim_pivot = parent.entries[parent.entries.len() / 2].0;
        let shared = Arc::clone(&c.shared);
        shared.internal.lock(&mut c.ep, parent.addr);
        let mut fresh = shared.internal.read(&mut c.ep, parent.addr);
        let i = fresh
            .entries
            .iter()
            .position(|e| e.0 == victim_pivot)
            .expect("victim pivot present");
        fresh.entries.remove(i);
        shared.internal.write_and_unlock(&mut c.ep, &fresh);
        c.cn.cache.lock().invalidate(parent.addr);
        // A full scan must still return every key exactly once, in order.
        let mut out = Vec::new();
        c.scan(1, n as usize, &mut out);
        assert_eq!(out.len(), n as usize);
        for (i, (k, val)) in out.iter().enumerate() {
            assert_eq!(*k, i as u64 + 1);
            assert_eq!(val, &v(i as u64 + 1));
        }
    }

    #[test]
    fn inserts_force_splits_and_root_growth() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let n = 5_000u64;
        for k in 1..=n {
            c.insert(k * 3 + 1, &v(k)).unwrap();
        }
        assert!(c.counters.splits > 0, "tiny nodes must split");
        for k in 1..=n {
            assert_eq!(c.search(k * 3 + 1), Some(v(k)), "key {}", k * 3 + 1);
        }
        // Absent keys in between.
        for k in (1..=200u64).map(|k| k * 3) {
            assert_eq!(c.search(k), None, "absent key {k}");
        }
    }

    #[test]
    fn update_and_delete() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=500u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for k in 1..=500u64 {
            assert!(c.update(k, &v(k + 1000)).unwrap());
        }
        for k in 1..=500u64 {
            assert_eq!(c.search(k), Some(v(k + 1000)));
        }
        assert!(!c.update(9999, &v(0)).unwrap());
        for k in (1..=500u64).step_by(2) {
            assert!(c.delete(k).unwrap());
        }
        assert!(!c.delete(1).unwrap());
        for k in 1..=500u64 {
            if k % 2 == 1 {
                assert_eq!(c.search(k), None);
            } else {
                assert_eq!(c.search(k), Some(v(k + 1000)));
            }
        }
    }

    #[test]
    fn insert_overwrites_duplicate() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        c.insert(7, &v(1)).unwrap();
        c.insert(7, &v(2)).unwrap();
        assert_eq!(c.search(7), Some(v(2)));
    }

    #[test]
    fn scan_returns_sorted_range() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=2_000u64 {
            c.insert(k * 2, &v(k)).unwrap();
        }
        let mut out = Vec::new();
        c.scan(101, 50, &mut out);
        assert_eq!(out.len(), 50);
        let want: Vec<u64> = (51..101).map(|k| k * 2).collect();
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(got, want);
        for (k, val) in &out {
            assert_eq!(val, &v(k / 2));
        }
        // Scan past the end is truncated.
        let mut out = Vec::new();
        c.scan(3_999, 50, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 4_000);
    }

    #[test]
    fn stale_cn_cache_self_heals() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn_a = t.new_cn();
        let cn_b = t.new_cn();
        let mut a = t.client(&cn_a);
        let mut b = t.client(&cn_b);
        // Warm B's cache with the small tree.
        a.insert(1, &v(1)).unwrap();
        assert_eq!(b.search(1), Some(v(1)));
        // A grows the tree massively; B's cache is now stale everywhere.
        for k in 2..=3_000u64 {
            a.insert(k, &v(k)).unwrap();
        }
        for k in (1..=3_000u64).step_by(17) {
            assert_eq!(b.search(k), Some(v(k)), "stale-cache search {k}");
        }
        let mut out = Vec::new();
        b.scan(1, 100, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn speculative_reads_hit_on_hot_keys() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=200u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for _ in 0..50 {
            assert_eq!(c.search(42), Some(v(42)));
        }
        assert!(c.counters.spec_attempts > 0);
        assert!(c.counters.spec_hits > 0);
        assert!(c.counters.spec_hits >= c.counters.spec_attempts - 2);
        let (hits, lookups) = cn.hotspot_stats();
        assert!(hits > 0 && lookups >= hits);
    }

    #[test]
    fn default_config_large_nodes() {
        let pool = pool();
        let t = Chime::create(&pool, ChimeConfig::default(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=2_000u64 {
            c.insert(k * 7 + 3, &v(k)).unwrap();
        }
        for k in (1..=2_000u64).step_by(7) {
            assert_eq!(c.search(k * 7 + 3), Some(v(k)));
        }
    }

    #[test]
    fn baseline_config_works() {
        // All optimizations off (Fig. 15 starting point): dedicated vacancy
        // word, single header, fence keys, no speculation.
        let pool = pool();
        let t = Chime::create(&pool, ChimeConfig { span: 16, internal_span: 8, neighborhood: 4, ..ChimeConfig::baseline() }, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=1_500u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for k in 1..=1_500u64 {
            assert_eq!(c.search(k), Some(v(k)), "key {k}");
        }
        assert_eq!(c.search(5_000), None);
        for k in 1..=100u64 {
            assert!(c.update(k, &v(k + 9)).unwrap());
            assert_eq!(c.search(k), Some(v(k + 9)));
        }
    }

    #[test]
    fn indirect_values_roundtrip() {
        let pool = pool();
        let cfg = ChimeConfig {
            indirect_values: true,
            value_size: 64,
            span: 16,
            internal_span: 8,
            neighborhood: 4,
            ..Default::default()
        };
        let t = Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=300u64 {
            let val = vec![k as u8; 40];
            c.insert(k, &val).unwrap();
        }
        for k in 1..=300u64 {
            assert_eq!(c.search(k), Some(vec![k as u8; 40]));
        }
        assert!(c.update(5, &[9u8; 33]).unwrap());
        assert_eq!(c.search(5), Some(vec![9u8; 33]));
        let mut out = Vec::new();
        c.scan(1, 10, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].1, vec![1u8; 40]);
    }

    #[test]
    fn concurrent_clients_disjoint_inserts() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let threads = 4;
        let per = 800u64;
        crossbeam::thread::scope(|s| {
            for tid in 0..threads {
                let t = t.clone();
                s.spawn(move |_| {
                    let cn = t.new_cn();
                    let mut c = t.client(&cn);
                    for i in 0..per {
                        let k = 1 + i * threads + tid;
                        c.insert(k, &v(k)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=(per * threads) {
            assert_eq!(c.search(k), Some(v(k)), "key {k}");
        }
    }

    #[test]
    fn concurrent_mixed_readers_and_writers() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        {
            let cn = t.new_cn();
            let mut c = t.client(&cn);
            for k in 1..=1_000u64 {
                c.insert(k, &v(k)).unwrap();
            }
        }
        crossbeam::thread::scope(|s| {
            // Writers keep inserting new keys and updating old ones.
            for tid in 0..2u64 {
                let t = t.clone();
                s.spawn(move |_| {
                    let cn = t.new_cn();
                    let mut c = t.client(&cn);
                    for i in 0..500u64 {
                        c.insert(10_000 + tid * 1_000 + i, &v(i)).unwrap();
                        c.update(1 + (i * 7 + tid) % 1_000, &v(i)).unwrap();
                    }
                });
            }
            // Readers must always see the preloaded keys.
            for _ in 0..2 {
                let t = t.clone();
                s.spawn(move |_| {
                    let cn = t.new_cn();
                    let mut c = t.client(&cn);
                    for i in 0..2_000u64 {
                        let k = 1 + (i * 13) % 1_000;
                        assert!(c.search(k).is_some(), "preloaded key {k} lost");
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn leaf_addrs_under_enumerates_every_leaf() {
        let pool = pool();
        let t = Chime::create(&pool, small_cfg(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let n = 2_000u64;
        for k in 1..=n {
            c.insert(k, &v(k)).unwrap();
        }
        let root = c.current_root();
        let leaves = c.leaf_addrs_under(root);
        let mut total = 0u64;
        let mut prev_max = 0u64;
        for addr in &leaves {
            let snap = c.leaf().read_full(&mut c.ep, *addr);
            assert!(snap.meta.valid);
            let items = snap.items();
            let min = items.iter().map(|&(k, _)| k).min().unwrap();
            assert!(min > prev_max, "leaves out of order");
            prev_max = items.iter().map(|&(k, _)| k).max().unwrap();
            total += items.len() as u64;
        }
        assert_eq!(total, n);
    }

    #[test]
    fn pinned_tree_and_client_allocate_on_home_mn() {
        let pool = Pool::with_defaults(4, 64 << 20);
        let t = Chime::create_pinned(&pool, small_cfg(), 0, 2);
        let cn = t.new_cn();
        let mut c = t.client_pinned(&cn, 2);
        for k in 1..=2_000u64 {
            c.insert(k, &v(k)).unwrap();
        }
        let root = c.current_root();
        assert_eq!(root.mn(), 2, "root internal node off the home MN");
        for addr in c.leaf_addrs_under(root) {
            assert_eq!(addr.mn(), 2, "leaf off the home MN");
        }
        assert_eq!(c.check_integrity().unwrap(), 2_000);
    }

    #[test]
    fn moved_leaves_forward_point_ops_to_the_new_tree() {
        // Simulate a partition migration by hand: move every leaf of the
        // old tree into a fresh tree on another slot, leaving forwarding
        // tombstones behind, and verify that clients still routed through
        // the *old* root reach every key (and can write) via the forwards.
        let pool = pool();
        let old = Chime::create(&pool, small_cfg(), 0);
        let new = Chime::create(&pool, small_cfg(), 1);
        let cn = old.new_cn();
        let mut w = old.client(&cn);
        let n = 1_200u64;
        for k in 1..=n {
            w.insert(k, &v(k)).unwrap();
        }
        let new_cn = new.new_cn();
        let mut dst = new.client(&new_cn);
        let old_root = w.current_root();
        let mut mover = old.client(&cn);
        let mut moved = 0u64;
        for addr in mover.leaf_addrs_under(old_root) {
            let fwd = dst.current_root();
            moved += mover.move_leaf_into(addr, &mut dst, fwd).unwrap().unwrap();
        }
        assert_eq!(moved, n);
        assert_eq!(dst.check_integrity().unwrap(), n);
        // A reader attached to the old tree, with a cold cache, follows the
        // forwarding tombstones into the new tree.
        let cold_cn = old.new_cn();
        let mut r = old.client(&cold_cn);
        for k in (1..=n).step_by(97) {
            assert_eq!(r.search(k), Some(v(k)), "forwarded search for {k}");
        }
        assert!(r.counters.chases > 0, "no forward chase recorded");
        // Updates and deletes never split, so they may chase forwards too.
        r.update(5, &v(999)).unwrap();
        assert!(r.delete(7).unwrap());
        assert_eq!(dst.search(5), Some(v(999)));
        assert_eq!(dst.search(7), None);
        // Inserts refuse to chase (a split would anchor to the wrong
        // tree); they go through only after the live slot is switched,
        // as the migration protocol's switch step does.
        let new_root = dst.current_root();
        let mut ctl = Endpoint::new(Arc::clone(&pool));
        let prev = ctl.cas(r.root_slot_addr(), old_root.raw(), new_root.raw());
        assert_eq!(prev, old_root.raw());
        r.insert(n + 1, &v(n + 1)).unwrap();
        assert_eq!(dst.search(n + 1), Some(v(n + 1)));
        // Re-driving a move over an already-retired leaf is a no-op.
        let first_leaf = mover.leaf_addrs_under(old_root)[0];
        let fwd = dst.current_root();
        let again = mover.move_leaf_into(first_leaf, &mut dst, fwd).unwrap();
        assert_eq!(again, None);
    }
}
