//! The hotness-aware hotspot buffer (§4.3, Fig. 11).
//!
//! A small per-CN cache mapping `(leaf address, key index)` to a key
//! fingerprint and an access counter. Before a neighborhood read, the client
//! consults the buffer for hot entries inside the target neighborhood and,
//! on a fingerprint match, speculatively READs just that entry. Eviction is
//! least-frequently-used, as in the paper.

use std::collections::{BTreeSet, HashMap};

use dmem::GlobalAddr;

/// Bytes per buffer entry: 8 (leaf address) + 2 (key index) +
/// 2 (fingerprint) + 4 (counter), as in Fig. 11.
pub const ENTRY_BYTES: u64 = 16;

type Slot = (u64, u16);

#[derive(Debug, Clone, Copy)]
struct HotEntry {
    fp: u16,
    count: u32,
}

/// The LFU hotspot buffer.
pub struct HotspotBuffer {
    map: HashMap<Slot, HotEntry>,
    by_count: BTreeSet<(u32, Slot)>,
    capacity: usize,
    hits: u64,
    lookups: u64,
}

impl HotspotBuffer {
    /// Creates a buffer with a byte budget (`bytes / 16` entries).
    pub fn new(bytes: u64) -> Self {
        HotspotBuffer {
            map: HashMap::new(),
            by_count: BTreeSet::new(),
            capacity: (bytes / ENTRY_BYTES) as usize,
            hits: 0,
            lookups: 0,
        }
    }

    /// Number of descriptions currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.map.len() as u64 * ENTRY_BYTES
    }

    /// Records an access to the KV at `(leaf, idx)` whose key has
    /// fingerprint `fp` (§4.3: called on every remote KV entry access).
    pub fn on_access(&mut self, leaf: GlobalAddr, idx: u16, fp: u16) {
        if self.capacity == 0 {
            return;
        }
        let slot = (leaf.raw(), idx);
        if let Some(e) = self.map.get_mut(&slot) {
            self.by_count.remove(&(e.count, slot));
            if e.fp == fp {
                e.count = e.count.saturating_add(1);
            } else {
                // Outdated description: new key moved in.
                e.fp = fp;
                e.count = 1;
            }
            self.by_count.insert((e.count, slot));
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least frequently used entry.
            if let Some(&victim) = self.by_count.iter().next() {
                self.by_count.remove(&victim);
                self.map.remove(&victim.1);
            }
        }
        self.map.insert(slot, HotEntry { fp, count: 1 });
        self.by_count.insert((1, slot));
    }

    /// Looks for the hottest hotspot among `indices` of `leaf` whose
    /// fingerprint matches `fp`. Returns the key index to speculatively
    /// read, if any.
    pub fn lookup(
        &mut self,
        leaf: GlobalAddr,
        indices: impl Iterator<Item = u16>,
        fp: u16,
    ) -> Option<u16> {
        self.lookups += 1;
        let best = indices
            .filter_map(|i| {
                self.map
                    .get(&(leaf.raw(), i))
                    .filter(|e| e.fp == fp)
                    .map(|e| (e.count, i))
            })
            .max();
        if best.is_some() {
            self.hits += 1;
        }
        best.map(|(_, i)| i)
    }

    /// `(buffer hits, lookups)` — the Fig. 19c hit ratio.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(off: u64) -> GlobalAddr {
        GlobalAddr::new(0, off)
    }

    #[test]
    fn access_then_lookup() {
        let mut b = HotspotBuffer::new(1024);
        b.on_access(leaf(0x1000), 5, 0xAB);
        assert_eq!(b.lookup(leaf(0x1000), 0..8, 0xAB), Some(5));
        assert_eq!(b.lookup(leaf(0x1000), 0..8, 0xCD), None);
        assert_eq!(b.lookup(leaf(0x2000), 0..8, 0xAB), None);
        assert_eq!(b.hit_stats(), (1, 3));
    }

    #[test]
    fn hottest_wins_among_matches() {
        let mut b = HotspotBuffer::new(1024);
        b.on_access(leaf(1), 3, 0xAB);
        for _ in 0..5 {
            b.on_access(leaf(1), 6, 0xAB);
        }
        assert_eq!(b.lookup(leaf(1), 0..8, 0xAB), Some(6));
    }

    #[test]
    fn fingerprint_change_resets_counter() {
        let mut b = HotspotBuffer::new(1024);
        for _ in 0..10 {
            b.on_access(leaf(1), 3, 0xAB);
        }
        b.on_access(leaf(1), 5, 0xCD);
        b.on_access(leaf(1), 5, 0xCD);
        // Slot 3's key changed: counter resets to 1, below slot 5's 2.
        b.on_access(leaf(1), 3, 0xEE);
        assert_eq!(b.lookup(leaf(1), 0..8, 0xEE), Some(3));
        b.on_access(leaf(1), 3, 0xEE);
        // With matching fingerprints both qualify; 5 is colder than 3 now.
        assert_eq!(b.lookup(leaf(1), 0..8, 0xCD), Some(5));
    }

    #[test]
    fn lfu_eviction() {
        let mut b = HotspotBuffer::new(2 * ENTRY_BYTES);
        b.on_access(leaf(1), 0, 1);
        b.on_access(leaf(1), 0, 1); // count 2
        b.on_access(leaf(1), 1, 2); // count 1
        b.on_access(leaf(1), 2, 3); // evicts the LFU (idx 1)
        assert_eq!(b.len(), 2);
        assert_eq!(b.lookup(leaf(1), 0..8, 1), Some(0));
        assert_eq!(b.lookup(leaf(1), 0..8, 2), None);
        assert_eq!(b.lookup(leaf(1), 0..8, 3), Some(2));
    }

    #[test]
    fn zero_budget_disables() {
        let mut b = HotspotBuffer::new(0);
        b.on_access(leaf(1), 0, 1);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }
}
