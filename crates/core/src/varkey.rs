//! Variable-length key support (§4.5).
//!
//! CHIME stores the first 8 bytes of a variable-length key in the leaf as a
//! *fingerprint*; the full key and value live in an indirect block linked
//! from the leaf entry. On (rare) fingerprint collisions the blocks chain,
//! and a lookup fetches every linked block matching the partial key.
//!
//! [`VarKeyTree`] wraps a [`Chime`] tree configured with 8-byte indirect
//! entries: the fingerprint is the tree key, the tree value is the head
//! pointer of the block chain.
//!
//! Block layout: `[next ptr: 8][key len: 4][val len: 4][key bytes][val bytes]`.

use std::sync::Arc;

use dmem::{ChunkAlloc, Endpoint, GlobalAddr, IndexError, Pool, RangeIndex};

use crate::config::ChimeConfig;
use crate::tree::{Chime, ChimeClient, CnState};

/// A CHIME tree over variable-length byte-string keys.
#[derive(Clone)]
pub struct VarKeyTree {
    inner: Chime,
    pool: Arc<Pool>,
}

/// One client of a [`VarKeyTree`].
pub struct VarKeyClient {
    inner: ChimeClient,
    ep: Endpoint,
    alloc: ChunkAlloc,
}

/// Derives the 8-byte fingerprint of a variable-length key: its first 8
/// bytes, big-endian (preserving lexicographic order for scans), with the
/// key length folded into the low bits for very short keys. Never 0.
pub fn fingerprint(key: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = key.len().min(8);
    b[..n].copy_from_slice(&key[..n]);
    let fp = u64::from_be_bytes(b);
    if fp == 0 {
        1
    } else {
        fp
    }
}

impl VarKeyTree {
    /// Creates a variable-length-key tree rooted at slot `slot`.
    ///
    /// `cfg.indirect_values` is forced on (entries hold block pointers).
    pub fn create(pool: &Arc<Pool>, mut cfg: ChimeConfig, slot: u64) -> Self {
        cfg.indirect_values = false;
        cfg.value_size = 8; // the stored "value" is the chain-head pointer
        VarKeyTree {
            inner: Chime::create(pool, cfg, slot),
            pool: Arc::clone(pool),
        }
    }

    /// Creates the shared per-CN state.
    pub fn new_cn(&self) -> Arc<CnState> {
        self.inner.new_cn()
    }

    /// Creates a client.
    pub fn client(&self, cn: &Arc<CnState>) -> VarKeyClient {
        VarKeyClient {
            inner: self.inner.client(cn),
            ep: Endpoint::new(Arc::clone(&self.pool)),
            alloc: ChunkAlloc::sim_scaled(),
        }
    }
}

const BLOCK_HDR: usize = 16;

impl VarKeyClient {
    fn write_block(
        &mut self,
        key: &[u8],
        value: &[u8],
        next: GlobalAddr,
    ) -> Result<GlobalAddr, IndexError> {
        let len = BLOCK_HDR + key.len() + value.len();
        let addr = self.alloc.alloc(&mut self.ep, len as u64)?;
        let mut b = Vec::with_capacity(len);
        b.extend_from_slice(&next.raw().to_le_bytes());
        b.extend_from_slice(&(key.len() as u32).to_le_bytes());
        b.extend_from_slice(&(value.len() as u32).to_le_bytes());
        b.extend_from_slice(key);
        b.extend_from_slice(value);
        self.ep.write(addr, &b);
        Ok(addr)
    }

    /// Reads a block: `(next, key, value)`.
    fn read_block(&mut self, addr: GlobalAddr) -> (GlobalAddr, Vec<u8>, Vec<u8>) {
        let mut hdr = [0u8; BLOCK_HDR];
        self.ep.read(addr, &mut hdr);
        let next = GlobalAddr::from_raw(u64::from_le_bytes(hdr[0..8].try_into().unwrap()));
        let klen = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(hdr[12..16].try_into().unwrap()) as usize;
        let mut body = vec![0u8; klen + vlen];
        self.ep.read(addr.add(BLOCK_HDR as u64), &mut body);
        let value = body.split_off(klen);
        (next, body, value)
    }

    fn chain_head(&mut self, fp: u64) -> Option<GlobalAddr> {
        let stored = self.inner.search(fp)?;
        Some(GlobalAddr::from_raw(u64::from_le_bytes(
            stored[..8].try_into().unwrap(),
        )))
    }

    /// Inserts (or overwrites) a variable-length key.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), IndexError> {
        assert!(!key.is_empty());
        let fp = fingerprint(key);
        // Walk the existing chain; rewrite it with the key replaced or
        // prepended (blocks are immutable once published, so readers racing
        // us keep a consistent view of the old chain).
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut replaced = false;
        if let Some(mut cur) = self.chain_head(fp) {
            while !cur.is_null() {
                let (next, k, v) = self.read_block(cur);
                if k == key {
                    replaced = true;
                } else {
                    items.push((k, v));
                }
                cur = next;
            }
        } else {
            // Fresh fingerprint: single block, one tree insert.
            let head = self.write_block(key, value, GlobalAddr::NULL)?;
            return self.inner.insert(fp, &head.raw().to_le_bytes());
        }
        let _ = replaced;
        items.push((key.to_vec(), value.to_vec()));
        let mut next = GlobalAddr::NULL;
        for (k, v) in items.iter().rev() {
            next = self.write_block(k, v, next)?;
        }
        self.inner.insert(fp, &next.raw().to_le_bytes())
    }

    /// Looks up a variable-length key.
    pub fn search(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let fp = fingerprint(key);
        let mut cur = self.chain_head(fp)?;
        // Fingerprint collisions are rare; the chain is almost always one
        // block (the paper fetches all matching blocks).
        while !cur.is_null() {
            let (next, k, v) = self.read_block(cur);
            if k == key {
                return Some(v);
            }
            cur = next;
        }
        None
    }

    /// Deletes a variable-length key; returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, IndexError> {
        let fp = fingerprint(key);
        let Some(head) = self.chain_head(fp) else {
            return Ok(false);
        };
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut found = false;
        let mut cur = head;
        while !cur.is_null() {
            let (next, k, v) = self.read_block(cur);
            if k == key {
                found = true;
            } else {
                items.push((k, v));
            }
            cur = next;
        }
        if !found {
            return Ok(false);
        }
        if items.is_empty() {
            self.inner.delete(fp)?;
            return Ok(true);
        }
        let mut next = GlobalAddr::NULL;
        for (k, v) in items.iter().rev() {
            next = self.write_block(k, v, next)?;
        }
        self.inner.insert(fp, &next.raw().to_le_bytes())?;
        Ok(true)
    }

    /// Scans up to `count` keys lexicographically from `start` (inclusive).
    ///
    /// Fingerprints preserve the order of the first 8 key bytes; ties are
    /// resolved by fetching the blocks and sorting the full keys.
    pub fn scan(&mut self, start: &[u8], count: usize, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
        if count == 0 {
            return;
        }
        let fp = fingerprint(start);
        let mut heads = Vec::new();
        self.inner.scan(fp, count + 8, &mut heads);
        let mut collected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (_, stored) in heads {
            let mut cur =
                GlobalAddr::from_raw(u64::from_le_bytes(stored[..8].try_into().unwrap()));
            while !cur.is_null() {
                let (next, k, v) = self.read_block(cur);
                if k.as_slice() >= start {
                    collected.push((k, v));
                }
                cur = next;
            }
        }
        collected.sort();
        collected.truncate(count);
        out.extend(collected);
    }

    /// This client's verb statistics (tree traffic + block traffic).
    pub fn wire_bytes(&self) -> u64 {
        self.inner.stats().wire_bytes + self.ep.stats().wire_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> (VarKeyTree, VarKeyClient) {
        let pool = Pool::with_defaults(1, 256 << 20);
        let t = VarKeyTree::create(&pool, ChimeConfig::default(), 0);
        let cn = t.new_cn();
        let c = t.client(&cn);
        (t, c)
    }

    #[test]
    fn insert_search_string_keys() {
        let (_t, mut c) = mk();
        for i in 0..500u32 {
            let k = format!("user{i:06}/profile");
            c.insert(k.as_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        for i in 0..500u32 {
            let k = format!("user{i:06}/profile");
            assert_eq!(
                c.search(k.as_bytes()),
                Some(format!("value-{i}").into_bytes()),
                "{k}"
            );
        }
        assert_eq!(c.search(b"missing"), None);
    }

    #[test]
    fn fingerprint_collisions_chain() {
        let (_t, mut c) = mk();
        // Keys sharing the same first 8 bytes collide on the fingerprint.
        let keys: Vec<Vec<u8>> = (0..20u8)
            .map(|i| {
                let mut k = b"SAMEPREF".to_vec();
                k.push(i);
                k
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            c.insert(k, &[i as u8; 4]).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(c.search(k), Some(vec![i as u8; 4]), "collision {i}");
        }
        // Overwrite one colliding key; the others survive.
        c.insert(&keys[7], b"new").unwrap();
        assert_eq!(c.search(&keys[7]), Some(b"new".to_vec()));
        assert_eq!(c.search(&keys[8]), Some(vec![8u8; 4]));
    }

    #[test]
    fn delete_from_chain() {
        let (_t, mut c) = mk();
        let keys: Vec<Vec<u8>> = (0..5u8)
            .map(|i| {
                let mut k = b"COLLIDE!".to_vec();
                k.push(i);
                k
            })
            .collect();
        for k in &keys {
            c.insert(k, b"v").unwrap();
        }
        assert!(c.delete(&keys[2]).unwrap());
        assert!(!c.delete(&keys[2]).unwrap());
        assert_eq!(c.search(&keys[2]), None);
        for (i, k) in keys.iter().enumerate() {
            if i != 2 {
                assert_eq!(c.search(k), Some(b"v".to_vec()), "survivor {i}");
            }
        }
        // Deleting the rest empties the fingerprint entirely.
        for (i, k) in keys.iter().enumerate() {
            if i != 2 {
                assert!(c.delete(k).unwrap());
            }
        }
        assert_eq!(c.search(&keys[0]), None);
    }

    #[test]
    fn lexicographic_scan() {
        let (_t, mut c) = mk();
        let names = ["alice", "bob", "carol", "dave", "erin", "frank"];
        for (i, n) in names.iter().enumerate() {
            c.insert(n.as_bytes(), &[i as u8]).unwrap();
        }
        let mut out = Vec::new();
        c.scan(b"bob", 3, &mut out);
        let got: Vec<&[u8]> = out.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(got, vec![b"bob".as_slice(), b"carol", b"dave"]);
    }

    #[test]
    fn long_keys_and_values() {
        let (_t, mut c) = mk();
        let key = vec![0xABu8; 300];
        let val = vec![0xCDu8; 4_000];
        c.insert(&key, &val).unwrap();
        assert_eq!(c.search(&key), Some(val));
    }
}
