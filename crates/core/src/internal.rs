//! Internal (B+-tree) nodes: parsing, serialization and remote operations.
//!
//! Internal nodes follow the Sherman design the paper reuses: a header with
//! level / valid / fence keys / sibling pointer (B-link), sorted pivot
//! entries, and a lock word. Internal nodes are modified rarely (only by
//! structure-modifying operations), so writers rewrite the whole node with
//! the node-level version bumped; readers fetch the whole node and check NV
//! consistency.

use dmem::versioned::{bump, pack_ver, Fetched};
use dmem::{Endpoint, GlobalAddr};

use crate::backoff::Backoff;
use crate::layout::{internal_field as f, InternalLayout};

/// A parsed internal node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalNode {
    /// Remote address of the node.
    pub addr: GlobalAddr,
    /// Level (1 = parent of leaves).
    pub level: u8,
    /// Valid flag (false once merged away; merges are not implemented, so
    /// this stays true).
    pub valid: bool,
    /// Low fence: smallest key this subtree may contain.
    pub fence_low: u64,
    /// High fence: exclusive upper bound of this subtree.
    pub fence_high: u64,
    /// Right sibling at the same level.
    pub sibling: GlobalAddr,
    /// Sorted `(pivot, child)` entries; `entries[0].0 == fence_low`.
    pub entries: Vec<(u64, GlobalAddr)>,
    /// Node-level version observed when reading (used to bump on write).
    pub nv: u8,
}

impl InternalNode {
    /// Selects the child covering `key` and the *next* child pointer
    /// (CHIME's expected sibling for leaf validation; `None` when `key`
    /// routes to the last child).
    ///
    /// # Panics
    ///
    /// Panics if `key < fence_low` (the caller routed incorrectly) or the
    /// node is empty.
    pub fn select(&self, key: u64) -> (GlobalAddr, Option<GlobalAddr>) {
        assert!(self.covers(key));
        assert!(!self.entries.is_empty());
        let i = match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => i,
            Err(0) => unreachable!("key below first pivot"),
            Err(i) => i - 1,
        };
        let next = self.entries.get(i + 1).map(|e| e.1);
        (self.entries[i].1, next)
    }

    /// Whether `key` falls inside this node's fences (a high fence of
    /// `u64::MAX` is unbounded, so the global maximum key is covered).
    pub fn covers(&self, key: u64) -> bool {
        dmem::hash::in_range(key, self.fence_low, self.fence_high)
    }

    /// Serializes the node into its logical payload image.
    pub fn serialize(&self, layout: &InternalLayout, nv: u8) -> Vec<u8> {
        assert!(self.entries.len() <= layout.span);
        let mut img = vec![0u8; layout.payload_len()];
        let ver = pack_ver(nv, 0);
        img[f::VER] = ver;
        img[f::LEVEL] = self.level;
        img[f::VALID] = self.valid as u8;
        img[f::COUNT..f::COUNT + 2].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        img[f::FENCE_LOW..f::FENCE_LOW + 8].copy_from_slice(&self.fence_low.to_le_bytes());
        img[f::FENCE_HIGH..f::FENCE_HIGH + 8].copy_from_slice(&self.fence_high.to_le_bytes());
        img[f::SIBLING..f::SIBLING + 8].copy_from_slice(&self.sibling.raw().to_le_bytes());
        for (i, (pivot, child)) in self.entries.iter().enumerate() {
            let off = layout.entry_off(i);
            img[off] = ver;
            img[off + 1..off + 9].copy_from_slice(&pivot.to_le_bytes());
            img[off + 9..off + 17].copy_from_slice(&child.raw().to_le_bytes());
        }
        // Unused entries still carry the node version byte.
        for i in self.entries.len()..layout.span {
            img[layout.entry_off(i)] = ver;
        }
        img
    }

    fn parse(layout: &InternalLayout, addr: GlobalAddr, fetch: &Fetched) -> Option<InternalNode> {
        let nv = fetch.check_nv(&[f::VER])?;
        let count = fetch.u16_at(f::COUNT) as usize;
        if count > layout.span {
            return None; // torn beyond NV detection granularity; retry
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = layout.entry_off(i);
            entries.push((
                fetch.u64_at(off + 1),
                GlobalAddr::from_raw(fetch.u64_at(off + 9)),
            ));
        }
        Some(InternalNode {
            addr,
            level: fetch.get(f::LEVEL),
            valid: fetch.get(f::VALID) != 0,
            fence_low: fetch.u64_at(f::FENCE_LOW),
            fence_high: fetch.u64_at(f::FENCE_HIGH),
            sibling: GlobalAddr::from_raw(fetch.u64_at(f::SIBLING)),
            entries,
            nv,
        })
    }

    /// Approximate compute-side bytes when cached.
    pub fn cached_bytes(&self) -> u64 {
        48 + 16 * self.entries.len() as u64
    }
}

/// Remote operations on internal nodes.
pub struct InternalOps {
    /// Node geometry.
    pub layout: InternalLayout,
}

impl InternalOps {
    /// Reads and parses an internal node, retrying torn reads.
    pub fn read(&self, ep: &mut Endpoint, addr: GlobalAddr) -> InternalNode {
        let mut spins = 0u32;
        loop {
            let fetch = self
                .layout
                .versioned()
                .fetch(ep, addr, 0, self.layout.payload_len());
            if let Some(n) = InternalNode::parse(&self.layout, addr, &fetch) {
                return n;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            assert!(spins < 1_000_000, "internal read livelock at {addr:?}");
        }
    }

    /// Acquires the node's lock (plain CAS on bit 0), retrying with the
    /// same seeded exponential backoff the leaf path uses so contended
    /// internal locks neither hammer the NIC nor depend on host timing.
    pub fn lock(&self, ep: &mut Endpoint, addr: GlobalAddr) {
        let lock_addr = addr.add(self.layout.lock_off() as u64);
        let mut backoff = Backoff::new(ep.client_id() as u64 ^ lock_addr.raw());
        loop {
            if ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1 == 0 {
                return;
            }
            ep.note_lock_retry();
            backoff.wait(ep);
            assert!(
                backoff.attempts() < 1_000_000,
                "internal lock livelock at {addr:?}"
            );
        }
    }

    /// Releases the node lock with a plain WRITE.
    pub fn unlock(&self, ep: &mut Endpoint, addr: GlobalAddr) {
        ep.write(addr.add(self.layout.lock_off() as u64), &0u64.to_le_bytes());
    }

    /// Writes the whole node (NV bumped by the caller inside `node.nv`) and
    /// releases its lock in one doorbell batch.
    pub fn write_and_unlock(&self, ep: &mut Endpoint, node: &InternalNode) {
        let nv = bump(node.nv);
        let img = node.serialize(&self.layout, nv);
        let (pstart, phys) = self
            .layout
            .versioned()
            .build_phys(0, &img, |_| pack_ver(nv, 0));
        let lock_addr = node.addr.add(self.layout.lock_off() as u64);
        ep.write_batch(&[
            (node.addr.add(pstart as u64), &phys),
            (lock_addr, &0u64.to_le_bytes()),
        ]);
    }

    /// Writes a brand-new node (no lock interaction; the node is not yet
    /// reachable).
    pub fn write_new(&self, ep: &mut Endpoint, node: &InternalNode) {
        let img = node.serialize(&self.layout, 0);
        let (pstart, phys) = self
            .layout
            .versioned()
            .build_phys(0, &img, |_| pack_ver(0, 0));
        ep.write(node.addr.add(pstart as u64), &phys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem::node::RESERVED_BYTES;
    use dmem::Pool;

    fn setup() -> (Endpoint, InternalOps, GlobalAddr) {
        let pool = Pool::with_defaults(1, 1 << 20);
        let ep = Endpoint::new(pool);
        let ops = InternalOps {
            layout: InternalLayout { span: 8 },
        };
        (ep, ops, GlobalAddr::new(0, RESERVED_BYTES))
    }

    fn sample(addr: GlobalAddr) -> InternalNode {
        InternalNode {
            addr,
            level: 1,
            valid: true,
            fence_low: 0,
            fence_high: u64::MAX,
            sibling: GlobalAddr::NULL,
            entries: vec![
                (0, GlobalAddr::new(0, 0x10000)),
                (100, GlobalAddr::new(0, 0x20000)),
                (200, GlobalAddr::new(0, 0x30000)),
            ],
            nv: 0,
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let (mut ep, ops, addr) = setup();
        let node = sample(addr);
        ops.write_new(&mut ep, &node);
        let got = ops.read(&mut ep, addr);
        assert_eq!(got.level, 1);
        assert!(got.valid);
        assert_eq!(got.fence_high, u64::MAX);
        assert_eq!(got.entries, node.entries);
    }

    #[test]
    fn select_routes_by_pivot() {
        let node = sample(GlobalAddr::NULL);
        let (c, next) = node.select(0);
        assert_eq!(c.offset(), 0x10000);
        assert_eq!(next.unwrap().offset(), 0x20000);
        let (c, next) = node.select(150);
        assert_eq!(c.offset(), 0x20000);
        assert_eq!(next.unwrap().offset(), 0x30000);
        let (c, next) = node.select(5000);
        assert_eq!(c.offset(), 0x30000);
        assert!(next.is_none());
        let (c, _) = node.select(200);
        assert_eq!(c.offset(), 0x30000);
    }

    #[test]
    fn write_and_unlock_bumps_nv() {
        let (mut ep, ops, addr) = setup();
        let mut node = sample(addr);
        ops.write_new(&mut ep, &node);
        let before = ops.read(&mut ep, addr);
        ops.lock(&mut ep, addr);
        node.entries.push((300, GlobalAddr::new(0, 0x40000)));
        node.nv = before.nv;
        ops.write_and_unlock(&mut ep, &node);
        let after = ops.read(&mut ep, addr);
        assert_eq!(after.nv, bump(before.nv));
        assert_eq!(after.entries.len(), 4);
        // Lock is released.
        ops.lock(&mut ep, addr);
        ops.unlock(&mut ep, addr);
    }

    #[test]
    fn lock_excludes_second_acquirer() {
        let (mut ep, ops, addr) = setup();
        ops.write_new(&mut ep, &sample(addr));
        ops.lock(&mut ep, addr);
        let lock_addr = addr.add(ops.layout.lock_off() as u64);
        // A second CAS must fail while held.
        assert_eq!(ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1, 1);
        ops.unlock(&mut ep, addr);
        assert_eq!(ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1, 0);
    }

    #[test]
    fn cached_bytes_scale_with_entries() {
        let node = sample(GlobalAddr::NULL);
        assert_eq!(node.cached_bytes(), 48 + 48);
    }
}
