//! CHIME configuration.
//!
//! Every technique from the paper can be toggled independently so the factor
//! analysis (Fig. 15) can start from a Sherman-like configuration and apply
//! the optimizations one by one.

/// Configuration of a CHIME tree instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChimeConfig {
    /// Leaf span: number of hash-table entries per leaf node. Must be a
    /// multiple of `neighborhood`. Paper default: 64.
    pub span: usize,
    /// Fan-out of internal (B+-tree) nodes. Paper default: 64.
    pub internal_span: usize,
    /// Hopscotch neighborhood size H (2..=16). Paper default: 8.
    pub neighborhood: usize,
    /// Inline value size in bytes. Paper default: 8.
    pub value_size: usize,
    /// Compute-side cache budget per CN, in bytes (internal nodes).
    pub cache_bytes: u64,
    /// Hotspot-buffer budget per CN, in bytes (0 disables the buffer).
    pub hotspot_bytes: u64,
    /// Enable hotness-aware speculative reads (§4.3).
    pub speculative_read: bool,
    /// Enable vacancy-bitmap piggybacking onto the lock word via masked-CAS
    /// (§4.2.1). When disabled the vacancy bitmap lives in a separate word
    /// and costs a dedicated READ on every insert.
    pub vacancy_piggyback: bool,
    /// Enable leaf-metadata replication every H entries (§4.2.2). When
    /// disabled the leaf keeps a single header and every read pays a
    /// dedicated metadata READ.
    pub metadata_replication: bool,
    /// Enable sibling-based validation (§4.2.3). When disabled the leaf
    /// metadata carries full fence keys instead (more metadata bytes).
    pub sibling_validation: bool,
    /// Store values out-of-line behind an 8-byte pointer (variable-length
    /// value support, §4.5).
    pub indirect_values: bool,
    /// Key size in bytes for layout accounting only. Keys are always `u64`
    /// at the API; larger sizes model the variable-length-key layout of
    /// §4.5 / Fig. 16.
    pub key_size: usize,
    /// Span/event tracing: capacity of each client's trace ring buffer, in
    /// events. `0` (the default) disables tracing; any other value attaches
    /// an `obs::Tracer` to every client endpoint, recording one span per
    /// index operation and one event per verb / injected fault on the
    /// virtual clock. Traces are a pure function of the workload seed.
    pub trace_events: usize,
    /// Crash-safe lock recovery: number of consecutive failed lock-CAS
    /// attempts observing an *identical* locked word before a waiter
    /// presumes the holder dead and reclaims the lock by bumping the lease
    /// epoch (see `lockword`). `0` disables reclamation (the default):
    /// stealing from a holder that is merely slow is unsound, so leases are
    /// opted into by fault-tolerant deployments / the chaos harness only.
    pub lock_lease_spins: u32,
}

impl Default for ChimeConfig {
    fn default() -> Self {
        ChimeConfig {
            span: 64,
            internal_span: 64,
            neighborhood: 8,
            value_size: 8,
            cache_bytes: 100 << 20,
            hotspot_bytes: 30 << 20,
            speculative_read: true,
            vacancy_piggyback: true,
            metadata_replication: true,
            sibling_validation: true,
            indirect_values: false,
            key_size: 8,
            trace_events: 0,
            lock_lease_spins: 0,
        }
    }
}

impl ChimeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (e.g. span not a multiple of H).
    pub fn validate(&self) {
        assert!(self.neighborhood >= 2 && self.neighborhood <= 16);
        assert!(self.span >= self.neighborhood);
        assert_eq!(
            self.span % self.neighborhood,
            0,
            "span must be a multiple of the neighborhood size"
        );
        assert!(self.internal_span >= 4);
        assert!(self.value_size >= 1);
        assert!(self.key_size >= 8);
        assert!(
            self.vacancy_piggyback || !self.sibling_validation,
            "sibling validation needs the argmax field of the piggybacked lock word"
        );
    }

    /// A configuration with all CHIME-specific optimizations disabled
    /// ("Sherman + hopscotch leaf node", the Fig. 15 starting point).
    pub fn baseline() -> Self {
        ChimeConfig {
            speculative_read: false,
            vacancy_piggyback: false,
            metadata_replication: false,
            sibling_validation: false,
            hotspot_bytes: 0,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ChimeConfig::default().validate();
        ChimeConfig::baseline().validate();
    }

    #[test]
    #[should_panic]
    fn span_must_be_multiple_of_h() {
        ChimeConfig {
            span: 62,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn neighborhood_capped_at_16() {
        ChimeConfig {
            neighborhood: 32,
            span: 64,
            ..Default::default()
        }
        .validate();
    }
}
