//! Bounded exponential backoff with seeded jitter for optimistic retries.
//!
//! Every retry loop in the tree (lock acquisition, torn-read revalidation,
//! whole-operation restarts) previously spun immediately. Under contention
//! that turns one conflict into a convoy: every waiter re-issues its CAS in
//! the same round-trip window and collides again. [`Backoff`] spaces the
//! retries out exponentially — doubling a virtual-nanosecond delay per
//! attempt up to a bound — with deterministic, seeded jitter so that two
//! clients that conflicted once are unlikely to conflict on the retry.
//!
//! The delay is charged to the endpoint's *virtual* clock
//! ([`dmem::Endpoint::advance_clock`]); no wall-clock sleeping happens, so
//! simulations stay instant and, given the same seed, bit-identical. In
//! multi-threaded runs the waiter additionally yields the OS thread so a
//! same-core lock holder can make real progress.

use dmem::Endpoint;

/// Default first-retry delay in virtual nanoseconds (≈ half an RTT).
pub const DEFAULT_BASE_NS: u64 = 256;
/// Default delay cap in virtual nanoseconds.
pub const DEFAULT_MAX_NS: u64 = 64 * 1024;

/// A per-loop exponential backoff state machine.
///
/// Create one per retry loop (not per client): the attempt counter is the
/// loop's conflict streak and resets with the loop.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: u64,
    attempt: u32,
    base_ns: u64,
    max_ns: u64,
}

impl Backoff {
    /// Creates a backoff with the default delay bounds.
    ///
    /// The seed should mix something per-client (e.g.
    /// [`dmem::Endpoint::client_id`]) with something per-site (e.g. the
    /// contended address) so concurrent waiters draw different jitter.
    pub fn new(seed: u64) -> Self {
        Self::with_limits(seed, DEFAULT_BASE_NS, DEFAULT_MAX_NS)
    }

    /// Creates a backoff with explicit `base_ns`/`max_ns` delay bounds.
    pub fn with_limits(seed: u64, base_ns: u64, max_ns: u64) -> Self {
        assert!(base_ns > 0 && max_ns >= base_ns);
        Backoff {
            // SplitMix64 of the seed; never zero (xorshift fixed point).
            rng: splitmix64(seed).max(1),
            attempt: 0,
            base_ns,
            max_ns,
        }
    }

    /// Number of waits performed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the conflict streak (call after the contended step succeeds
    /// if the loop keeps running).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns this attempt's delay in virtual nanoseconds: an exponentially
    /// growing ceiling, half fixed and half jittered, clamped to `max_ns`.
    pub fn next_delay_ns(&mut self) -> u64 {
        let exp = self.attempt.min(20);
        self.attempt += 1;
        let ceil = self.base_ns.saturating_shl(exp).min(self.max_ns);
        let half = ceil / 2;
        half + self.next_u64() % (ceil - half + 1)
    }

    /// Charges one backoff delay to the endpoint's virtual clock and yields
    /// the OS thread (so a descheduled lock holder can run in real
    /// multi-threaded tests).
    pub fn wait(&mut self, ep: &mut Endpoint) {
        let ns = self.next_delay_ns();
        ep.advance_clock(ns);
        if self.attempt > 1 {
            std::thread::yield_now();
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

trait SaturatingShl {
    fn saturating_shl(self, exp: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, exp: u32) -> u64 {
        if exp >= self.leading_zeros() {
            u64::MAX
        } else {
            self << exp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let mut b = Backoff::with_limits(7, 100, 1_000);
        let d0 = b.next_delay_ns();
        assert!((50..=100).contains(&d0), "{d0}");
        let d1 = b.next_delay_ns();
        assert!((100..=200).contains(&d1), "{d1}");
        for _ in 0..10 {
            let d = b.next_delay_ns();
            assert!(d <= 1_000);
        }
        // Once capped, the delay stays in the top half of the cap.
        let d = b.next_delay_ns();
        assert!((500..=1_000).contains(&d), "{d}");
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = Backoff::new(42);
        let mut b = Backoff::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_delay_ns(), b.next_delay_ns());
        }
        let mut c = Backoff::new(43);
        let diverged = (0..32).any(|_| a.next_delay_ns() != c.next_delay_ns());
        assert!(diverged, "different seeds should jitter differently");
    }

    #[test]
    fn reset_restarts_the_streak() {
        let mut b = Backoff::with_limits(1, 100, 1_000_000);
        for _ in 0..8 {
            b.next_delay_ns();
        }
        assert_eq!(b.attempts(), 8);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay_ns() <= 100);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::with_limits(1, u64::MAX / 2, u64::MAX);
        for _ in 0..100 {
            let d = b.next_delay_ns();
            assert!(d >= u64::MAX / 4);
        }
    }
}
