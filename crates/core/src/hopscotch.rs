//! Pure hopscotch-hashing logic over a cyclic window of a leaf node.
//!
//! Remote inserts fetch only a *hop range* of the leaf (the entries that can
//! possibly be examined or moved); this module performs the hopping on that
//! local window, tracking exactly which slots changed so the writer can bump
//! entry-level versions and write the range back. Splits reuse the same code
//! through [`build_table`], which fills a whole-span window from scratch.
//!
//! Key 0 is the reserved empty sentinel (asserted at the public API).

use dmem::hash::home_entry;

/// Cyclic distance from `a` forward to `b` in a table of `span` entries.
#[inline]
pub fn cyc_dist(a: usize, b: usize, span: usize) -> usize {
    (b + span - a) % span
}

/// A local, mutable view of a cyclic range of leaf entries.
#[derive(Debug, Clone)]
pub struct Window {
    span: usize,
    h: usize,
    start: usize,
    keys: Vec<u64>,
    values: Vec<Vec<u8>>,
    bitmaps: Vec<u16>,
    dirty: Vec<bool>,
}

impl Window {
    /// Creates a window over `len` entries starting at absolute index
    /// `start` (cyclic), in a table of `span` entries with neighborhood `h`.
    pub fn new(span: usize, h: usize, start: usize, len: usize) -> Self {
        assert!(len <= span && start < span);
        Window {
            span,
            h,
            start,
            keys: vec![0; len],
            values: vec![Vec::new(); len],
            bitmaps: vec![0; len],
            dirty: vec![false; len],
        }
    }

    /// Number of entries covered.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the window covers no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Absolute index of the first covered entry.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Table span.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Converts an absolute entry index to a window-relative one.
    ///
    /// Returns `None` when the index is not covered.
    pub fn rel(&self, abs: usize) -> Option<usize> {
        let d = cyc_dist(self.start, abs % self.span, self.span);
        (d < self.len()).then_some(d)
    }

    fn abs(&self, rel: usize) -> usize {
        (self.start + rel) % self.span
    }

    /// Loads the content of one covered slot (used when parsing a fetch).
    pub fn set_slot(&mut self, abs: usize, key: u64, value: Vec<u8>, bitmap: u16) {
        let r = self.rel(abs).expect("slot not covered");
        self.keys[r] = key;
        self.values[r] = value;
        self.bitmaps[r] = bitmap;
    }

    /// Returns `(key, value, bitmap)` of a covered slot.
    pub fn slot(&self, abs: usize) -> (u64, &[u8], u16) {
        let r = self.rel(abs).expect("slot not covered");
        (self.keys[r], &self.values[r], self.bitmaps[r])
    }

    /// Returns `true` if the covered slot holds no key.
    pub fn slot_empty(&self, abs: usize) -> bool {
        let r = self.rel(abs).expect("slot not covered");
        self.keys[r] == 0
    }

    /// Absolute indices of the slots modified since the window was filled.
    pub fn dirty_slots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| self.dirty[r])
            .map(|r| self.abs(r))
            .collect()
    }

    fn mark(&mut self, rel: usize) {
        self.dirty[rel] = true;
    }

    /// First empty covered slot at cyclic distance >= 0 from `from`,
    /// scanning forward within the window.
    pub fn first_empty_from(&self, from: usize) -> Option<usize> {
        let d0 = self.rel(from)?;
        (d0..self.len()).find(|&r| self.keys[r] == 0).map(|r| self.abs(r))
    }

    /// Looks `key` up via its home entry's hopscotch bitmap. The home entry
    /// and its whole neighborhood must be covered by the window.
    pub fn find_in_neighborhood(&self, key: u64) -> Option<usize> {
        let home = home_entry(key, self.span);
        let (_, _, bm) = self.slot(home);
        (0..self.h)
            .filter(|&d| bm & (1 << d) != 0)
            .map(|d| (home + d) % self.span)
            .find(|&p| self.slot(p).0 == key)
    }

    /// Updates the stored value of the key at absolute slot `abs`.
    pub fn set_value(&mut self, abs: usize, value: Vec<u8>) {
        let r = self.rel(abs).expect("slot not covered");
        self.values[r] = value;
        self.mark(r);
    }

    /// Clears slot `abs` and the corresponding bit in its home's bitmap.
    ///
    /// The home entry must also be covered by the window.
    pub fn remove(&mut self, abs: usize) {
        let r = self.rel(abs).expect("slot not covered");
        let key = self.keys[r];
        assert_ne!(key, 0, "removing an empty slot");
        let hm = home_entry(key, self.span);
        let hr = self.rel(hm).expect("home entry not covered");
        let bit = cyc_dist(hm, abs, self.span);
        self.bitmaps[hr] &= !(1u16 << bit);
        self.keys[r] = 0;
        self.values[r] = Vec::new();
        self.mark(r);
        self.mark(hr);
    }

    /// Inserts `key` by hopping within the window.
    ///
    /// `empty` is the absolute index of a known-empty covered slot at or
    /// after `key`'s home entry. On success returns the final slot; on
    /// failure (no feasible hop) returns `Err(NeedSplit)` with the window
    /// untouched.
    pub fn insert(&mut self, key: u64, value: Vec<u8>, empty: usize) -> Result<usize, NeedSplit> {
        assert_ne!(key, 0, "key 0 is the empty sentinel");
        let home = home_entry(key, self.span);
        debug_assert!(self.rel(home).is_some(), "home entry not covered");
        debug_assert!(self.slot_empty(empty), "target slot not empty");
        // Plan on a copy of the occupancy so failure leaves us untouched.
        let plan = self.plan_hops(home, empty)?;
        // Execute the plan: each move shifts a key (and value) into the
        // current empty slot and vacates its old position.
        for &(from, to) in &plan {
            let fr = self.rel(from).unwrap();
            let tr = self.rel(to).unwrap();
            let k = self.keys[fr];
            let hm = home_entry(k, self.span);
            let hr = self.rel(hm).expect("home of hopped key not covered");
            self.bitmaps[hr] &= !(1u16 << cyc_dist(hm, from, self.span));
            self.bitmaps[hr] |= 1u16 << cyc_dist(hm, to, self.span);
            self.keys[tr] = k;
            self.values[tr] = std::mem::take(&mut self.values[fr]);
            self.keys[fr] = 0;
            self.mark(fr);
            self.mark(tr);
            self.mark(hr);
        }
        let final_slot = plan.last().map(|&(from, _)| from).unwrap_or(empty);
        let fr = self.rel(final_slot).unwrap();
        let hr = self.rel(home).unwrap();
        self.keys[fr] = key;
        self.values[fr] = value;
        self.bitmaps[hr] |= 1u16 << cyc_dist(home, final_slot, self.span);
        self.mark(fr);
        self.mark(hr);
        Ok(final_slot)
    }

    /// Computes the hop plan (a sequence of `(from, to)` moves) that frees a
    /// slot within `home`'s neighborhood, starting from `empty`.
    fn plan_hops(&self, home: usize, mut empty: usize) -> Result<Vec<(usize, usize)>, NeedSplit> {
        let mut plan = Vec::new();
        'outer: while cyc_dist(home, empty, self.span) >= self.h {
            // Candidates, farthest-swappable first: positions empty-H+1 ..
            // empty-1 (cyclic).
            for d in (1..self.h).rev() {
                let cand = (empty + self.span - d) % self.span;
                let Some(cr) = self.rel(cand) else {
                    return Err(NeedSplit);
                };
                let k = self.keys[cr];
                if k == 0 {
                    // A closer empty slot; adopt it (it can only help).
                    if cyc_dist(home, cand, self.span) < cyc_dist(home, empty, self.span) {
                        empty = cand;
                        continue 'outer;
                    }
                    continue;
                }
                let hm = home_entry(k, self.span);
                if cyc_dist(hm, empty, self.span) < self.h && self.rel(hm).is_some() {
                    plan.push((cand, empty));
                    empty = cand;
                    continue 'outer;
                }
            }
            return Err(NeedSplit);
        }
        Ok(plan)
    }
}

/// Returned when no feasible hopping exists: the leaf must split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeedSplit;

/// Builds a full hopscotch table of `span` entries from `items`.
///
/// Returns `None` when some item cannot be placed (the caller splits
/// further). Used by node splits to rebuild both halves locally.
pub fn build_table(span: usize, h: usize, items: &[(u64, Vec<u8>)]) -> Option<Window> {
    let mut w = Window::new(span, h, 0, span);
    for (k, v) in items {
        let home = home_entry(*k, span);
        let empty = find_empty(&w, home)?;
        w.insert(*k, v.clone(), empty).ok()?;
    }
    Some(w)
}

/// First empty slot at or (cyclically) after `home` in a full-span window.
fn find_empty(w: &Window, home: usize) -> Option<usize> {
    let span = w.span();
    (0..span)
        .map(|d| (home + d) % span)
        .find(|&i| w.slot_empty(i))
}

/// Verifies hopscotch invariants of a full-span window (test helper):
/// every key sits within H of its home, and the bitmaps exactly describe
/// the occupancy.
pub fn check_invariants(w: &Window) -> Result<(), String> {
    let span = w.span();
    for i in 0..span {
        let (k, _, _) = w.slot(i);
        if k != 0 {
            let hm = home_entry(k, span);
            let d = cyc_dist(hm, i, span);
            if d >= w.h {
                return Err(format!("key {k} at {i} is {d} from home {hm}"));
            }
            let (_, _, bm) = w.slot(hm);
            if bm & (1 << d) == 0 {
                return Err(format!("bitmap of home {hm} misses key {k} at {i}"));
            }
        }
    }
    for i in 0..span {
        let (_, _, bm) = w.slot(i);
        for d in 0..16 {
            if bm & (1 << d) != 0 {
                let pos = (i + d) % span;
                let (k, _, _) = w.slot(pos);
                if k == 0 || home_entry(k, span) != i {
                    return Err(format!("bitmap of {i} claims {pos} wrongly"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Vec<u8> {
        x.to_le_bytes().to_vec()
    }

    #[test]
    fn cyclic_distance() {
        assert_eq!(cyc_dist(5, 7, 16), 2);
        assert_eq!(cyc_dist(7, 5, 16), 14);
        assert_eq!(cyc_dist(3, 3, 16), 0);
    }

    #[test]
    fn window_rel_abs() {
        let w = Window::new(16, 4, 14, 6); // covers 14,15,0,1,2,3
        assert_eq!(w.rel(14), Some(0));
        assert_eq!(w.rel(1), Some(3));
        assert_eq!(w.rel(4), None);
    }

    #[test]
    fn simple_insert_no_hops() {
        let mut w = Window::new(16, 4, 0, 16);
        let key = 42u64;
        let home = dmem::hash::home_entry(key, 16);
        let pos = w.insert(key, v(1), home).unwrap();
        assert_eq!(pos, home);
        let (k, val, _) = w.slot(pos);
        assert_eq!(k, key);
        assert_eq!(val, &v(1)[..]);
        check_invariants(&w).unwrap();
        // Dirty slots: the inserted one (home bitmap is the same slot).
        assert_eq!(w.dirty_slots(), vec![home]);
    }

    #[test]
    fn build_table_many_keys() {
        let items: Vec<_> = (1..=50u64).map(|k| (k, v(k))).collect();
        let w = build_table(64, 8, &items).expect("50/64 must fit");
        check_invariants(&w).unwrap();
        for (k, val) in &items {
            let hm = dmem::hash::home_entry(*k, 64);
            let found = (0..8).any(|d| {
                let (kk, vv, _) = w.slot((hm + d) % 64);
                kk == *k && vv == &val[..]
            });
            assert!(found, "key {k} not within its neighborhood");
        }
    }

    #[test]
    fn remove_clears_bitmap() {
        let items: Vec<_> = (1..=40u64).map(|k| (k, v(k))).collect();
        let mut w = build_table(64, 8, &items).unwrap();
        for k in 1..=40u64 {
            let hm = dmem::hash::home_entry(k, 64);
            let pos = (0..8)
                .map(|d| (hm + d) % 64)
                .find(|&p| w.slot(p).0 == k)
                .unwrap();
            w.remove(pos);
        }
        check_invariants(&w).unwrap();
        for i in 0..64 {
            assert!(w.slot_empty(i));
            assert_eq!(w.slot(i).2, 0);
        }
    }

    /// Finds a key whose home entry is `home`, avoiding key 0.
    fn key_with_home(span: usize, home: usize, salt: u64) -> u64 {
        (1 + salt * 1_000_000..)
            .find(|&k| dmem::hash::home_entry(k, span) == home)
            .unwrap()
    }

    #[test]
    fn need_split_when_no_feasible_hop() {
        // span 16, H = 4. New key homes at 0; the only empty slot is 8,
        // and every candidate (slots 5..7) is homed too far back to move.
        let span = 16;
        let h = 4;
        let mut w = Window::new(span, h, 0, span);
        for p in 0..=7usize {
            if p == 0 {
                let k = key_with_home(span, 0, 99);
                w.set_slot(0, k, v(k), 1); // occupies its own home
            } else {
                let home = if p >= 5 { p - 3 } else { p };
                let k = key_with_home(span, home, p as u64);
                w.set_slot(p, k, v(k), 0);
            }
        }
        let key = key_with_home(span, 0, 7777);
        let before: Vec<_> = (0..span).map(|i| w.slot(i).0).collect();
        assert_eq!(w.insert(key, v(key), 8), Err(NeedSplit));
        // Failure must leave the window untouched.
        let after: Vec<_> = (0..span).map(|i| w.slot(i).0).collect();
        assert_eq!(before, after);
        assert!(w.dirty_slots().is_empty());
    }

    #[test]
    fn hopping_moves_keys_and_preserves_invariants() {
        // Dense table to force hops: 56 of 64 slots.
        let items: Vec<_> = (1..=56u64).map(|k| (k, v(k))).collect();
        let w = build_table(64, 8, &items).expect("should fit at 87% load");
        check_invariants(&w).unwrap();
    }

    #[test]
    fn dirty_tracking_is_minimal() {
        let items: Vec<_> = (1..=30u64).map(|k| (k, v(k))).collect();
        let w0 = build_table(64, 8, &items).unwrap();
        // Re-create a clean window with the same content.
        let mut w = Window::new(64, 8, 0, 64);
        for i in 0..64 {
            let (k, val, bm) = w0.slot(i);
            w.set_slot(i, k, val.to_vec(), bm);
        }
        assert!(w.dirty_slots().is_empty());
        let key = 1000u64;
        let home = dmem::hash::home_entry(key, 64);
        let empty = find_empty(&w, home).unwrap();
        w.insert(key, v(key), empty).unwrap();
        let dirty = w.dirty_slots();
        assert!(!dirty.is_empty());
        // At most: each hop touches from/to/home, plus the final insert.
        assert!(dirty.len() <= 3 * 8);
        check_invariants(&w).unwrap();
    }
}
