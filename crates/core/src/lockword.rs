//! The 8-byte lock word (Fig. 8 / Fig. 9).
//!
//! CHIME packs three things into the node's 8-byte lock field:
//!
//! * bit 0 — the lock itself (acquired with a masked-CAS whose compare mask
//!   is `0x1`, so the unknown vacancy bits never fail the compare; the old
//!   value returned by the atomic hands the client the vacancy bitmap for
//!   free);
//! * bits 1..=10 — `argmax_keys`, the entry index holding the node's maximum
//!   key (1023 = none), used to resolve the half-split insert corner case;
//! * bits 11..=55 — the vacancy bitmap: 45 groups of `ceil(span/45)` entries
//!   each; a set bit means *at least one empty entry in the group*;
//! * bits 56..=63 — the lease epoch, used by crash recovery: a waiter that
//!   observes the same locked word across many failed acquisition attempts
//!   presumes the holder dead and takes over with a full-word CAS that bumps
//!   the epoch (lock bit stays set), so concurrent reclaimers and the normal
//!   release path both fail cleanly. See [`LockWord::reclaimed`].
//!
//! The lock is still acquired with a masked-CAS whose compare/swap masks are
//! `0x1`: epoch and vacancy bits never fail the compare and ride back to the
//! client in the returned old value.
//!
//! With vacancy piggybacking disabled the same encoding (minus the lock bit)
//! lives in a separate word that costs a dedicated READ.

/// Number of vacancy bits available in the lock word.
pub const VACANCY_BITS: usize = 45;
/// Sentinel `argmax` value meaning "node holds no keys".
pub const ARGMAX_NONE: u16 = 0x3FF;

const LOCK_BIT: u64 = 1;
const ARGMAX_SHIFT: u32 = 1;
const ARGMAX_MASK: u64 = 0x3FF;
const VACANCY_SHIFT: u32 = 11;
const EPOCH_SHIFT: u32 = 56;
const EPOCH_MASK: u64 = 0xFF;

// Compile-time mirror of the `lockword-layout` lint: the four fields must
// sit exactly at their documented positions (lock bit 0, argmax 1..=10,
// vacancy 11..=55, epoch 56..=63) and never overlap. Editing a constant
// above without keeping the layout coherent fails the build here before
// `chime-lint` even runs.
const LOCK_FIELD: u64 = LOCK_BIT;
const ARGMAX_FIELD: u64 = ARGMAX_MASK << ARGMAX_SHIFT;
const VACANCY_FIELD: u64 = ((1u64 << VACANCY_BITS) - 1) << VACANCY_SHIFT;
const EPOCH_FIELD: u64 = EPOCH_MASK << EPOCH_SHIFT;
const _: () = {
    assert!(LOCK_FIELD == 0x1);
    assert!(ARGMAX_FIELD == 0x3FF << 1);
    assert!(VACANCY_FIELD == ((1u64 << 45) - 1) << 11);
    assert!(EPOCH_FIELD == 0xFF << 56);
    assert!(LOCK_FIELD & ARGMAX_FIELD == 0);
    assert!(LOCK_FIELD & VACANCY_FIELD == 0);
    assert!(LOCK_FIELD & EPOCH_FIELD == 0);
    assert!(ARGMAX_FIELD & VACANCY_FIELD == 0);
    assert!(ARGMAX_FIELD & EPOCH_FIELD == 0);
    assert!(VACANCY_FIELD & EPOCH_FIELD == 0);
    assert!(LOCK_FIELD | ARGMAX_FIELD | VACANCY_FIELD | EPOCH_FIELD == u64::MAX);
};

/// A decoded lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockWord(pub u64);

impl LockWord {
    /// The initial word of a freshly created node: unlocked, no max key,
    /// every group marked as having empty entries.
    pub fn initial(groups: usize) -> Self {
        let mut w = LockWord(0);
        w = w.with_argmax(ARGMAX_NONE);
        for g in 0..groups {
            w = w.with_vacancy_bit(g, true);
        }
        w
    }

    /// Whether the lock bit is set.
    pub fn locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// Returns the word with the lock bit set/cleared.
    pub fn with_locked(self, on: bool) -> Self {
        if on {
            LockWord(self.0 | LOCK_BIT)
        } else {
            LockWord(self.0 & !LOCK_BIT)
        }
    }

    /// The `argmax_keys` field.
    pub fn argmax(self) -> u16 {
        ((self.0 >> ARGMAX_SHIFT) & ARGMAX_MASK) as u16
    }

    /// Returns the word with `argmax_keys` replaced.
    pub fn with_argmax(self, v: u16) -> Self {
        assert!(v as u64 <= ARGMAX_MASK);
        LockWord((self.0 & !(ARGMAX_MASK << ARGMAX_SHIFT)) | ((v as u64) << ARGMAX_SHIFT))
    }

    /// Whether vacancy group `g` is marked as having an empty entry.
    pub fn vacancy_bit(self, g: usize) -> bool {
        assert!(g < VACANCY_BITS);
        self.0 & (1u64 << (VACANCY_SHIFT as usize + g)) != 0
    }

    /// Returns the word with vacancy bit `g` set/cleared.
    pub fn with_vacancy_bit(self, g: usize, on: bool) -> Self {
        assert!(g < VACANCY_BITS);
        let m = 1u64 << (VACANCY_SHIFT as usize + g);
        if on {
            LockWord(self.0 | m)
        } else {
            LockWord(self.0 & !m)
        }
    }

    /// The lease epoch.
    pub fn epoch(self) -> u8 {
        ((self.0 >> EPOCH_SHIFT) & EPOCH_MASK) as u8
    }

    /// Returns the word with the lease epoch replaced.
    pub fn with_epoch(self, e: u8) -> Self {
        LockWord((self.0 & !(EPOCH_MASK << EPOCH_SHIFT)) | ((e as u64) << EPOCH_SHIFT))
    }

    /// The word a reclaimer installs when it presumes the holder dead:
    /// identical to the observed stale word (lock still held, vacancy and
    /// argmax untouched) with the lease epoch bumped by one (wrapping).
    ///
    /// Installing it with a full-word CAS against the observed value makes
    /// the takeover race-free among reclaimers: a second reclaimer's CAS
    /// fails because the epoch moved, and a normal release in the window
    /// fails the compare because the lock bit cleared.
    pub fn reclaimed(self) -> Self {
        debug_assert!(self.locked(), "only a locked word can be reclaimed");
        self.with_epoch(self.epoch().wrapping_add(1))
    }
}

/// Mapping between entry indices and vacancy-bitmap groups.
#[derive(Debug, Clone, Copy)]
pub struct VacancyMap {
    span: usize,
    group_size: usize,
}

impl VacancyMap {
    /// Creates the mapping for a table of `span` entries.
    pub fn new(span: usize) -> Self {
        assert!(span > 0 && span <= 1023, "argmax field limits span to 1023");
        VacancyMap {
            span,
            group_size: span.div_ceil(VACANCY_BITS),
        }
    }

    /// Entries per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups in use.
    pub fn groups(&self) -> usize {
        self.span.div_ceil(self.group_size)
    }

    /// Group of entry `i`.
    pub fn group_of(&self, i: usize) -> usize {
        debug_assert!(i < self.span);
        i / self.group_size
    }

    /// Inclusive entry range `[start, end]` of group `g`.
    pub fn group_range(&self, g: usize) -> (usize, usize) {
        debug_assert!(g < self.groups());
        let start = g * self.group_size;
        (start, (start + self.group_size - 1).min(self.span - 1))
    }

    /// First group, scanning cyclically from the group of `from`, whose
    /// vacancy bit is set. Returns `None` when the node is full.
    pub fn first_vacant_group(&self, word: LockWord, from: usize) -> Option<usize> {
        let g0 = self.group_of(from);
        let n = self.groups();
        (0..n)
            .map(|d| (g0 + d) % n)
            .find(|&g| word.vacancy_bit(g))
    }

    /// Recomputes the vacancy bit of each group overlapping cyclic entry
    /// range `[a, e]` from an occupancy oracle, returning the updated word.
    ///
    /// The caller guarantees it knows the true occupancy of every entry in
    /// those groups (hop-range reads are group-aligned for this reason).
    pub fn recompute(
        &self,
        mut word: LockWord,
        a: usize,
        e: usize,
        mut occupied: impl FnMut(usize) -> bool,
    ) -> LockWord {
        let mut g = self.group_of(a);
        let last_g = self.group_of(e);
        loop {
            let (s, t) = self.group_range(g);
            let any_empty = (s..=t).any(|i| !occupied(i));
            word = word.with_vacancy_bit(g, any_empty);
            if g == last_g {
                break;
            }
            g = (g + 1) % self.groups();
        }
        word
    }

    /// Rounds cyclic range `[a, e]` outward to group boundaries.
    pub fn align_to_groups(&self, a: usize, e: usize) -> (usize, usize) {
        let (s, _) = self.group_range(self.group_of(a));
        let (_, t) = self.group_range(self.group_of(e));
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_bit_roundtrip() {
        let w = LockWord(0);
        assert!(!w.locked());
        assert!(w.with_locked(true).locked());
        assert!(!w.with_locked(true).with_locked(false).locked());
    }

    #[test]
    fn argmax_roundtrip_and_isolation() {
        let w = LockWord(0).with_locked(true).with_argmax(513);
        assert_eq!(w.argmax(), 513);
        assert!(w.locked());
        let w2 = w.with_argmax(ARGMAX_NONE);
        assert_eq!(w2.argmax(), ARGMAX_NONE);
        assert!(w2.locked());
    }

    #[test]
    fn vacancy_bits_roundtrip() {
        let mut w = LockWord(0);
        w = w.with_vacancy_bit(0, true).with_vacancy_bit(44, true);
        assert!(w.vacancy_bit(0));
        assert!(w.vacancy_bit(44));
        assert!(!w.vacancy_bit(1));
        w = w.with_vacancy_bit(44, false);
        assert!(!w.vacancy_bit(44));
    }

    #[test]
    fn initial_word_all_vacant() {
        let vm = VacancyMap::new(64);
        let w = LockWord::initial(vm.groups());
        assert!(!w.locked());
        assert_eq!(w.argmax(), ARGMAX_NONE);
        for g in 0..vm.groups() {
            assert!(w.vacancy_bit(g));
        }
    }

    #[test]
    fn group_mapping_span_64() {
        let vm = VacancyMap::new(64);
        assert_eq!(vm.group_size(), 2);
        assert_eq!(vm.groups(), 32);
        assert_eq!(vm.group_of(0), 0);
        assert_eq!(vm.group_of(63), 31);
        assert_eq!(vm.group_range(31), (62, 63));
    }

    #[test]
    fn group_mapping_small_span() {
        let vm = VacancyMap::new(16);
        assert_eq!(vm.group_size(), 1);
        assert_eq!(vm.groups(), 16);
    }

    #[test]
    fn group_mapping_large_span() {
        let vm = VacancyMap::new(512);
        assert_eq!(vm.group_size(), 12);
        assert_eq!(vm.groups(), 43);
        assert_eq!(vm.group_range(42), (504, 511));
    }

    #[test]
    fn group_mapping_max_span_fits_bitmap() {
        let vm = VacancyMap::new(1023);
        assert!(vm.groups() <= VACANCY_BITS);
        assert_eq!(vm.group_range(vm.groups() - 1).1, 1022);
    }

    #[test]
    fn first_vacant_group_scans_cyclically() {
        let vm = VacancyMap::new(64);
        let mut w = LockWord(0);
        w = w.with_vacancy_bit(3, true);
        // From entry 60 (group 30), the scan wraps to group 3.
        assert_eq!(vm.first_vacant_group(w, 60), Some(3));
        assert_eq!(vm.first_vacant_group(LockWord(0), 0), None);
    }

    #[test]
    fn recompute_updates_only_touched_groups() {
        let vm = VacancyMap::new(64);
        let w = LockWord::initial(vm.groups());
        // Entries 4..=7 (groups 2, 3) are now full.
        let w2 = vm.recompute(w, 4, 7, |i| (4..=7).contains(&i));
        assert!(!w2.vacancy_bit(2));
        assert!(!w2.vacancy_bit(3));
        assert!(w2.vacancy_bit(1));
        assert!(w2.vacancy_bit(4));
    }

    #[test]
    fn recompute_wraps() {
        let vm = VacancyMap::new(64);
        let w = LockWord::initial(vm.groups());
        // Cyclic range [62, 1] covers groups 31 and 0.
        let w2 = vm.recompute(w, 62, 1, |_| true);
        assert!(!w2.vacancy_bit(31));
        assert!(!w2.vacancy_bit(0));
        assert!(w2.vacancy_bit(1));
    }

    #[test]
    fn align_to_groups_rounds_outward() {
        let vm = VacancyMap::new(64);
        assert_eq!(vm.align_to_groups(5, 8), (4, 9));
        assert_eq!(vm.align_to_groups(4, 9), (4, 9));
    }

    #[test]
    fn lease_pack_unpack_roundtrip() {
        // All four fields coexist without bleeding into each other.
        let mut w = LockWord(0)
            .with_locked(true)
            .with_argmax(777)
            .with_epoch(0xAB);
        for g in [0usize, 7, 20, 44] {
            w = w.with_vacancy_bit(g, true);
        }
        assert!(w.locked());
        assert_eq!(w.argmax(), 777);
        assert_eq!(w.epoch(), 0xAB);
        for g in 0..VACANCY_BITS {
            assert_eq!(w.vacancy_bit(g), matches!(g, 0 | 7 | 20 | 44), "bit {g}");
        }
        // Clearing each field leaves the others intact.
        let w2 = w.with_locked(false).with_argmax(0).with_epoch(0);
        for g in 0..VACANCY_BITS {
            assert_eq!(w2.vacancy_bit(g), matches!(g, 0 | 7 | 20 | 44));
        }
    }

    #[test]
    fn epoch_wraps_around() {
        let w = LockWord(0).with_locked(true).with_epoch(0xFF);
        let r = w.reclaimed();
        assert_eq!(r.epoch(), 0);
        assert!(r.locked());
        assert_eq!(r.with_epoch(w.epoch()), w);
    }

    #[test]
    fn reclaim_preserves_vacancy_and_argmax() {
        let w = LockWord::initial(VacancyMap::new(64).groups())
            .with_locked(true)
            .with_argmax(13)
            .with_vacancy_bit(5, false);
        let r = w.reclaimed();
        assert_eq!(r.epoch(), w.epoch().wrapping_add(1));
        assert!(r.locked());
        assert_eq!(r.argmax(), 13);
        for g in 0..VACANCY_BITS {
            assert_eq!(r.vacancy_bit(g), w.vacancy_bit(g));
        }
    }

    #[test]
    fn epoch_sits_outside_lock_acquisition_mask() {
        // The lock is acquired with masked_cas(compare=0, cmask=1, swap=1,
        // smask=1). Epoch bits must neither fail that compare nor be
        // clobbered by the swap, so piggybacked vacancy delivery keeps
        // working across reclaims.
        let before = LockWord(0).with_epoch(0x5C).with_vacancy_bit(3, true);
        let cmask = 1u64;
        assert_eq!(before.0 & cmask, 0, "epoch bits must not look locked");
        let after = LockWord((before.0 & !cmask) | 1);
        assert_eq!(after.epoch(), 0x5C);
        assert!(after.vacancy_bit(3));
        assert!(after.locked());
    }
}
