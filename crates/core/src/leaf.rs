//! Remote operations on hopscotch leaf nodes.
//!
//! This module turns the geometric layout of [`crate::layout::LeafLayout`]
//! into verb sequences: neighborhood reads with the full three-level
//! optimistic validation (NV / EV / reused hopscotch bitmaps), speculative
//! single-entry reads, lock acquisition with vacancy-bitmap piggybacking,
//! group-aligned hop-range reads, minimal dirty-range write-back, and
//! whole-node reads/writes for splits and sibling chases.

use dmem::hash::home_entry;
use dmem::versioned::{bump, ev, pack_ver, Fetched};
use dmem::{Endpoint, GlobalAddr};

use crate::backoff::Backoff;
use crate::hopscotch::{cyc_dist, Window};
use crate::layout::{entry_field, replica_field, LeafLayout};
use crate::lockword::{LockWord, VacancyMap, ARGMAX_NONE};

/// Crash-point label hit immediately after a leaf lock is acquired (the
/// moment a dying client leaves a stale lock behind).
pub const CRASH_LEAF_LOCKED: &str = "leaf.lock.acquired";

/// Crash-point label hit just before a locked mutation publishes its write
/// batch (content + unlock): a crash here leaves the node content untouched
/// but the lock stale.
pub const CRASH_LEAF_WRITE_BACK: &str = "leaf.write_back";

/// Leaf metadata carried by every replica (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafMeta {
    /// Right sibling leaf.
    pub sibling: GlobalAddr,
    /// Deleted-state flag.
    pub valid: bool,
    /// Fence keys (present only when sibling validation is disabled).
    pub fences: Option<(u64, u64)>,
}

/// Outcome of a validated neighborhood read.
#[derive(Debug)]
pub struct NbhRead {
    /// Leaf metadata from the covered replica.
    pub meta: LeafMeta,
    /// `(entry index, value)` when the key was found.
    pub found: Option<(usize, Vec<u8>)>,
}

/// A consistent whole-leaf snapshot.
#[derive(Debug)]
pub struct LeafSnapshot {
    /// Per-entry keys (0 = empty).
    pub keys: Vec<u64>,
    /// Per-entry values.
    pub values: Vec<Vec<u8>>,
    /// Per-entry hopscotch bitmaps.
    pub bitmaps: Vec<u16>,
    /// Per-entry entry-level versions.
    pub evs: Vec<u8>,
    /// Node-level version.
    pub nv: u8,
    /// Leaf metadata.
    pub meta: LeafMeta,
}

impl LeafSnapshot {
    /// Looks `key` up via its home entry's bitmap.
    pub fn find(&self, key: u64, h: usize) -> Option<(usize, &[u8])> {
        let span = self.keys.len();
        let home = home_entry(key, span);
        let bm = self.bitmaps[home];
        (0..h)
            .filter(|&d| bm & (1 << d) != 0)
            .map(|d| (home + d) % span)
            .find(|&p| self.keys[p] == key)
            .map(|p| (p, &self.values[p][..]))
    }

    /// The maximum stored key, if any.
    pub fn max_key(&self) -> Option<u64> {
        self.keys.iter().copied().filter(|&k| k != 0).max()
    }

    /// Entry index of the maximum key (`ARGMAX_NONE` when empty).
    pub fn argmax(&self) -> u16 {
        self.keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k != 0)
            .max_by_key(|(_, &k)| k)
            .map(|(i, _)| i as u16)
            .unwrap_or(ARGMAX_NONE)
    }

    /// All `(key, value)` items, unsorted.
    pub fn items(&self) -> Vec<(u64, Vec<u8>)> {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != 0)
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Converts the snapshot into a full-span hopscotch window.
    pub fn into_window(self, h: usize) -> (Window, Vec<u8>) {
        let span = self.keys.len();
        let mut w = Window::new(span, h, 0, span);
        for i in 0..span {
            w.set_slot(i, self.keys[i], self.values[i].clone(), self.bitmaps[i]);
        }
        (w, self.evs)
    }
}

/// A window read performed while holding the node lock.
#[derive(Debug)]
pub struct LockedRead {
    /// The covered entries as a mutable hopscotch window.
    pub w: Window,
    /// Per-entry EVs, window-relative.
    pub evs: Vec<u8>,
    /// Node-level version.
    pub nv: u8,
    /// Leaf metadata from a covered replica.
    pub meta: LeafMeta,
    /// Value of the node's maximum key (`None` when the node is empty),
    /// fetched via the lock word's `argmax_keys` in the same doorbell.
    pub max_key: Option<u64>,
}

/// Remote leaf operations for one leaf geometry.
#[derive(Debug, Clone, Copy)]
pub struct LeafOps {
    /// Node geometry.
    pub layout: LeafLayout,
    /// Vacancy-group mapping.
    pub vm: VacancyMap,
    /// Consecutive failed lock-CAS attempts observing an identical locked
    /// word before the waiter reclaims the lock via the lease epoch
    /// (0 = never reclaim). See [`crate::config::ChimeConfig::lock_lease_spins`].
    pub lease_spins: u32,
}

/// Which object a logical payload offset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Object {
    Replica(usize),
    Entry(usize),
}

impl LeafOps {
    /// Creates the ops for `layout` (lock reclamation disabled).
    pub fn new(layout: LeafLayout) -> Self {
        LeafOps {
            layout,
            vm: VacancyMap::new(layout.span),
            lease_spins: 0,
        }
    }

    /// Returns the ops with stale-lock reclamation after `spins` identical
    /// observations of a locked word (0 disables it).
    pub fn with_lease_spins(mut self, spins: u32) -> Self {
        self.lease_spins = spins;
        self
    }

    fn object_at(&self, l: usize) -> Object {
        let e = self.layout.entry_size();
        let r = self.layout.replica_size();
        if self.layout.replication {
            let block = r + self.layout.h * e;
            let b = l / block;
            let within = l % block;
            if within < r {
                Object::Replica(b)
            } else {
                Object::Entry(b * self.layout.h + (within - r) / e)
            }
        } else if l < r {
            Object::Replica(0)
        } else {
            Object::Entry((l - r) / e)
        }
    }

    // ----- parsing ---------------------------------------------------------

    fn parse_meta(&self, fetch: &Fetched, replica_off: usize) -> LeafMeta {
        LeafMeta {
            sibling: GlobalAddr::from_raw(fetch.u64_at(replica_off + replica_field::SIBLING)),
            valid: fetch.get(replica_off + replica_field::VALID) != 0,
            fences: self.layout.fences.then(|| {
                (
                    fetch.u64_at(replica_off + replica_field::FENCE_LOW),
                    fetch.u64_at(replica_off + replica_field::FENCE_LOW + self.layout.key_size),
                )
            }),
        }
    }

    fn entry_key(&self, fetch: &Fetched, i: usize) -> u64 {
        fetch.u64_at(self.layout.entry_off(i) + entry_field::KEY)
    }

    fn entry_bitmap(&self, fetch: &Fetched, i: usize) -> u16 {
        fetch.u16_at(self.layout.entry_off(i) + entry_field::BITMAP)
    }

    fn entry_value(&self, fetch: &Fetched, i: usize) -> Vec<u8> {
        let off = self.layout.entry_off(i) + entry_field::KEY + self.layout.key_size;
        fetch.copy(off, self.layout.value_size)
    }

    fn entry_ev(&self, fetch: &Fetched, i: usize) -> u8 {
        ev(fetch.get(self.layout.entry_off(i)))
    }

    /// Serializes one entry into its logical bytes.
    fn entry_bytes(&self, nv: u8, entry_ev: u8, bitmap: u16, key: u64, value: &[u8]) -> Vec<u8> {
        let mut b = vec![0u8; self.layout.entry_size()];
        b[entry_field::VER] = pack_ver(nv, entry_ev);
        b[entry_field::BITMAP..entry_field::BITMAP + 2].copy_from_slice(&bitmap.to_le_bytes());
        b[entry_field::KEY..entry_field::KEY + 8].copy_from_slice(&key.to_le_bytes());
        let voff = entry_field::KEY + self.layout.key_size;
        b[voff..voff + value.len().min(self.layout.value_size)]
            .copy_from_slice(&value[..value.len().min(self.layout.value_size)]);
        b
    }

    fn replica_bytes(&self, nv: u8, meta: &LeafMeta) -> Vec<u8> {
        let mut b = vec![0u8; self.layout.replica_size()];
        b[replica_field::VER] = pack_ver(nv, 0);
        b[replica_field::SIBLING..replica_field::SIBLING + 8]
            .copy_from_slice(&meta.sibling.raw().to_le_bytes());
        b[replica_field::VALID] = meta.valid as u8;
        if let Some((lo, hi)) = meta.fences {
            assert!(self.layout.fences);
            let o = replica_field::FENCE_LOW;
            b[o..o + 8].copy_from_slice(&lo.to_le_bytes());
            let o = o + self.layout.key_size;
            b[o..o + 8].copy_from_slice(&hi.to_le_bytes());
        }
        b
    }

    /// Entries fully covered by logical `[a, b)`.
    fn entries_in(&self, a: usize, b: usize) -> Vec<usize> {
        (0..self.layout.span)
            .filter(|&i| {
                let off = self.layout.entry_off(i);
                off >= a && off + self.layout.entry_size() <= b
            })
            .collect()
    }

    /// Checks NV uniformity across all fetched pieces; returns the NV.
    fn check_all_nv(&self, pieces: &[Fetched]) -> Option<u8> {
        let mut expect = None;
        for p in pieces {
            let mut leads: Vec<usize> = self
                .entries_in(p.lstart(), p.lend())
                .iter()
                .map(|&i| self.layout.entry_off(i))
                .collect();
            for b in self.layout.replicas_in(p.lstart(), p.lend()) {
                leads.push(self.layout.replica_off(b));
            }
            let nv = p.check_nv(&leads)?;
            match expect {
                None => expect = Some(nv),
                Some(e) if e != nv => return None,
                _ => {}
            }
        }
        expect
    }

    /// Checks EV consistency of every entry covered by every piece.
    fn check_all_ev(&self, pieces: &[Fetched]) -> bool {
        pieces.iter().all(|p| {
            self.entries_in(p.lstart(), p.lend()).iter().all(|&i| {
                let off = self.layout.entry_off(i);
                p.check_ev(off, off + self.layout.entry_size())
            })
        })
    }

    /// Finds the piece covering entry `i`.
    fn piece_for<'a>(&self, pieces: &'a [Fetched], i: usize) -> &'a Fetched {
        let off = self.layout.entry_off(i);
        pieces
            .iter()
            .find(|p| off >= p.lstart() && off + self.layout.entry_size() <= p.lend())
            .expect("entry not covered by fetch")
    }

    /// First covered replica across pieces.
    fn meta_from(&self, pieces: &[Fetched]) -> Option<LeafMeta> {
        for p in pieces {
            if let Some(&b) = self.layout.replicas_in(p.lstart(), p.lend()).first() {
                return Some(self.parse_meta(p, self.layout.replica_off(b)));
            }
        }
        None
    }

    // ----- lock-free reads -------------------------------------------------

    /// Validated neighborhood read for `key` (the paper's search fast path).
    ///
    /// Retries internally on torn reads or observed intermediate hop states
    /// (third-level bitmap check).
    pub fn read_neighborhood(&self, ep: &mut Endpoint, addr: GlobalAddr, key: u64) -> NbhRead {
        let span = self.layout.span;
        let h = self.layout.h;
        let home = home_entry(key, span);
        let mut ranges = self.layout.neighborhood_ranges(home);
        if !self.layout.replication {
            // Dedicated leaf-metadata access (Fig. 4b), same doorbell.
            ranges.push((0, self.layout.replica_size()));
        }
        let mut spins = 0u32;
        let mut backoff = Backoff::new(ep.client_id() as u64 ^ addr.raw());
        loop {
            spins += 1;
            assert!(spins < 1_000_000, "neighborhood read livelock at {addr:?}");
            let pieces = self.layout.versioned().fetch_many(ep, addr, &ranges);
            if self.check_all_nv(&pieces).is_none() || !self.check_all_ev(&pieces) {
                ep.note_torn_read();
                backoff.wait(ep);
                continue;
            }
            let meta = self.meta_from(&pieces).expect("no replica covered");
            // Third level: reconstruct the home bitmap from actual keys.
            let hp = self.piece_for(&pieces, home);
            let bm = self.entry_bitmap(hp, home);
            let mut consistent = true;
            let mut found = None;
            for d in 0..h {
                if bm & (1 << d) == 0 {
                    continue;
                }
                let pos = (home + d) % span;
                let p = self.piece_for(&pieces, pos);
                let k = self.entry_key(p, pos);
                if k == 0 || home_entry(k, span) != home {
                    consistent = false;
                    break;
                }
                if k == key {
                    found = Some((pos, self.entry_value(p, pos)));
                }
            }
            if !consistent {
                ep.note_torn_read();
                backoff.wait(ep);
                continue;
            }
            return NbhRead { meta, found };
        }
    }

    /// Speculative single-entry read (§4.3). Returns the value if the entry
    /// is EV-consistent and holds `key`; `None` sends the caller down the
    /// normal neighborhood path.
    pub fn spec_read(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        idx: usize,
        key: u64,
    ) -> Option<Vec<u8>> {
        let off = self.layout.entry_off(idx);
        for _ in 0..3 {
            let f =
                self.layout
                    .versioned()
                    .fetch(ep, addr, off, off + self.layout.entry_size());
            if !f.check_ev(off, off + self.layout.entry_size()) {
                ep.note_torn_read();
                continue;
            }
            if self.entry_key(&f, idx) == key {
                return Some(self.entry_value(&f, idx));
            }
            return None;
        }
        None
    }

    /// Whole-leaf read with full validation (chases, scans).
    pub fn read_full(&self, ep: &mut Endpoint, addr: GlobalAddr) -> LeafSnapshot {
        let mut spins = 0u32;
        let mut backoff = Backoff::new(ep.client_id() as u64 ^ addr.raw());
        loop {
            spins += 1;
            assert!(spins < 1_000_000, "full leaf read livelock at {addr:?}");
            let pieces = self
                .layout
                .versioned()
                .fetch_many(ep, addr, &[(0, self.layout.payload_len())]);
            if let Some(nv) = self.check_all_nv(&pieces) {
                if self.check_all_ev(&pieces) {
                    let snap = self.snapshot_from(&pieces[0], nv);
                    if self.bitmaps_consistent(&snap) {
                        return snap;
                    }
                }
            }
            ep.note_torn_read();
            backoff.wait(ep);
        }
    }

    /// Whole-leaf reads of several nodes with one doorbell batch per round;
    /// torn leaves are re-fetched in follow-up rounds (scans).
    pub fn read_full_batch(&self, ep: &mut Endpoint, addrs: &[GlobalAddr]) -> Vec<LeafSnapshot> {
        let n = addrs.len();
        let mut out: Vec<Option<LeafSnapshot>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut spins = 0u32;
        let mut backoff = Backoff::new(ep.client_id() as u64 ^ n as u64);
        while !pending.is_empty() {
            spins += 1;
            assert!(spins < 1_000_000, "batched leaf read livelock");
            if spins > 1 {
                backoff.wait(ep);
            }
            // One READ per pending leaf, all in one doorbell batch.
            let full = (0usize, self.layout.payload_len());
            let mut bufs: Vec<Vec<Fetched>> = Vec::with_capacity(pending.len());
            {
                // fetch_many targets a single node; issue per-node fetches
                // but charge one round-trip by batching at the verb layer.
                let layout = self.layout.versioned();
                let mut raw: Vec<(GlobalAddr, Vec<u8>)> = pending
                    .iter()
                    .map(|&i| {
                        let ps = layout.phys_start(full.0);
                        let pe = layout.phys_of(full.1 - 1) + 1;
                        (addrs[i].add(ps as u64), vec![0u8; pe - ps])
                    })
                    .collect();
                {
                    let mut reqs: Vec<(GlobalAddr, &mut [u8])> = raw
                        .iter_mut()
                        .map(|(a, b)| (*a, &mut b[..]))
                        .collect();
                    ep.read_batch(&mut reqs);
                }
                for (_, buf) in raw {
                    bufs.push(vec![layout.from_raw(full.0, full.1, buf)]);
                }
            }
            let mut still = Vec::new();
            for (slot, pieces) in pending.iter().zip(bufs.iter()) {
                let ok = self.check_all_nv(pieces).is_some() && self.check_all_ev(pieces);
                if ok {
                    let nv = self.check_all_nv(pieces).unwrap();
                    let snap = self.snapshot_from(&pieces[0], nv);
                    if self.bitmaps_consistent(&snap) {
                        out[*slot] = Some(snap);
                        continue;
                    }
                }
                ep.note_torn_read();
                still.push(*slot);
            }
            pending = still;
        }
        out.into_iter().map(|s| s.unwrap()).collect()
    }

    fn snapshot_from(&self, f: &Fetched, nv: u8) -> LeafSnapshot {
        let span = self.layout.span;
        let mut snap = LeafSnapshot {
            keys: Vec::with_capacity(span),
            values: Vec::with_capacity(span),
            bitmaps: Vec::with_capacity(span),
            evs: Vec::with_capacity(span),
            nv,
            meta: self.parse_meta(f, self.layout.replica_off(0)),
        };
        for i in 0..span {
            snap.keys.push(self.entry_key(f, i));
            snap.values.push(self.entry_value(f, i));
            snap.bitmaps.push(self.entry_bitmap(f, i));
            snap.evs.push(self.entry_ev(f, i));
        }
        snap
    }

    /// Full bitmap/occupancy cross-check of a snapshot.
    fn bitmaps_consistent(&self, s: &LeafSnapshot) -> bool {
        let span = self.layout.span;
        // Every claimed slot holds a key homed there...
        for i in 0..span {
            for d in 0..16 {
                if s.bitmaps[i] & (1 << d) != 0 {
                    let pos = (i + d) % span;
                    if s.keys[pos] == 0 || home_entry(s.keys[pos], span) != i {
                        return false;
                    }
                }
            }
        }
        // ...and every key is claimed by its home.
        for (pos, &k) in s.keys.iter().enumerate() {
            if k != 0 {
                let hm = home_entry(k, span);
                let d = cyc_dist(hm, pos, span);
                if d >= 16 || s.bitmaps[hm] & (1 << d) == 0 {
                    return false;
                }
            }
        }
        true
    }

    // ----- locking ---------------------------------------------------------

    /// Acquires the lock word at `lock_addr`, counting retries, backing off
    /// exponentially and — when `lease_spins > 0` — reclaiming a stale lock
    /// whose word stayed bit-identical across that many failed attempts:
    /// the holder is presumed dead and a full-word CAS bumps the lease
    /// epoch while keeping the lock bit set, transferring ownership to us.
    fn acquire(&self, ep: &mut Endpoint, addr: GlobalAddr, lock_addr: GlobalAddr) -> LockWord {
        let mut spins = 0u32;
        let mut backoff = Backoff::new(ep.client_id() as u64 ^ lock_addr.raw());
        let mut observed = 0u64;
        let mut unchanged = 0u32;
        loop {
            let old = ep.masked_cas(lock_addr, 0, 1, 1, 1);
            if old & 1 == 0 {
                ep.crash_point(CRASH_LEAF_LOCKED);
                return LockWord(old);
            }
            ep.note_lock_retry();
            if self.lease_spins > 0 {
                if old == observed {
                    unchanged += 1;
                } else {
                    observed = old;
                    unchanged = 0;
                }
                if unchanged >= self.lease_spins {
                    // A live holder would have released (or at least changed
                    // the word) by now; take over. The full-word compare
                    // makes the takeover race-free: a concurrent release
                    // clears the lock bit, a concurrent reclaimer bumps the
                    // epoch — either way our CAS fails harmlessly.
                    let next = LockWord(old).reclaimed();
                    if ep.cas(lock_addr, old, next.0) == old {
                        ep.note_stale_lock_reclaimed();
                        ep.crash_point(CRASH_LEAF_LOCKED);
                        return next;
                    }
                    unchanged = 0;
                }
            }
            spins += 1;
            backoff.wait(ep);
            assert!(spins < 10_000_000, "leaf lock livelock at {addr:?}");
        }
    }

    /// Acquires the leaf lock, returning the piggybacked lock word
    /// (vacancy bitmap + argmax). With piggybacking disabled this costs an
    /// extra READ for the separate vacancy word.
    pub fn lock(&self, ep: &mut Endpoint, addr: GlobalAddr) -> LockWord {
        let lock_addr = addr.add(self.layout.lock_off() as u64);
        let word = self.acquire(ep, addr, lock_addr);
        if self.layout.piggyback {
            return word;
        }
        // Dedicated vacancy-bitmap access (Fig. 4a).
        let mut b = [0u8; 8];
        ep.read(addr.add(self.layout.vacancy_off() as u64), &mut b);
        LockWord(u64::from_le_bytes(b))
    }

    /// The WRITEs releasing the lock and persisting `word` (vacancy +
    /// argmax, lock bit cleared), to append to a write batch.
    pub fn unlock_writes(&self, addr: GlobalAddr, word: LockWord) -> Vec<(GlobalAddr, Vec<u8>)> {
        let word = word.with_locked(false);
        let lock_addr = addr.add(self.layout.lock_off() as u64);
        if self.layout.piggyback {
            vec![(lock_addr, word.0.to_le_bytes().to_vec())]
        } else {
            // One contiguous 16-byte write covers lock + vacancy word.
            let mut b = Vec::with_capacity(16);
            b.extend_from_slice(&0u64.to_le_bytes());
            b.extend_from_slice(&word.0.to_le_bytes());
            vec![(lock_addr, b)]
        }
    }

    /// Acquires the leaf lock without fetching any vacancy metadata
    /// (the no-piggyback baseline locks and then reads the whole node).
    pub fn lock_plain(&self, ep: &mut Endpoint, addr: GlobalAddr) -> LockWord {
        let lock_addr = addr.add(self.layout.lock_off() as u64);
        self.acquire(ep, addr, lock_addr)
    }

    /// Releases the lock immediately (abort paths).
    pub fn unlock(&self, ep: &mut Endpoint, addr: GlobalAddr, word: LockWord) {
        let writes = self.unlock_writes(addr, word);
        let refs: Vec<(GlobalAddr, &[u8])> = writes.iter().map(|(a, b)| (*a, &b[..])).collect();
        ep.write_batch(&refs);
    }

    // ----- hop-range access (under lock) ------------------------------------

    /// Reads the group-aligned hop window for inserting a key with home
    /// entry `home`, given the piggybacked lock word. The window covers the
    /// hop candidates before `home`, the whole neighborhood (duplicate
    /// check) and everything up to the end of the first vacant group; the
    /// argmax entry rides along in the same doorbell batch. Returns `None`
    /// when the vacancy bitmap shows a full node.
    pub fn read_hop_window(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        home: usize,
        word: LockWord,
    ) -> Option<LockedRead> {
        let span = self.layout.span;
        let h = self.layout.h;
        let g = self.vm.first_vacant_group(word, home)?;
        let a0 = (home + span - (h - 1)) % span;
        let (_, ge) = self.vm.group_range(g);
        // Forward distance from home to the vacant group's end; always cover
        // the whole neighborhood (duplicate check).
        let d_e = cyc_dist(home, ge, span).max(h - 1);
        // Entries from a0 forward through the vacant group, plus group
        // alignment slack. If that wraps onto itself, read the whole table.
        let needed = (h - 1) + d_e + 1 + 2 * (self.vm.group_size() - 1);
        let (a, e) = if needed >= span {
            (0, span - 1)
        } else {
            self.vm.align_to_groups(a0, (home + d_e) % span)
        };
        Some(self.locked_read(ep, addr, a, e, word))
    }

    /// Reads the neighborhood window of `home` under the lock (updates and
    /// deletes), argmax entry included.
    pub fn read_nbh_window(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        home: usize,
        word: LockWord,
    ) -> LockedRead {
        let span = self.layout.span;
        let e = (home + self.layout.h - 1) % span;
        self.locked_read(ep, addr, home, e, word)
    }

    /// Reads the whole node under the lock (delete-of-max, split prep).
    pub fn read_full_locked(&self, ep: &mut Endpoint, addr: GlobalAddr, word: LockWord) -> LockedRead {
        self.locked_read(ep, addr, 0, self.layout.span - 1, word)
    }

    /// Reads cyclic entries `[a, e]` plus the argmax entry into a window
    /// (under lock; one doorbell batch).
    pub fn locked_read(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        a: usize,
        e: usize,
        word: LockWord,
    ) -> LockedRead {
        let span = self.layout.span;
        let mut ranges = self.layout.hop_ranges(a, e);
        if !self.layout.replication && !ranges.iter().any(|&(s, _)| s == 0) {
            // Dedicated leaf-metadata access (replication disabled).
            ranges.push((0, self.layout.replica_size()));
        }
        // Piggyback the argmax entry when it is outside the window.
        let argmax = word.argmax();
        let len = cyc_dist(a, e, span) + 1;
        let argmax_extra = argmax != ARGMAX_NONE
            && cyc_dist(a, argmax as usize % span, span) >= len;
        if argmax_extra {
            let off = self.layout.entry_off(argmax as usize);
            ranges.push((off, off + self.layout.entry_size()));
        }
        let pieces = self.layout.versioned().fetch_many(ep, addr, &ranges);
        // Under the lock no writer races us; the checks are sanity asserts.
        let nv = self
            .check_all_nv(&pieces)
            .expect("locked leaf read observed torn NV");
        assert!(
            self.check_all_ev(&pieces),
            "locked leaf read observed torn EV"
        );
        let meta = self.meta_from(&pieces).expect("no replica in hop range");
        let mut w = Window::new(span, self.layout.h, a, len);
        let mut evs = vec![0u8; len];
        for (r, ev) in evs.iter_mut().enumerate() {
            let i = (a + r) % span;
            let p = self.piece_for(&pieces, i);
            w.set_slot(i, self.entry_key(p, i), self.entry_value(p, i), self.entry_bitmap(p, i));
            *ev = self.entry_ev(p, i);
        }
        let max_key = if len == span {
            // Full-node window: compute the true maximum directly (also
            // covers the no-piggyback mode where argmax is unavailable).
            (0..span)
                .filter(|&i| !w.slot_empty(i))
                .map(|i| w.slot(i).0)
                .max()
        } else if argmax == ARGMAX_NONE {
            None
        } else {
            let i = argmax as usize % span;
            let p = self.piece_for(&pieces, i);
            Some(self.entry_key(p, i))
        };
        LockedRead {
            w,
            evs,
            nv,
            meta,
            max_key,
        }
    }

    /// Writes back the dirty part of a window, updates the lock word
    /// (vacancy + argmax) and releases the lock, all in one doorbell batch.
    ///
    /// Dirty entries get their EV bumped; clean entries inside the covering
    /// range are rewritten byte-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn write_window_and_unlock(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        w: &Window,
        evs: &[u8],
        nv: u8,
        meta: &LeafMeta,
        word: LockWord,
    ) {
        ep.crash_point(CRASH_LEAF_WRITE_BACK);
        let span = self.layout.span;
        let dirty = w.dirty_slots();
        let mut writes: Vec<(GlobalAddr, Vec<u8>)> = Vec::new();
        if !dirty.is_empty() {
            // Contiguous (cyclic) cover of the dirty slots, in window space.
            let rmin = dirty
                .iter()
                .map(|&i| w.rel(i).unwrap())
                .min()
                .unwrap();
            let rmax = dirty
                .iter()
                .map(|&i| w.rel(i).unwrap())
                .max()
                .unwrap();
            let amin = (w.start() + rmin) % span;
            let amax = (w.start() + rmax) % span;
            let dirty_set: std::collections::HashSet<usize> = dirty.iter().copied().collect();
            for (s, t) in cyclic_segments(amin, amax, span) {
                writes.push(self.segment_write(w, evs, nv, meta, &dirty_set, s, t, addr));
            }
        }
        writes.extend(self.unlock_writes(addr, word));
        let refs: Vec<(GlobalAddr, &[u8])> = writes.iter().map(|(a, b)| (*a, &b[..])).collect();
        ep.write_batch(&refs);
    }

    /// Builds the physical write for contiguous entries `[s, t]`.
    #[allow(clippy::too_many_arguments)]
    fn segment_write(
        &self,
        w: &Window,
        evs: &[u8],
        nv: u8,
        meta: &LeafMeta,
        dirty_set: &std::collections::HashSet<usize>,
        s: usize,
        t: usize,
        addr: GlobalAddr,
    ) -> (GlobalAddr, Vec<u8>) {
        let lstart = self.layout.entry_off(s);
        let lend = self.layout.entry_off(t) + self.layout.entry_size();
        let mut data = vec![0u8; lend - lstart];
        let mut entry_ver = vec![0u8; self.layout.span];
        #[allow(clippy::needless_range_loop)] // `i` also drives offsets/slots
        for i in s..=t {
            let off = self.layout.entry_off(i);
            let (key, value, bitmap) = w.slot(i);
            let rel = w.rel(i).unwrap();
            let e = if dirty_set.contains(&i) {
                bump(evs[rel])
            } else {
                evs[rel]
            };
            entry_ver[i] = pack_ver(nv, e);
            let bytes = self.entry_bytes(nv, e, bitmap, key, value);
            data[off - lstart..off - lstart + bytes.len()].copy_from_slice(&bytes);
            // Replica between entries: rewrite identically.
            if self.layout.replication && i > s && i % self.layout.h == 0 {
                let roff = self.layout.replica_off(i / self.layout.h);
                let rb = self.replica_bytes(nv, meta);
                data[roff - lstart..roff - lstart + rb.len()].copy_from_slice(&rb);
            }
        }
        let (pstart, phys) = self.layout.versioned().build_phys(lstart, &data, |p| {
            // Version byte for the line slot guarding logical offset `p`.
            match self.object_at(p.min(self.layout.payload_len() - 1)) {
                Object::Replica(_) => pack_ver(nv, 0),
                Object::Entry(i) if i >= s && i <= t => entry_ver[i],
                Object::Entry(_) => pack_ver(nv, 0),
            }
        });
        (addr.add(pstart as u64), phys)
    }

    // ----- whole-node writes -------------------------------------------------

    /// Serializes a full node image (all replicas + entries) at version
    /// `nv` with zeroed EVs.
    pub fn full_image(&self, w: &Window, nv: u8, meta: &LeafMeta) -> Vec<u8> {
        assert_eq!(w.len(), self.layout.span);
        assert_eq!(w.start(), 0);
        let mut data = vec![0u8; self.layout.payload_len()];
        let nblocks = if self.layout.replication {
            self.layout.span / self.layout.h
        } else {
            1
        };
        for b in 0..nblocks {
            let off = self.layout.replica_off(b);
            let rb = self.replica_bytes(nv, meta);
            data[off..off + rb.len()].copy_from_slice(&rb);
        }
        for i in 0..self.layout.span {
            let off = self.layout.entry_off(i);
            let (key, value, bitmap) = w.slot(i);
            let bytes = self.entry_bytes(nv, 0, bitmap, key, value);
            data[off..off + bytes.len()].copy_from_slice(&bytes);
        }
        data
    }

    /// The lock word describing window `w` (vacancy + argmax), unlocked.
    pub fn word_for(&self, w: &Window) -> LockWord {
        assert_eq!(w.len(), self.layout.span);
        let mut word = LockWord(0);
        for g in 0..self.vm.groups() {
            let (s, t) = self.vm.group_range(g);
            word = word.with_vacancy_bit(g, (s..=t).any(|i| w.slot_empty(i)));
        }
        let argmax = (0..self.layout.span)
            .filter(|&i| !w.slot_empty(i))
            .max_by_key(|&i| w.slot(i).0)
            .map(|i| i as u16)
            .unwrap_or(ARGMAX_NONE);
        word.with_argmax(argmax)
    }

    /// Writes a brand-new leaf (image + lock word); the node is not yet
    /// reachable so plain writes suffice. One round-trip.
    pub fn write_new(&self, ep: &mut Endpoint, addr: GlobalAddr, w: &Window, meta: &LeafMeta) {
        let data = self.full_image(w, 0, meta);
        let (pstart, phys) = self
            .layout
            .versioned()
            .build_phys(0, &data, |_| pack_ver(0, 0));
        let word = self.word_for(w);
        let writes = self.unlock_writes(addr, word);
        let mut batch: Vec<(GlobalAddr, &[u8])> = vec![(addr.add(pstart as u64), &phys)];
        batch.extend(writes.iter().map(|(a, b)| (*a, &b[..])));
        ep.write_batch(&batch);
    }

    /// Rewrites a locked leaf in place (split path): bumps NV everywhere,
    /// updates vacancy/argmax and releases the lock. One round-trip.
    pub fn rewrite_and_unlock(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        w: &Window,
        old_nv: u8,
        meta: &LeafMeta,
    ) {
        ep.crash_point(CRASH_LEAF_WRITE_BACK);
        let nv = bump(old_nv);
        let data = self.full_image(w, nv, meta);
        let (pstart, phys) = self
            .layout
            .versioned()
            .build_phys(0, &data, |_| pack_ver(nv, 0));
        let word = self.word_for(w);
        let writes = self.unlock_writes(addr, word);
        let mut batch: Vec<(GlobalAddr, &[u8])> = vec![(addr.add(pstart as u64), &phys)];
        batch.extend(writes.iter().map(|(a, b)| (*a, &b[..])));
        ep.write_batch(&batch);
    }
}

/// Splits cyclic entry range `[a, e]` into ascending contiguous segments.
fn cyclic_segments(a: usize, e: usize, span: usize) -> Vec<(usize, usize)> {
    if a <= e {
        vec![(a, e)]
    } else {
        vec![(a, span - 1), (0, e)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopscotch::build_table;
    use dmem::node::RESERVED_BYTES;
    use dmem::Pool;

    fn ops() -> LeafOps {
        LeafOps::new(LeafLayout {
            span: 64,
            h: 8,
            key_size: 8,
            value_size: 8,
            replication: true,
            fences: false,
            piggyback: true,
        })
    }

    fn setup() -> (Endpoint, LeafOps, GlobalAddr) {
        let pool = Pool::with_defaults(1, 4 << 20);
        (Endpoint::new(pool), ops(), GlobalAddr::new(0, RESERVED_BYTES))
    }

    fn meta() -> LeafMeta {
        LeafMeta {
            sibling: GlobalAddr::new(0, 0xBEEF00),
            valid: true,
            fences: None,
        }
    }

    fn populated(ep: &mut Endpoint, ops: &LeafOps, addr: GlobalAddr, n: u64) -> Vec<(u64, Vec<u8>)> {
        let items: Vec<(u64, Vec<u8>)> =
            (1..=n).map(|k| (k * 7, (k * 7).to_le_bytes().to_vec())).collect();
        let w = build_table(64, 8, &items).unwrap();
        ops.write_new(ep, addr, &w, &meta());
        items
    }

    #[test]
    fn write_new_then_neighborhood_reads() {
        let (mut ep, ops, addr) = setup();
        let items = populated(&mut ep, &ops, addr, 40);
        for (k, v) in &items {
            let r = ops.read_neighborhood(&mut ep, addr, *k);
            let (_, got) = r.found.expect("key must be found");
            assert_eq!(&got, v);
            assert_eq!(r.meta.sibling.offset(), 0xBEEF00);
            assert!(r.meta.valid);
        }
        // Absent keys miss cleanly.
        assert!(ops.read_neighborhood(&mut ep, addr, 999_999).found.is_none());
    }

    #[test]
    fn full_read_matches_items() {
        let (mut ep, ops, addr) = setup();
        let items = populated(&mut ep, &ops, addr, 40);
        let snap = ops.read_full(&mut ep, addr);
        let mut got = snap.items();
        got.sort();
        let mut want = items.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(snap.max_key(), Some(40 * 7));
        assert_eq!(snap.keys[snap.argmax() as usize], 40 * 7);
    }

    #[test]
    fn lock_piggybacks_vacancy_and_argmax() {
        let (mut ep, ops, addr) = setup();
        populated(&mut ep, &ops, addr, 30);
        let word = ops.lock(&mut ep, addr);
        // 30 of 64 entries used: every group must still report vacancy in
        // aggregate, and argmax must point at the true maximum.
        assert!(ops.vm.first_vacant_group(word, 0).is_some());
        let snap = ops.read_full(&mut ep, addr);
        assert_eq!(word.argmax(), snap.argmax());
        ops.unlock(&mut ep, addr, word);
        // Lock can be re-acquired after release.
        let w2 = ops.lock(&mut ep, addr);
        ops.unlock(&mut ep, addr, w2);
    }

    #[test]
    fn hop_insert_roundtrip() {
        let (mut ep, ops, addr) = setup();
        populated(&mut ep, &ops, addr, 30);
        let key = 424_242u64;
        let home = home_entry(key, 64);
        let word = ops.lock(&mut ep, addr);
        let mut lr = ops
            .read_hop_window(&mut ep, addr, home, word)
            .expect("node not full");
        assert_eq!(lr.max_key, Some(30 * 7), "argmax entry piggybacked");
        let empty = lr.w.first_empty_from(home).expect("space available");
        let pos = lr.w.insert(key, vec![9u8; 8], empty).unwrap();
        let w = &lr.w;
        let new_word = ops
            .vm
            .recompute(word, w.start(), empty, |i| !w.slot_empty(i))
            .with_argmax(if key > lr.max_key.unwrap() {
                pos as u16
            } else {
                word.argmax()
            });
        ops.write_window_and_unlock(&mut ep, addr, &lr.w, &lr.evs, lr.nv, &lr.meta, new_word);
        let r = ops.read_neighborhood(&mut ep, addr, key);
        assert_eq!(r.found.expect("inserted key readable").1, vec![9u8; 8]);
        // All earlier keys are still readable.
        for k in 1..=30u64 {
            assert!(ops.read_neighborhood(&mut ep, addr, k * 7).found.is_some());
        }
    }

    #[test]
    fn spec_read_hit_and_miss() {
        let (mut ep, ops, addr) = setup();
        let items = populated(&mut ep, &ops, addr, 40);
        let (k, v) = &items[3];
        let snap = ops.read_full(&mut ep, addr);
        let (idx, _) = snap.find(*k, 8).unwrap();
        assert_eq!(ops.spec_read(&mut ep, addr, idx, *k), Some(v.clone()));
        // Wrong slot: speculation fails, no false positive.
        let wrong = (idx + 1) % 64;
        assert_eq!(ops.spec_read(&mut ep, addr, wrong, *k), None);
    }

    #[test]
    fn rewrite_bumps_nv_and_preserves_content() {
        let (mut ep, ops, addr) = setup();
        let items = populated(&mut ep, &ops, addr, 20);
        let snap0 = ops.read_full(&mut ep, addr);
        let word = ops.lock(&mut ep, addr);
        let _ = word;
        let (w, _evs) = ops.read_full(&mut ep, addr).into_window(8);
        ops.rewrite_and_unlock(&mut ep, addr, &w, snap0.nv, &meta());
        let snap1 = ops.read_full(&mut ep, addr);
        assert_eq!(snap1.nv, bump(snap0.nv));
        let mut got = snap1.items();
        got.sort();
        let mut want = items;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn no_piggyback_uses_separate_vacancy_word() {
        let pool = Pool::with_defaults(1, 4 << 20);
        let mut ep = Endpoint::new(pool);
        let ops = LeafOps::new(LeafLayout {
            span: 64,
            h: 8,
            key_size: 8,
            value_size: 8,
            replication: true,
            fences: false,
            piggyback: false,
        });
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let items: Vec<(u64, Vec<u8>)> = (1..=10).map(|k| (k, vec![k as u8; 8])).collect();
        let w = build_table(64, 8, &items).unwrap();
        ops.write_new(&mut ep, addr, &w, &meta());
        let r0 = ep.stats().reads;
        let word = ops.lock(&mut ep, addr);
        assert_eq!(ep.stats().reads, r0 + 1, "dedicated vacancy READ");
        assert!(ops.vm.first_vacant_group(word, 0).is_some());
        ops.unlock(&mut ep, addr, word);
    }

    #[test]
    fn cyclic_segment_helper() {
        assert_eq!(cyclic_segments(3, 10, 64), vec![(3, 10)]);
        assert_eq!(cyclic_segments(60, 2, 64), vec![(60, 63), (0, 2)]);
    }
}
