//! CHIME: a cache-efficient and high-performance hybrid range index on
//! disaggregated memory (SOSP'24).
//!
//! CHIME combines B+-tree internal nodes (low compute-side cache
//! consumption) with hopscotch-hashing leaf nodes (low memory-side read
//! amplification), synchronized entirely with one-sided RDMA verbs:
//!
//! * [`hopscotch`] — the hopping algorithm over cyclic leaf windows;
//! * [`layout`] / [`lockword`] — node geometry, the replica scheme and the
//!   vacancy-bitmap / argmax lock word;
//! * [`leaf`] / [`internal`] — remote node operations with three-level
//!   optimistic synchronization;
//! * [`cache`] / [`hotspot`] — compute-side internal-node cache and the
//!   hotness-aware speculative-read buffer;
//! * [`tree`] — the full index: search / insert / update / delete / scan
//!   with node splits, up-propagation and sibling-based validation;
//! * [`backoff`] — bounded exponential backoff with seeded jitter, charged
//!   to the virtual clock, used by every optimistic retry loop;
//! * crash-safe lock recovery — the lock word carries a lease epoch
//!   ([`lockword`]) so survivors can reclaim a dead client's leaf lock
//!   (opt-in via [`config::ChimeConfig::lock_lease_spins`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod config;
pub mod hopscotch;
pub mod hotspot;
pub mod internal;
pub mod layout;
pub mod leaf;
pub mod lockword;
pub mod tree;
pub mod varkey;

pub use config::ChimeConfig;
pub use tree::{Chime, ChimeClient, CnState, TreeBinding};
pub use varkey::{VarKeyClient, VarKeyTree};
