//! Node layouts (Fig. 6 / Fig. 10 of the paper).
//!
//! All offsets below are *logical* (payload-space) offsets; the versioned
//! layout of [`dmem::versioned`] interleaves the physical cache-line version
//! bytes. Each object (header/replica/entry) begins with its own version
//! byte.
//!
//! Leaf node (optimized, Fig. 10): blocks of `[metadata replica][H entries]`
//! so that every neighborhood read covers or abuts a replica, followed by the
//! 8-byte lock word (vacancy bitmap + argmax + lock bit). With metadata
//! replication disabled there is a single header at offset 0. With
//! sibling-based validation disabled the replicas additionally carry fence
//! keys (Fig. 16's comparison).
//!
//! Internal node (Fig. 6): header with level/valid/fence keys/sibling
//! followed by `span` pivot entries and the lock word.

use dmem::versioned::Layout;

/// Geometry of a hopscotch leaf node.
#[derive(Debug, Clone, Copy)]
pub struct LeafLayout {
    /// Entries per node.
    pub span: usize,
    /// Neighborhood size H.
    pub h: usize,
    /// Stored key size in bytes (>= 8; the first 8 hold the `u64` key).
    pub key_size: usize,
    /// Inline value (or indirect pointer) size in bytes.
    pub value_size: usize,
    /// Metadata replicas every H entries (vs a single header).
    pub replication: bool,
    /// Replicas carry fence keys (sibling validation disabled).
    pub fences: bool,
    /// Vacancy bitmap shares the lock word (vs a separate word).
    pub piggyback: bool,
}

impl LeafLayout {
    /// Bytes per entry: version byte, hopscotch bitmap, key, value.
    pub fn entry_size(&self) -> usize {
        1 + 2 + self.key_size + self.value_size
    }

    /// Bytes per metadata replica: version byte, sibling pointer, valid
    /// flag, and (without sibling validation) low/high fence keys.
    pub fn replica_size(&self) -> usize {
        1 + 8 + 1 + if self.fences { 2 * self.key_size } else { 0 }
    }

    fn block_size(&self) -> usize {
        self.replica_size() + self.h * self.entry_size()
    }

    /// Total logical payload bytes.
    pub fn payload_len(&self) -> usize {
        if self.replication {
            (self.span / self.h) * self.block_size()
        } else {
            self.replica_size() + self.span * self.entry_size()
        }
    }

    /// The versioned layout of the payload.
    pub fn versioned(&self) -> Layout {
        Layout::new(self.payload_len())
    }

    /// Physical offset of the 8-byte lock word.
    pub fn lock_off(&self) -> usize {
        self.versioned().lock_offset()
    }

    /// Physical offset of the separate vacancy word (piggybacking off).
    pub fn vacancy_off(&self) -> usize {
        assert!(!self.piggyback);
        self.lock_off() + 8
    }

    /// Total physical node size.
    pub fn node_size(&self) -> usize {
        self.versioned().node_size() + if self.piggyback { 0 } else { 8 }
    }

    /// Logical offset of entry `i`.
    pub fn entry_off(&self, i: usize) -> usize {
        debug_assert!(i < self.span);
        if self.replication {
            (i / self.h) * self.block_size()
                + self.replica_size()
                + (i % self.h) * self.entry_size()
        } else {
            self.replica_size() + i * self.entry_size()
        }
    }

    /// Logical offset of the metadata replica of block `b`.
    pub fn replica_off(&self, b: usize) -> usize {
        if self.replication {
            debug_assert!(b < self.span / self.h);
            b * self.block_size()
        } else {
            debug_assert_eq!(b, 0);
            0
        }
    }

    /// Logical ranges to fetch for a neighborhood read of home entry `home`.
    ///
    /// With replication on, exactly one replica is covered; the ranges are
    /// `[a, b)` pairs, two of them when the neighborhood wraps around the
    /// table (fetched with one doorbell batch).
    pub fn neighborhood_ranges(&self, home: usize) -> Vec<(usize, usize)> {
        debug_assert!(home < self.span);
        let last = home + self.h - 1;
        if last < self.span {
            let start = if self.replication && home.is_multiple_of(self.h) {
                self.replica_off(home / self.h)
            } else {
                self.entry_off(home)
            };
            vec![(start, self.entry_off(last) + self.entry_size())]
        } else {
            // Wrap-around: [home, span) plus [0, last % span].
            vec![
                (
                    self.entry_off(home),
                    self.entry_off(self.span - 1) + self.entry_size(),
                ),
                (
                    self.replica_off(0),
                    self.entry_off(last % self.span) + self.entry_size(),
                ),
            ]
        }
    }

    /// Logical ranges to fetch for a hop-range read covering cyclic entries
    /// `[a, e]` (inclusive). At least one replica is always covered when
    /// replication is on.
    pub fn hop_ranges(&self, a: usize, e: usize) -> Vec<(usize, usize)> {
        debug_assert!(a < self.span && e < self.span);
        let mut segs: Vec<(usize, usize)> = Vec::new();
        if a <= e {
            segs.push((a, e));
        } else {
            segs.push((a, self.span - 1));
            segs.push((0, e));
        }
        segs.iter()
            .map(|&(s, t)| {
                let start = if self.replication && (s % self.h == 0 || s / self.h == t / self.h) {
                    // Same block (no interior replica) or block-aligned:
                    // begin at the block's replica.
                    self.replica_off(s / self.h)
                } else {
                    self.entry_off(s)
                };
                (start, self.entry_off(t) + self.entry_size())
            })
            .collect()
    }

    /// Block indices whose replica is fully covered by logical `[a, b)`.
    pub fn replicas_in(&self, a: usize, b: usize) -> Vec<usize> {
        if !self.replication {
            return if a == 0 { vec![0] } else { vec![] };
        }
        (0..self.span / self.h)
            .filter(|&blk| {
                let r = self.replica_off(blk);
                r >= a && r + self.replica_size() <= b
            })
            .collect()
    }

    /// Metadata bytes per node (everything that is not key/value payload),
    /// used by the Fig. 16 comparison.
    pub fn metadata_bytes(&self) -> usize {
        let replicas = if self.replication {
            (self.span / self.h) * self.replica_size()
        } else {
            self.replica_size()
        };
        // Per-entry metadata: version byte + hopscotch bitmap.
        let per_entry = 3 * self.span;
        // Cache-line version bytes.
        let line_bytes = self.versioned().lines();
        replicas + per_entry + line_bytes + 8
    }
}

/// Field offsets inside a leaf entry (relative to the entry start).
pub mod entry_field {
    /// Version byte.
    pub const VER: usize = 0;
    /// 2-byte hopscotch bitmap.
    pub const BITMAP: usize = 1;
    /// Key (first 8 bytes of the key field).
    pub const KEY: usize = 3;
}

/// Field offsets inside a leaf metadata replica / header.
pub mod replica_field {
    /// Version byte.
    pub const VER: usize = 0;
    /// 8-byte sibling pointer.
    pub const SIBLING: usize = 1;
    /// Valid flag.
    pub const VALID: usize = 9;
    /// Low fence key (fence mode only).
    pub const FENCE_LOW: usize = 10;
}

/// Geometry of an internal (B+-tree) node.
#[derive(Debug, Clone, Copy)]
pub struct InternalLayout {
    /// Maximum number of pivot entries.
    pub span: usize,
}

/// Field offsets inside an internal-node header.
pub mod internal_field {
    /// Version byte.
    pub const VER: usize = 0;
    /// Node level (leaves are level 0, their parents level 1, ...).
    pub const LEVEL: usize = 1;
    /// Valid flag.
    pub const VALID: usize = 2;
    /// Number of used entries (u16).
    pub const COUNT: usize = 3;
    /// Low fence key.
    pub const FENCE_LOW: usize = 5;
    /// High fence key.
    pub const FENCE_HIGH: usize = 13;
    /// Sibling pointer.
    pub const SIBLING: usize = 21;
    /// Header size.
    pub const SIZE: usize = 29;
}

impl InternalLayout {
    /// Bytes per pivot entry: version byte, pivot key, child pointer.
    pub const ENTRY_SIZE: usize = 17;

    /// Total logical payload bytes.
    pub fn payload_len(&self) -> usize {
        internal_field::SIZE + self.span * Self::ENTRY_SIZE
    }

    /// The versioned layout of the payload.
    pub fn versioned(&self) -> Layout {
        Layout::new(self.payload_len())
    }

    /// Physical offset of the lock word.
    pub fn lock_off(&self) -> usize {
        self.versioned().lock_offset()
    }

    /// Total physical node size.
    pub fn node_size(&self) -> usize {
        self.versioned().node_size()
    }

    /// Logical offset of entry `i`.
    pub fn entry_off(&self, i: usize) -> usize {
        debug_assert!(i < self.span);
        internal_field::SIZE + i * Self::ENTRY_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_leaf() -> LeafLayout {
        LeafLayout {
            span: 64,
            h: 8,
            key_size: 8,
            value_size: 8,
            replication: true,
            fences: false,
            piggyback: true,
        }
    }

    #[test]
    fn leaf_geometry_defaults() {
        let l = default_leaf();
        assert_eq!(l.entry_size(), 19);
        assert_eq!(l.replica_size(), 10);
        assert_eq!(l.payload_len(), 8 * (10 + 8 * 19));
        assert_eq!(l.node_size(), l.versioned().node_size());
    }

    #[test]
    fn entry_offsets_monotone_and_disjoint() {
        let l = default_leaf();
        let mut prev_end = 0;
        for i in 0..l.span {
            if i % l.h == 0 {
                assert_eq!(l.replica_off(i / l.h), prev_end);
                prev_end += l.replica_size();
            }
            assert_eq!(l.entry_off(i), prev_end);
            prev_end += l.entry_size();
        }
        assert_eq!(prev_end, l.payload_len());
    }

    #[test]
    fn neighborhood_covers_exactly_h_entries_plus_replica() {
        let l = default_leaf();
        for home in 0..l.span {
            let ranges = l.neighborhood_ranges(home);
            let total: usize = ranges.iter().map(|&(a, b)| b - a).sum();
            // H entries plus at least one replica; wrap may include the
            // block-0 replica as well.
            assert!(total >= l.h * l.entry_size() + l.replica_size());
            assert!(total <= l.h * l.entry_size() + 2 * l.replica_size());
            // Exactly one replica must be fully covered per read.
            let covered: usize = ranges.iter().map(|&(a, b)| l.replicas_in(a, b).len()).sum();
            assert!(covered >= 1, "home {home} covers no replica");
        }
    }

    #[test]
    fn neighborhood_wraps_into_two_ranges() {
        let l = default_leaf();
        assert_eq!(l.neighborhood_ranges(0).len(), 1);
        assert_eq!(l.neighborhood_ranges(60).len(), 2);
    }

    #[test]
    fn hop_ranges_cover_requested_entries() {
        let l = default_leaf();
        for (a, e) in [(0, 10), (5, 5), (50, 63), (60, 3), (8, 15)] {
            let ranges = l.hop_ranges(a, e);
            // Every entry in cyclic [a, e] falls inside some range.
            let mut i = a;
            loop {
                let off = l.entry_off(i);
                assert!(
                    ranges
                        .iter()
                        .any(|&(s, t)| off >= s && off + l.entry_size() <= t),
                    "entry {i} not covered for [{a},{e}]"
                );
                if i == e {
                    break;
                }
                i = (i + 1) % l.span;
            }
            let covered: usize = ranges.iter().map(|&(s, t)| l.replicas_in(s, t).len()).sum();
            assert!(covered >= 1, "hop range [{a},{e}] covers no replica");
        }
    }

    #[test]
    fn no_replication_layout() {
        let l = LeafLayout {
            replication: false,
            ..default_leaf()
        };
        assert_eq!(l.replica_off(0), 0);
        assert_eq!(l.entry_off(0), l.replica_size());
        assert_eq!(l.payload_len(), 10 + 64 * 19);
        // Most neighborhoods cover no replica.
        let ranges = l.neighborhood_ranges(20);
        assert!(l.replicas_in(ranges[0].0, ranges[0].1).is_empty());
    }

    #[test]
    fn fences_enlarge_replicas() {
        let with = LeafLayout {
            fences: true,
            ..default_leaf()
        };
        assert_eq!(
            with.replica_size(),
            default_leaf().replica_size() + 16
        );
        assert!(with.metadata_bytes() > default_leaf().metadata_bytes());
    }

    #[test]
    fn separate_vacancy_word_when_no_piggyback() {
        let l = LeafLayout {
            piggyback: false,
            ..default_leaf()
        };
        assert_eq!(l.vacancy_off(), l.lock_off() + 8);
        assert_eq!(l.node_size(), l.versioned().node_size() + 8);
    }

    #[test]
    fn internal_geometry() {
        let il = InternalLayout { span: 64 };
        assert_eq!(il.payload_len(), 29 + 64 * 17);
        assert_eq!(il.entry_off(0), 29);
        assert_eq!(il.entry_off(1), 46);
        assert!(il.node_size() > il.payload_len());
    }
}
