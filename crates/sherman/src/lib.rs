//! Sherman: a write-optimized B+ tree on disaggregated memory (SIGMOD'22),
//! the KV-contiguous baseline of the CHIME evaluation.
//!
//! Leaf nodes store sorted KV entries contiguously; every point query reads
//! the **whole leaf node** (the read amplification CHIME attacks), while
//! updates remain fine-grained thanks to the two-level cache-line versions
//! (the corrected scheme the CHIME paper retrofits onto Sherman). Internal
//! nodes, the CN-side cache and the versioned-memory layout are shared with
//! the `chime` crate — CHIME is built on Sherman's internal-node design, so
//! they are identical by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod leaf;
pub mod tree;

pub use tree::{Sherman, ShermanClient, ShermanConfig};
