//! Sherman's sorted leaf nodes.
//!
//! Layout (logical payload, striped over versioned cache lines exactly like
//! CHIME's nodes):
//!
//! ```text
//! [header: ver | sibling | valid | fence_low | fence_high | count]
//! [entry 0: ver | key | value] ... [entry span-1]  [8-byte lock word]
//! ```
//!
//! Point queries fetch the whole node; inserts shift the sorted suffix and
//! write back only the changed region plus the header (Sherman's
//! fine-grained write optimization); updates write a single entry.

use dmem::hash::home_entry;
use dmem::versioned::{bump, ev, pack_ver, Fetched, Layout};
use dmem::{Endpoint, GlobalAddr};

/// Byte offsets inside the leaf header.
pub mod header {
    /// Version byte.
    pub const VER: usize = 0;
    /// Sibling pointer.
    pub const SIBLING: usize = 1;
    /// Valid flag.
    pub const VALID: usize = 9;
    /// Low fence key.
    pub const FENCE_LOW: usize = 10;
    /// High fence key.
    pub const FENCE_HIGH: usize = 18;
    /// Entry count (u16).
    pub const COUNT: usize = 26;
    /// Header size.
    pub const SIZE: usize = 28;
}

/// Geometry of a Sherman leaf.
#[derive(Debug, Clone, Copy)]
pub struct ShermanLeafLayout {
    /// Maximum entries per leaf (the span size).
    pub span: usize,
    /// Value size in bytes.
    pub value_size: usize,
}

impl ShermanLeafLayout {
    /// Bytes per entry.
    pub fn entry_size(&self) -> usize {
        1 + 8 + self.value_size
    }

    /// Logical payload length.
    pub fn payload_len(&self) -> usize {
        header::SIZE + self.span * self.entry_size()
    }

    /// The versioned layout.
    pub fn versioned(&self) -> Layout {
        Layout::new(self.payload_len())
    }

    /// Physical lock-word offset.
    pub fn lock_off(&self) -> usize {
        self.versioned().lock_offset()
    }

    /// Total physical node size.
    pub fn node_size(&self) -> usize {
        self.versioned().node_size()
    }

    /// Logical offset of entry `i`.
    pub fn entry_off(&self, i: usize) -> usize {
        debug_assert!(i < self.span);
        header::SIZE + i * self.entry_size()
    }
}

/// A consistent whole-leaf snapshot.
#[derive(Debug, Clone)]
pub struct LeafSnapshot {
    /// Sorted keys (`count` of them).
    pub keys: Vec<u64>,
    /// Values, parallel to `keys`.
    pub values: Vec<Vec<u8>>,
    /// Per-entry EVs for all `span` slots.
    pub evs: Vec<u8>,
    /// Header EV.
    pub header_ev: u8,
    /// Node-level version.
    pub nv: u8,
    /// Right sibling.
    pub sibling: GlobalAddr,
    /// Valid flag.
    pub valid: bool,
    /// `[fence_low, fence_high)`.
    pub fences: (u64, u64),
}

impl LeafSnapshot {
    /// Binary-searches for `key`.
    pub fn find(&self, key: u64) -> Option<(usize, &[u8])> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|i| (i, &self.values[i][..]))
    }
}

/// Remote operations on Sherman leaves.
#[derive(Debug, Clone, Copy)]
pub struct ShermanLeafOps {
    /// Node geometry.
    pub layout: ShermanLeafLayout,
}

impl ShermanLeafOps {
    fn parse(&self, f: &Fetched) -> Option<LeafSnapshot> {
        let l = self.layout;
        let mut leads = vec![header::VER];
        for i in 0..l.span {
            leads.push(l.entry_off(i));
        }
        let nv = f.check_nv(&leads)?;
        if !f.check_ev(0, header::SIZE) {
            return None;
        }
        for i in 0..l.span {
            let off = l.entry_off(i);
            if !f.check_ev(off, off + l.entry_size()) {
                return None;
            }
        }
        let count = f.u16_at(header::COUNT) as usize;
        if count > l.span {
            return None;
        }
        let mut keys = Vec::with_capacity(count);
        let mut values = Vec::with_capacity(count);
        let mut evs = Vec::with_capacity(l.span);
        for i in 0..l.span {
            let off = l.entry_off(i);
            evs.push(ev(f.get(off)));
            if i < count {
                keys.push(f.u64_at(off + 1));
                values.push(f.copy(off + 9, l.value_size));
            }
        }
        // A torn count/shift can momentarily break sortedness; retry.
        if keys.windows(2).any(|p| p[0] >= p[1]) {
            return None;
        }
        Some(LeafSnapshot {
            keys,
            values,
            evs,
            header_ev: ev(f.get(header::VER)),
            nv,
            sibling: GlobalAddr::from_raw(f.u64_at(header::SIBLING)),
            valid: f.get(header::VALID) != 0,
            fences: (f.u64_at(header::FENCE_LOW), f.u64_at(header::FENCE_HIGH)),
        })
    }

    /// Reads and validates the whole leaf (the Sherman search path).
    pub fn read(&self, ep: &mut Endpoint, addr: GlobalAddr) -> LeafSnapshot {
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            assert!(spins < 1_000_000, "sherman leaf read livelock");
            let f = self
                .layout
                .versioned()
                .fetch(ep, addr, 0, self.layout.payload_len());
            if let Some(s) = self.parse(&f) {
                return s;
            }
        }
    }

    /// Batched whole-leaf reads (scans): one doorbell round per retry wave.
    pub fn read_batch(&self, ep: &mut Endpoint, addrs: &[GlobalAddr]) -> Vec<LeafSnapshot> {
        let n = addrs.len();
        let mut out: Vec<Option<LeafSnapshot>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let layout = self.layout.versioned();
        let mut spins = 0u32;
        while !pending.is_empty() {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            assert!(spins < 1_000_000, "sherman batch read livelock");
            let ps = layout.phys_start(0);
            let pe = layout.phys_of(self.layout.payload_len() - 1) + 1;
            let mut raw: Vec<(GlobalAddr, Vec<u8>)> = pending
                .iter()
                .map(|&i| (addrs[i].add(ps as u64), vec![0u8; pe - ps]))
                .collect();
            {
                let mut reqs: Vec<(GlobalAddr, &mut [u8])> =
                    raw.iter_mut().map(|(a, b)| (*a, &mut b[..])).collect();
                ep.read_batch(&mut reqs);
            }
            let mut still = Vec::new();
            for (&slot, (_, buf)) in pending.iter().zip(raw) {
                let f = layout.from_raw(0, self.layout.payload_len(), buf);
                match self.parse(&f) {
                    Some(s) => out[slot] = Some(s),
                    None => still.push(slot),
                }
            }
            pending = still;
        }
        out.into_iter().map(|s| s.unwrap()).collect()
    }

    /// Acquires the leaf lock.
    ///
    /// Retries back off with the seeded [`chime::backoff::Backoff`]
    /// (paper-faithful spinning convoys under contention and was flagged
    /// by `chime-lint`'s lock-discipline rule; the backoff only charges
    /// the virtual clock on an actual retry, so uncontended acquisitions
    /// are byte-identical to the bare loop).
    pub fn lock(&self, ep: &mut Endpoint, addr: GlobalAddr) {
        let lock_addr = addr.add(self.layout.lock_off() as u64);
        let mut backoff = chime::backoff::Backoff::new(ep.client_id() as u64 ^ lock_addr.raw());
        loop {
            if ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1 == 0 {
                return;
            }
            assert!(backoff.attempts() < 10_000_000, "sherman lock livelock");
            backoff.wait(ep);
        }
    }

    /// Releases the leaf lock with a plain WRITE.
    pub fn unlock(&self, ep: &mut Endpoint, addr: GlobalAddr) {
        ep.write(addr.add(self.layout.lock_off() as u64), &0u64.to_le_bytes());
    }

    fn entry_bytes(&self, nv: u8, entry_ev: u8, key: u64, value: &[u8]) -> Vec<u8> {
        let l = self.layout;
        let mut b = vec![0u8; l.entry_size()];
        b[0] = pack_ver(nv, entry_ev);
        b[1..9].copy_from_slice(&key.to_le_bytes());
        b[9..9 + value.len().min(l.value_size)]
            .copy_from_slice(&value[..value.len().min(l.value_size)]);
        b
    }

    fn header_bytes(&self, nv: u8, header_ev: u8, snap: &LeafSnapshot, count: usize) -> Vec<u8> {
        let mut b = vec![0u8; header::SIZE];
        b[header::VER] = pack_ver(nv, header_ev);
        b[header::SIBLING..header::SIBLING + 8].copy_from_slice(&snap.sibling.raw().to_le_bytes());
        b[header::VALID] = snap.valid as u8;
        b[header::FENCE_LOW..header::FENCE_LOW + 8].copy_from_slice(&snap.fences.0.to_le_bytes());
        b[header::FENCE_HIGH..header::FENCE_HIGH + 8].copy_from_slice(&snap.fences.1.to_le_bytes());
        b[header::COUNT..header::COUNT + 2].copy_from_slice(&(count as u16).to_le_bytes());
        b
    }

    /// Writes one updated entry and releases the lock (update path).
    pub fn write_entry_and_unlock(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        snap: &LeafSnapshot,
        idx: usize,
        value: &[u8],
    ) {
        let l = self.layout;
        let e = bump(snap.evs[idx]);
        let bytes = self.entry_bytes(snap.nv, e, snap.keys[idx], value);
        let (pstart, phys) =
            l.versioned()
                .build_phys(l.entry_off(idx), &bytes, |_| pack_ver(snap.nv, e));
        ep.write_batch(&[
            (addr.add(pstart as u64), &phys),
            (addr.add(l.lock_off() as u64), &0u64.to_le_bytes()),
        ]);
    }

    /// Writes back entries `[from..count]` (post-shift suffix) plus the
    /// header, and releases the lock, in one doorbell batch (insert/delete).
    #[allow(clippy::too_many_arguments)]
    pub fn write_suffix_and_unlock(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        snap: &LeafSnapshot,
        from: usize,
        keys: &[u64],
        values: &[Vec<u8>],
    ) {
        let l = self.layout;
        let count = keys.len();
        assert!(count <= l.span && from <= count);
        // Suffix image with bumped EVs for every rewritten slot. Slots that
        // shrank away (delete) are rewritten with key 0.
        let touched_end = count.max(snap.keys.len());
        let mut data = Vec::new();
        let mut vers: Vec<u8> = vec![0; l.span.max(1)];
        for i in from..touched_end {
            let e = bump(snap.evs[i]);
            vers[i] = e;
            if i < count {
                data.extend_from_slice(&self.entry_bytes(snap.nv, e, keys[i], &values[i]));
            } else {
                data.extend_from_slice(&self.entry_bytes(snap.nv, e, 0, &[]));
            }
        }
        let hev = bump(snap.header_ev);
        let hdr = self.header_bytes(snap.nv, hev, snap, count);
        let (hp, hphys) = l.versioned().build_phys(0, &hdr, |p| {
            if p < header::SIZE {
                pack_ver(snap.nv, hev)
            } else {
                pack_ver(snap.nv, 0)
            }
        });
        let mut batch: Vec<(GlobalAddr, Vec<u8>)> = vec![(addr.add(hp as u64), hphys)];
        if from < touched_end {
            let (sp, sphys) = l.versioned().build_phys(l.entry_off(from), &data, |p| {
                let i = if p < header::SIZE {
                    0
                } else {
                    (p - header::SIZE) / l.entry_size()
                };
                pack_ver(snap.nv, vers.get(i).copied().unwrap_or(0))
            });
            batch.push((addr.add(sp as u64), sphys));
        }
        batch.push((addr.add(l.lock_off() as u64), 0u64.to_le_bytes().to_vec()));
        let refs: Vec<(GlobalAddr, &[u8])> = batch.iter().map(|(a, b)| (*a, &b[..])).collect();
        ep.write_batch(&refs);
    }

    /// Serializes and writes a whole node (new nodes: plain write; split
    /// rewrites: NV bumped, lock released).
    #[allow(clippy::too_many_arguments)]
    pub fn write_full(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        nv: u8,
        keys: &[u64],
        values: &[Vec<u8>],
        sibling: GlobalAddr,
        fences: (u64, u64),
        unlock: bool,
    ) {
        let l = self.layout;
        assert!(keys.len() <= l.span);
        let mut data = vec![0u8; l.payload_len()];
        let snap_hdr = LeafSnapshot {
            keys: vec![],
            values: vec![],
            evs: vec![],
            header_ev: 0,
            nv,
            sibling,
            valid: true,
            fences,
        };
        data[..header::SIZE].copy_from_slice(&self.header_bytes(nv, 0, &snap_hdr, keys.len()));
        for (i, k) in keys.iter().enumerate() {
            let off = l.entry_off(i);
            let b = self.entry_bytes(nv, 0, *k, &values[i]);
            data[off..off + b.len()].copy_from_slice(&b);
        }
        for i in keys.len()..l.span {
            data[l.entry_off(i)] = pack_ver(nv, 0);
        }
        let (pstart, phys) = l.versioned().build_phys(0, &data, |_| pack_ver(nv, 0));
        if unlock {
            ep.write_batch(&[
                (addr.add(pstart as u64), &phys),
                (addr.add(l.lock_off() as u64), &0u64.to_le_bytes()),
            ]);
        } else {
            ep.write(addr.add(pstart as u64), &phys);
        }
    }

    /// A home-entry helper kept for API parity in mixed test harnesses.
    pub fn home_of(&self, key: u64) -> usize {
        home_entry(key, self.layout.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem::node::RESERVED_BYTES;
    use dmem::Pool;

    fn setup() -> (Endpoint, ShermanLeafOps, GlobalAddr) {
        let pool = Pool::with_defaults(1, 4 << 20);
        let ops = ShermanLeafOps {
            layout: ShermanLeafLayout {
                span: 16,
                value_size: 8,
            },
        };
        (Endpoint::new(pool), ops, GlobalAddr::new(0, RESERVED_BYTES))
    }

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    #[test]
    fn write_full_then_read() {
        let (mut ep, ops, addr) = setup();
        let keys: Vec<u64> = (1..=10).map(|k| k * 5).collect();
        let values: Vec<Vec<u8>> = keys.iter().map(|&k| v(k)).collect();
        ops.write_full(
            &mut ep,
            addr,
            0,
            &keys,
            &values,
            GlobalAddr::NULL,
            (0, u64::MAX),
            false,
        );
        let snap = ops.read(&mut ep, addr);
        assert_eq!(snap.keys, keys);
        assert_eq!(snap.values, values);
        assert!(snap.valid);
        assert_eq!(snap.fences, (0, u64::MAX));
        assert_eq!(snap.find(25).unwrap().0, 4);
        assert!(snap.find(26).is_none());
    }

    #[test]
    fn entry_update_bumps_ev_only() {
        let (mut ep, ops, addr) = setup();
        let keys: Vec<u64> = (1..=10).collect();
        let values: Vec<Vec<u8>> = keys.iter().map(|&k| v(k)).collect();
        ops.write_full(&mut ep, addr, 0, &keys, &values, GlobalAddr::NULL, (0, u64::MAX), false);
        let snap = ops.read(&mut ep, addr);
        ops.lock(&mut ep, addr);
        ops.write_entry_and_unlock(&mut ep, addr, &snap, 3, &v(999));
        let snap2 = ops.read(&mut ep, addr);
        assert_eq!(snap2.nv, snap.nv, "entry write must not bump NV");
        assert_eq!(snap2.evs[3], bump(snap.evs[3]));
        assert_eq!(snap2.values[3], v(999));
        assert_eq!(snap2.values[2], v(3));
    }

    #[test]
    fn suffix_insert_shifts_right() {
        let (mut ep, ops, addr) = setup();
        let keys: Vec<u64> = vec![10, 20, 30, 40];
        let values: Vec<Vec<u8>> = keys.iter().map(|&k| v(k)).collect();
        ops.write_full(&mut ep, addr, 0, &keys, &values, GlobalAddr::NULL, (0, u64::MAX), false);
        let snap = ops.read(&mut ep, addr);
        // Insert 25 at position 2.
        let mut nk = snap.keys.clone();
        let mut nv_ = snap.values.clone();
        nk.insert(2, 25);
        nv_.insert(2, v(25));
        ops.lock(&mut ep, addr);
        ops.write_suffix_and_unlock(&mut ep, addr, &snap, 2, &nk, &nv_);
        let snap2 = ops.read(&mut ep, addr);
        assert_eq!(snap2.keys, vec![10, 20, 25, 30, 40]);
        assert_eq!(snap2.values[2], v(25));
        assert_eq!(snap2.values[4], v(40));
    }

    #[test]
    fn suffix_delete_shifts_left() {
        let (mut ep, ops, addr) = setup();
        let keys: Vec<u64> = vec![10, 20, 30, 40];
        let values: Vec<Vec<u8>> = keys.iter().map(|&k| v(k)).collect();
        ops.write_full(&mut ep, addr, 0, &keys, &values, GlobalAddr::NULL, (0, u64::MAX), false);
        let snap = ops.read(&mut ep, addr);
        let mut nk = snap.keys.clone();
        let mut nv_ = snap.values.clone();
        nk.remove(1);
        nv_.remove(1);
        ops.lock(&mut ep, addr);
        ops.write_suffix_and_unlock(&mut ep, addr, &snap, 1, &nk, &nv_);
        let snap2 = ops.read(&mut ep, addr);
        assert_eq!(snap2.keys, vec![10, 30, 40]);
    }

    #[test]
    fn batched_reads_one_rtt() {
        let (mut ep, ops, addr) = setup();
        let addr2 = GlobalAddr::new(0, RESERVED_BYTES + 4096);
        for (a, base) in [(addr, 10u64), (addr2, 100u64)] {
            let keys: Vec<u64> = (1..=5).map(|k| base + k).collect();
            let values: Vec<Vec<u8>> = keys.iter().map(|&k| v(k)).collect();
            ops.write_full(&mut ep, a, 0, &keys, &values, GlobalAddr::NULL, (0, u64::MAX), false);
        }
        let before = ep.stats().rtts;
        let snaps = ops.read_batch(&mut ep, &[addr, addr2]);
        assert_eq!(ep.stats().rtts, before + 1);
        assert_eq!(snaps[0].keys[0], 11);
        assert_eq!(snaps[1].keys[0], 101);
    }

    #[test]
    fn lock_mutual_exclusion() {
        let (mut ep, ops, addr) = setup();
        ops.write_full(&mut ep, addr, 0, &[], &[], GlobalAddr::NULL, (0, u64::MAX), false);
        ops.lock(&mut ep, addr);
        let lock_addr = addr.add(ops.layout.lock_off() as u64);
        assert_eq!(ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1, 1);
        ops.unlock(&mut ep, addr);
    }
}
