//! The Sherman B+ tree: operations over sorted leaves with fence-key
//! validation, sharing CHIME's internal-node machinery.

use std::sync::Arc;

use parking_lot::Mutex;

use chime::cache::NodeCache;
use chime::internal::{InternalNode, InternalOps};
use chime::layout::InternalLayout;
use dmem::{ChunkAlloc, ClientStats, Endpoint, GlobalAddr, IndexError, Pool, RangeIndex};

use crate::leaf::{LeafSnapshot, ShermanLeafLayout, ShermanLeafOps};

const OP_RETRY_LIMIT: usize = 100_000;

/// Sherman configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShermanConfig {
    /// Leaf span (entries per leaf). Paper default: 64.
    pub span: usize,
    /// Internal fan-out. Paper default: 64.
    pub internal_span: usize,
    /// Inline value size in bytes.
    pub value_size: usize,
    /// CN cache budget in bytes.
    pub cache_bytes: u64,
    /// Store values out-of-line behind an 8-byte pointer (Marlin-style
    /// variable-length support for Fig. 13 / Fig. 18d).
    pub indirect_values: bool,
}

impl Default for ShermanConfig {
    fn default() -> Self {
        ShermanConfig {
            span: 64,
            internal_span: 64,
            value_size: 8,
            cache_bytes: 100 << 20,
            indirect_values: false,
        }
    }
}

struct Shared {
    pool: Arc<Pool>,
    cfg: ShermanConfig,
    root_slot: GlobalAddr,
    leaf: ShermanLeafOps,
    internal: InternalOps,
}

/// A handle to a Sherman tree.
#[derive(Clone)]
pub struct Sherman {
    shared: Arc<Shared>,
}

/// Per-CN shared state.
pub struct CnState {
    cache: Mutex<NodeCache>,
    root_hint: Mutex<GlobalAddr>,
    lock_table: Arc<dmem::LocalLockTable>,
}

impl CnState {
    /// Compute-side cache footprint in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.lock().bytes()
    }

    /// `(hits, misses)` of the internal-node cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().hit_stats()
    }
}

/// One Sherman client.
pub struct ShermanClient {
    shared: Arc<Shared>,
    cn: Arc<CnState>,
    ep: Endpoint,
    alloc: ChunkAlloc,
}

impl Sherman {
    /// Creates a new empty tree rooted at well-known slot `slot`.
    pub fn create(pool: &Arc<Pool>, cfg: ShermanConfig, slot: u64) -> Self {
        let leaf = ShermanLeafOps {
            layout: ShermanLeafLayout {
                span: cfg.span,
                value_size: if cfg.indirect_values { 8 } else { cfg.value_size },
            },
        };
        let internal = InternalOps {
            layout: InternalLayout {
                span: cfg.internal_span,
            },
        };
        let shared = Arc::new(Shared {
            pool: Arc::clone(pool),
            cfg,
            root_slot: dmem::root_slot(slot),
            leaf,
            internal,
        });
        let t = Sherman { shared };
        t.bootstrap();
        t
    }

    fn bootstrap(&self) {
        let s = &self.shared;
        let mut ep = Endpoint::new(Arc::clone(&s.pool));
        let mut alloc = ChunkAlloc::with_defaults();
        let leaf_addr = alloc
            .alloc(&mut ep, s.leaf.layout.node_size() as u64)
            .expect("pool too small");
        s.leaf.write_full(
            &mut ep,
            leaf_addr,
            0,
            &[],
            &[],
            GlobalAddr::NULL,
            (0, u64::MAX),
            false,
        );
        let root_addr = alloc
            .alloc(&mut ep, s.internal.layout.node_size() as u64)
            .expect("pool too small");
        let root = InternalNode {
            addr: root_addr,
            level: 1,
            valid: true,
            fence_low: 0,
            fence_high: u64::MAX,
            sibling: GlobalAddr::NULL,
            entries: vec![(0, leaf_addr)],
            nv: 0,
        };
        s.internal.write_new(&mut ep, &root);
        ep.write(s.root_slot, &root_addr.raw().to_le_bytes());
    }

    /// Creates the shared state for one compute node.
    pub fn new_cn(&self) -> Arc<CnState> {
        Arc::new(CnState {
            cache: Mutex::new(NodeCache::new(self.shared.cfg.cache_bytes)),
            root_hint: Mutex::new(GlobalAddr::NULL),
            lock_table: Arc::new(dmem::LocalLockTable::new()),
        })
    }

    /// Creates a client attached to `cn`.
    pub fn client(&self, cn: &Arc<CnState>) -> ShermanClient {
        ShermanClient {
            shared: Arc::clone(&self.shared),
            cn: Arc::clone(cn),
            ep: Endpoint::new(Arc::clone(&self.shared.pool)),
            alloc: ChunkAlloc::sim_scaled(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ShermanConfig {
        &self.shared.cfg
    }
}

impl ShermanClient {
    /// Queues locally for a remote node lock (Sherman's local lock table).
    fn local_lock(&mut self, addr: GlobalAddr) -> dmem::LocalLockGuard {
        let table = Arc::clone(&self.cn.lock_table);
        table.acquire_with(addr.raw(), &mut self.ep)
    }

    fn refresh_root(&mut self) -> GlobalAddr {
        let mut b = [0u8; 8];
        self.ep.read(self.shared.root_slot, &mut b);
        let addr = GlobalAddr::from_raw(u64::from_le_bytes(b));
        *self.cn.root_hint.lock() = addr;
        addr
    }

    fn root(&mut self) -> GlobalAddr {
        let hint = *self.cn.root_hint.lock();
        if hint.is_null() {
            self.refresh_root()
        } else {
            hint
        }
    }

    fn read_internal_cached(&mut self, addr: GlobalAddr, key: u64) -> InternalNode {
        if let Some(n) = self.cn.cache.lock().get(addr) {
            if n.covers(key) {
                return n;
            }
        }
        let n = self.shared.internal.read(&mut self.ep, addr);
        if n.valid {
            self.cn.cache.lock().insert(n.clone());
        }
        n
    }

    fn locate_leaf(&mut self, key: u64) -> (GlobalAddr, GlobalAddr) {
        let mut addr = self.root();
        for _ in 0..OP_RETRY_LIMIT {
            let node = self.read_internal_cached(addr, key);
            if !node.valid {
                self.cn.cache.lock().invalidate(addr);
                addr = self.refresh_root();
                continue;
            }
            if !node.covers(key) {
                if key >= node.fence_high && !node.sibling.is_null() {
                    addr = node.sibling;
                } else {
                    addr = self.refresh_root();
                }
                continue;
            }
            let (child, _) = node.select(key);
            if node.level == 1 {
                return (child, node.addr);
            }
            addr = child;
        }
        panic!("sherman locate retry limit for key {key}");
    }

    fn locate_parent(&mut self, key: u64) -> InternalNode {
        let mut addr = self.root();
        for _ in 0..OP_RETRY_LIMIT {
            let node = self.read_internal_cached(addr, key);
            if !node.valid {
                addr = self.refresh_root();
                continue;
            }
            if !node.covers(key) {
                if key >= node.fence_high && !node.sibling.is_null() {
                    addr = node.sibling;
                } else {
                    addr = self.refresh_root();
                }
                continue;
            }
            if node.level == 1 {
                return node;
            }
            let (child, _) = node.select(key);
            addr = child;
        }
        panic!("sherman locate_parent retry limit");
    }

    /// Reads the leaf owning `key`, chasing fences laterally.
    fn read_owner(&mut self, key: u64) -> (GlobalAddr, LeafSnapshot) {
        let (mut addr, parent) = self.locate_leaf(key);
        for _ in 0..OP_RETRY_LIMIT {
            let snap = self.shared.leaf.read(&mut self.ep, addr);
            if !snap.valid {
                self.cn.cache.lock().invalidate(parent);
                let (a, _) = self.locate_leaf(key);
                addr = a;
                continue;
            }
            if key < snap.fences.0 {
                // Stale cache routed us too far right.
                self.cn.cache.lock().invalidate(parent);
                self.refresh_root();
                let (a, _) = self.locate_leaf(key);
                addr = a;
                continue;
            }
            if !dmem::hash::in_range(key, snap.fences.0, snap.fences.1) {
                self.cn.cache.lock().invalidate(parent);
                addr = snap.sibling;
                continue;
            }
            return (addr, snap);
        }
        panic!("sherman read_owner retry limit for key {key}");
    }

    /// Locks and reads the leaf owning `key` (write paths).
    fn lock_owner(&mut self, key: u64) -> (GlobalAddr, LeafSnapshot) {
        let (mut addr, _) = self.locate_leaf(key);
        for _ in 0..OP_RETRY_LIMIT {
            let _lk = self.local_lock(addr);
            self.shared.leaf.lock(&mut self.ep, addr);
            let snap = self.shared.leaf.read(&mut self.ep, addr);
            if !snap.valid || key < snap.fences.0 {
                self.shared.leaf.unlock(&mut self.ep, addr);
                self.refresh_root();
                let (a, _) = self.locate_leaf(key);
                addr = a;
                continue;
            }
            if !dmem::hash::in_range(key, snap.fences.0, snap.fences.1) {
                self.shared.leaf.unlock(&mut self.ep, addr);
                addr = snap.sibling;
                continue;
            }
            return (addr, snap);
        }
        panic!("sherman lock_owner retry limit for key {key}");
    }

    fn split_and_insert(
        &mut self,
        addr: GlobalAddr,
        snap: &LeafSnapshot,
        key: u64,
        value: Vec<u8>,
    ) -> Result<(), IndexError> {
        let leaf = self.shared.leaf;
        let mut keys = snap.keys.clone();
        let mut values = snap.values.clone();
        match keys.binary_search(&key) {
            Ok(i) => {
                values[i] = value;
            }
            Err(i) => {
                keys.insert(i, key);
                values.insert(i, value);
            }
        }
        let mid = keys.len() / 2;
        let pivot = keys[mid];
        let new_addr = self
            .alloc
            .alloc(&mut self.ep, leaf.layout.node_size() as u64)?;
        // Right node first (unreachable until the old node points to it).
        leaf.write_full(
            &mut self.ep,
            new_addr,
            0,
            &keys[mid..],
            &values[mid..],
            snap.sibling,
            (pivot, snap.fences.1),
            false,
        );
        let mut left = snap.clone();
        left.sibling = new_addr;
        left.fences = (snap.fences.0, pivot);
        leaf.write_full(
            &mut self.ep,
            addr,
            dmem::versioned::bump(snap.nv),
            &keys[..mid],
            &values[..mid],
            new_addr,
            (snap.fences.0, pivot),
            true,
        );
        self.insert_into_parent(1, pivot, new_addr)
    }

    fn insert_into_parent(
        &mut self,
        level: u8,
        pivot: u64,
        child: GlobalAddr,
    ) -> Result<(), IndexError> {
        for _ in 0..OP_RETRY_LIMIT {
            let root_addr = self.refresh_root();
            let mut node = self.shared.internal.read(&mut self.ep, root_addr);
            if node.level < level {
                continue;
            }
            let mut ok = true;
            while node.level > level {
                if !node.covers(pivot) {
                    if pivot >= node.fence_high && !node.sibling.is_null() {
                        node = self.shared.internal.read(&mut self.ep, node.sibling);
                        continue;
                    }
                    ok = false;
                    break;
                }
                let (c, _) = node.select(pivot);
                node = self.shared.internal.read(&mut self.ep, c);
            }
            if !ok || node.level != level {
                continue;
            }
            while node.valid && !node.covers(pivot) && pivot >= node.fence_high {
                if node.sibling.is_null() {
                    break;
                }
                node = self.shared.internal.read(&mut self.ep, node.sibling);
            }
            if !node.valid || !node.covers(pivot) {
                continue;
            }
            let addr = node.addr;
            let _lk = self.local_lock(addr);
            self.shared.internal.lock(&mut self.ep, addr);
            let mut fresh = self.shared.internal.read(&mut self.ep, addr);
            if !fresh.valid || !fresh.covers(pivot) {
                self.shared.internal.unlock(&mut self.ep, addr);
                continue;
            }
            match fresh.entries.binary_search_by_key(&pivot, |e| e.0) {
                Ok(i) => {
                    assert_eq!(fresh.entries[i].1, child, "pivot collision");
                    self.shared.internal.unlock(&mut self.ep, addr);
                    return Ok(());
                }
                Err(i) => {
                    if fresh.entries.len() < self.shared.cfg.internal_span {
                        fresh.entries.insert(i, (pivot, child));
                        self.shared.internal.write_and_unlock(&mut self.ep, &fresh);
                        self.cn.cache.lock().invalidate(addr);
                        return Ok(());
                    }
                }
            }
            self.split_internal(&mut fresh, root_addr)?;
        }
        panic!("sherman insert_into_parent retry limit");
    }

    fn split_internal(
        &mut self,
        node: &mut InternalNode,
        root_addr: GlobalAddr,
    ) -> Result<(), IndexError> {
        let mid = node.entries.len() / 2;
        let split_key = node.entries[mid].0;
        let upper: Vec<_> = node.entries.split_off(mid);
        let new_addr = self
            .alloc
            .alloc(&mut self.ep, self.shared.internal.layout.node_size() as u64)?;
        let new_node = InternalNode {
            addr: new_addr,
            level: node.level,
            valid: true,
            fence_low: split_key,
            fence_high: node.fence_high,
            sibling: node.sibling,
            entries: upper,
            nv: 0,
        };
        self.shared.internal.write_new(&mut self.ep, &new_node);
        node.fence_high = split_key;
        node.sibling = new_addr;
        self.shared.internal.write_and_unlock(&mut self.ep, node);
        self.cn.cache.lock().invalidate(node.addr);
        if node.addr == root_addr {
            let new_root_addr = self
                .alloc
                .alloc(&mut self.ep, self.shared.internal.layout.node_size() as u64)?;
            let new_root = InternalNode {
                addr: new_root_addr,
                level: node.level + 1,
                valid: true,
                fence_low: 0,
                fence_high: u64::MAX,
                sibling: GlobalAddr::NULL,
                entries: vec![(node.fence_low, node.addr), (split_key, new_addr)],
                nv: 0,
            };
            self.shared.internal.write_new(&mut self.ep, &new_root);
            let old = self
                .ep
                .cas(self.shared.root_slot, root_addr.raw(), new_root_addr.raw());
            if old == root_addr.raw() {
                *self.cn.root_hint.lock() = new_root_addr;
                return Ok(());
            }
            return self.insert_into_parent(node.level + 1, split_key, new_addr);
        }
        self.insert_into_parent(node.level + 1, split_key, new_addr)
    }

    fn store_value(&mut self, key: u64, value: &[u8]) -> Result<Vec<u8>, IndexError> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            let mut v = value.to_vec();
            v.resize(cfg.value_size, 0);
            return Ok(v);
        }
        let block_len = 16 + cfg.value_size;
        let addr = self.alloc.alloc(&mut self.ep, block_len as u64)?;
        let mut block = Vec::with_capacity(block_len);
        block.extend_from_slice(&key.to_le_bytes());
        block.extend_from_slice(&(value.len() as u64).to_le_bytes());
        block.extend_from_slice(value);
        block.resize(block_len, 0);
        self.ep.write(addr, &block);
        Ok(addr.raw().to_le_bytes().to_vec())
    }

    fn resolve_value(&mut self, stored: Vec<u8>) -> Vec<u8> {
        let cfg = self.shared.cfg;
        if !cfg.indirect_values {
            return stored;
        }
        let addr = GlobalAddr::from_raw(u64::from_le_bytes(stored[..8].try_into().unwrap()));
        let mut block = vec![0u8; 16 + cfg.value_size];
        self.ep.read(addr, &mut block);
        let len = u64::from_le_bytes(block[8..16].try_into().unwrap()) as usize;
        block[16..16 + len.min(cfg.value_size)].to_vec()
    }
}

impl RangeIndex for ShermanClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let stored = self.store_value(key, value)?;
        let (addr, snap) = self.lock_owner(key);
        let leaf = self.shared.leaf;
        match snap.keys.binary_search(&key) {
            Ok(i) => {
                leaf.write_entry_and_unlock(&mut self.ep, addr, &snap, i, &stored);
                Ok(())
            }
            Err(i) => {
                if snap.keys.len() < leaf.layout.span {
                    let mut keys = snap.keys.clone();
                    let mut values = snap.values.clone();
                    keys.insert(i, key);
                    values.insert(i, stored);
                    leaf.write_suffix_and_unlock(&mut self.ep, addr, &snap, i, &keys, &values);
                    Ok(())
                } else {
                    self.split_and_insert(addr, &snap, key, stored)
                }
            }
        }
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        assert_ne!(key, 0, "key 0 is reserved");
        let (_, snap) = self.read_owner(key);
        self.ep
            .note_app_bytes(self.shared.cfg.value_size as u64 + 8);
        let v = snap.find(key).map(|(_, v)| v.to_vec())?;
        Some(self.resolve_value(v))
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let stored = self.store_value(key, value)?;
        let (addr, snap) = self.lock_owner(key);
        match snap.keys.binary_search(&key) {
            Ok(i) => {
                self.shared
                    .leaf
                    .write_entry_and_unlock(&mut self.ep, addr, &snap, i, &stored);
                Ok(true)
            }
            Err(_) => {
                self.shared.leaf.unlock(&mut self.ep, addr);
                Ok(false)
            }
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let (addr, snap) = self.lock_owner(key);
        match snap.keys.binary_search(&key) {
            Ok(i) => {
                let mut keys = snap.keys.clone();
                let mut values = snap.values.clone();
                keys.remove(i);
                values.remove(i);
                self.shared
                    .leaf
                    .write_suffix_and_unlock(&mut self.ep, addr, &snap, i, &keys, &values);
                Ok(true)
            }
            Err(_) => {
                self.shared.leaf.unlock(&mut self.ep, addr);
                Ok(false)
            }
        }
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        assert_ne!(start, 0, "key 0 is reserved");
        if count == 0 {
            return;
        }
        let mut collected: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut parent = self.locate_parent(start);
        let mut idx = match parent.entries.binary_search_by_key(&start, |e| e.0) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let per_leaf = (self.shared.cfg.span * 3) / 4;
        loop {
            let need = count.saturating_sub(collected.len());
            let take = need
                .div_ceil(per_leaf)
                .max(1)
                .min(parent.entries.len() - idx);
            let addrs: Vec<GlobalAddr> = parent.entries[idx..idx + take]
                .iter()
                .map(|e| e.1)
                .collect();
            let snaps = self.shared.leaf.read_batch(&mut self.ep, &addrs);
            for snap in &snaps {
                for (k, v) in snap.keys.iter().zip(snap.values.iter()) {
                    if *k >= start {
                        collected.push((*k, v.clone()));
                    }
                }
            }
            idx += take;
            if collected.len() >= count {
                break;
            }
            if idx >= parent.entries.len() {
                if parent.sibling.is_null() {
                    break;
                }
                parent = self.shared.internal.read(&mut self.ep, parent.sibling);
                if !parent.valid {
                    break;
                }
                idx = 0;
            }
        }
        collected.sort_by_key(|&(k, _)| k);
        collected.truncate(count);
        for (k, v) in collected {
            let v = self.resolve_value(v);
            out.push((k, v));
        }
    }

    fn stats(&self) -> &ClientStats {
        self.ep.stats()
    }

    fn profile(&self) -> Option<&dmem::OpProfile> {
        Some(self.ep.profile())
    }

    fn clock_ns(&self) -> u64 {
        self.ep.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.cn.cache_bytes()
    }

    fn telemetry(&self) -> Option<&dmem::Telemetry> {
        Some(self.ep.telemetry())
    }

    fn telemetry_mut(&mut self) -> Option<&mut dmem::Telemetry> {
        Some(self.ep.telemetry_mut())
    }

    fn set_trace_id(&mut self, id: u64) {
        self.ep.set_trace_id(id);
    }

    fn set_tracer(&mut self, tracer: dmem::Tracer) {
        self.ep.set_tracer(tracer);
    }

    fn take_tracer(&mut self) -> Option<dmem::Tracer> {
        self.ep.take_tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShermanConfig {
        ShermanConfig {
            span: 8,
            internal_span: 8,
            value_size: 8,
            cache_bytes: 1 << 20,
            indirect_values: false,
        }
    }

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    #[test]
    fn insert_search_update_delete() {
        let pool = Pool::with_defaults(1, 128 << 20);
        let t = Sherman::create(&pool, small(), 1);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=2_000u64 {
            c.insert(k * 3, &v(k)).unwrap();
        }
        for k in 1..=2_000u64 {
            assert_eq!(c.search(k * 3), Some(v(k)));
        }
        assert_eq!(c.search(1), None);
        for k in 1..=100u64 {
            assert!(c.update(k * 3, &v(k + 7)).unwrap());
            assert_eq!(c.search(k * 3), Some(v(k + 7)));
        }
        for k in 1..=100u64 {
            assert!(c.delete(k * 3).unwrap());
            assert_eq!(c.search(k * 3), None);
        }
        assert!(!c.delete(3).unwrap());
    }

    #[test]
    fn scan_sorted() {
        let pool = Pool::with_defaults(1, 128 << 20);
        let t = Sherman::create(&pool, small(), 1);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=1_000u64 {
            c.insert(k * 2, &v(k)).unwrap();
        }
        let mut out = Vec::new();
        c.scan(100, 25, &mut out);
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (50..75).map(|k| k * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_inserts() {
        let pool = Pool::with_defaults(1, 128 << 20);
        let t = Sherman::create(&pool, small(), 1);
        crossbeam::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = t.clone();
                s.spawn(move |_| {
                    let cn = t.new_cn();
                    let mut c = t.client(&cn);
                    for i in 0..500u64 {
                        let k = 1 + i * 4 + tid;
                        c.insert(k, &v(k)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=2_000u64 {
            assert_eq!(c.search(k), Some(v(k)), "key {k}");
        }
    }

    #[test]
    fn indirect_values() {
        let pool = Pool::with_defaults(1, 128 << 20);
        let cfg = ShermanConfig {
            indirect_values: true,
            value_size: 64,
            ..small()
        };
        let t = Sherman::create(&pool, cfg, 1);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=200u64 {
            c.insert(k, &[k as u8; 33]).unwrap();
        }
        for k in 1..=200u64 {
            assert_eq!(c.search(k), Some(vec![k as u8; 33]));
        }
    }

    #[test]
    fn whole_leaf_read_amplification() {
        // Sherman's defining cost: one point read fetches span * entry.
        let pool = Pool::with_defaults(1, 128 << 20);
        let t = Sherman::create(&pool, ShermanConfig::default(), 1);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=500u64 {
            c.insert(k, &v(k)).unwrap();
        }
        let before = c.stats().clone();
        for k in 1..=100u64 {
            c.search(k).unwrap();
        }
        let d = c.stats().since(&before);
        let bytes_per_op = d.wire_bytes / 100;
        // 64 entries * 17 B each plus versions/header: >1 KB per search.
        assert!(bytes_per_op > 1_000, "bytes/op = {bytes_per_op}");
        assert!(d.app_bytes / 100 == 16);
    }
}
