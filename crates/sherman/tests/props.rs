//! Property tests for the Sherman baseline: leaf serialization round-trips
//! and tree/model equivalence.

use std::collections::BTreeMap;

use dmem::node::RESERVED_BYTES;
use dmem::{Endpoint, GlobalAddr, Pool, RangeIndex};
use proptest::prelude::*;
use sherman::leaf::{ShermanLeafLayout, ShermanLeafOps};
use sherman::{Sherman, ShermanConfig};

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

proptest! {
    /// Leaf write/read round-trips arbitrary sorted key sets.
    #[test]
    fn leaf_roundtrip(
        keys in proptest::collection::btree_set(1u64..u64::MAX, 0..16),
        value_size in 1usize..64,
    ) {
        let ops = ShermanLeafOps {
            layout: ShermanLeafLayout { span: 16, value_size },
        };
        let pool = Pool::with_defaults(1, 4 << 20);
        let mut ep = Endpoint::new(pool);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let keys: Vec<u64> = keys.into_iter().collect();
        let values: Vec<Vec<u8>> = keys.iter().map(|&k| {
            let mut b = v(k);
            b.resize(value_size, 0);
            b
        }).collect();
        ops.write_full(&mut ep, addr, 0, &keys, &values, GlobalAddr::NULL, (0, u64::MAX), false);
        let snap = ops.read(&mut ep, addr);
        prop_assert_eq!(&snap.keys, &keys);
        prop_assert_eq!(&snap.values, &values);
        for &k in &keys {
            prop_assert!(snap.find(k).is_some());
        }
        prop_assert!(snap.find(0x7777_7777_7777_7777).is_none() || keys.contains(&0x7777_7777_7777_7777));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tree agrees with a BTreeMap on random op sequences.
    #[test]
    fn tree_matches_model(ops in proptest::collection::vec((1u64..400, 0u8..4), 1..250)) {
        let pool = Pool::with_defaults(1, 128 << 20);
        let cfg = ShermanConfig { span: 8, internal_span: 4, ..Default::default() };
        let t = Sherman::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (key, op) in ops {
            match op {
                0 | 1 => {
                    c.insert(key, &v(key)).unwrap();
                    model.insert(key, v(key));
                }
                2 => {
                    prop_assert_eq!(c.delete(key).unwrap(), model.remove(&key).is_some());
                }
                _ => {
                    prop_assert_eq!(c.search(key), model.get(&key).cloned());
                }
            }
        }
        let mut out = Vec::new();
        c.scan(1, model.len() + 5, &mut out);
        let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, val)| (*k, val.clone())).collect();
        prop_assert_eq!(out, want);
    }
}
