//! Engine behaviour: serial equivalence at K=1, round-trip overlap at K>1,
//! determinism, and lane-death isolation.

use std::sync::Arc;

use dmem::node::RESERVED_BYTES;
use dmem::{Endpoint, GlobalAddr, Pool, QpConfig};
use sched::{Engine, EngineConfig, LaneBody};

const OPS: usize = 10;

/// A lane body: `ops` dependent 8-byte reads, returning the lane's final
/// virtual clock and charged round trips.
fn reader(pool: Arc<Pool>, ops: usize) -> LaneBody<(u64, u64)> {
    Box::new(move || {
        let mut ep = Endpoint::new(pool);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let mut buf = [0u8; 8];
        for _ in 0..ops {
            ep.read(addr, &mut buf);
        }
        (ep.clock_ns(), ep.stats().rtts)
    })
}

fn run(k: usize, ops: usize) -> (Vec<(u64, u64)>, dmem::QpStats) {
    let pool = Pool::with_defaults(1, 1 << 20);
    let engine = Engine::new(EngineConfig {
        lanes: k,
        qp: QpConfig::default(),
    });
    let bodies = (0..k).map(|_| reader(Arc::clone(&pool), ops)).collect();
    let net = *pool.net();
    let run = engine.run_client(net, 1, bodies);
    let qp = run.qp.clone();
    (run.into_results(), qp)
}

#[test]
fn one_lane_matches_serial_execution_exactly() {
    // Serial baseline: the same endpoint workload without any engine.
    let pool = Pool::with_defaults(1, 1 << 20);
    let mut ep = Endpoint::new(Arc::clone(&pool));
    let addr = GlobalAddr::new(0, RESERVED_BYTES);
    let mut buf = [0u8; 8];
    for _ in 0..OPS {
        ep.read(addr, &mut buf);
    }
    let serial = (ep.clock_ns(), ep.stats().rtts);

    let (lanes, qp) = run(1, OPS);
    assert_eq!(lanes.len(), 1);
    assert_eq!(lanes[0], serial, "K=1 must reproduce serial timing");
    assert_eq!(qp.doorbells, OPS as u64, "no batching across one lane");
    assert_eq!(qp.batched_wqes, 0);
}

#[test]
fn four_lanes_overlap_round_trips() {
    let (serial_lanes, _) = run(1, OPS);
    let serial_makespan = serial_lanes[0].0;

    let (lanes, qp) = run(4, OPS);
    let makespan = lanes.iter().map(|l| l.0).max().unwrap();
    // 4 lanes issue 4x the ops but overlap their RTTs (and share
    // doorbells), so the client finishes 4x the work in far less than 4x
    // (even 2x) the serial time.
    assert!(
        makespan < 2 * serial_makespan,
        "makespan {makespan} vs serial {serial_makespan}"
    );
    assert!(qp.batched_wqes > 0, "lanes posting together share doorbells");
    assert!(
        qp.doorbells < 4 * OPS as u64,
        "fewer doorbells than WQEs: {} of {}",
        qp.doorbells,
        4 * OPS
    );
    assert!(qp.depth_hist.max() >= 2, "CQ holds concurrent completions");
}

#[test]
fn identical_runs_are_identical() {
    for k in [1usize, 2, 4, 8] {
        let a = run(k, OPS);
        let b = run(k, OPS);
        assert_eq!(a.0, b.0, "lane results differ at K={k}");
        assert_eq!(a.1, b.1, "QP stats differ at K={k}");
    }
}

#[test]
fn a_dead_lane_does_not_poison_the_others() {
    let pool = Pool::with_defaults(1, 1 << 20);
    let engine = Engine::new(EngineConfig {
        lanes: 3,
        qp: QpConfig::default(),
    });
    let mut bodies: Vec<LaneBody<(u64, u64)>> = Vec::new();
    bodies.push(reader(Arc::clone(&pool), OPS));
    let p2 = Arc::clone(&pool);
    bodies.push(Box::new(move || {
        let mut ep = Endpoint::new(p2);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let mut buf = [0u8; 8];
        ep.read(addr, &mut buf);
        panic!("lane 1 dies mid-run");
    }));
    bodies.push(reader(Arc::clone(&pool), OPS));
    let net = *pool.net();
    let run = engine.run_client(net, 1, bodies);
    assert!(run.lanes[0].is_ok());
    assert!(run.lanes[1].is_err(), "panic captured as the lane result");
    assert!(run.lanes[2].is_ok());
    let (clock, rtts) = *run.lanes[2].as_ref().unwrap();
    assert!(rtts as usize + run.qp.batched_wqes as usize >= OPS);
    assert!(clock > 0);
}

#[test]
fn lanes_progress_in_completion_order() {
    // Two lanes on different MNs: no doorbell sharing, but strict
    // earliest-completion scheduling still interleaves them 1:1.
    let pool = Pool::with_defaults(2, 1 << 20);
    let engine = Engine::new(EngineConfig {
        lanes: 2,
        qp: QpConfig::default(),
    });
    let mk = |mn: u16| -> LaneBody<(u64, u64)> {
        let pool = Arc::clone(&pool);
        Box::new(move || {
            let mut ep = Endpoint::new(pool);
            let addr = GlobalAddr::new(mn, RESERVED_BYTES);
            let mut buf = [0u8; 8];
            for _ in 0..OPS {
                ep.read(addr, &mut buf);
            }
            (ep.clock_ns(), ep.stats().rtts)
        })
    };
    let net = *pool.net();
    let run = engine.run_client(net, 2, vec![mk(0), mk(1)]);
    let lanes = run.into_results();
    assert_eq!(lanes[0], lanes[1], "symmetric lanes end identically");
}
