//! LaneGate behaviour: the guarded section is atomic w.r.t. sibling lanes,
//! unspawned lanes are deferred while the gate is held, a crashed owner
//! releases its claim, and gated runs stay deterministic.

use std::sync::{Arc, Mutex};

use dmem::node::RESERVED_BYTES;
use dmem::{Endpoint, GlobalAddr, Pool, QpConfig};
use sched::{Engine, EngineConfig, LaneBody, LaneGate};

const STEPS: usize = 8;

type StepLog = Arc<Mutex<Vec<(usize, usize)>>>;

/// A lane body doing `STEPS` dependent reads, logging `(lane, step)` after
/// each. If `span` is set, the lane holds the gate from just before the
/// read of `span.0` until just after the read of `span.1` (inclusive).
fn stepper(
    pool: Arc<Pool>,
    log: StepLog,
    gate: Arc<LaneGate>,
    lane: usize,
    span: Option<(usize, usize)>,
) -> LaneBody<u64> {
    Box::new(move || {
        let mut ep = Endpoint::new(pool);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let mut buf = [0u8; 8];
        for step in 0..STEPS {
            if span.is_some_and(|(a, _)| a == step) {
                gate.enter(lane);
            }
            ep.read(addr, &mut buf);
            log.lock().unwrap().push((lane, step));
            if span.is_some_and(|(_, b)| b == step) {
                gate.exit(lane);
            }
        }
        ep.clock_ns()
    })
}

fn run_steppers(owner: Option<(usize, (usize, usize))>) -> Vec<(usize, usize)> {
    let pool = Pool::with_defaults(1, 1 << 20);
    let engine = Engine::new(EngineConfig {
        lanes: 3,
        qp: QpConfig::default(),
    });
    let gate = LaneGate::new();
    let log: StepLog = Arc::new(Mutex::new(Vec::new()));
    let bodies = (0..3)
        .map(|lane| {
            let span = owner.and_then(|(o, s)| (o == lane).then_some(s));
            stepper(
                Arc::clone(&pool),
                Arc::clone(&log),
                Arc::clone(&gate),
                lane,
                span,
            )
        })
        .collect();
    let net = *pool.net();
    engine.run_client_gated(net, 1, bodies, gate).into_results();
    Arc::try_unwrap(log).unwrap().into_inner().unwrap()
}

/// Log positions of the owner's steps `lo..=hi`; the section is atomic iff
/// they are contiguous in the interleaved log.
fn span_positions(log: &[(usize, usize)], lane: usize, lo: usize, hi: usize) -> Vec<usize> {
    log.iter()
        .enumerate()
        .filter(|(_, &(l, s))| l == lane && (lo..=hi).contains(&s))
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn ungated_lanes_interleave() {
    let log = run_steppers(None);
    assert_eq!(log.len(), 3 * STEPS);
    // Symmetric lanes on one MN take strict turns: somewhere in the middle
    // of lane 1's run another lane gets scheduled between its steps.
    let pos = span_positions(&log, 1, 2, 4);
    assert!(
        pos.windows(2).any(|w| w[1] != w[0] + 1),
        "expected interleaving without the gate, got {log:?}"
    );
}

#[test]
fn a_held_gate_makes_the_section_atomic() {
    let log = run_steppers(Some((1, (2, 4))));
    assert_eq!(log.len(), 3 * STEPS);
    let pos = span_positions(&log, 1, 2, 4);
    assert_eq!(pos.len(), 3);
    assert!(
        pos.windows(2).all(|w| w[1] == w[0] + 1),
        "gated steps of lane 1 must be contiguous, got {log:?}"
    );
}

#[test]
fn a_gate_held_at_start_defers_lane_spawns() {
    // Lane 0 holds the gate across its whole run: lanes 1 and 2 must not
    // even start (their first steps come after all of lane 0's).
    let log = run_steppers(Some((0, (0, STEPS - 1))));
    assert_eq!(log.len(), 3 * STEPS);
    assert!(
        log[..STEPS].iter().all(|&(l, _)| l == 0),
        "lane 0's gated run must fully precede the others, got {log:?}"
    );
}

#[test]
fn gated_runs_are_deterministic() {
    for owner in [None, Some((1, (2, 4))), Some((2, (1, 6)))] {
        let a = run_steppers(owner);
        let b = run_steppers(owner);
        assert_eq!(a, b, "gated schedule differs across identical runs");
    }
}

#[test]
fn a_crashed_owner_releases_the_gate() {
    let pool = Pool::with_defaults(1, 1 << 20);
    let engine = Engine::new(EngineConfig {
        lanes: 3,
        qp: QpConfig::default(),
    });
    let gate = LaneGate::new();
    let log: StepLog = Arc::new(Mutex::new(Vec::new()));
    let mut bodies: Vec<LaneBody<u64>> = Vec::new();
    bodies.push(stepper(
        Arc::clone(&pool),
        Arc::clone(&log),
        Arc::clone(&gate),
        0,
        None,
    ));
    let (p1, g1) = (Arc::clone(&pool), Arc::clone(&gate));
    bodies.push(Box::new(move || {
        let mut ep = Endpoint::new(p1);
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let mut buf = [0u8; 8];
        ep.read(addr, &mut buf);
        g1.enter(1);
        ep.read(addr, &mut buf);
        panic!("owner dies inside the guarded section");
    }));
    bodies.push(stepper(
        Arc::clone(&pool),
        Arc::clone(&log),
        Arc::clone(&gate),
        2,
        None,
    ));
    let net = *pool.net();
    let run = engine.run_client_gated(net, 1, bodies, Arc::clone(&gate));
    assert!(run.lanes[0].is_ok());
    assert!(run.lanes[1].is_err(), "the owner's panic is its result");
    assert!(run.lanes[2].is_ok());
    assert_eq!(gate.owner(), None, "the dead owner's claim is cleared");
    let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    assert_eq!(log.len(), 2 * STEPS, "survivor lanes finish all steps");
}
