//! `sched` — a deterministic cooperative coroutine engine.
//!
//! The CHIME paper runs 64 clients per compute node as threads + coroutines
//! so independent operations overlap their RDMA round trips. This crate
//! reproduces that execution model inside the simulator without giving up
//! byte-for-byte reproducibility:
//!
//! * each logical client owns K **lanes** — coroutines running unmodified
//!   synchronous index code on their own [`dmem::Endpoint`];
//! * every verb a lane issues becomes a WQE on the client's shared
//!   [`dmem::Qp`] (via the [`dmem::LaneHook`] seam) and the lane **parks**
//!   until the scheduler delivers its completion;
//! * the scheduler is a discrete-event loop: it always resumes the lane
//!   with the **earliest pending completion timestamp** (lane index breaks
//!   ties), so exactly one lane executes at any instant and the global
//!   interleaving is a pure function of the lanes' virtual-time behaviour;
//! * consecutive WQEs posted to the same memory node within one scheduling
//!   quantum share a doorbell — one round trip — which is where pipelining's
//!   modeled throughput gain comes from.
//!
//! Lanes are hosted on parked OS threads purely as a coroutine mechanism:
//! no two lane threads are ever runnable simultaneously, nothing reads a
//! wall clock, and handoff happens over rendezvous channels, so runs are
//! deterministic regardless of OS scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use dmem::qp::{self, LaneHook, WqeOutcome, WqeTicket};
use dmem::{NetConfig, Qp, QpConfig, QpStats};

/// How a lane's execution ended.
pub type LaneResult<T> = Result<T, Box<dyn Any + Send>>;

/// The outcome of driving one client's lanes to completion.
pub struct ClientRun<T> {
    /// Per-lane results in lane order. `Err` carries the lane's panic
    /// payload (e.g. a [`dmem::CrashSignal`] from an injected crash point);
    /// the engine never re-raises — callers decide what a dead lane means.
    pub lanes: Vec<LaneResult<T>>,
    /// The client's queue-pair statistics (doorbells, batch sizes, CQ
    /// depths) accumulated across all lanes.
    pub qp: QpStats,
}

impl<T> ClientRun<T> {
    /// Unwraps every lane result, panicking (with the first lane's payload
    /// resurfaced) if any lane died. Convenience for fault-free runs.
    pub fn into_results(self) -> Vec<T> {
        self.lanes
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    }
}

/// Engine knobs: lanes per client and the queue-pair model.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Coroutine lanes multiplexed per client (K). 1 reproduces serial
    /// execution through the same machinery.
    pub lanes: usize,
    /// Doorbell-batching window and batch cap for the shared QP.
    pub qp: QpConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            lanes: 1,
            qp: QpConfig::default(),
        }
    }
}

/// A lane body: synchronous client code returning its result. Bodies
/// create (or capture) their own endpoint; every verb it issues parks the
/// lane at the scheduler.
pub type LaneBody<T> = Box<dyn FnOnce() -> T + Send>;

/// What a parked lane is waiting for.
enum Parked {
    /// A posted WQE (ticket reaped at delivery).
    Verb(WqeTicket),
    /// A verb-free virtual-time advance (backoff, RPC service, fault delay).
    Timer,
}

/// Scheduler-to-lane resumption payload.
enum LaneResume {
    Verb(WqeOutcome),
    Timer,
}

/// Lane-to-scheduler events. Exactly one lane is ever running, so these
/// arrive strictly ordered.
enum Event<T> {
    Post {
        lane: usize,
        now_ns: u64,
        mn: u16,
        msgs: u64,
        wire_bytes: u64,
        trace: u64,
    },
    Timer {
        lane: usize,
        now_ns: u64,
        dt_ns: u64,
    },
    Finished {
        lane: usize,
        result: LaneResult<T>,
    },
}

/// The [`LaneHook`] installed on each lane thread: forwards verb and timer
/// boundaries to the scheduler and blocks until resumed.
struct EngineHook<T: Send + 'static> {
    lane: usize,
    events: Sender<Event<T>>,
    resume: Receiver<LaneResume>,
}

impl<T: Send + 'static> LaneHook for EngineHook<T> {
    fn post(
        &mut self,
        now_ns: u64,
        mn: u16,
        msgs: u64,
        wire_bytes: u64,
        trace: u64,
    ) -> WqeOutcome {
        self.events
            .send(Event::Post {
                lane: self.lane,
                now_ns,
                mn,
                msgs,
                wire_bytes,
                trace,
            })
            .expect("scheduler gone while lane runs");
        match self.resume.recv().expect("scheduler gone while lane parked") {
            LaneResume::Verb(out) => out,
            LaneResume::Timer => unreachable!("timer resume for a posted WQE"),
        }
    }

    fn timer(&mut self, now_ns: u64, dt_ns: u64) {
        self.events
            .send(Event::Timer {
                lane: self.lane,
                now_ns,
                dt_ns,
            })
            .expect("scheduler gone while lane runs");
        match self.resume.recv().expect("scheduler gone while lane parked") {
            LaneResume::Timer => {}
            LaneResume::Verb(_) => unreachable!("verb resume for a timer wait"),
        }
    }
}

/// A scheduler-maintained completion-queue depth gauge.
///
/// The engine refreshes the gauge at every scheduling decision: after a
/// lane posts a WQE (depth includes the new entry) and whenever a parked
/// lane is resumed (entries whose completions have passed the resumption
/// instant are expired first). Exactly one lane executes at any instant,
/// so a lane reading the gauge always sees the depth as of its own virtual
/// "now" — the load is `Relaxed` yet the value is deterministic.
///
/// The serve layer's backpressure watermark reads this to decide whether
/// to shed or defer an operation before it issues verbs.
#[derive(Debug, Default)]
pub struct CqDepthGauge {
    depth: AtomicU64,
}

impl CqDepthGauge {
    /// Creates a gauge reading zero.
    pub fn new() -> Arc<Self> {
        Arc::new(CqDepthGauge::default())
    }

    /// The CQ depth as of the engine's latest scheduling decision.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    fn publish(&self, depth: u64) {
        self.depth.store(depth, Ordering::Relaxed);
    }
}

/// Sentinel owner value: nobody holds the gate.
const GATE_FREE: usize = usize::MAX;

/// A cross-lane mutual-exclusion gate for one client's coroutine lanes.
///
/// While a lane holds the gate, the scheduler resumes only that lane: the
/// guarded section executes atomically with respect to the client's other
/// lanes (their completions stay queued until the gate drops, and lanes
/// not yet started are not spawned), while virtual time still advances
/// verb by verb. The partition migrator runs its copy/switch protocol
/// under the gate so no sibling lane observes a half-migrated partition.
///
/// `enter`/`exit` are called from lane bodies. Exactly one lane executes
/// at any instant, so the plain atomic is deterministic. A lane that dies
/// inside the section (an injected crash point) has its claim cleared by
/// the engine when the lane finishes — the crash leaves *remote* state
/// (lock words, journal) behind for recovery, but never wedges the
/// scheduler.
#[derive(Debug)]
pub struct LaneGate {
    owner: AtomicUsize,
}

impl LaneGate {
    /// Creates an unheld gate.
    pub fn new() -> Arc<Self> {
        Arc::new(LaneGate {
            owner: AtomicUsize::new(GATE_FREE),
        })
    }

    /// Claims the gate for `lane`. Re-entering while already the owner is
    /// allowed; claiming over another lane's live hold is a bug (the
    /// scheduler never resumes a non-owner inside a held section).
    pub fn enter(&self, lane: usize) {
        let prev = self.owner.swap(lane, Ordering::Relaxed);
        assert!(
            prev == GATE_FREE || prev == lane,
            "lane {lane} entered a gate held by lane {prev}"
        );
    }

    /// Releases the gate. Panics if `lane` is not the current owner.
    pub fn exit(&self, lane: usize) {
        let prev = self.owner.swap(GATE_FREE, Ordering::Relaxed);
        assert_eq!(prev, lane, "lane {lane} exited a gate held by {prev}");
    }

    /// The owning lane, if any.
    pub fn owner(&self) -> Option<usize> {
        match self.owner.load(Ordering::Relaxed) {
            GATE_FREE => None,
            lane => Some(lane),
        }
    }

    /// Drops `lane`'s claim if it holds the gate (engine cleanup when a
    /// lane finishes or dies).
    fn clear_if(&self, lane: usize) {
        let _ = self
            .owner
            .compare_exchange(lane, GATE_FREE, Ordering::Relaxed, Ordering::Relaxed);
    }
}

/// Pops the next completion to deliver. With a held [`LaneGate`], the
/// owner's earliest pending completion wins (the heap pops in ascending
/// order, so the first owner entry found is its earliest; skipped entries
/// are pushed back). Without one — or when the owner has nothing pending —
/// the globally earliest completion is delivered.
fn pop_ready(
    ready: &mut BinaryHeap<Reverse<(u64, usize)>>,
    gate: Option<&LaneGate>,
) -> Option<Reverse<(u64, usize)>> {
    let Some(owner) = gate.and_then(|g| g.owner()) else {
        return ready.pop();
    };
    let mut skipped = Vec::new();
    let mut found = None;
    while let Some(e) = ready.pop() {
        if e.0 .1 == owner {
            found = Some(e);
            break;
        }
        skipped.push(e);
    }
    for e in skipped {
        ready.push(e);
    }
    found.or_else(|| ready.pop())
}

/// The deterministic coroutine engine.
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Drives one client's lane bodies to completion over a shared QP
    /// reaching `mns` memory nodes, returning per-lane results and QP
    /// statistics.
    ///
    /// Strict turn-taking: lanes start in index order, each running until
    /// its first verb/timer park; thereafter the scheduler repeatedly
    /// delivers the earliest pending completion (ties broken by lane
    /// index) and waits for the resumed lane to park again or finish. A
    /// lane that panics (e.g. an injected crash point) simply finishes
    /// with the payload as its result; the remaining lanes keep running.
    pub fn run_client<T: Send + 'static>(
        &self,
        net: NetConfig,
        mns: u16,
        bodies: Vec<LaneBody<T>>,
    ) -> ClientRun<T> {
        self.run_inner(net, mns, bodies, None, None)
    }

    /// [`Engine::run_client`] with a live [`CqDepthGauge`]: the engine
    /// refreshes `gauge` at every scheduling decision so lane bodies can
    /// read the client's CQ depth (e.g. for serve-layer backpressure)
    /// without breaking determinism.
    pub fn run_client_observed<T: Send + 'static>(
        &self,
        net: NetConfig,
        mns: u16,
        bodies: Vec<LaneBody<T>>,
        gauge: Arc<CqDepthGauge>,
    ) -> ClientRun<T> {
        self.run_inner(net, mns, bodies, Some(gauge), None)
    }

    /// [`Engine::run_client`] with a [`LaneGate`]: while a lane holds the
    /// gate, the scheduler resumes only that lane (and defers starting new
    /// ones), so the guarded section runs atomically with respect to this
    /// client's other lanes. A finished or crashed owner has its claim
    /// cleared automatically so the run always drains.
    pub fn run_client_gated<T: Send + 'static>(
        &self,
        net: NetConfig,
        mns: u16,
        bodies: Vec<LaneBody<T>>,
        gate: Arc<LaneGate>,
    ) -> ClientRun<T> {
        self.run_inner(net, mns, bodies, None, Some(gate))
    }

    fn run_inner<T: Send + 'static>(
        &self,
        net: NetConfig,
        mns: u16,
        bodies: Vec<LaneBody<T>>,
        gauge: Option<Arc<CqDepthGauge>>,
        gate: Option<Arc<LaneGate>>,
    ) -> ClientRun<T> {
        let lanes = bodies.len();
        assert!(lanes > 0, "a client needs at least one lane");
        let mut qp = Qp::new(net, self.cfg.qp, mns);
        let (event_tx, event_rx) = mpsc::channel::<Event<T>>();
        let mut resume_txs: Vec<Sender<LaneResume>> = Vec::with_capacity(lanes);
        let mut joins = Vec::with_capacity(lanes);
        let mut parked: Vec<Option<Parked>> = Vec::with_capacity(lanes);
        let mut results: Vec<Option<LaneResult<T>>> = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            parked.push(None);
            results.push(None);
        }
        // Earliest-completion-first event queue; `Reverse` turns the std
        // max-heap into a min-heap and the lane index breaks timestamp ties
        // deterministically.
        let mut ready: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut bodies = bodies.into_iter();
        let mut spawned = 0usize;
        // Exactly one lane is running whenever `running` is true; the
        // scheduler blocks on the event channel until it parks or finishes.
        let mut running = false;
        loop {
            if !running {
                // While a gate is held, new lanes stay unspawned: their
                // first instructions must not interleave with the guarded
                // section. They start once the owner releases (or dies).
                let gated = gate.as_deref().and_then(|g| g.owner()).is_some();
                let next_body = if gated { None } else { bodies.next() };
                if let Some(body) = next_body {
                    // Start the next lane and run it to its first park.
                    let lane = spawned;
                    spawned += 1;
                    let (resume_tx, resume_rx) = mpsc::channel::<LaneResume>();
                    resume_txs.push(resume_tx);
                    let events = event_tx.clone();
                    let hook_events = event_tx.clone();
                    let handle = thread::Builder::new()
                        .name(format!("lane-{lane}"))
                        .spawn(move || {
                            qp::install_lane_hook(Box::new(EngineHook {
                                lane,
                                events: hook_events,
                                resume: resume_rx,
                            }));
                            let result = catch_unwind(AssertUnwindSafe(body));
                            drop(qp::uninstall_lane_hook());
                            let _ = events.send(Event::Finished { lane, result });
                        })
                        .expect("spawn lane thread");
                    joins.push(handle);
                    running = true;
                } else if let Some(Reverse((t, lane))) = pop_ready(&mut ready, gate.as_deref()) {
                    // Deliver the earliest completion and resume its lane.
                    let resume = match parked[lane].take().expect("ready lane not parked") {
                        Parked::Verb(ticket) => LaneResume::Verb(qp.poll_wqe(ticket)),
                        Parked::Timer => LaneResume::Timer,
                    };
                    if let Some(g) = &gauge {
                        // The global frontier advances to `t`: completions
                        // at or before it are delivered, so the resumed
                        // lane sees a decayed depth.
                        qp.expire_before(t);
                        g.publish(qp.outstanding_len());
                    }
                    resume_txs[lane].send(resume).expect("lane gone");
                    running = true;
                } else {
                    // No runnable lane, nothing pending: all lanes finished.
                    break;
                }
                continue;
            }
            // A lane is executing: wait for it to park or finish.
            match event_rx.recv().expect("running lane vanished") {
                Event::Post {
                    lane,
                    now_ns,
                    mn,
                    msgs,
                    wire_bytes,
                    trace,
                } => {
                    let ticket = qp.post_wqe(now_ns, mn, msgs, wire_bytes, trace);
                    ready.push(Reverse((ticket.completion(), lane)));
                    parked[lane] = Some(Parked::Verb(ticket));
                    if let Some(g) = &gauge {
                        g.publish(qp.outstanding_len());
                    }
                }
                Event::Timer { lane, now_ns, dt_ns } => {
                    ready.push(Reverse((now_ns + dt_ns, lane)));
                    parked[lane] = Some(Parked::Timer);
                }
                Event::Finished { lane, result } => {
                    // A finished (or crashed) owner must release its gate
                    // claim, else the remaining lanes would never resume.
                    if let Some(g) = &gate {
                        g.clear_if(lane);
                    }
                    results[lane] = Some(result);
                }
            }
            running = false;
        }
        for handle in joins {
            handle.join().expect("lane thread poisoned past catch_unwind");
        }
        qp.finish();
        ClientRun {
            lanes: results
                .into_iter()
                .map(|r| r.expect("lane finished without a result"))
                .collect(),
            qp: qp.stats().clone(),
        }
    }
}
