//! The §3.1.2 hashing-scheme study: read amplification vs space efficiency.
//!
//! Reproduces Fig. 3d by measuring the *maximum load factor* (items inserted
//! into a 128-entry table before the first insertion failure) of four
//! collision-resolution schemes, together with their analytic amplification
//! factors:
//!
//! * **associativity** — one bucket of `b` entries per key (amp = `b`);
//! * **hopscotch** — neighborhood of `H` entries with hopping (amp = `H`);
//! * **RACE** — two choices over main buckets with a shared overflow bucket
//!   per group (amp = `4b`: two main + two overflow buckets per lookup);
//! * **FaRM** — chained associative hopscotch with the chain disabled:
//!   an item lives in bucket `h` or `h+1` (amp = `2b`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The four studied schemes with their size parameter.
///
/// # Examples
///
/// ```
/// use hashstudy::Scheme;
///
/// let hop = Scheme::Hopscotch(8).max_load_factor(128, 50, 7);
/// let assoc = Scheme::Assoc(8).max_load_factor(128, 50, 7);
/// assert!(hop > assoc, "hopscotch packs tighter at equal amplification");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Associative buckets of the given size.
    Assoc(usize),
    /// Hopscotch hashing with the given neighborhood.
    Hopscotch(usize),
    /// RACE hashing with the given bucket size.
    Race(usize),
    /// FaRM-style two-bucket hopscotch with the given bucket size.
    Farm(usize),
}

impl Scheme {
    /// The scheme's analytic read-amplification factor (entries fetched per
    /// lookup).
    pub fn amplification(self) -> usize {
        match self {
            Scheme::Assoc(b) => b,
            Scheme::Hopscotch(h) => h,
            Scheme::Race(b) => 4 * b,
            Scheme::Farm(b) => 2 * b,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Assoc(_) => "associativity",
            Scheme::Hopscotch(_) => "hopscotch",
            Scheme::Race(_) => "RACE",
            Scheme::Farm(_) => "FaRM",
        }
    }

    /// Inserts random keys until failure; returns the achieved load factor.
    pub fn max_load_factor_once(self, entries: usize, rng: &mut SmallRng) -> f64 {
        let inserted = match self {
            Scheme::Assoc(b) => assoc_fill(entries, b, rng),
            Scheme::Hopscotch(h) => hopscotch_fill(entries, h, rng),
            Scheme::Race(b) => race_fill(entries, b, rng),
            Scheme::Farm(b) => farm_fill(entries, b, rng),
        };
        inserted as f64 / entries as f64
    }

    /// Mean maximum load factor over `trials` random tables of `entries`
    /// entries (the paper uses 128).
    pub fn max_load_factor(self, entries: usize, trials: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..trials)
            .map(|_| self.max_load_factor_once(entries, &mut rng))
            .sum::<f64>()
            / trials as f64
    }
}

fn assoc_fill(entries: usize, b: usize, rng: &mut SmallRng) -> usize {
    let buckets = entries / b;
    let mut load = vec![0usize; buckets];
    for n in 0..entries {
        let h = rng.gen_range(0..buckets);
        if load[h] == b {
            return n;
        }
        load[h] += 1;
    }
    entries
}

fn hopscotch_fill(entries: usize, h: usize, rng: &mut SmallRng) -> usize {
    // slots[i] = home index of the stored key, or usize::MAX when empty.
    let mut slots = vec![usize::MAX; entries];
    let dist = |a: usize, b: usize| (b + entries - a) % entries;
    for n in 0..entries {
        let home = rng.gen_range(0..entries);
        // Linear-probe for the first empty slot.
        let Some(mut e) = (0..entries)
            .map(|d| (home + d) % entries)
            .find(|&i| slots[i] == usize::MAX)
        else {
            return n;
        };
        // Hop until the empty slot is within the neighborhood.
        'hop: while dist(home, e) >= h {
            for d in (1..h).rev() {
                let cand = (e + entries - d) % entries;
                let cand_home = slots[cand];
                if cand_home != usize::MAX && dist(cand_home, e) < h {
                    slots[e] = cand_home;
                    slots[cand] = usize::MAX;
                    e = cand;
                    continue 'hop;
                }
            }
            return n;
        }
        slots[e] = home;
    }
    entries
}

fn race_fill(entries: usize, b: usize, rng: &mut SmallRng) -> usize {
    // Groups of three buckets: [main0 | shared overflow | main1].
    let groups = entries / (3 * b);
    if groups == 0 {
        return 0;
    }
    let mut load = vec![[0usize; 3]; groups];
    let cap = entries.min(groups * 3 * b);
    for n in 0..cap {
        let g1 = rng.gen_range(0..groups);
        let g2 = rng.gen_range(0..groups);
        // Candidate (group, bucket) pairs; prefer main buckets, then the
        // shared overflow buckets (RACE's insertion order).
        let mains = [(g1, 0usize), (g2, 2)];
        let overflows = [(g1, 1usize), (g2, 1)];
        let mut placed = false;
        for &(g, slot) in mains.iter().chain(overflows.iter()) {
            if load[g][slot] < b {
                load[g][slot] += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            return n;
        }
    }
    cap
}

fn farm_fill(entries: usize, b: usize, rng: &mut SmallRng) -> usize {
    // An item hashed to bucket h may live in bucket h or h+1 (mod B):
    // a two-bucket neighborhood at bucket granularity, chain disabled.
    let buckets = entries / b;
    if buckets < 2 {
        return 0;
    }
    let mut here = vec![0usize; buckets]; // residents hashed to this bucket
    let mut pushed = vec![0usize; buckets]; // residents hashed to i-1
    let full = |i: usize, here: &[usize], pushed: &[usize]| here[i] + pushed[i] >= b;
    for n in 0..entries {
        let h = rng.gen_range(0..buckets);
        let h2 = (h + 1) % buckets;
        if !full(h, &here, &pushed) {
            here[h] += 1;
        } else if !full(h2, &here, &pushed) {
            pushed[h2] += 1;
        } else if here[h2] > 0 && !full((h2 + 1) % buckets, &here, &pushed) {
            // Move one of h2's own residents onward to make room.
            here[h2] -= 1;
            pushed[(h2 + 1) % buckets] += 1;
            pushed[h2] += 1;
        } else {
            return n;
        }
    }
    entries
}

/// The Fig. 3d sweep: every scheme/parameter point the paper plots.
pub fn fig3d_points() -> Vec<(Scheme, usize)> {
    let mut v = Vec::new();
    for b in [1usize, 2, 4, 8, 16] {
        v.push((Scheme::Assoc(b), b));
    }
    for h in [2usize, 4, 8, 16] {
        v.push((Scheme::Hopscotch(h), h));
    }
    for b in [1usize, 2, 4] {
        v.push((Scheme::Race(b), 4 * b));
    }
    for b in [1usize, 2, 4, 8] {
        v.push((Scheme::Farm(b), 2 * b));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 128;
    const TRIALS: usize = 200;

    #[test]
    fn amplification_formulas() {
        assert_eq!(Scheme::Assoc(4).amplification(), 4);
        assert_eq!(Scheme::Hopscotch(8).amplification(), 8);
        assert_eq!(Scheme::Race(2).amplification(), 8);
        assert_eq!(Scheme::Farm(4).amplification(), 8);
    }

    #[test]
    fn hopscotch_beats_associativity_at_same_amplification() {
        for amp in [2usize, 4, 8] {
            let hop = Scheme::Hopscotch(amp).max_load_factor(N, TRIALS, 7);
            let assoc = Scheme::Assoc(amp).max_load_factor(N, TRIALS, 7);
            assert!(
                hop > assoc + 0.05,
                "amp {amp}: hopscotch {hop:.2} vs assoc {assoc:.2}"
            );
        }
    }

    #[test]
    fn hopscotch_h8_reaches_high_load() {
        let lf = Scheme::Hopscotch(8).max_load_factor(N, TRIALS, 7);
        assert!(lf > 0.80, "H=8 load factor {lf:.2}");
        let lf16 = Scheme::Hopscotch(16).max_load_factor(N, TRIALS, 7);
        assert!(lf16 > 0.93, "H=16 load factor {lf16:.2}");
    }

    #[test]
    fn load_factor_monotone_in_parameter() {
        let mono = |mk: fn(usize) -> Scheme, ps: &[usize]| {
            let lfs: Vec<f64> = ps
                .iter()
                .map(|&p| mk(p).max_load_factor(N, TRIALS, 7))
                .collect();
            for w in lfs.windows(2) {
                assert!(w[1] >= w[0] - 0.03, "not monotone: {lfs:?}");
            }
        };
        mono(Scheme::Assoc, &[1, 2, 4, 8]);
        mono(Scheme::Hopscotch, &[2, 4, 8, 16]);
        mono(Scheme::Farm, &[1, 2, 4]);
    }

    #[test]
    fn single_entry_assoc_is_poor() {
        let lf = Scheme::Assoc(1).max_load_factor(N, TRIALS, 7);
        // Birthday bound: the first collision lands around sqrt(N).
        assert!(lf < 0.25, "assoc(1) load factor {lf:.2}");
    }

    #[test]
    fn race_uses_two_choices_effectively() {
        let race = Scheme::Race(1).max_load_factor(N, TRIALS, 7);
        let assoc = Scheme::Assoc(1).max_load_factor(N, TRIALS, 7);
        assert!(race > assoc, "race {race:.2} vs assoc {assoc:.2}");
    }

    #[test]
    fn fig3d_sweep_is_complete() {
        let pts = fig3d_points();
        assert_eq!(pts.len(), 5 + 4 + 3 + 4);
        for (s, amp) in pts {
            assert_eq!(s.amplification(), amp);
        }
    }
}
